#pragma once
// Irredundant sum-of-products (Minato-Morreale ISOP) over small truth
// tables, plus AIG construction of the resulting SOP. This is the
// resynthesis core shared by rewrite, refactor, and the LUT re-decomposition
// inside the technology-mapping substitute.

#include <vector>

#include "aig/aig.hpp"
#include "aig/truth.hpp"

namespace hoga::synth {

using aig::Aig;
using aig::Lit;
using aig::Tt;

/// Product term over <= 6 variables: bit i of `pos` selects x_i, bit i of
/// `neg` selects !x_i. pos & neg == 0. Empty cube (pos=neg=0) is constant 1.
struct Cube {
  std::uint8_t pos = 0;
  std::uint8_t neg = 0;
};

/// Truth table of one cube.
Tt cube_tt(const Cube& c, int nvars);

/// Truth table of a cube list (OR of cubes).
Tt sop_tt(const std::vector<Cube>& cubes, int nvars);

/// Minato-Morreale irredundant SOP with interval [lower, upper]:
/// returns cubes whose union f satisfies lower <= f <= upper.
/// For an exact cover call with lower == upper == target function.
std::vector<Cube> isop(Tt lower, Tt upper, int nvars);

/// Number of AIG AND gates a naive balanced SOP construction needs
/// (literals-1 per cube plus cubes-1 for the OR), before sharing.
int sop_gate_upper_bound(const std::vector<Cube>& cubes);

/// Builds the SOP into `dst` over the given leaf literals, reusing existing
/// nodes via strash. Returns the root literal.
Lit build_sop(Aig& dst, const std::vector<Cube>& cubes,
              const std::vector<Lit>& leaves);

/// Builds whichever of {SOP(f), NOT SOP(!f)} costs fewer new gates in `dst`
/// (dual-phase resynthesis). `tt` is over `leaves.size()` variables.
Lit build_function(Aig& dst, Tt tt, int nvars, const std::vector<Lit>& leaves);

/// Counts how many new AND nodes building `cubes` over `leaves` into `dst`
/// would create, without modifying `dst` (dry run against its strash table).
int count_new_nodes_sop(const Aig& dst, const std::vector<Cube>& cubes,
                        const std::vector<Lit>& leaves);

}  // namespace hoga::synth
