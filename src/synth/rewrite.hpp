#pragma once
// Cut-based resynthesis (ABC-style rewrite/refactor): every live node is
// re-implemented by the cheapest of (a) a direct copy of its AND gate or
// (b) a dual-phase ISOP network over one of its cuts, costed against the
// partially built destination network so shared logic is free.

#include "aig/aig.hpp"
#include "aig/cuts.hpp"

namespace hoga::synth {

struct ResynParams {
  int cut_size = 4;     // rewrite uses 4-cuts, refactor 6-cuts
  int max_cuts = 8;
  /// Accept zero-gain replacements (ABC's -z): perturbs structure so later
  /// passes find new opportunities.
  bool zero_cost = false;
};

/// Generic cut resynthesis; `rewrite`/`refactor`/`resub` below are the
/// recipe-facing parameterizations.
aig::Aig resynthesize(const aig::Aig& src, const ResynParams& params);

inline aig::Aig rewrite(const aig::Aig& src, bool zero_cost = false) {
  return resynthesize(src, {.cut_size = 4, .max_cuts = 8,
                            .zero_cost = zero_cost});
}

inline aig::Aig refactor(const aig::Aig& src, bool zero_cost = false) {
  return resynthesize(src, {.cut_size = 6, .max_cuts = 5,
                            .zero_cost = zero_cost});
}

/// Lightweight substitution flavor: mid-size cuts, more cuts kept per node.
inline aig::Aig resub(const aig::Aig& src) {
  return resynthesize(src, {.cut_size = 5, .max_cuts = 10,
                            .zero_cost = false});
}

}  // namespace hoga::synth
