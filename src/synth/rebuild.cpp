#include "synth/rebuild.hpp"

namespace hoga::synth {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

Aig strash_with_map(const Aig& src, std::vector<Lit>* old_to_new) {
  Aig dst;
  const auto live = src.reachable_from_pos();
  std::vector<Lit> map(static_cast<std::size_t>(src.num_nodes()),
                       Aig::kNoLit);
  map[0] = aig::kLitFalse;
  for (NodeId pi : src.pis()) {
    map[pi] = dst.add_pi();
  }
  for (NodeId id = 0; id < static_cast<NodeId>(src.num_nodes()); ++id) {
    if (!src.is_and(id) || !live[id]) continue;
    const auto& n = src.node(id);
    const Lit f0 = map[aig::lit_node(n.fanin0)];
    const Lit f1 = map[aig::lit_node(n.fanin1)];
    HOGA_CHECK(f0 != Aig::kNoLit && f1 != Aig::kNoLit,
               "strash: fanin of live node unmapped");
    map[id] = dst.add_and(aig::lit_not_if(f0, aig::lit_is_compl(n.fanin0)),
                          aig::lit_not_if(f1, aig::lit_is_compl(n.fanin1)));
  }
  for (Lit po : src.pos()) {
    const Lit m = map[aig::lit_node(po)];
    HOGA_CHECK(m != Aig::kNoLit, "strash: PO cone unmapped");
    dst.add_po(aig::lit_not_if(m, aig::lit_is_compl(po)));
  }
  if (old_to_new) *old_to_new = std::move(map);
  return dst;
}

Aig strash(const Aig& src) { return strash_with_map(src, nullptr); }

}  // namespace hoga::synth
