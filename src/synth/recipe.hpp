#pragma once
// Synthesis recipes: sequences of optimization passes, mirroring the recipe
// space of OpenABC-D (balance / rewrite / rewrite -z / refactor /
// refactor -z / resub / strash). Recipes are first-class data — the QoR
// prediction task conditions on a recipe encoding exactly as the paper's
// baseline does (Figure 3b).

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace hoga::synth {

enum class Pass : std::uint8_t {
  kBalance = 0,
  kRewrite = 1,
  kRewriteZ = 2,
  kRefactor = 3,
  kRefactorZ = 4,
  kResub = 5,
  kStrash = 6,
};

constexpr int kNumPassKinds = 7;

const char* pass_name(Pass p);

/// Applies one pass; always returns a freshly reconstructed network.
aig::Aig apply_pass(const aig::Aig& src, Pass p);

struct Recipe {
  std::vector<Pass> passes;

  /// Uniformly random recipe of the given length.
  static Recipe random(Rng& rng, int length);

  /// ABC's resyn2 analog, the canonical reference recipe.
  static Recipe resyn2();

  std::string to_string() const;

  /// Token ids (one per step) for the recipe encoder of the QoR model.
  std::vector<std::int64_t> token_ids() const;

  int length() const { return static_cast<int>(passes.size()); }
};

struct RecipeResult {
  aig::Aig optimized;
  /// AND count after each pass (index 0 = after first pass).
  std::vector<std::int64_t> and_counts;
};

/// Runs all passes in order.
RecipeResult run_recipe(const aig::Aig& src, const Recipe& recipe);

}  // namespace hoga::synth
