#include "synth/isop.hpp"

#include <bit>
#include <functional>
#include <unordered_map>

namespace hoga::synth {
namespace {

using aig::tt_cofactor0;
using aig::tt_cofactor1;
using aig::tt_mask;

std::vector<Cube> isop_rec(Tt lower, Tt upper, int nvars, int top) {
  const Tt mask = tt_mask(nvars);
  lower &= mask;
  upper &= mask;
  if (lower == 0) return {};
  if (upper == mask) return {Cube{}};  // tautology: single empty cube
  HOGA_CHECK(top > 0, "isop: ran out of variables with lower != 0");
  const int v = top - 1;
  const Tt l0 = tt_cofactor0(lower, v) & mask;
  const Tt l1 = tt_cofactor1(lower, v) & mask;
  const Tt u0 = tt_cofactor0(upper, v) & mask;
  const Tt u1 = tt_cofactor1(upper, v) & mask;

  std::vector<Cube> c0 = isop_rec(l0 & ~u1, u0, nvars, v);
  std::vector<Cube> c1 = isop_rec(l1 & ~u0, u1, nvars, v);
  const Tt f0 = sop_tt(c0, nvars);
  const Tt f1 = sop_tt(c1, nvars);
  const Tt remainder = ((l0 & ~f0) | (l1 & ~f1)) & mask;
  std::vector<Cube> cs = isop_rec(remainder, u0 & u1, nvars, v);

  std::vector<Cube> out;
  out.reserve(c0.size() + c1.size() + cs.size());
  for (Cube c : c0) {
    c.neg |= static_cast<std::uint8_t>(1u << v);
    out.push_back(c);
  }
  for (Cube c : c1) {
    c.pos |= static_cast<std::uint8_t>(1u << v);
    out.push_back(c);
  }
  out.insert(out.end(), cs.begin(), cs.end());
  return out;
}

// Shared balanced construction used by both the real and the dry-run
// builders so their node counts agree exactly.
template <typename AndFn>
Lit generic_sop(const std::vector<Cube>& cubes, const std::vector<Lit>& leaves,
                AndFn&& and_fn) {
  auto and_multi = [&](std::vector<Lit> lits) -> Lit {
    if (lits.empty()) return aig::kLitTrue;
    while (lits.size() > 1) {
      std::vector<Lit> next;
      next.reserve((lits.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
        next.push_back(and_fn(lits[i], lits[i + 1]));
      }
      if (lits.size() % 2) next.push_back(lits.back());
      lits = std::move(next);
    }
    return lits[0];
  };
  std::vector<Lit> terms;
  terms.reserve(cubes.size());
  for (const Cube& c : cubes) {
    std::vector<Lit> lits;
    for (std::size_t v = 0; v < leaves.size(); ++v) {
      if (c.pos & (1u << v)) lits.push_back(leaves[v]);
      if (c.neg & (1u << v)) lits.push_back(aig::lit_not(leaves[v]));
    }
    terms.push_back(and_multi(std::move(lits)));
  }
  if (terms.empty()) return aig::kLitFalse;
  // OR via De Morgan.
  std::vector<Lit> inv;
  inv.reserve(terms.size());
  for (Lit t : terms) inv.push_back(aig::lit_not(t));
  return aig::lit_not(and_multi(std::move(inv)));
}

}  // namespace

Tt cube_tt(const Cube& c, int nvars) {
  Tt t = tt_mask(nvars);
  for (int v = 0; v < nvars; ++v) {
    if (c.pos & (1u << v)) t &= aig::tt_var(v);
    if (c.neg & (1u << v)) t &= ~aig::tt_var(v);
  }
  return t & tt_mask(nvars);
}

Tt sop_tt(const std::vector<Cube>& cubes, int nvars) {
  Tt t = 0;
  for (const Cube& c : cubes) t |= cube_tt(c, nvars);
  return t & tt_mask(nvars);
}

std::vector<Cube> isop(Tt lower, Tt upper, int nvars) {
  HOGA_CHECK(nvars >= 0 && nvars <= aig::kMaxTtVars, "isop: bad nvars");
  HOGA_CHECK((lower & ~upper & tt_mask(nvars)) == 0,
             "isop: lower not contained in upper");
  if (nvars == 0) {
    if ((lower & 1) == 0) return {};
    return {Cube{}};
  }
  return isop_rec(lower, upper, nvars, nvars);
}

int sop_gate_upper_bound(const std::vector<Cube>& cubes) {
  if (cubes.empty()) return 0;
  int gates = static_cast<int>(cubes.size()) - 1;
  for (const Cube& c : cubes) {
    const int lits = std::popcount(static_cast<unsigned>(c.pos)) +
                     std::popcount(static_cast<unsigned>(c.neg));
    gates += std::max(0, lits - 1);
  }
  return gates;
}

Lit build_sop(Aig& dst, const std::vector<Cube>& cubes,
              const std::vector<Lit>& leaves) {
  return generic_sop(cubes, leaves,
                     [&dst](Lit a, Lit b) { return dst.add_and(a, b); });
}

int count_new_nodes_sop(const Aig& dst, const std::vector<Cube>& cubes,
                        const std::vector<Lit>& leaves) {
  // Dry run: virtual node ids start beyond the real id space, and a local
  // hash table plays the role of the strash for nodes that would be new.
  std::unordered_map<std::uint64_t, Lit> virt;
  Lit next_virtual =
      aig::make_lit(static_cast<aig::NodeId>(dst.num_nodes()), false);
  int created = 0;
  auto and_fn = [&](Lit a, Lit b) -> Lit {
    if (a == aig::kLitFalse || b == aig::kLitFalse) return aig::kLitFalse;
    if (a == aig::kLitTrue) return b;
    if (b == aig::kLitTrue) return a;
    if (a == b) return a;
    if (a == aig::lit_not(b)) return aig::kLitFalse;
    const Lit real = dst.find_and(a, b);
    if (real != Aig::kNoLit) return real;
    Lit lo = a, hi = b;
    if (lo > hi) std::swap(lo, hi);
    const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
    auto it = virt.find(key);
    if (it != virt.end()) return it->second;
    const Lit v = next_virtual;
    next_virtual += 2;
    ++created;
    virt.emplace(key, v);
    return v;
  };
  generic_sop(cubes, leaves, and_fn);
  return created;
}

Lit build_function(Aig& dst, Tt tt, int nvars,
                   const std::vector<Lit>& leaves) {
  HOGA_CHECK(static_cast<int>(leaves.size()) == nvars,
             "build_function: leaves/nvars mismatch");
  const Tt mask = tt_mask(nvars);
  tt &= mask;
  const auto pos_cubes = isop(tt, tt, nvars);
  const Tt neg = ~tt & mask;
  const auto neg_cubes = isop(neg, neg, nvars);
  const int pos_cost = count_new_nodes_sop(dst, pos_cubes, leaves);
  const int neg_cost = count_new_nodes_sop(dst, neg_cubes, leaves);
  if (neg_cost < pos_cost) {
    return aig::lit_not(build_sop(dst, neg_cubes, leaves));
  }
  return build_sop(dst, pos_cubes, leaves);
}

}  // namespace hoga::synth
