#pragma once
// Network reconstruction utilities: structural hashing with dead-code
// elimination ("strash" in ABC terms). Every synthesis pass in this library
// returns a freshly reconstructed AIG, which keeps invariants simple
// (topological node order, no dangling logic).

#include "aig/aig.hpp"

namespace hoga::synth {

/// Copies `src` keeping only logic reachable from POs, with structural
/// hashing (merges duplicated nodes). PIs are preserved in order even when
/// unused. Also the "strash" recipe pass.
aig::Aig strash(const aig::Aig& src);

/// Like strash but also returns the node mapping old-id -> new-lit
/// (Aig::kNoLit for removed nodes). Passes that must carry node labels
/// across reconstruction (tech mapping in the reasoning flow) use this.
aig::Aig strash_with_map(const aig::Aig& src, std::vector<aig::Lit>* old_to_new);

}  // namespace hoga::synth
