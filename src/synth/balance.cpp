#include "synth/balance.hpp"

#include <algorithm>
#include <queue>

namespace hoga::synth {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

Aig balance(const Aig& src) {
  const auto live = src.reachable_from_pos();
  // Fanout counts restricted to live logic (and PO references).
  std::vector<int> fanout(static_cast<std::size_t>(src.num_nodes()), 0);
  // complemented_use[i]: some live consumer uses node i through an inverted
  // edge, so the node must be materialized (cannot be dissolved into a tree).
  std::vector<bool> complemented_use(static_cast<std::size_t>(src.num_nodes()),
                                     false);
  for (NodeId id = 0; id < static_cast<NodeId>(src.num_nodes()); ++id) {
    if (!src.is_and(id) || !live[id]) continue;
    const auto& n = src.node(id);
    for (Lit f : {n.fanin0, n.fanin1}) {
      fanout[aig::lit_node(f)]++;
      if (aig::lit_is_compl(f)) complemented_use[aig::lit_node(f)] = true;
    }
  }
  for (Lit po : src.pos()) {
    fanout[aig::lit_node(po)]++;
    if (aig::lit_is_compl(po)) complemented_use[aig::lit_node(po)] = true;
  }

  auto is_root = [&](NodeId id) {
    return src.is_and(id) && live[id] &&
           (fanout[id] != 1 || complemented_use[id]);
  };
  // A PO-referenced node with fanout 1 (the PO itself) is a root too; the
  // fanout counting above already gives POs weight, so fanout==1 +
  // non-complemented single use by an AND is the only dissolvable case.
  std::vector<bool> po_ref(static_cast<std::size_t>(src.num_nodes()), false);
  for (Lit po : src.pos()) po_ref[aig::lit_node(po)] = true;

  Aig dst;
  std::vector<int> lvl;
  lvl.push_back(0);  // const-0
  std::vector<Lit> map(static_cast<std::size_t>(src.num_nodes()), Aig::kNoLit);
  map[0] = aig::kLitFalse;
  for (NodeId pi : src.pis()) {
    map[pi] = dst.add_pi();
    lvl.push_back(0);
  }
  auto bal_and = [&](Lit a, Lit b) -> Lit {
    const std::int64_t before = dst.num_nodes();
    const Lit r = dst.add_and(a, b);
    if (dst.num_nodes() > before) {
      lvl.push_back(1 + std::max(lvl[aig::lit_node(a)],
                                 lvl[aig::lit_node(b)]));
    }
    return r;
  };

  // Collects the leaf literals of the maximal AND tree rooted at `id`:
  // expand a fanin when it is a plain (non-complemented) edge to a live AND
  // node that is not itself a root.
  auto collect_leaves = [&](NodeId id, std::vector<Lit>& out) {
    std::vector<NodeId> stack{id};
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      const auto& n = src.node(cur);
      for (Lit f : {n.fanin0, n.fanin1}) {
        const NodeId fid = aig::lit_node(f);
        if (!aig::lit_is_compl(f) && src.is_and(fid) && !is_root(fid) &&
            !po_ref[fid]) {
          stack.push_back(fid);
        } else {
          out.push_back(f);
        }
      }
    }
  };

  for (NodeId id = 0; id < static_cast<NodeId>(src.num_nodes()); ++id) {
    if (!src.is_and(id) || !live[id]) continue;
    if (!is_root(id) && !po_ref[id]) continue;
    std::vector<Lit> leaves;
    collect_leaves(id, leaves);
    // Map leaves into dst and combine the two shallowest first (Huffman by
    // level) to minimize tree depth.
    using Item = std::pair<int, Lit>;  // (level, literal)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    bool is_const0 = false;
    for (Lit leaf : leaves) {
      const Lit m = map[aig::lit_node(leaf)];
      HOGA_CHECK(m != Aig::kNoLit, "balance: leaf unmapped");
      const Lit ml = aig::lit_not_if(m, aig::lit_is_compl(leaf));
      if (ml == aig::kLitFalse) {
        is_const0 = true;
        break;
      }
      if (ml == aig::kLitTrue) continue;
      pq.emplace(lvl[aig::lit_node(ml)], ml);
    }
    Lit result;
    if (is_const0) {
      result = aig::kLitFalse;
    } else if (pq.empty()) {
      result = aig::kLitTrue;
    } else {
      while (pq.size() > 1) {
        const Lit a = pq.top().second;
        pq.pop();
        const Lit b = pq.top().second;
        pq.pop();
        const Lit r = bal_and(a, b);
        if (r == aig::kLitFalse) {
          is_const0 = true;
          break;
        }
        if (r == aig::kLitTrue) continue;
        pq.emplace(lvl[aig::lit_node(r)], r);
      }
      result = is_const0 ? aig::kLitFalse
               : pq.empty() ? aig::kLitTrue
                            : pq.top().second;
    }
    map[id] = result;
  }
  for (Lit po : src.pos()) {
    const Lit m = map[aig::lit_node(po)];
    HOGA_CHECK(m != Aig::kNoLit, "balance: PO unmapped");
    dst.add_po(aig::lit_not_if(m, aig::lit_is_compl(po)));
  }
  return dst;
}

}  // namespace hoga::synth
