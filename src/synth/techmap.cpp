#include "synth/techmap.hpp"

#include <algorithm>

#include "aig/cuts.hpp"
#include "synth/isop.hpp"
#include "synth/rebuild.hpp"
#include "util/rng.hpp"

namespace hoga::synth {

using aig::Aig;
using aig::Cut;
using aig::Lit;
using aig::NodeId;
using aig::Tt;

Aig tech_map(const Aig& src, const TechMapParams& params) {
  const auto cuts = aig::enumerate_cuts(
      src, {.k = params.lut_size, .max_cuts = params.max_cuts});
  const std::int64_t n = src.num_nodes();

  // Depth-optimal cut selection (arrival time = LUT levels).
  std::vector<int> arrival(static_cast<std::size_t>(n), 0);
  std::vector<int> best_cut(static_cast<std::size_t>(n), -1);
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    if (!src.is_and(id)) continue;
    int best_arr = -1, best_size = 0, best_idx = -1;
    const auto& node_cuts = cuts[id];
    for (std::size_t ci = 0; ci < node_cuts.size(); ++ci) {
      const Cut& cut = node_cuts[ci];
      if (cut.leaves.empty()) continue;
      // Skip the trivial self cut.
      if (cut.size() == 1 && cut.leaves[0] == id) continue;
      int arr = 0;
      for (NodeId leaf : cut.leaves) arr = std::max(arr, arrival[leaf]);
      arr += 1;
      if (best_idx < 0 || arr < best_arr ||
          (arr == best_arr && cut.size() < best_size)) {
        best_arr = arr;
        best_size = cut.size();
        best_idx = static_cast<int>(ci);
      }
    }
    HOGA_CHECK(best_idx >= 0, "tech_map: node without usable cut");
    arrival[id] = best_arr;
    best_cut[id] = best_idx;
  }

  // Cover from the POs.
  std::vector<bool> needed(static_cast<std::size_t>(n), false);
  std::vector<NodeId> stack;
  for (Lit po : src.pos()) {
    const NodeId id = aig::lit_node(po);
    if (src.is_and(id) && !needed[id]) {
      needed[id] = true;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Cut& cut = cuts[id][static_cast<std::size_t>(best_cut[id])];
    for (NodeId leaf : cut.leaves) {
      if (src.is_and(leaf) && !needed[leaf]) {
        needed[leaf] = true;
        stack.push_back(leaf);
      }
    }
  }

  // Rebuild: each needed LUT is re-decomposed with a permuted variable
  // order and a pseudo-random output phase. The permutation/phase are
  // derived from the LUT *function*, not from visit order, so a given cell
  // always decomposes the same way — like a real technology library — and
  // local patterns recur across circuit sizes.
  Aig dst;
  std::vector<Lit> map(static_cast<std::size_t>(n), Aig::kNoLit);
  map[0] = aig::kLitFalse;
  for (NodeId pi : src.pis()) map[pi] = dst.add_pi();
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    if (!needed[id]) continue;
    const Cut& cut = cuts[id][static_cast<std::size_t>(best_cut[id])];
    const int nv = cut.size();
    Rng rng(params.seed ^ (cut.tt * 0x9e3779b97f4a7c15ULL) ^
            static_cast<std::uint64_t>(nv));
    // Function-determined permutation of cut leaves.
    std::vector<std::size_t> perm_idx(static_cast<std::size_t>(nv));
    for (std::size_t i = 0; i < perm_idx.size(); ++i) perm_idx[i] = i;
    rng.shuffle(perm_idx);
    std::vector<NodeId> perm(static_cast<std::size_t>(nv));
    for (std::size_t i = 0; i < perm.size(); ++i) {
      perm[i] = cut.leaves[perm_idx[i]];
    }
    Tt tt = aig::tt_expand(cut.tt, cut.leaves, perm);
    std::vector<Lit> leaf_lits;
    leaf_lits.reserve(static_cast<std::size_t>(nv));
    for (NodeId leaf : perm) {
      HOGA_CHECK(map[leaf] != Aig::kNoLit, "tech_map: leaf unmapped");
      leaf_lits.push_back(map[leaf]);
    }
    const bool flip = rng.bernoulli(0.5);
    if (flip) tt = aig::tt_not(tt, nv);
    const auto cubes = isop(tt, tt, nv);
    Lit r = build_sop(dst, cubes, leaf_lits);
    if (flip) r = aig::lit_not(r);
    map[id] = r;
  }
  for (Lit po : src.pos()) {
    const Lit m = map[aig::lit_node(po)];
    HOGA_CHECK(m != Aig::kNoLit, "tech_map: PO unmapped");
    dst.add_po(aig::lit_not_if(m, aig::lit_is_compl(po)));
  }
  return strash(dst);
}

}  // namespace hoga::synth
