#pragma once
// Technology-mapping substitute (DESIGN.md §1): k-LUT covering with
// depth-oriented cut selection followed by randomized re-decomposition of
// every LUT back into AND-inverter logic.
//
// In the paper, ASAP-7nm technology mapping makes Gamora's functional
// reasoning hard because it destroys the pristine adder-tree structure while
// preserving function. This pass has exactly that effect: node boundaries
// move to LUT cut boundaries and each LUT is rebuilt with a permuted
// variable order and a randomly chosen output phase.

#include "aig/aig.hpp"

namespace hoga::synth {

struct TechMapParams {
  int lut_size = 4;
  int max_cuts = 8;
  /// Seed for the per-LUT re-decomposition randomization.
  std::uint64_t seed = 0x7ea7u;
};

aig::Aig tech_map(const aig::Aig& src, const TechMapParams& params = {});

}  // namespace hoga::synth
