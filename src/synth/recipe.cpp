#include "synth/recipe.hpp"

#include <sstream>

#include "synth/balance.hpp"
#include "synth/rebuild.hpp"
#include "synth/rewrite.hpp"

namespace hoga::synth {

const char* pass_name(Pass p) {
  switch (p) {
    case Pass::kBalance: return "balance";
    case Pass::kRewrite: return "rewrite";
    case Pass::kRewriteZ: return "rewrite -z";
    case Pass::kRefactor: return "refactor";
    case Pass::kRefactorZ: return "refactor -z";
    case Pass::kResub: return "resub";
    case Pass::kStrash: return "strash";
  }
  return "?";
}

aig::Aig apply_pass(const aig::Aig& src, Pass p) {
  switch (p) {
    case Pass::kBalance: return balance(src);
    case Pass::kRewrite: return rewrite(src, false);
    case Pass::kRewriteZ: return rewrite(src, true);
    case Pass::kRefactor: return refactor(src, false);
    case Pass::kRefactorZ: return refactor(src, true);
    case Pass::kResub: return resub(src);
    case Pass::kStrash: return strash(src);
  }
  HOGA_CHECK(false, "apply_pass: unknown pass");
}

Recipe Recipe::random(Rng& rng, int length) {
  Recipe r;
  r.passes.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    r.passes.push_back(
        static_cast<Pass>(rng.uniform_int(kNumPassKinds)));
  }
  return r;
}

Recipe Recipe::resyn2() {
  // ABC resyn2: b; rw; rf; b; rw; rwz; b; rfz; rwz; b
  return Recipe{{Pass::kBalance, Pass::kRewrite, Pass::kRefactor,
                 Pass::kBalance, Pass::kRewrite, Pass::kRewriteZ,
                 Pass::kBalance, Pass::kRefactorZ, Pass::kRewriteZ,
                 Pass::kBalance}};
}

std::string Recipe::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < passes.size(); ++i) {
    if (i) os << "; ";
    os << pass_name(passes[i]);
  }
  return os.str();
}

std::vector<std::int64_t> Recipe::token_ids() const {
  std::vector<std::int64_t> out;
  out.reserve(passes.size());
  for (Pass p : passes) out.push_back(static_cast<std::int64_t>(p));
  return out;
}

RecipeResult run_recipe(const aig::Aig& src, const Recipe& recipe) {
  RecipeResult result;
  result.optimized = strash(src);
  result.and_counts.reserve(recipe.passes.size());
  for (Pass p : recipe.passes) {
    result.optimized = apply_pass(result.optimized, p);
    result.and_counts.push_back(result.optimized.num_ands());
  }
  return result;
}

}  // namespace hoga::synth
