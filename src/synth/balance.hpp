#pragma once
// Depth-oriented AND-tree balancing (ABC's `balance`): maximal single-rail
// AND trees are collected and rebuilt as level-sorted balanced trees.

#include "aig/aig.hpp"

namespace hoga::synth {

/// Rebuilds `src` with every maximal AND tree balanced by level. Functionally
/// equivalent; typically reduces depth, sometimes gate count (via hashing).
aig::Aig balance(const aig::Aig& src);

}  // namespace hoga::synth
