#include "synth/rewrite.hpp"

#include "synth/isop.hpp"
#include "synth/rebuild.hpp"

namespace hoga::synth {

using aig::Aig;
using aig::Cut;
using aig::Lit;
using aig::NodeId;
using aig::Tt;

Aig resynthesize(const Aig& src, const ResynParams& params) {
  const auto cuts = aig::enumerate_cuts(
      src, {.k = params.cut_size, .max_cuts = params.max_cuts});
  const auto live = src.reachable_from_pos();

  Aig dst;
  std::vector<Lit> map(static_cast<std::size_t>(src.num_nodes()), Aig::kNoLit);
  map[0] = aig::kLitFalse;
  for (NodeId pi : src.pis()) map[pi] = dst.add_pi();

  for (NodeId id = 0; id < static_cast<NodeId>(src.num_nodes()); ++id) {
    if (!src.is_and(id) || !live[id]) continue;
    const auto& n = src.node(id);
    const Lit d0 = map[aig::lit_node(n.fanin0)];
    const Lit d1 = map[aig::lit_node(n.fanin1)];
    HOGA_CHECK(d0 != Aig::kNoLit && d1 != Aig::kNoLit,
               "resynthesize: fanin unmapped");
    const Lit c0 = aig::lit_not_if(d0, aig::lit_is_compl(n.fanin0));
    const Lit c1 = aig::lit_not_if(d1, aig::lit_is_compl(n.fanin1));
    // Baseline: direct copy (free if the gate already exists in dst).
    int best_cost = dst.find_and(c0, c1) != Aig::kNoLit ? 0 : 1;
    enum class Choice { kCopy, kSopPos, kSopNeg };
    Choice best_choice = Choice::kCopy;
    std::vector<Cube> best_cubes;
    std::vector<Lit> best_leaves;

    for (const Cut& cut : cuts[id]) {
      const int nv = cut.size();
      if (nv < 2 || (nv == 1 && cut.leaves[0] == id)) continue;
      if (nv == 1) continue;  // trivial self cut
      bool leaves_ok = true;
      std::vector<Lit> leaf_lits;
      leaf_lits.reserve(static_cast<std::size_t>(nv));
      for (NodeId leaf : cut.leaves) {
        if (leaf == id || map[leaf] == Aig::kNoLit) {
          leaves_ok = false;
          break;
        }
        leaf_lits.push_back(map[leaf]);
      }
      if (!leaves_ok) continue;
      const Tt mask = aig::tt_mask(nv);
      const Tt f = cut.tt & mask;
      const auto pos = isop(f, f, nv);
      const auto neg = isop(~f & mask, ~f & mask, nv);
      const int pos_cost = count_new_nodes_sop(dst, pos, leaf_lits);
      const int neg_cost = count_new_nodes_sop(dst, neg, leaf_lits);
      if (pos_cost < best_cost ||
          (params.zero_cost && pos_cost == best_cost &&
           best_choice == Choice::kCopy)) {
        best_cost = pos_cost;
        best_choice = Choice::kSopPos;
        best_cubes = pos;
        best_leaves = leaf_lits;
      }
      if (neg_cost < best_cost) {
        best_cost = neg_cost;
        best_choice = Choice::kSopNeg;
        best_cubes = neg;
        best_leaves = leaf_lits;
      }
    }

    switch (best_choice) {
      case Choice::kCopy:
        map[id] = dst.add_and(c0, c1);
        break;
      case Choice::kSopPos:
        map[id] = build_sop(dst, best_cubes, best_leaves);
        break;
      case Choice::kSopNeg:
        map[id] = aig::lit_not(build_sop(dst, best_cubes, best_leaves));
        break;
    }
  }
  for (Lit po : src.pos()) {
    const Lit m = map[aig::lit_node(po)];
    HOGA_CHECK(m != Aig::kNoLit, "resynthesize: PO unmapped");
    dst.add_po(aig::lit_not_if(m, aig::lit_is_compl(po)));
  }
  // Bypassed intermediates may be dead; clean them up.
  return strash(dst);
}

}  // namespace hoga::synth
