#include "models/graphsage.hpp"

#include "graph/transpose_cache.hpp"

namespace hoga::models {

GraphSage::GraphSage(const SageConfig& config, Rng& rng) : config_(config) {
  HOGA_CHECK(config.num_layers >= 1, "GraphSage: need at least one layer");
  for (int l = 0; l < config.num_layers; ++l) {
    const std::int64_t in = l == 0 ? config.in_dim : config.hidden;
    const std::int64_t out =
        l == config.num_layers - 1 ? config.out_dim : config.hidden;
    auto self_layer = std::make_shared<nn::Linear>(in, out, rng);
    auto neigh_layer = std::make_shared<nn::Linear>(in, out, rng,
                                                    /*bias=*/false);
    register_module("self" + std::to_string(l), self_layer);
    register_module("neigh" + std::to_string(l), neigh_layer);
    self_layers_.push_back(std::move(self_layer));
    neigh_layers_.push_back(std::move(neigh_layer));
  }
}

ag::Variable GraphSage::forward(
    std::shared_ptr<const graph::Csr> adj_row, const ag::Variable& x,
    Rng& rng, std::shared_ptr<const graph::Csr> adj_row_t) const {
  if (!adj_row_t) {
    adj_row_t = graph::TransposeCache::global().get(adj_row);
  }
  ag::Variable h = x;
  for (std::size_t l = 0; l < self_layers_.size(); ++l) {
    const ag::Variable neigh_mean = graph::spmm(adj_row, h, adj_row_t);
    ag::Variable next = ag::add(self_layers_[l]->forward(h),
                                neigh_layers_[l]->forward(neigh_mean));
    if (l + 1 < self_layers_.size()) {
      next = ag::relu(next);
      if (config_.dropout > 0.f) {
        next = ag::dropout(next, config_.dropout, rng, training());
      }
    }
    h = next;
  }
  return h;
}

ag::Variable GraphSage::forward_eval(
    std::shared_ptr<const graph::Csr> adj_row, const ag::Variable& x,
    std::shared_ptr<const graph::Csr> adj_row_t) const {
  if (!adj_row_t) {
    adj_row_t = graph::TransposeCache::global().get(adj_row);
  }
  ag::Variable h = x;
  for (std::size_t l = 0; l < self_layers_.size(); ++l) {
    const ag::Variable neigh_mean = graph::spmm(adj_row, h, adj_row_t);
    ag::Variable next = ag::add(self_layers_[l]->forward(h),
                                neigh_layers_[l]->forward(neigh_mean));
    if (l + 1 < self_layers_.size()) next = ag::relu(next);
    h = next;
  }
  return h;
}

}  // namespace hoga::models
