#include "models/saint.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace hoga::models {

SaintTrainer::SaintTrainer(const SaintConfig& config,
                           const graph::Csr& adj_raw, Rng& rng)
    : config_(config),
      sampler_(adj_raw, config.walk_roots, config.walk_length) {
  sampler_.estimate_norms(rng, config.norm_estimation_runs);
}

float SaintTrainer::step(Gcn& model, optim::Adam& opt, const Tensor& x,
                         const std::vector<int>& labels, Rng& rng) {
  const graph::SaintSample sample = sampler_.sample(rng);
  // Subgraph inputs.
  const Tensor sub_x = tensor_ops::gather_rows(x, sample.nodes);
  std::vector<int> sub_labels;
  sub_labels.reserve(sample.nodes.size());
  for (std::int64_t v : sample.nodes) {
    sub_labels.push_back(labels[static_cast<std::size_t>(v)]);
  }
  auto sub_adj = std::make_shared<const graph::Csr>(
      sample.subgraph.normalized_symmetric(1.f));

  opt.zero_grad();
  ag::Variable logits = model.forward(sub_adj, ag::constant(sub_x), rng);
  // GraphSAINT loss normalization: weight node losses by 1/p_v. Implemented
  // by scaling per-node gradients through a weighted cross entropy — here we
  // reweight by duplicating the per-sample weights into the loss.
  // softmax_cross_entropy supports class weights only, so apply node weights
  // by scaling the logits' gradient: equivalently compute the loss per node
  // and sum with weights. For simplicity and fidelity we use a weighted
  // mean via masking: replicate using per-class weight trick is not exact,
  // so we implement the weighted loss directly here.
  const std::int64_t n = logits.size(0);
  const std::int64_t c = logits.size(1);
  Tensor probs = tensor_ops::softmax_lastdim(logits.value());
  double total_w = 0, loss_acc = 0;
  Tensor grad({n, c});
  for (std::int64_t i = 0; i < n; ++i) {
    const float w = sample.node_weight[static_cast<std::size_t>(i)];
    total_w += w;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = sub_labels[static_cast<std::size_t>(i)];
    const float w = sample.node_weight[static_cast<std::size_t>(i)];
    const float* prow = probs.data() + i * c;
    float* grow = grad.data() + i * c;
    loss_acc -= w * std::log(std::max(1e-12f, prow[y]));
    for (std::int64_t j = 0; j < c; ++j) {
      grow[j] = w * prow[j] / static_cast<float>(total_w);
    }
    grow[y] -= w / static_cast<float>(total_w);
  }
  logits.backward(grad);
  opt.step();
  return static_cast<float>(loss_acc / total_w);
}

}  // namespace hoga::models
