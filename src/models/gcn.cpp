#include "models/gcn.hpp"

namespace hoga::models {

Gcn::Gcn(const GcnConfig& config, Rng& rng) : config_(config) {
  HOGA_CHECK(config.num_layers >= 1, "Gcn: need at least one layer");
  for (int l = 0; l < config.num_layers; ++l) {
    const std::int64_t in = l == 0 ? config.in_dim : config.hidden;
    const std::int64_t out =
        l == config.num_layers - 1 ? config.out_dim : config.hidden;
    auto layer = std::make_shared<nn::Linear>(in, out, rng);
    register_module("layer" + std::to_string(l), layer);
    layers_.push_back(std::move(layer));
  }
}

ag::Variable Gcn::forward_repr(std::shared_ptr<const graph::Csr> adj,
                               const ag::Variable& x, Rng& rng) const {
  ag::Variable h = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    h = graph::spmm(adj, layers_[l]->forward(h), adj);  // Â symmetric
    h = ag::relu(h);
    if (config_.dropout > 0.f) {
      h = ag::dropout(h, config_.dropout, rng, training());
    }
  }
  return h;
}

ag::Variable Gcn::forward(std::shared_ptr<const graph::Csr> adj,
                          const ag::Variable& x, Rng& rng) const {
  ag::Variable h = forward_repr(adj, x, rng);
  return graph::spmm(adj, layers_.back()->forward(h), adj);
}

ag::Variable Gcn::forward_eval(std::shared_ptr<const graph::Csr> adj,
                               const ag::Variable& x) const {
  ag::Variable h = x;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    h = ag::relu(graph::spmm(adj, layers_[l]->forward(h), adj));
  }
  return graph::spmm(adj, layers_.back()->forward(h), adj);
}

}  // namespace hoga::models
