#pragma once
// GraphSAINT baseline (Zeng et al.): a GCN trained on random-walk sampled
// subgraphs with inclusion-probability loss normalization. The paper's
// §II-A/§IV-C argument — graph sampling breaks circuit functionality and
// hurts accuracy — is reproduced by this exact training procedure.

#include <memory>

#include "graph/sampler.hpp"
#include "models/gcn.hpp"
#include "optim/optim.hpp"

namespace hoga::models {

struct SaintConfig {
  GcnConfig gcn;
  std::int64_t walk_roots = 512;
  std::int64_t walk_length = 4;
  int norm_estimation_runs = 20;
};

/// Trains a Gcn on sampled subgraphs of (adj_raw, x, labels); one step =
/// one sampled subgraph. Inference runs full-graph like a normal GCN.
class SaintTrainer {
 public:
  SaintTrainer(const SaintConfig& config, const graph::Csr& adj_raw, Rng& rng);

  /// One training step on a fresh subgraph; returns the weighted loss.
  float step(Gcn& model, optim::Adam& opt, const Tensor& x,
             const std::vector<int>& labels, Rng& rng);

 private:
  SaintConfig config_;
  graph::RandomWalkSampler sampler_;
};

}  // namespace hoga::models
