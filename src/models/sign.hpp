#pragma once
// SIGN baseline (Frasca et al.): an MLP over concatenated hop-wise features.
// Shares HOGA's phase-1 precomputation but replaces the gated self-attention
// with plain feature concatenation — the paper's ablation-by-baseline for
// "does hop-wise attention matter" (Figure 6).

#include <memory>

#include "core/hop_features.hpp"
#include "nn/layers.hpp"

namespace hoga::models {

struct SignConfig {
  std::int64_t in_dim = 0;  // raw feature width d0
  std::int64_t hidden = 64;
  std::int64_t out_dim = 4;
  int num_hops = 5;
  int mlp_layers = 3;
  float dropout = 0.f;
};

class Sign : public nn::Module {
 public:
  Sign(const SignConfig& config, Rng& rng);

  /// flat_feats: [B, (K+1)*d0] from HopFeatures::flat() (optionally row
  /// batched) -> logits [B, out_dim].
  ag::Variable forward(const ag::Variable& flat_feats, Rng& rng) const;

  /// Inference-only forward: no dropout, no RNG, no reads of the mutable
  /// train/eval flag — reentrant for concurrent serving.
  ag::Variable forward_eval(const ag::Variable& flat_feats) const;

  const SignConfig& config() const { return config_; }

 private:
  SignConfig config_;
  std::shared_ptr<nn::Mlp> mlp_;
};

}  // namespace hoga::models
