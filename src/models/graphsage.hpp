#pragma once
// GraphSAGE baseline (Hamilton et al.) with mean aggregation, the model
// Gamora uses for functional reasoning (paper Figure 6).

#include <memory>
#include <vector>

#include "graph/spmm_op.hpp"
#include "nn/layers.hpp"

namespace hoga::models {

struct SageConfig {
  std::int64_t in_dim = 0;
  std::int64_t hidden = 64;
  std::int64_t out_dim = 4;
  int num_layers = 4;
  float dropout = 0.f;
};

class GraphSage : public nn::Module {
 public:
  GraphSage(const SageConfig& config, Rng& rng);

  /// `adj_row` must be the row-normalized adjacency D^-1 A (mean aggregator).
  /// `adj_row_t` is its transpose (pass null to compute internally).
  ag::Variable forward(std::shared_ptr<const graph::Csr> adj_row,
                       const ag::Variable& x, Rng& rng,
                       std::shared_ptr<const graph::Csr> adj_row_t =
                           nullptr) const;

  /// Inference-only forward: no dropout, no RNG, no reads of the mutable
  /// train/eval flag — reentrant for concurrent serving.
  ag::Variable forward_eval(std::shared_ptr<const graph::Csr> adj_row,
                            const ag::Variable& x,
                            std::shared_ptr<const graph::Csr> adj_row_t =
                                nullptr) const;

  const SageConfig& config() const { return config_; }

 private:
  SageConfig config_;
  std::vector<std::shared_ptr<nn::Linear>> self_layers_;
  std::vector<std::shared_ptr<nn::Linear>> neigh_layers_;
};

}  // namespace hoga::models
