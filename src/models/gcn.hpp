#pragma once
// GCN baseline (Kipf & Welling), the model OpenABC-D uses for QoR
// prediction (paper Table 2, 5 layers).

#include <memory>
#include <vector>

#include "graph/spmm_op.hpp"
#include "nn/layers.hpp"

namespace hoga::models {

struct GcnConfig {
  std::int64_t in_dim = 0;
  std::int64_t hidden = 64;
  std::int64_t out_dim = 1;
  int num_layers = 5;
  float dropout = 0.f;
};

class Gcn : public nn::Module {
 public:
  Gcn(const GcnConfig& config, Rng& rng);

  /// Full-graph forward: X' = Â relu(... Â X W ...) W, logits on every node.
  /// `adj` must be the symmetric-normalized adjacency.
  ag::Variable forward(std::shared_ptr<const graph::Csr> adj,
                       const ag::Variable& x, Rng& rng) const;

  /// Node representations before the last (output) layer.
  ag::Variable forward_repr(std::shared_ptr<const graph::Csr> adj,
                            const ag::Variable& x, Rng& rng) const;

  /// Inference-only forward: no dropout, no RNG, no reads of the mutable
  /// train/eval flag — reentrant for concurrent serving.
  ag::Variable forward_eval(std::shared_ptr<const graph::Csr> adj,
                            const ag::Variable& x) const;

  const GcnConfig& config() const { return config_; }

 private:
  GcnConfig config_;
  std::vector<std::shared_ptr<nn::Linear>> layers_;
};

}  // namespace hoga::models
