#include "models/sign.hpp"

namespace hoga::models {

Sign::Sign(const SignConfig& config, Rng& rng) : config_(config) {
  std::vector<std::int64_t> dims;
  dims.push_back((static_cast<std::int64_t>(config.num_hops) + 1) *
                 config.in_dim);
  for (int l = 0; l + 1 < config.mlp_layers; ++l) {
    dims.push_back(config.hidden);
  }
  dims.push_back(config.out_dim);
  mlp_ = std::make_shared<nn::Mlp>(dims, rng, config.dropout);
  register_module("mlp", mlp_);
}

ag::Variable Sign::forward(const ag::Variable& flat_feats, Rng& rng) const {
  // The MLP child tracks this module's train/eval flag through
  // Module::set_training's recursion — no per-forward toggle needed (a
  // toggle here would make concurrent eval calls race on the flag).
  return mlp_->forward(flat_feats, rng);
}

ag::Variable Sign::forward_eval(const ag::Variable& flat_feats) const {
  return mlp_->forward(flat_feats);
}

}  // namespace hoga::models
