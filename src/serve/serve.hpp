#pragma once
// hoga::serve — fault-tolerant in-process inference serving (DESIGN.md §8).
//
// HOGA's hop-wise decoupling (Eq. 3) makes per-request inference
// embarrassingly parallel: a request is just a hop-feature batch, so any
// number of requests can evaluate concurrently against one immutable model.
// This runtime adds the robustness layer a production deployment needs on
// top of that property:
//
//   - validated requests: every payload passes hoga::validate (shape, hop
//     count, NaN/Inf scan, size caps) before it can reach a kernel —
//     poisoned requests become kRejectedInvalid responses, never crashes
//     and never wrong answers;
//   - bounded admission queue with backpressure: when the executor queue is
//     full, requests are rejected immediately with a retry-after hint
//     instead of growing an unbounded backlog;
//   - per-request deadlines with cooperative cancellation: execution checks
//     the deadline between node batches; a request that cannot finish in
//     time returns kTimedOut at ~the deadline instead of hogging a worker;
//   - a circuit breaker: after `breaker_trip_failures` consecutive
//     failures/timeouts the breaker opens and requests take the degraded
//     ladder — a cached last-good result when available, otherwise the same
//     weights evaluated on a K-truncated hop prefix (cheaper, Eq. 3 makes
//     this legal) — until a half-open probe succeeds;
//   - ServeStats: every outcome is counted, and for a fixed fault schedule
//     the counts are deterministic (bench_serving proves it).
//
// Thread-safety: InferenceService is safe for concurrent infer() calls from
// any number of client threads. The model must not be trained concurrently
// (forward_eval shares the parameter tensors read-only).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "batch/batch.hpp"
#include "core/hoga_model.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/scrubber.hpp"
#include "util/threadpool.hpp"

namespace hoga::store {
class FeatureStore;
}

namespace hoga::serve {

struct ServeConfig {
  std::size_t workers = 2;           // executor threads
  std::size_t queue_capacity = 16;   // max queued (not yet running) requests
  std::int64_t max_request_nodes = 65536;  // request size cap (validation)
  std::int64_t node_batch = 1024;    // deadline-check granularity (nodes)
  double default_deadline_ms = 1000; // used when a request passes 0
  int breaker_trip_failures = 3;     // consecutive failures that open it
  double breaker_reset_ms = 100;     // open -> half-open probe delay
  int degraded_num_hops = 1;         // K' for the truncated fallback
  bool cache_last_good = true;       // enable the cached-result rung
  std::size_t cache_capacity = 1024; // last-good entries kept
  double retry_after_ms = 5;         // backpressure hint per queued request
  /// Optional hop-feature store (DESIGN.md §9), borrowed — must outlive the
  /// service. Raw-AIG requests consult it (keyed by the AIG's content
  /// digest) before running phase-1 featurization, turning repeated-circuit
  /// traffic into cache hits; null keeps the old recompute-per-request path.
  store::FeatureStore* feature_store = nullptr;
  /// Optional observability sinks (DESIGN.md §10), all borrowed and
  /// independent. `metrics` hosts the serve.* counters and histograms that
  /// back ServeStats; when null the service keeps a private registry, so
  /// stats work either way. `tracer` enables per-request spans
  /// (request/featurize/validate/admission/forward/degraded); when set, its
  /// clock also timestamps the serve.* histograms and ledger events, which
  /// is how the determinism tests get byte-identical output under a
  /// FakeClock. `ledger` receives one serve.request event per call.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::LedgerSink* ledger = nullptr;
  /// Background integrity scrubbing (DESIGN.md §12): when non-empty, the
  /// service owns a storage::Scrubber over these directories — typically
  /// the feature store's shard directory and the run ledger's segment
  /// directory — started in the constructor and stopped in the destructor.
  /// Corrupt files it finds are quarantined (renamed aside) when
  /// `scrub_quarantine` is set, and the verdicts are surfaced through
  /// health() alongside the circuit breaker.
  std::vector<std::string> scrub_directories;
  long long scrub_interval_ms = 200;
  bool scrub_quarantine = true;
  /// Coalescing batch scheduler (DESIGN.md §14). When set, validated
  /// requests are accumulated per priority lane and merged into one
  /// concatenated [ΣB, k+1, d0] forward — legal and bit-exact by HOGA's
  /// per-node independence (Eq. 3) — with deadline-aware batch close,
  /// per-tenant row quotas, and depth-proportional backpressure. The
  /// scheduler inherits the service's metrics/tracer/clock wiring; its
  /// `clock`/`metrics`/`tracer` fields here are ignored. Off by default:
  /// the per-request execution path is unchanged.
  bool batching = false;
  batch::BatchConfig batch;
};

/// One inference request: either a precomputed hop-feature batch
/// [B, k+1, d0] (k <= model K), or an AIG the service featurizes itself
/// (phase 1 runs on the calling thread). Exactly one input must be set.
struct Request {
  Tensor hop_batch;
  const aig::Aig* aig = nullptr;
  /// Per-request deadline; 0 uses ServeConfig::default_deadline_ms.
  double deadline_ms = 0;
  /// Non-zero enables the cached-last-good degraded rung for this request
  /// (the key identifies the logical query across retries).
  std::uint64_t cache_key = 0;
  /// Priority lane for the batching path (ignored when batching is off):
  /// interactive batches always drain before bulk ones.
  batch::Lane lane = batch::Lane::kInteractive;
  /// Tenant for admission quotas (0 = untenanted, quota-exempt). A tenant
  /// over its row budget gets kRejectedOverload with a refill-time
  /// retry_after_ms.
  std::uint64_t tenant_id = 0;
};

enum class Outcome {
  kServed,             // full model, within deadline
  kDegradedTruncated,  // breaker open: K-truncated hop prefix served
  kDegradedCached,     // breaker open: last-good cached result served
  kRejectedInvalid,    // failed validation (client error)
  kRejectedOverload,   // admission queue full (backpressure)
  kTimedOut,           // deadline expired before completion
  kFailed,             // internal execution error
};
const char* outcome_name(Outcome o);

struct Response {
  Outcome outcome = Outcome::kFailed;
  /// Head outputs [B, out_dim]; defined only for kServed / kDegraded*.
  Tensor output;
  std::string error;       // reason for rejected/failed outcomes
  double latency_ms = 0;   // request wall time as observed by the caller
  double retry_after_ms = 0;  // backpressure hint (kRejectedOverload only)
};

/// Outcome counters plus completed-request latencies. For a fixed request
/// sequence and fault schedule the counters are deterministic; latencies
/// are wall-clock and are reported separately.
struct ServeStats {
  long long submitted = 0;
  long long served = 0;
  long long degraded_truncated = 0;
  long long degraded_cached = 0;
  long long rejected_invalid = 0;
  long long rejected_overload = 0;
  long long timed_out = 0;
  long long failed = 0;
  long long breaker_trips = 0;
  /// Raw-AIG featurization resolved from / missed in the feature store
  /// (both zero when no store is configured or no AIG requests arrived).
  long long feature_cache_hits = 0;
  long long feature_cache_misses = 0;
  /// Batching-path outcomes (all zero when ServeConfig::batching is off):
  /// requests that went through the coalescing scheduler, coalesced
  /// forwards executed, and tenant-quota rejections (also counted in
  /// rejected_overload — this separates quota pressure from queue
  /// pressure).
  long long batched = 0;
  long long batches = 0;
  long long batch_quota_rejected = 0;
  std::vector<double> latencies_ms;  // kServed/kDegraded*/kTimedOut/kFailed

  long long degraded() const { return degraded_truncated + degraded_cached; }
  /// Latency percentile in ms over completed requests (q in [0, 100]).
  double latency_percentile(double q) const;
  /// The deterministic part, e.g. "served=9 degraded_truncated=1 ...".
  std::string counts_signature() const;
  /// Human-readable outcome table.
  std::string to_string() const;
};

/// The service's health signal: the circuit breaker's serving-side view
/// combined with the storage scrubber's data-integrity view, so operators
/// read both pressures from one place. Counters are zero when no scrub
/// directories are configured.
struct ServeHealth {
  bool breaker_open = false;      // requests are taking the degraded ladder
  long long scrub_passes = 0;     // completed background sweeps
  long long scrub_corrupt = 0;    // CRC-failed files found so far
  long long scrub_quarantined = 0;  // corrupt files renamed aside
  /// Degraded when either side is unhealthy: the breaker is open, or the
  /// scrubber has found (and possibly quarantined) corrupt state on disk.
  bool degraded() const { return breaker_open || scrub_corrupt > 0; }
};

class InferenceService {
 public:
  /// The service borrows `model`; it must outlive the service and must not
  /// be mutated (trained) while the service is live.
  InferenceService(const core::Hoga& model, ServeConfig config);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Serves one request, blocking until a terminal outcome. Never throws
  /// for bad input, overload, deadline, or execution failure — those are
  /// encoded in the Response. Safe from any number of threads.
  Response infer(const Request& request);

  ServeStats stats() const;
  void reset_stats();

  /// One-line latency report: the exact percentiles from the recorded
  /// latency vector plus, when a metrics registry is wired, the
  /// bucket-interpolated estimates from the "serve.latency_ms" obs
  /// histogram (Histogram::quantile) for cross-checking the two views:
  ///   "latency_ms exact p50=.. p95=.. p99=.. | hist p50=.. p95=.. p99=.."
  std::string latency_report() const;

  /// True while the circuit breaker is open (requests take the degraded
  /// ladder). Exposed for tests and the bench.
  bool breaker_open() const;

  /// Combined breaker + scrubber health snapshot (see ServeHealth).
  ServeHealth health() const;

  /// Runs one synchronous scrub sweep over the configured directories and
  /// returns the updated health. No-op (plain health()) when no scrub
  /// directories are configured. Exposed for tests and ops tooling that
  /// want a verdict now rather than at the next background tick.
  ServeHealth scrub_now();

  /// Requests admitted but not yet picked up by a worker (the admission
  /// queue depth that backpressure compares against queue_capacity).
  std::size_t queue_depth() const;

  /// Requests currently executing on a worker thread.
  std::size_t active_requests() const;

  /// The batch scheduler's own counters (close reasons, quota/depth
  /// rejections, occupancy); all-zero when batching is off.
  batch::BatchStats batch_stats() const;

  const ServeConfig& config() const { return config_; }

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  struct Job;

  Response execute_full(const Tensor& input,
                        std::chrono::steady_clock::time_point deadline,
                        std::uint64_t request_span_id);
  Response execute_batched(const Tensor& input, const Request& request,
                           std::chrono::steady_clock::time_point deadline,
                           double deadline_ms);
  Response execute_degraded(const Tensor& input, std::uint64_t cache_key,
                            std::chrono::steady_clock::time_point deadline);
  /// The scheduler's Forward: one coalesced [ΣB, k+1, d0] forward in
  /// node_batch chunks on the scheduler's executor thread.
  Tensor batched_forward(const Tensor& input) const;
  void record_result(Outcome outcome, double latency_ms, bool was_probe);
  void update_cache(std::uint64_t cache_key, const Tensor& output);

  const core::Hoga& model_;
  ServeConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<storage::Scrubber> scrubber_;  // set iff scrub dirs given
  std::unique_ptr<batch::BatchScheduler> scheduler_;  // set iff batching on
  /// EWMA of full-path forward execution time (worker-measured, ms); scales
  /// the kRejectedOverload retry hints so backoff tracks real service rate.
  /// shared_ptr: the pool workers outlive individual requests.
  std::shared_ptr<std::atomic<double>> ewma_forward_ms_;

  // ServeStats is re-based onto a metrics registry: the counters live in
  // config_.metrics (or this private registry when none is given) under
  // "serve.*" names, and stats() reconstructs the struct from the handles.
  // Signature semantics are unchanged; only the storage moved.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Clock* obs_clock_ = nullptr;
  struct ServeCounters {
    obs::Counter submitted, served, degraded_truncated, degraded_cached,
        rejected_invalid, rejected_overload, timed_out, failed, breaker_trips,
        feature_cache_hits, feature_cache_misses, deadline_missed;
    obs::Histogram latency_ms;     // obs-clock end-to-end request time
    obs::Histogram queue_wait_ms;  // obs-clock admission-to-worker-pickup
    obs::Histogram queue_depth;    // admission-queue depth seen per admit
  } c_;

  mutable std::mutex mu_;
  BreakerState breaker_ = BreakerState::kClosed;
  bool probe_in_flight_ = false;
  int consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point breaker_open_until_{};
  std::vector<double> latencies_ms_;  // wall-clock, kept out of the registry
  std::unordered_map<std::uint64_t, Tensor> cache_;
  std::vector<std::uint64_t> cache_order_;  // FIFO eviction
};

}  // namespace hoga::serve
