#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>

#include "autograd/ops.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "store/digest.hpp"
#include "store/feature_store.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"
#include "validate/validate.hpp"

namespace hoga::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

Response reject(Outcome outcome, std::string why) {
  Response r;
  r.outcome = outcome;
  r.error = std::move(why);
  return r;
}

/// Sleeps `ms` in ~1ms slices, returning early (false) once `cancel` is set.
/// Keeps injected slow-worker delays cooperative: a timed-out request stops
/// burning its worker at the next slice instead of after the full delay.
bool cooperative_sleep(double ms, const std::atomic<bool>& cancel) {
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  while (Clock::now() < until) {
    if (cancel.load(std::memory_order_relaxed)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// First k+1 hops of a [B, K+1, d] batch: [B, k+1, d]. Legal model input by
/// hop-wise decoupling (Eq. 3) — the degraded rung's cheaper evaluation.
Tensor truncate_hops(const Tensor& batch, int keep_hops) {
  const std::int64_t b = batch.size(0);
  const std::int64_t full = batch.size(1);
  const std::int64_t d = batch.size(2);
  const std::int64_t kept = std::min<std::int64_t>(keep_hops + 1, full);
  if (kept == full) return batch;
  Tensor out({b, kept, d});
  for (std::int64_t i = 0; i < b; ++i) {
    std::memcpy(out.data() + i * kept * d, batch.data() + i * full * d,
                static_cast<std::size_t>(kept * d) * sizeof(float));
  }
  return out;
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kDegradedTruncated: return "degraded_truncated";
    case Outcome::kDegradedCached: return "degraded_cached";
    case Outcome::kRejectedInvalid: return "rejected_invalid";
    case Outcome::kRejectedOverload: return "rejected_overload";
    case Outcome::kTimedOut: return "timed_out";
    case Outcome::kFailed: return "failed";
  }
  return "unknown";
}

double ServeStats::latency_percentile(double q) const {
  if (latencies_ms.empty()) return 0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

std::string ServeStats::counts_signature() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " served=" << served
     << " degraded_truncated=" << degraded_truncated
     << " degraded_cached=" << degraded_cached
     << " rejected_invalid=" << rejected_invalid
     << " rejected_overload=" << rejected_overload
     << " timed_out=" << timed_out << " failed=" << failed
     << " breaker_trips=" << breaker_trips
     << " feature_cache_hits=" << feature_cache_hits
     << " feature_cache_misses=" << feature_cache_misses
     << " batched=" << batched << " batches=" << batches
     << " batch_quota_rejected=" << batch_quota_rejected;
  return os.str();
}

std::string ServeStats::to_string() const {
  std::ostringstream os;
  os << counts_signature();
  if (!latencies_ms.empty()) {
    os << "\nlatency_ms p50=" << latency_percentile(50)
       << " p90=" << latency_percentile(90)
       << " p99=" << latency_percentile(99);
  }
  return os.str();
}

/// Per-request execution state, shared between the caller and the pool
/// worker. The shared_ptr keeps it alive when a timed-out caller returns
/// while the worker is still between cancellation checks.
struct InferenceService::Job {
  std::atomic<bool> cancel{false};
  Tensor output;
};

InferenceService::InferenceService(const core::Hoga& model, ServeConfig config)
    : model_(model), config_(config) {
  HOGA_CHECK(config_.workers > 0, "InferenceService: workers must be > 0");
  HOGA_CHECK(config_.node_batch > 0,
             "InferenceService: node_batch must be > 0");
  pool_ = std::make_unique<ThreadPool>(config_.workers);

  if (config_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(true);
  }
  metrics_ = config_.metrics ? config_.metrics : owned_metrics_.get();
  obs_clock_ = config_.tracer ? &config_.tracer->clock()
                              : &obs::SteadyClock::instance();
  c_.submitted = metrics_->counter("serve.submitted");
  c_.served = metrics_->counter("serve.served");
  c_.degraded_truncated = metrics_->counter("serve.degraded_truncated");
  c_.degraded_cached = metrics_->counter("serve.degraded_cached");
  c_.rejected_invalid = metrics_->counter("serve.rejected_invalid");
  c_.rejected_overload = metrics_->counter("serve.rejected_overload");
  c_.timed_out = metrics_->counter("serve.timed_out");
  c_.failed = metrics_->counter("serve.failed");
  c_.breaker_trips = metrics_->counter("serve.breaker_trips");
  c_.feature_cache_hits = metrics_->counter("serve.feature_cache_hits");
  c_.feature_cache_misses = metrics_->counter("serve.feature_cache_misses");
  c_.deadline_missed = metrics_->counter("serve.deadline_missed");
  c_.latency_ms =
      metrics_->histogram("serve.latency_ms", obs::latency_ms_bounds());
  c_.queue_wait_ms =
      metrics_->histogram("serve.queue_wait_ms", obs::latency_ms_bounds());
  c_.queue_depth = metrics_->histogram(
      "serve.queue_depth", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});

  if (!config_.scrub_directories.empty()) {
    storage::ScrubConfig sc;
    sc.directories = config_.scrub_directories;
    sc.quarantine = config_.scrub_quarantine;
    scrubber_ = std::make_unique<storage::Scrubber>(sc);
    scrubber_->start(config_.scrub_interval_ms);
  }

  ewma_forward_ms_ = std::make_shared<std::atomic<double>>(0.0);
  if (config_.batching) {
    batch::BatchConfig bc = config_.batch;
    // The scheduler shares the service's observability wiring so its
    // close decisions, spans, and counters land in the same registry and
    // stay deterministic under the same FakeClock.
    bc.clock = obs_clock_;
    bc.metrics = metrics_;
    bc.tracer = config_.tracer;
    scheduler_ = std::make_unique<batch::BatchScheduler>(
        bc, [this](const Tensor& input) { return batched_forward(input); });
  }
}

InferenceService::~InferenceService() {
  // Stop the scrubber before the pool so no sweep races service teardown.
  if (scrubber_) scrubber_->stop();
  // The scheduler drains (every admitted future resolves) before the model
  // reference can go away.
  scheduler_.reset();
}

ServeStats InferenceService::stats() const {
  ServeStats s;
  s.submitted = c_.submitted.value();
  s.served = c_.served.value();
  s.degraded_truncated = c_.degraded_truncated.value();
  s.degraded_cached = c_.degraded_cached.value();
  s.rejected_invalid = c_.rejected_invalid.value();
  s.rejected_overload = c_.rejected_overload.value();
  s.timed_out = c_.timed_out.value();
  s.failed = c_.failed.value();
  s.breaker_trips = c_.breaker_trips.value();
  s.feature_cache_hits = c_.feature_cache_hits.value();
  s.feature_cache_misses = c_.feature_cache_misses.value();
  if (scheduler_) {
    const batch::BatchStats b = scheduler_->stats();
    s.batched = b.submitted;
    s.batches = b.batches;
    s.batch_quota_rejected = b.rejected_quota;
  }
  std::lock_guard<std::mutex> lock(mu_);
  s.latencies_ms = latencies_ms_;
  return s;
}

batch::BatchStats InferenceService::batch_stats() const {
  return scheduler_ ? scheduler_->stats() : batch::BatchStats{};
}

void InferenceService::reset_stats() {
  // Resets only this service's counters, not the whole registry (which the
  // caller may share across services).
  c_.submitted.reset();
  c_.served.reset();
  c_.degraded_truncated.reset();
  c_.degraded_cached.reset();
  c_.rejected_invalid.reset();
  c_.rejected_overload.reset();
  c_.timed_out.reset();
  c_.failed.reset();
  c_.breaker_trips.reset();
  c_.feature_cache_hits.reset();
  c_.feature_cache_misses.reset();
  c_.deadline_missed.reset();
  std::lock_guard<std::mutex> lock(mu_);
  latencies_ms_.clear();
}

std::string InferenceService::latency_report() const {
  const ServeStats s = stats();
  std::ostringstream os;
  os << "latency_ms exact p50=" << s.latency_percentile(50)
     << " p95=" << s.latency_percentile(95)
     << " p99=" << s.latency_percentile(99);
  if (metrics_ != nullptr) {
    os << " | hist p50=" << c_.latency_ms.quantile(0.50)
       << " p95=" << c_.latency_ms.quantile(0.95)
       << " p99=" << c_.latency_ms.quantile(0.99);
  }
  return os.str();
}

bool InferenceService::breaker_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_ != BreakerState::kClosed;
}

ServeHealth InferenceService::health() const {
  ServeHealth h;
  h.breaker_open = breaker_open();
  if (scrubber_) {
    const storage::ScrubStats s = scrubber_->stats();
    h.scrub_passes = s.passes;
    h.scrub_corrupt = s.corrupt;
    h.scrub_quarantined = s.quarantined;
  }
  return h;
}

ServeHealth InferenceService::scrub_now() {
  if (scrubber_) scrubber_->scrub_pass();
  return health();
}

std::size_t InferenceService::queue_depth() const { return pool_->pending(); }

std::size_t InferenceService::active_requests() const {
  return pool_->active();
}

Response InferenceService::infer(const Request& request) {
  const auto start = Clock::now();
  const std::uint64_t obs_start_ns = obs_clock_->now_ns();
  obs::Span req_span;
  if (config_.tracer) req_span = config_.tracer->span("serve.request");
  {
    std::lock_guard<std::mutex> lock(mu_);
    c_.submitted.inc();
  }
  // Closes out every return path identically: stats, span, histogram,
  // ledger. `stats_latency_ms` feeds the ServeStats latency vector (0 for
  // rejects, matching the pre-obs behaviour); the histogram and ledger use
  // the obs clock so they stay deterministic under a FakeClock.
  const auto finalize = [&](Response r, double stats_latency_ms,
                            bool was_probe) {
    record_result(r.outcome, stats_latency_ms, was_probe);
    const double obs_ms =
        static_cast<double>(obs_clock_->now_ns() - obs_start_ns) / 1e6;
    c_.latency_ms.record(obs_ms);
    if (req_span.active()) {
      req_span.set_attr("outcome", outcome_name(r.outcome));
      req_span.end();
    }
    if (config_.ledger) {
      config_.ledger->event("serve.request",
                            {{"outcome", outcome_name(r.outcome)},
                             {"latency_ms", obs_ms}});
    }
    r.latency_ms = ms_since(start);
    return r;
  };
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(deadline_ms));

  // -- Resolve the input tensor (featurize AIG requests on this thread) -----
  const bool has_batch = request.hop_batch.defined();
  const bool has_aig = request.aig != nullptr;
  Tensor input;
  if (has_batch == has_aig) {
    return finalize(
        reject(Outcome::kRejectedInvalid,
               "request must carry exactly one of hop_batch / aig"),
        0, false);
  }
  if (has_aig) {
    if (model_.config().in_dim != reasoning::kNodeFeatureDim) {
      return finalize(
          reject(Outcome::kRejectedInvalid,
                 "model in_dim does not match raw AIG features; send "
                 "hop_batch"),
          0, false);
    }
    if (auto bad =
            validate::check_aig(*request.aig, config_.max_request_nodes)) {
      return finalize(reject(Outcome::kRejectedInvalid, *bad), 0, false);
    }
    // Phase 1 (Eq. 3): hop features are a pure function of the AIG, cheap
    // relative to the model and deterministic — run on the caller's thread.
    // With a feature store configured, that purity makes them cacheable:
    // key by the AIG's content digest so a repeated circuit skips phase 1
    // entirely (graph construction included).
    auto featurize = [this, &request] {
      const graph::Csr adj =
          reasoning::to_graph(*request.aig).normalized_symmetric();
      return core::HopFeatures::compute(adj,
                                        reasoning::node_features(*request.aig),
                                        model_.config().num_hops);
    };
    obs::Span feat_span;
    if (config_.tracer) feat_span = config_.tracer->span("serve.featurize");
    if (config_.feature_store != nullptr) {
      const store::FeatureKey key{store::aig_digest(*request.aig),
                                  model_.config().num_hops};
      store::StoreOutcome from = store::StoreOutcome::kComputed;
      input = config_.feature_store
                  ->get_or_compute(key, model_.config().in_dim, featurize,
                                   &from)
                  .gather_all();
      if (from == store::StoreOutcome::kComputed) {
        c_.feature_cache_misses.inc();
      } else {
        c_.feature_cache_hits.inc();
      }
      if (feat_span.active()) {
        feat_span.set_attr(
            "source", from == store::StoreOutcome::kComputed ? "computed"
                                                             : "store");
      }
    } else {
      input = featurize().gather_all();
    }
  } else {
    input = request.hop_batch;
  }

  // Fault hook: a poisoned request models a corrupt client buffer. Poison a
  // private copy — the caller's storage (shared) must stay intact.
  if (fault::active() != nullptr) {
    Tensor poisoned = input.clone();
    if (fault::maybe_poison_request(poisoned)) input = poisoned;
  }

  // -- Validation: nothing unvalidated ever reaches a kernel ----------------
  {
    obs::Span val_span;
    if (config_.tracer) val_span = config_.tracer->span("serve.validate");
    if (auto bad = validate::check_hop_batch(input, model_.config().num_hops,
                                             model_.config().in_dim,
                                             config_.max_request_nodes)) {
      if (val_span.active()) val_span.set_attr("result", "invalid");
      val_span.end();
      return finalize(reject(Outcome::kRejectedInvalid, *bad), 0, false);
    }
  }

  // -- Circuit breaker: pick the path ---------------------------------------
  bool is_probe = false;
  bool degraded = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (breaker_ == BreakerState::kOpen && Clock::now() >= breaker_open_until_) {
      breaker_ = BreakerState::kHalfOpen;
      probe_in_flight_ = false;
    }
    if (breaker_ == BreakerState::kHalfOpen && !probe_in_flight_) {
      probe_in_flight_ = true;
      is_probe = true;
    } else if (breaker_ != BreakerState::kClosed) {
      degraded = true;
    }
  }
  if (degraded) {
    obs::Span deg_span;
    if (config_.tracer) deg_span = config_.tracer->span("serve.degraded");
    Response r = execute_degraded(input, request.cache_key, deadline);
    deg_span.end();
    return finalize(std::move(r), ms_since(start), false);
  }

  Response r = scheduler_
                   ? execute_batched(input, request, deadline, deadline_ms)
                   : execute_full(input, deadline, req_span.id());
  if (r.outcome == Outcome::kServed && request.cache_key != 0) {
    update_cache(request.cache_key, r.output);
  }
  return finalize(std::move(r), ms_since(start), is_probe);
}

Response InferenceService::execute_batched(const Tensor& input,
                                           const Request& request,
                                           Clock::time_point deadline,
                                           double deadline_ms) {
  batch::SubmitResult sub = scheduler_->submit(input, request.lane,
                                               request.tenant_id, deadline_ms);
  if (!sub.admitted) {
    Response r = reject(Outcome::kRejectedOverload, sub.reject_reason);
    r.retry_after_ms = sub.retry_after_ms;
    return r;
  }
  // The caller's deadline stays on the real clock even when the
  // scheduler's close heuristics run on a fake one: a coalesced request
  // times out exactly like a per-request one. The scheduler still owns the
  // batch (deadline-aware close bounds how much of it computes after we
  // leave), so an abandoned future is just a discarded slot.
  if (sub.output.wait_until(deadline) != std::future_status::ready) {
    return reject(Outcome::kTimedOut, "deadline expired (batched)");
  }
  Response r;
  try {
    r.output = sub.output.get();
    r.outcome = Outcome::kServed;
  } catch (const std::exception& e) {
    return reject(Outcome::kFailed, e.what());
  }
  return r;
}

Tensor InferenceService::batched_forward(const Tensor& input) const {
  // Same chunking as execute_full (deadline granularity is the scheduler's
  // job here, but the node_batch chunks keep arena footprints bounded and
  // the fp path identical to the per-request route — chunk boundaries are
  // bit-transparent by per-node independence, DESIGN.md §11).
  ArenaScope arena;
  const std::int64_t n = input.size(0);
  const std::int64_t c = model_.config().out_dim;
  Tensor out({n, c});
  for (std::int64_t lo = 0; lo < n; lo += config_.node_batch) {
    const std::int64_t hi = std::min(n, lo + config_.node_batch);
    Tensor part =
        model_.forward_eval(ag::constant(tensor_ops::slice_rows(input, lo, hi)))
            .value();
    std::copy(part.data(), part.data() + part.numel(), out.data() + lo * c);
  }
  return out;
}

Response InferenceService::execute_full(const Tensor& input,
                                        Clock::time_point deadline,
                                        std::uint64_t request_span_id) {
  // Admission under mu_ so check-then-submit is atomic: concurrent clients
  // cannot over-admit past queue_capacity.
  auto job = std::make_shared<Job>();
  TaskHandle handle;
  obs::Span adm_span;
  if (config_.tracer) adm_span = config_.tracer->span("serve.admission");
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t depth = pool_->pending();
    c_.queue_depth.record(static_cast<double>(depth));
    if (depth >= config_.queue_capacity) {
      adm_span.add_event("rejected_overload");
      Response r = reject(Outcome::kRejectedOverload, "admission queue full");
      // Backoff hint proportional to the work actually ahead of the
      // client: queue depth × the EWMA forward time once measurements
      // exist, the flat configured floor before then.
      const double ewma = ewma_forward_ms_->load(std::memory_order_relaxed);
      r.retry_after_ms = static_cast<double>(depth + 1) *
                         (ewma > 0 ? ewma : config_.retry_after_ms);
      return r;
    }
    const std::int64_t n = input.size(0);
    const std::int64_t node_batch = config_.node_batch;
    const core::Hoga* model = &model_;
    // The forward span opens on the pool worker, where TLS can't see the
    // request span — hence the explicit parent id. The enqueue timestamp
    // rides along so the worker can record the obs-clock queue wait.
    obs::Tracer* tracer = config_.tracer;
    obs::Histogram queue_wait = c_.queue_wait_ms;
    obs::Clock* obs_clock = obs_clock_;
    std::shared_ptr<std::atomic<double>> ewma = ewma_forward_ms_;
    // The admission span must close before the task can reach a worker:
    // from the enqueue read until the future resolves, the worker owns the
    // obs clock, which is what keeps scripted FakeClock runs totally
    // ordered (and therefore byte-identical).
    adm_span.end();
    const std::uint64_t enqueued_ns = obs_clock_->now_ns();
    handle = pool_->submit_cancellable([job, input, n, node_batch, model,
                                        tracer, queue_wait, obs_clock,
                                        enqueued_ns, ewma,
                                        request_span_id]() mutable {
      queue_wait.record(
          static_cast<double>(obs_clock->now_ns() - enqueued_ns) / 1e6);
      obs::Span fwd_span;
      if (tracer) fwd_span = tracer->span("serve.forward", request_span_id);
      if (fault::Injector* inj = fault::active()) {
        // A queue stall wedges the executor *non*-cooperatively (models a
        // stuck worker); admissions pile up behind it.
        const double stall = inj->queue_stall_ms();
        if (stall > 0) {
          fwd_span.add_event("fault.queue_stall");
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(stall));
        }
        // A slow worker is cooperative: cancellation still observed.
        const double delay = inj->request_delay_ms();
        if (delay > 0) {
          fwd_span.add_event("fault.request_delay");
          if (!cooperative_sleep(delay, job->cancel)) return;
        }
      }
      // HOGA inference is per-node independent (Eq. 3), so the batch splits
      // into node chunks with a cancellation/deadline check between chunks.
      ArenaScope arena;  // kernel scratch reused across the chunk loop
      const std::int64_t c = model->config().out_dim;
      const auto fwd_start = std::chrono::steady_clock::now();
      Tensor out({n, c});
      for (std::int64_t lo = 0; lo < n; lo += node_batch) {
        if (job->cancel.load(std::memory_order_relaxed)) return;
        const std::int64_t hi = std::min(n, lo + node_batch);
        Tensor part =
            model->forward_eval(ag::constant(tensor_ops::slice_rows(input, lo, hi)))
                .value();
        std::copy(part.data(), part.data() + part.numel(),
                  out.data() + lo * c);
      }
      // Feed the overload-reject backoff hint: blend this forward's wall
      // time into the EWMA (same alpha as the batch scheduler's default).
      const double fwd_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - fwd_start)
              .count();
      const double prev = ewma->load(std::memory_order_relaxed);
      ewma->store(prev <= 0.0 ? fwd_ms : 0.25 * fwd_ms + 0.75 * prev,
                  std::memory_order_relaxed);
      job->output = out;
    });
  }

  if (handle.future().wait_until(deadline) == std::future_status::ready) {
    try {
      handle.future().get();
    } catch (const TaskCancelled&) {
      return reject(Outcome::kTimedOut, "cancelled before execution");
    } catch (const std::exception& e) {
      return reject(Outcome::kFailed, e.what());
    }
    if (job->cancel.load()) {
      return reject(Outcome::kTimedOut, "deadline expired");
    }
    Response r;
    r.outcome = Outcome::kServed;
    r.output = job->output;
    return r;
  }

  // Deadline expired. Revoke if still queued; otherwise flag the running
  // task to stop at its next check. Either way return *now* — the caller's
  // latency stays bounded by the deadline even when a worker is wedged
  // (`job` keeps the shared state alive for the straggler).
  if (!handle.cancel()) job->cancel.store(true, std::memory_order_relaxed);
  return reject(Outcome::kTimedOut, "deadline expired");
}

Response InferenceService::execute_degraded(const Tensor& input,
                                            std::uint64_t cache_key,
                                            Clock::time_point deadline) {
  // Rung 1: last-good cached result for this logical query.
  if (config_.cache_last_good && cache_key != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(cache_key);
    if (it != cache_.end()) {
      Response r;
      r.outcome = Outcome::kDegradedCached;
      r.output = it->second;
      return r;
    }
  }
  // Rung 2: same weights on a truncated hop prefix, evaluated inline on the
  // calling thread — the sick executor is bypassed entirely.
  const Tensor truncated = truncate_hops(input, config_.degraded_num_hops);
  const std::int64_t n = truncated.size(0);
  const std::int64_t c = model_.config().out_dim;
  ArenaScope arena;  // kernel scratch for the inline degraded forward
  Tensor out({n, c});
  for (std::int64_t lo = 0; lo < n; lo += config_.node_batch) {
    if (Clock::now() >= deadline) {
      return reject(Outcome::kTimedOut, "deadline expired (degraded path)");
    }
    const std::int64_t hi = std::min(n, lo + config_.node_batch);
    Tensor part =
        model_.forward_eval(ag::constant(tensor_ops::slice_rows(truncated, lo, hi)))
            .value();
    std::copy(part.data(), part.data() + part.numel(), out.data() + lo * c);
  }
  Response r;
  r.outcome = Outcome::kDegradedTruncated;
  r.output = out;
  return r;
}

void InferenceService::record_result(Outcome outcome, double latency_ms,
                                     bool was_probe) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (outcome) {
    case Outcome::kServed: c_.served.inc(); break;
    case Outcome::kDegradedTruncated: c_.degraded_truncated.inc(); break;
    case Outcome::kDegradedCached: c_.degraded_cached.inc(); break;
    case Outcome::kRejectedInvalid: c_.rejected_invalid.inc(); break;
    case Outcome::kRejectedOverload: c_.rejected_overload.inc(); break;
    case Outcome::kTimedOut: c_.timed_out.inc(); break;
    case Outcome::kFailed: c_.failed.inc(); break;
  }
  if (outcome == Outcome::kTimedOut) c_.deadline_missed.inc();
  const bool completed = outcome == Outcome::kServed ||
                         outcome == Outcome::kDegradedTruncated ||
                         outcome == Outcome::kDegradedCached ||
                         outcome == Outcome::kTimedOut ||
                         outcome == Outcome::kFailed;
  if (completed) latencies_ms_.push_back(latency_ms);

  // Breaker bookkeeping. Degraded outcomes and rejections are neutral:
  // only full-path results move the state machine.
  const bool failure =
      outcome == Outcome::kTimedOut || outcome == Outcome::kFailed;
  const bool success = outcome == Outcome::kServed;
  if (was_probe) {
    probe_in_flight_ = false;
    if (success) {
      breaker_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
    } else if (failure) {
      breaker_ = BreakerState::kOpen;
      breaker_open_until_ =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 config_.breaker_reset_ms));
      c_.breaker_trips.inc();
    }
    return;
  }
  if (breaker_ != BreakerState::kClosed) return;
  if (success) {
    consecutive_failures_ = 0;
  } else if (failure) {
    if (++consecutive_failures_ >= config_.breaker_trip_failures) {
      breaker_ = BreakerState::kOpen;
      breaker_open_until_ =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 config_.breaker_reset_ms));
      c_.breaker_trips.inc();
      consecutive_failures_ = 0;
    }
  }
}

void InferenceService::update_cache(std::uint64_t cache_key,
                                    const Tensor& output) {
  if (!config_.cache_last_good || config_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(cache_key);
  if (it != cache_.end()) {
    it->second = output;
    return;
  }
  cache_.emplace(cache_key, output);
  cache_order_.push_back(cache_key);
  while (cache_.size() > config_.cache_capacity) {
    cache_.erase(cache_order_.front());
    cache_order_.erase(cache_order_.begin());
  }
}

}  // namespace hoga::serve
