#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>

#include "autograd/ops.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "store/digest.hpp"
#include "store/feature_store.hpp"
#include "tensor/ops.hpp"
#include "validate/validate.hpp"

namespace hoga::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

Response reject(Outcome outcome, std::string why) {
  Response r;
  r.outcome = outcome;
  r.error = std::move(why);
  return r;
}

/// Sleeps `ms` in ~1ms slices, returning early (false) once `cancel` is set.
/// Keeps injected slow-worker delays cooperative: a timed-out request stops
/// burning its worker at the next slice instead of after the full delay.
bool cooperative_sleep(double ms, const std::atomic<bool>& cancel) {
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  while (Clock::now() < until) {
    if (cancel.load(std::memory_order_relaxed)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// First k+1 hops of a [B, K+1, d] batch: [B, k+1, d]. Legal model input by
/// hop-wise decoupling (Eq. 3) — the degraded rung's cheaper evaluation.
Tensor truncate_hops(const Tensor& batch, int keep_hops) {
  const std::int64_t b = batch.size(0);
  const std::int64_t full = batch.size(1);
  const std::int64_t d = batch.size(2);
  const std::int64_t kept = std::min<std::int64_t>(keep_hops + 1, full);
  if (kept == full) return batch;
  Tensor out({b, kept, d});
  for (std::int64_t i = 0; i < b; ++i) {
    std::memcpy(out.data() + i * kept * d, batch.data() + i * full * d,
                static_cast<std::size_t>(kept * d) * sizeof(float));
  }
  return out;
}

}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kDegradedTruncated: return "degraded_truncated";
    case Outcome::kDegradedCached: return "degraded_cached";
    case Outcome::kRejectedInvalid: return "rejected_invalid";
    case Outcome::kRejectedOverload: return "rejected_overload";
    case Outcome::kTimedOut: return "timed_out";
    case Outcome::kFailed: return "failed";
  }
  return "unknown";
}

double ServeStats::latency_percentile(double q) const {
  if (latencies_ms.empty()) return 0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

std::string ServeStats::counts_signature() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " served=" << served
     << " degraded_truncated=" << degraded_truncated
     << " degraded_cached=" << degraded_cached
     << " rejected_invalid=" << rejected_invalid
     << " rejected_overload=" << rejected_overload
     << " timed_out=" << timed_out << " failed=" << failed
     << " breaker_trips=" << breaker_trips
     << " feature_cache_hits=" << feature_cache_hits
     << " feature_cache_misses=" << feature_cache_misses;
  return os.str();
}

std::string ServeStats::to_string() const {
  std::ostringstream os;
  os << counts_signature();
  if (!latencies_ms.empty()) {
    os << "\nlatency_ms p50=" << latency_percentile(50)
       << " p90=" << latency_percentile(90)
       << " p99=" << latency_percentile(99);
  }
  return os.str();
}

/// Per-request execution state, shared between the caller and the pool
/// worker. The shared_ptr keeps it alive when a timed-out caller returns
/// while the worker is still between cancellation checks.
struct InferenceService::Job {
  std::atomic<bool> cancel{false};
  Tensor output;
};

InferenceService::InferenceService(const core::Hoga& model, ServeConfig config)
    : model_(model), config_(config) {
  HOGA_CHECK(config_.workers > 0, "InferenceService: workers must be > 0");
  HOGA_CHECK(config_.node_batch > 0,
             "InferenceService: node_batch must be > 0");
  pool_ = std::make_unique<ThreadPool>(config_.workers);
}

InferenceService::~InferenceService() = default;

ServeStats InferenceService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void InferenceService::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = ServeStats{};
}

bool InferenceService::breaker_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_ != BreakerState::kClosed;
}

std::size_t InferenceService::queue_depth() const { return pool_->pending(); }

std::size_t InferenceService::active_requests() const {
  return pool_->active();
}

Response InferenceService::infer(const Request& request) {
  const auto start = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(deadline_ms));

  // -- Resolve the input tensor (featurize AIG requests on this thread) -----
  const bool has_batch = request.hop_batch.defined();
  const bool has_aig = request.aig != nullptr;
  Tensor input;
  if (has_batch == has_aig) {
    Response r = reject(Outcome::kRejectedInvalid,
                        "request must carry exactly one of hop_batch / aig");
    record_result(r.outcome, 0, false);
    r.latency_ms = ms_since(start);
    return r;
  }
  if (has_aig) {
    if (model_.config().in_dim != reasoning::kNodeFeatureDim) {
      Response r = reject(
          Outcome::kRejectedInvalid,
          "model in_dim does not match raw AIG features; send hop_batch");
      record_result(r.outcome, 0, false);
      r.latency_ms = ms_since(start);
      return r;
    }
    if (auto bad =
            validate::check_aig(*request.aig, config_.max_request_nodes)) {
      Response r = reject(Outcome::kRejectedInvalid, *bad);
      record_result(r.outcome, 0, false);
      r.latency_ms = ms_since(start);
      return r;
    }
    // Phase 1 (Eq. 3): hop features are a pure function of the AIG, cheap
    // relative to the model and deterministic — run on the caller's thread.
    // With a feature store configured, that purity makes them cacheable:
    // key by the AIG's content digest so a repeated circuit skips phase 1
    // entirely (graph construction included).
    auto featurize = [this, &request] {
      const graph::Csr adj =
          reasoning::to_graph(*request.aig).normalized_symmetric();
      return core::HopFeatures::compute(adj,
                                        reasoning::node_features(*request.aig),
                                        model_.config().num_hops);
    };
    if (config_.feature_store != nullptr) {
      const store::FeatureKey key{store::aig_digest(*request.aig),
                                  model_.config().num_hops};
      store::StoreOutcome from = store::StoreOutcome::kComputed;
      input = config_.feature_store
                  ->get_or_compute(key, model_.config().in_dim, featurize,
                                   &from)
                  .gather_all();
      std::lock_guard<std::mutex> lock(mu_);
      if (from == store::StoreOutcome::kComputed) {
        ++stats_.feature_cache_misses;
      } else {
        ++stats_.feature_cache_hits;
      }
    } else {
      input = featurize().gather_all();
    }
  } else {
    input = request.hop_batch;
  }

  // Fault hook: a poisoned request models a corrupt client buffer. Poison a
  // private copy — the caller's storage (shared) must stay intact.
  if (fault::active() != nullptr) {
    Tensor poisoned = input.clone();
    if (fault::maybe_poison_request(poisoned)) input = poisoned;
  }

  // -- Validation: nothing unvalidated ever reaches a kernel ----------------
  if (auto bad = validate::check_hop_batch(input, model_.config().num_hops,
                                           model_.config().in_dim,
                                           config_.max_request_nodes)) {
    Response r = reject(Outcome::kRejectedInvalid, *bad);
    record_result(r.outcome, 0, false);
    r.latency_ms = ms_since(start);
    return r;
  }

  // -- Circuit breaker: pick the path ---------------------------------------
  bool is_probe = false;
  bool degraded = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (breaker_ == BreakerState::kOpen && Clock::now() >= breaker_open_until_) {
      breaker_ = BreakerState::kHalfOpen;
      probe_in_flight_ = false;
    }
    if (breaker_ == BreakerState::kHalfOpen && !probe_in_flight_) {
      probe_in_flight_ = true;
      is_probe = true;
    } else if (breaker_ != BreakerState::kClosed) {
      degraded = true;
    }
  }
  if (degraded) {
    Response r = execute_degraded(input, request.cache_key, deadline);
    record_result(r.outcome, ms_since(start), false);
    r.latency_ms = ms_since(start);
    return r;
  }

  Response r = execute_full(input, deadline);
  record_result(r.outcome, ms_since(start), is_probe);
  if (r.outcome == Outcome::kServed && request.cache_key != 0) {
    update_cache(request.cache_key, r.output);
  }
  r.latency_ms = ms_since(start);
  return r;
}

Response InferenceService::execute_full(const Tensor& input,
                                        Clock::time_point deadline) {
  // Admission under mu_ so check-then-submit is atomic: concurrent clients
  // cannot over-admit past queue_capacity.
  auto job = std::make_shared<Job>();
  TaskHandle handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t depth = pool_->pending();
    if (depth >= config_.queue_capacity) {
      Response r = reject(Outcome::kRejectedOverload, "admission queue full");
      r.retry_after_ms =
          config_.retry_after_ms * static_cast<double>(depth + 1);
      return r;
    }
    const std::int64_t n = input.size(0);
    const std::int64_t node_batch = config_.node_batch;
    const core::Hoga* model = &model_;
    handle = pool_->submit_cancellable([job, input, n, node_batch, model] {
      if (fault::Injector* inj = fault::active()) {
        // A queue stall wedges the executor *non*-cooperatively (models a
        // stuck worker); admissions pile up behind it.
        const double stall = inj->queue_stall_ms();
        if (stall > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(stall));
        }
        // A slow worker is cooperative: cancellation still observed.
        const double delay = inj->request_delay_ms();
        if (delay > 0 && !cooperative_sleep(delay, job->cancel)) return;
      }
      // HOGA inference is per-node independent (Eq. 3), so the batch splits
      // into node chunks with a cancellation/deadline check between chunks.
      const std::int64_t c = model->config().out_dim;
      Tensor out({n, c});
      for (std::int64_t lo = 0; lo < n; lo += node_batch) {
        if (job->cancel.load(std::memory_order_relaxed)) return;
        const std::int64_t hi = std::min(n, lo + node_batch);
        Tensor part =
            model->forward_eval(ag::constant(tensor_ops::slice_rows(input, lo, hi)))
                .value();
        std::copy(part.data(), part.data() + part.numel(),
                  out.data() + lo * c);
      }
      job->output = out;
    });
  }

  if (handle.future().wait_until(deadline) == std::future_status::ready) {
    try {
      handle.future().get();
    } catch (const TaskCancelled&) {
      return reject(Outcome::kTimedOut, "cancelled before execution");
    } catch (const std::exception& e) {
      return reject(Outcome::kFailed, e.what());
    }
    if (job->cancel.load()) {
      return reject(Outcome::kTimedOut, "deadline expired");
    }
    Response r;
    r.outcome = Outcome::kServed;
    r.output = job->output;
    return r;
  }

  // Deadline expired. Revoke if still queued; otherwise flag the running
  // task to stop at its next check. Either way return *now* — the caller's
  // latency stays bounded by the deadline even when a worker is wedged
  // (`job` keeps the shared state alive for the straggler).
  if (!handle.cancel()) job->cancel.store(true, std::memory_order_relaxed);
  return reject(Outcome::kTimedOut, "deadline expired");
}

Response InferenceService::execute_degraded(const Tensor& input,
                                            std::uint64_t cache_key,
                                            Clock::time_point deadline) {
  // Rung 1: last-good cached result for this logical query.
  if (config_.cache_last_good && cache_key != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(cache_key);
    if (it != cache_.end()) {
      Response r;
      r.outcome = Outcome::kDegradedCached;
      r.output = it->second;
      return r;
    }
  }
  // Rung 2: same weights on a truncated hop prefix, evaluated inline on the
  // calling thread — the sick executor is bypassed entirely.
  const Tensor truncated = truncate_hops(input, config_.degraded_num_hops);
  const std::int64_t n = truncated.size(0);
  const std::int64_t c = model_.config().out_dim;
  Tensor out({n, c});
  for (std::int64_t lo = 0; lo < n; lo += config_.node_batch) {
    if (Clock::now() >= deadline) {
      return reject(Outcome::kTimedOut, "deadline expired (degraded path)");
    }
    const std::int64_t hi = std::min(n, lo + config_.node_batch);
    Tensor part =
        model_.forward_eval(ag::constant(tensor_ops::slice_rows(truncated, lo, hi)))
            .value();
    std::copy(part.data(), part.data() + part.numel(), out.data() + lo * c);
  }
  Response r;
  r.outcome = Outcome::kDegradedTruncated;
  r.output = out;
  return r;
}

void InferenceService::record_result(Outcome outcome, double latency_ms,
                                     bool was_probe) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (outcome) {
    case Outcome::kServed: ++stats_.served; break;
    case Outcome::kDegradedTruncated: ++stats_.degraded_truncated; break;
    case Outcome::kDegradedCached: ++stats_.degraded_cached; break;
    case Outcome::kRejectedInvalid: ++stats_.rejected_invalid; break;
    case Outcome::kRejectedOverload: ++stats_.rejected_overload; break;
    case Outcome::kTimedOut: ++stats_.timed_out; break;
    case Outcome::kFailed: ++stats_.failed; break;
  }
  const bool completed = outcome == Outcome::kServed ||
                         outcome == Outcome::kDegradedTruncated ||
                         outcome == Outcome::kDegradedCached ||
                         outcome == Outcome::kTimedOut ||
                         outcome == Outcome::kFailed;
  if (completed) stats_.latencies_ms.push_back(latency_ms);

  // Breaker bookkeeping. Degraded outcomes and rejections are neutral:
  // only full-path results move the state machine.
  const bool failure =
      outcome == Outcome::kTimedOut || outcome == Outcome::kFailed;
  const bool success = outcome == Outcome::kServed;
  if (was_probe) {
    probe_in_flight_ = false;
    if (success) {
      breaker_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
    } else if (failure) {
      breaker_ = BreakerState::kOpen;
      breaker_open_until_ =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 config_.breaker_reset_ms));
      ++stats_.breaker_trips;
    }
    return;
  }
  if (breaker_ != BreakerState::kClosed) return;
  if (success) {
    consecutive_failures_ = 0;
  } else if (failure) {
    if (++consecutive_failures_ >= config_.breaker_trip_failures) {
      breaker_ = BreakerState::kOpen;
      breaker_open_until_ =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 config_.breaker_reset_ms));
      ++stats_.breaker_trips;
      consecutive_failures_ = 0;
    }
  }
}

void InferenceService::update_cache(std::uint64_t cache_key,
                                    const Tensor& output) {
  if (!config_.cache_last_good || config_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(cache_key);
  if (it != cache_.end()) {
    it->second = output;
    return;
  }
  cache_.emplace(cache_key, output);
  cache_order_.push_back(cache_key);
  while (cache_.size() > config_.cache_capacity) {
    cache_.erase(cache_order_.front());
    cache_order_.erase(cache_order_.begin());
  }
}

}  // namespace hoga::serve
