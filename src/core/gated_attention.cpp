#include "core/gated_attention.hpp"

namespace hoga::core {

GatedAttentionLayer::GatedAttentionLayer(std::int64_t dim, Rng& rng) {
  // Pure weight matrices as in Eq. 5/7 (no bias terms).
  wq_ = std::make_shared<nn::Linear>(dim, dim, rng, /*bias=*/false);
  wk_ = std::make_shared<nn::Linear>(dim, dim, rng, /*bias=*/false);
  wu_ = std::make_shared<nn::Linear>(dim, dim, rng, /*bias=*/false);
  wv_ = std::make_shared<nn::Linear>(dim, dim, rng, /*bias=*/false);
  norm_ = std::make_shared<nn::LayerNorm>(dim);
  register_module("wq", wq_);
  register_module("wk", wk_);
  register_module("wu", wu_);
  register_module("wv", wv_);
  register_module("norm", norm_);
}

ag::Variable GatedAttentionLayer::forward(const ag::Variable& h,
                                          Tensor* attention_out) const {
  HOGA_CHECK(h.value().dim() == 3, "GatedAttentionLayer: input must be 3-D");
  const ag::Variable q = wq_->forward(h);
  const ag::Variable k = wk_->forward(h);
  const ag::Variable u = wu_->forward(h);
  const ag::Variable v = wv_->forward(h);
  // S = softmax(Q K^T) over the hop axis (fused bmm + softmax).
  const ag::Variable s = ag::attention_scores(q, k);
  if (attention_out) *attention_out = s.value();
  const ag::Variable mixed = ag::bmm(s, v);
  const ag::Variable gated = ag::mul(u, mixed);
  return ag::relu(norm_->forward(gated));
}

}  // namespace hoga::core
