#pragma once
// HOGA phase 1 (paper §III-A): hop-wise feature generation.
//
// X^(k) = Â X^(k-1) for k = 1..K with Â = D^-1/2 (A+I) D^-1/2, stacked into
// a third-order tensor X ∈ R^{n x (K+1) x d} (Eq. 3-4). This runs once,
// offline; afterwards HOGA training touches only this tensor — the API makes
// the paper's key property structural: no graph object ever reaches the
// model (per-node independence => embarrassing parallelism).

#include <memory>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace hoga::core {

class HopFeatures {
 public:
  /// Runs the K SpMM iterations and stacks the results.
  static HopFeatures compute(const graph::Csr& adj_norm, const Tensor& x,
                             int num_hops);

  /// Hop features propagated through several adjacency variants (e.g. the
  /// symmetric graph and the directed fanin cone), concatenated along the
  /// feature axis: result dim = |matrices| * x.size(1). Each adjacency is
  /// propagated once and written straight into its column slice of the
  /// result — no per-adjacency [n, K+1, d] intermediate is materialized.
  static HopFeatures compute_concat(
      const std::vector<const graph::Csr*>& adjs, const Tensor& x,
      int num_hops);

  /// Rebuilds from a previously-computed stacked tensor [n, K+1, d] — the
  /// deserialization entry point of the feature store (hoga-feat shards).
  static HopFeatures from_stacked(Tensor stacked, int num_hops);

  std::int64_t num_nodes() const { return n_; }
  std::int64_t feature_dim() const { return d_; }
  int num_hops() const { return k_; }

  /// The full stacked tensor [n, K+1, d].
  const Tensor& stacked() const { return stacked_; }

  /// Hop-feature batch [B, K+1, d] for the given nodes — the only input a
  /// HOGA forward pass needs.
  Tensor gather(const std::vector<std::int64_t>& node_ids) const;

  /// Convenience: all-node batch (graph-level tasks).
  Tensor gather_all() const { return stacked_; }

  /// SIGN-style flat view [n, (K+1)*d] (concatenated hops).
  Tensor flat() const;

 private:
  std::int64_t n_ = 0, d_ = 0;
  int k_ = 0;
  Tensor stacked_;
};

}  // namespace hoga::core
