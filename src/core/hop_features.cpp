#include "core/hop_features.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace hoga::core {
namespace {

/// Runs the K propagation iterations of one adjacency (Eq. 3) and writes
/// hop slice k into `stacked` at feature-column offset `d_offset`. The
/// per-graph propagation state (`current`) is computed once here and passed
/// through every hop — and writing straight into the destination slice is
/// what lets compute_concat skip the per-adjacency [n, K+1, d] intermediate
/// (and its second copy) that it used to materialize.
void propagate_into(const graph::Csr& adj_norm, const Tensor& x, int num_hops,
                    Tensor& stacked, std::int64_t d_offset) {
  const std::int64_t n = x.size(0);
  const std::int64_t d = x.size(1);
  const std::int64_t k1 = num_hops + 1;
  const std::int64_t d_total = stacked.size(2);
  Tensor current = x;
  for (int k = 0; k <= num_hops; ++k) {
    if (k > 0) current = adj_norm.spmm(current);
    for (std::int64_t i = 0; i < n; ++i) {
      std::copy(current.data() + i * d, current.data() + (i + 1) * d,
                stacked.data() + (i * k1 + k) * d_total + d_offset);
    }
  }
}

}  // namespace

HopFeatures HopFeatures::compute(const graph::Csr& adj_norm, const Tensor& x,
                                 int num_hops) {
  HOGA_CHECK(num_hops >= 1, "HopFeatures: need at least 1 hop");
  HOGA_CHECK(x.dim() == 2 && x.size(0) == adj_norm.num_nodes(),
             "HopFeatures: feature/adjacency mismatch");
  HopFeatures hf;
  hf.n_ = x.size(0);
  hf.d_ = x.size(1);
  hf.k_ = num_hops;
  hf.stacked_ = Tensor({hf.n_, num_hops + 1, hf.d_});
  propagate_into(adj_norm, x, num_hops, hf.stacked_, 0);
  return hf;
}

HopFeatures HopFeatures::compute_concat(
    const std::vector<const graph::Csr*>& adjs, const Tensor& x,
    int num_hops) {
  HOGA_CHECK(!adjs.empty(), "compute_concat: no adjacencies");
  HOGA_CHECK(num_hops >= 1, "compute_concat: need at least 1 hop");
  HOGA_CHECK(x.dim() == 2, "compute_concat: features must be rank 2");
  const std::int64_t d0 = x.size(1);
  HopFeatures hf;
  hf.n_ = x.size(0);
  hf.k_ = num_hops;
  hf.d_ = d0 * static_cast<std::int64_t>(adjs.size());
  hf.stacked_ = Tensor({hf.n_, num_hops + 1, hf.d_});
  for (std::size_t p = 0; p < adjs.size(); ++p) {
    HOGA_CHECK(adjs[p] != nullptr && adjs[p]->num_nodes() == hf.n_,
               "compute_concat: adjacency " << p << " mismatches features");
    propagate_into(*adjs[p], x, num_hops, hf.stacked_,
                   static_cast<std::int64_t>(p) * d0);
  }
  return hf;
}

HopFeatures HopFeatures::from_stacked(Tensor stacked, int num_hops) {
  HOGA_CHECK(num_hops >= 1, "from_stacked: need at least 1 hop");
  HOGA_CHECK(stacked.dim() == 3 && stacked.size(1) == num_hops + 1,
             "from_stacked: want shape [n, " << num_hops + 1 << ", d], got "
                                             << shape_to_string(
                                                    stacked.shape()));
  HopFeatures hf;
  hf.n_ = stacked.size(0);
  hf.d_ = stacked.size(2);
  hf.k_ = num_hops;
  hf.stacked_ = std::move(stacked);
  return hf;
}

Tensor HopFeatures::gather(const std::vector<std::int64_t>& node_ids) const {
  return tensor_ops::gather_rows(stacked_, node_ids);
}

Tensor HopFeatures::flat() const {
  return stacked_.reshape({n_, (static_cast<std::int64_t>(k_) + 1) * d_});
}

}  // namespace hoga::core
