#include "core/hop_features.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace hoga::core {

HopFeatures HopFeatures::compute(const graph::Csr& adj_norm, const Tensor& x,
                                 int num_hops) {
  HOGA_CHECK(num_hops >= 1, "HopFeatures: need at least 1 hop");
  HOGA_CHECK(x.dim() == 2 && x.size(0) == adj_norm.num_nodes(),
             "HopFeatures: feature/adjacency mismatch");
  HopFeatures hf;
  hf.n_ = x.size(0);
  hf.d_ = x.size(1);
  hf.k_ = num_hops;
  const std::int64_t k1 = num_hops + 1;
  hf.stacked_ = Tensor({hf.n_, k1, hf.d_});

  Tensor current = x;
  for (int k = 0; k <= num_hops; ++k) {
    if (k > 0) current = adj_norm.spmm(current);
    // Interleave into [n, K+1, d] rows.
    for (std::int64_t i = 0; i < hf.n_; ++i) {
      std::copy(current.data() + i * hf.d_, current.data() + (i + 1) * hf.d_,
                hf.stacked_.data() + (i * k1 + k) * hf.d_);
    }
  }
  return hf;
}

HopFeatures HopFeatures::compute_concat(
    const std::vector<const graph::Csr*>& adjs, const Tensor& x,
    int num_hops) {
  HOGA_CHECK(!adjs.empty(), "compute_concat: no adjacencies");
  std::vector<HopFeatures> parts;
  parts.reserve(adjs.size());
  for (const graph::Csr* a : adjs) {
    parts.push_back(compute(*a, x, num_hops));
  }
  HopFeatures hf;
  hf.n_ = parts[0].n_;
  hf.k_ = num_hops;
  hf.d_ = parts[0].d_ * static_cast<std::int64_t>(parts.size());
  const std::int64_t k1 = num_hops + 1;
  const std::int64_t d0 = parts[0].d_;
  hf.stacked_ = Tensor({hf.n_, k1, hf.d_});
  for (std::int64_t i = 0; i < hf.n_; ++i) {
    for (std::int64_t k = 0; k < k1; ++k) {
      for (std::size_t p = 0; p < parts.size(); ++p) {
        const float* src =
            parts[p].stacked_.data() + (i * k1 + k) * d0;
        std::copy(src, src + d0,
                  hf.stacked_.data() + (i * k1 + k) * hf.d_ +
                      static_cast<std::int64_t>(p) * d0);
      }
    }
  }
  return hf;
}

Tensor HopFeatures::gather(const std::vector<std::int64_t>& node_ids) const {
  return tensor_ops::gather_rows(stacked_, node_ids);
}

Tensor HopFeatures::flat() const {
  return stacked_.reshape({n_, (static_cast<std::int64_t>(k_) + 1) * d_});
}

}  // namespace hoga::core
