#include "core/hoga_model.hpp"

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace hoga::core {

Hoga::Hoga(const HogaConfig& config, Rng& rng) : config_(config) {
  HOGA_CHECK(config.in_dim > 0 && config.hidden > 0 && config.num_hops >= 1 &&
                 config.num_layers >= 1,
             "Hoga: bad config");
  input_proj_ =
      std::make_shared<nn::Linear>(config.in_dim, config.hidden, rng);
  register_module("input_proj", input_proj_);
  if (config.input_norm) {
    input_norm_ = std::make_shared<nn::LayerNorm>(config.hidden);
    register_module("input_norm", input_norm_);
  }
  for (int l = 0; l < config.num_layers; ++l) {
    auto layer = std::make_shared<GatedAttentionLayer>(config.hidden, rng);
    register_module("attention" + std::to_string(l), layer);
    layers_.push_back(std::move(layer));
  }
  alpha_ = register_parameter(
      "alpha", nn::normal_init({2 * config.hidden, 1}, rng, 0.05f));
  head_ = std::make_shared<nn::Linear>(config.hidden, config.out_dim, rng);
  register_module("head", head_);
}

ag::Variable Hoga::repr_impl(const ag::Variable& hop_feats, Rng* rng,
                             bool with_dropout,
                             HogaAttention* attention) const {
  HOGA_CHECK(hop_feats.value().dim() == 3,
             "Hoga: hop features must be [B, K+1, d0]");
  const std::int64_t batch = hop_feats.size(0);
  const std::int64_t k1 = hop_feats.size(1);
  const std::int64_t num_hops = k1 - 1;
  HOGA_CHECK(num_hops >= 1 && num_hops <= config_.num_hops,
             "Hoga: got k=" << num_hops << " hops, model supports 1..K="
                            << config_.num_hops);
  const std::int64_t d = config_.hidden;

  ag::Variable h = input_proj_->forward(hop_feats);
  if (input_norm_) h = input_norm_->forward(h);
  if (with_dropout && config_.dropout > 0.f) {
    h = ag::dropout(h, config_.dropout, *rng, training());
  }
  Tensor self_attn;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool last = l + 1 == layers_.size();
    h = layers_[l]->forward(h, last && attention ? &self_attn : nullptr);
  }

  // Attentive readout (Eq. 10).
  ag::Variable flat = ag::reshape(h, {batch * k1, d});
  std::vector<std::int64_t> idx0;
  std::vector<std::int64_t> idx_rest;
  idx0.reserve(static_cast<std::size_t>(batch));
  idx_rest.reserve(static_cast<std::size_t>(batch * num_hops));
  for (std::int64_t b = 0; b < batch; ++b) {
    idx0.push_back(b * k1);
    for (std::int64_t k = 1; k < k1; ++k) idx_rest.push_back(b * k1 + k);
  }
  ag::Variable h0 = ag::gather_rows(flat, idx0);           // [B, d]
  ag::Variable h_rest = ag::gather_rows(flat, idx_rest);   // [B*K, d]
  ag::Variable a1 = ag::slice_rows(alpha_, 0, d);          // [d, 1]
  ag::Variable a2 = ag::slice_rows(alpha_, d, 2 * d);      // [d, 1]
  ag::Variable s1 = ag::matmul(h0, a1);                    // [B, 1]
  ag::Variable s2 =
      ag::reshape(ag::matmul(h_rest, a2), {batch, num_hops});  // [B, K]
  // Broadcast s1 over the K columns.
  ag::Variable s1_tiled =
      ag::matmul(s1, ag::constant(Tensor::ones({1, num_hops})));
  ag::Variable scores = ag::add(s2, s1_tiled);
  ag::Variable c = ag::softmax_lastdim(scores);  // [B, K]
  if (attention) {
    attention->readout_scores = c.value();
    attention->self_attention = self_attn;
  }
  ag::Variable mix = ag::bmm(ag::reshape(c, {batch, 1, num_hops}),
                             ag::reshape(h_rest, {batch, num_hops, d}));
  return ag::add(h0, ag::reshape(mix, {batch, d}));
}

ag::Variable Hoga::forward_repr(const ag::Variable& hop_feats, Rng& rng,
                                HogaAttention* attention) const {
  // Training never truncates hops: a shorter prefix here is a data bug, not
  // a degradation request.
  HOGA_CHECK(hop_feats.value().dim() == 3 &&
                 hop_feats.size(1) - 1 == config_.num_hops,
             "Hoga: expected hop features [B, K+1=" << config_.num_hops + 1
                                                    << ", d0]");
  return repr_impl(hop_feats, &rng, /*with_dropout=*/true, attention);
}

ag::Variable Hoga::forward(const ag::Variable& hop_feats, Rng& rng,
                           HogaAttention* attention) const {
  return head_->forward(forward_repr(hop_feats, rng, attention));
}

ag::Variable Hoga::forward_eval_repr(const ag::Variable& hop_feats,
                                     HogaAttention* attention) const {
  return repr_impl(hop_feats, nullptr, /*with_dropout=*/false, attention);
}

ag::Variable Hoga::forward_eval(const ag::Variable& hop_feats,
                                HogaAttention* attention) const {
  return head_->forward(forward_eval_repr(hop_feats, attention));
}

Tensor Hoga::predict(const HopFeatures& hop_features, std::int64_t batch_size,
                     HogaAttention* attention) const {
  const std::int64_t n = hop_features.num_nodes();
  Tensor out({n, config_.out_dim});
  std::vector<Tensor> readout_parts, attn_parts;
  for (std::int64_t lo = 0; lo < n; lo += batch_size) {
    const std::int64_t hi = std::min(n, lo + batch_size);
    std::vector<std::int64_t> ids;
    ids.reserve(static_cast<std::size_t>(hi - lo));
    for (std::int64_t i = lo; i < hi; ++i) ids.push_back(i);
    HogaAttention local;
    ag::Variable pred = forward_eval(ag::constant(hop_features.gather(ids)),
                                     attention ? &local : nullptr);
    std::copy(pred.value().data(), pred.value().data() + pred.numel(),
              out.data() + lo * config_.out_dim);
    if (attention) {
      readout_parts.push_back(local.readout_scores);
      attn_parts.push_back(local.self_attention);
    }
  }
  if (attention) {
    attention->readout_scores = tensor_ops::concat_rows(readout_parts);
    attention->self_attention = tensor_ops::concat_rows(attn_parts);
  }
  return out;
}

}  // namespace hoga::core
