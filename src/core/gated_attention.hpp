#pragma once
// HOGA phase 2 building block (paper §III-B): the gated self-attention layer
//
//   U = H W_U,  V = H W_V,  Q = H W_Q,  K = H W_K          (Eq. 5)
//   S = softmax(Q K^T)                                     (Eq. 7)
//   H' = ReLU(LayerNorm(U ⊙ (S V)))                        (Eq. 8-9)
//
// applied per node to its (K+1) x d hop-feature matrix. Batched over nodes:
// input/output are [B, K+1, d].

#include <memory>

#include "nn/layers.hpp"

namespace hoga::core {

class GatedAttentionLayer : public nn::Module {
 public:
  GatedAttentionLayer(std::int64_t dim, Rng& rng);

  /// h: [B, K+1, dim] -> [B, K+1, dim]. If `attention_out` is non-null it
  /// receives the softmax scores S [B, K+1, K+1] (inference inspection).
  ag::Variable forward(const ag::Variable& h,
                       Tensor* attention_out = nullptr) const;

 private:
  std::shared_ptr<nn::Linear> wq_, wk_, wu_, wv_;
  std::shared_ptr<nn::LayerNorm> norm_;
};

}  // namespace hoga::core
