#pragma once
// HOGA (paper §III): hop-wise graph attention model.
//
// Pipeline per node batch (all ops batched over nodes, no graph access):
//   1. project raw hop features [B, K+1, d0] -> [B, K+1, d]
//   2. L gated self-attention layers (Eq. 5-9)
//   3. attentive readout (Eq. 10):
//        c_k = softmax_k(alpha^T [H'_0 || H'_k]),  k = 1..K
//        y   = H'_0 + sum_k c_k H'_k
//   4. task head (classification logits or regression representation)

#include <memory>
#include <vector>

#include "core/gated_attention.hpp"
#include "core/hop_features.hpp"
#include "nn/layers.hpp"

namespace hoga::core {

struct HogaConfig {
  std::int64_t in_dim = 0;      // raw feature width d0
  std::int64_t hidden = 64;     // d (paper: 256)
  int num_hops = 5;             // K
  int num_layers = 1;           // gated self-attention layers (paper: 1)
  std::int64_t out_dim = 1;     // head output (classes or 1)
  float dropout = 0.f;
  /// LayerNorm on the projected hop features before attention; makes the
  /// model robust to degree-scale shifts between small training circuits and
  /// large evaluation circuits (implementation detail in the spirit of
  /// Eq. 9's stability additions).
  bool input_norm = true;
};

/// Per-sample attention diagnostics for Figure 7.
struct HogaAttention {
  /// Readout scores c_k: [B, K] (hop k = 1..K).
  Tensor readout_scores;
  /// Self-attention matrices of the last layer: [B, K+1, K+1].
  Tensor self_attention;
};

class Hoga : public nn::Module {
 public:
  Hoga(const HogaConfig& config, Rng& rng);

  /// Node representations y [B, hidden] from hop features [B, K+1, d0].
  /// Training path: consults the module's train/eval flag for dropout.
  ag::Variable forward_repr(const ag::Variable& hop_feats, Rng& rng,
                            HogaAttention* attention = nullptr) const;

  /// Head output [B, out_dim] (training path, as forward_repr).
  ag::Variable forward(const ag::Variable& hop_feats, Rng& rng,
                       HogaAttention* attention = nullptr) const;

  /// Inference-only forward: never reads the mutable train/eval flag, never
  /// draws randomness, touches no shared state — safe for any number of
  /// concurrent callers on one model instance (the serving runtime depends
  /// on this). Accepts hop tensors [B, k+1, d0] for ANY 1 <= k <= K: the
  /// hop-wise decoupling (Eq. 3) means the same weights evaluate on a
  /// truncated hop prefix, which is the degraded serving path.
  ag::Variable forward_eval_repr(const ag::Variable& hop_feats,
                                 HogaAttention* attention = nullptr) const;
  ag::Variable forward_eval(const ag::Variable& hop_feats,
                            HogaAttention* attention = nullptr) const;

  /// Inference over all nodes of a HopFeatures set, in node batches;
  /// returns head outputs [n, out_dim] (no autograd graph kept). Const and
  /// reentrant: uses the forward_eval path.
  Tensor predict(const HopFeatures& hop_features,
                 std::int64_t batch_size = 4096,
                 HogaAttention* attention = nullptr) const;

  const HogaConfig& config() const { return config_; }

 private:
  /// Shared forward core; `rng` may be null iff `with_dropout` is false.
  ag::Variable repr_impl(const ag::Variable& hop_feats, Rng* rng,
                         bool with_dropout, HogaAttention* attention) const;

  HogaConfig config_;
  std::shared_ptr<nn::Linear> input_proj_;
  std::shared_ptr<nn::LayerNorm> input_norm_;
  std::vector<std::shared_ptr<GatedAttentionLayer>> layers_;
  ag::Variable alpha_;  // [2*hidden, 1] readout attention vector
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace hoga::core
