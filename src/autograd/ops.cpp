#include "autograd/ops.hpp"

#include <cmath>

#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace hoga::ag {
namespace to = ::hoga::tensor_ops;

namespace {

// Reduces a gradient of lhs-shape down to the (suffix-broadcast) rhs shape by
// summing over the leading period.
Tensor reduce_to_shape(const Tensor& g, const Shape& target) {
  if (g.shape() == target) return g;
  const std::int64_t period = shape_numel(target);
  HOGA_CHECK(period > 0 && g.numel() % period == 0,
             "reduce_to_shape: incompatible shapes");
  Tensor out(target);
  const float* pg = g.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < g.numel(); ++i) po[i % period] += pg[i];
  return out;
}

}  // namespace

Variable constant(Tensor t) { return Variable(std::move(t), false); }

Variable add(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return Variable::make_result(
      to::add(a.value(), b.value()), {an, bn}, [an, bn](Node& n) {
        if (an->requires_grad) an->accumulate_grad(n.grad);
        if (bn->requires_grad) {
          bn->accumulate_grad(reduce_to_shape(n.grad, bn->value.shape()));
        }
      });
}

Variable sub(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return Variable::make_result(
      to::sub(a.value(), b.value()), {an, bn}, [an, bn](Node& n) {
        if (an->requires_grad) an->accumulate_grad(n.grad);
        if (bn->requires_grad) {
          bn->accumulate_grad(
              to::neg(reduce_to_shape(n.grad, bn->value.shape())));
        }
      });
}

Variable mul(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return Variable::make_result(
      to::mul(a.value(), b.value()), {an, bn}, [an, bn](Node& n) {
        if (an->requires_grad) {
          an->accumulate_grad(to::mul(n.grad, bn->value));
        }
        if (bn->requires_grad) {
          bn->accumulate_grad(reduce_to_shape(to::mul(n.grad, an->value),
                                              bn->value.shape()));
        }
      });
}

Variable add_scalar(const Variable& a, float s) {
  auto an = a.node();
  return Variable::make_result(to::add_scalar(a.value(), s), {an},
                               [an](Node& n) { an->accumulate_grad(n.grad); });
}

Variable mul_scalar(const Variable& a, float s) {
  auto an = a.node();
  return Variable::make_result(
      to::mul_scalar(a.value(), s), {an},
      [an, s](Node& n) { an->accumulate_grad(to::mul_scalar(n.grad, s)); });
}

Variable neg(const Variable& a) { return mul_scalar(a, -1.f); }

Variable relu(const Variable& a) {
  auto an = a.node();
  Tensor mask = to::relu_mask(a.value());
  return Variable::make_result(to::relu(a.value()), {an},
                               [an, mask](Node& n) {
                                 an->accumulate_grad(to::mul(n.grad, mask));
                               });
}

Variable sigmoid(const Variable& a) {
  auto an = a.node();
  Tensor y = to::sigmoid(a.value());
  return Variable::make_result(y, {an}, [an, y](Node& n) {
    // dy/dx = y (1 - y)
    Tensor d = to::mul(y, to::add_scalar(to::neg(y), 1.f));
    an->accumulate_grad(to::mul(n.grad, d));
  });
}

Variable tanh(const Variable& a) {
  auto an = a.node();
  Tensor y = to::tanh(a.value());
  return Variable::make_result(y, {an}, [an, y](Node& n) {
    Tensor d = to::add_scalar(to::neg(to::mul(y, y)), 1.f);
    an->accumulate_grad(to::mul(n.grad, d));
  });
}

Variable exp(const Variable& a) {
  auto an = a.node();
  Tensor y = to::exp(a.value());
  return Variable::make_result(y, {an}, [an, y](Node& n) {
    an->accumulate_grad(to::mul(n.grad, y));
  });
}

Variable log(const Variable& a) {
  auto an = a.node();
  Tensor x = a.value();
  return Variable::make_result(to::log(x), {an}, [an, x](Node& n) {
    an->accumulate_grad(to::div(n.grad, x));
  });
}

Variable mul_const(const Variable& a, const Tensor& mask) {
  auto an = a.node();
  Tensor m = mask;
  return Variable::make_result(to::mul(a.value(), m), {an}, [an, m](Node& n) {
    an->accumulate_grad(to::mul(n.grad, m));
  });
}

Variable dropout(const Variable& a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.f) return a;
  HOGA_CHECK(p < 1.f, "dropout: p must be < 1");
  Tensor mask(a.shape());
  const float scale = 1.f / (1.f - p);
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng.bernoulli(p) ? 0.f : scale;
  }
  return mul_const(a, mask);
}

Variable matmul(const Variable& a, const Variable& b, bool trans_a,
                bool trans_b) {
  auto an = a.node();
  auto bn = b.node();
  return Variable::make_result(
      to::matmul(a.value(), b.value(), trans_a, trans_b), {an, bn},
      [an, bn, trans_a, trans_b](Node& n) {
        const Tensor& g = n.grad;
        if (an->requires_grad) {
          Tensor da = trans_a ? to::matmul(bn->value, g, trans_b, true)
                              : to::matmul(g, bn->value, false, !trans_b);
          an->accumulate_grad(da);
        }
        if (bn->requires_grad) {
          Tensor db = trans_b ? to::matmul(g, an->value, true, trans_a)
                              : to::matmul(an->value, g, !trans_a, false);
          bn->accumulate_grad(db);
        }
      });
}

Variable bmm(const Variable& a, const Variable& b, bool trans_a,
             bool trans_b) {
  auto an = a.node();
  auto bn = b.node();
  return Variable::make_result(
      to::bmm(a.value(), b.value(), trans_a, trans_b), {an, bn},
      [an, bn, trans_a, trans_b](Node& n) {
        const Tensor& g = n.grad;
        if (an->requires_grad) {
          Tensor da = trans_a ? to::bmm(bn->value, g, trans_b, true)
                              : to::bmm(g, bn->value, false, !trans_b);
          an->accumulate_grad(da);
        }
        if (bn->requires_grad) {
          Tensor db = trans_b ? to::bmm(g, an->value, true, trans_a)
                              : to::bmm(an->value, g, !trans_a, false);
          bn->accumulate_grad(db);
        }
      });
}

Variable reshape(const Variable& a, Shape new_shape) {
  auto an = a.node();
  Shape orig = a.shape();
  return Variable::make_result(a.value().reshape(std::move(new_shape)), {an},
                               [an, orig](Node& n) {
                                 an->accumulate_grad(n.grad.reshape(orig));
                               });
}

Variable concat_cols(const std::vector<Variable>& parts) {
  HOGA_CHECK(!parts.empty(), "concat_cols: empty input");
  std::vector<Tensor> vals;
  std::vector<std::shared_ptr<Node>> parents;
  std::vector<std::int64_t> widths;
  for (const auto& p : parts) {
    vals.push_back(p.value());
    parents.push_back(p.node());
    widths.push_back(p.value().size(1));
  }
  return Variable::make_result(
      to::concat_cols(vals), parents, [widths](Node& n) {
        std::int64_t lo = 0;
        for (std::size_t i = 0; i < n.parents.size(); ++i) {
          const std::int64_t hi = lo + widths[i];
          if (n.parents[i]->requires_grad) {
            n.parents[i]->accumulate_grad(to::slice_cols(n.grad, lo, hi));
          }
          lo = hi;
        }
      });
}

Variable slice_cols(const Variable& a, std::int64_t lo, std::int64_t hi) {
  auto an = a.node();
  return Variable::make_result(
      to::slice_cols(a.value(), lo, hi), {an}, [an, lo, hi](Node& n) {
        Tensor g = Tensor::zeros(an->value.shape());
        const std::int64_t d = an->value.size(1);
        const std::int64_t w = hi - lo;
        for (std::int64_t i = 0; i < an->value.size(0); ++i) {
          for (std::int64_t j = 0; j < w; ++j) {
            g.data()[i * d + lo + j] = n.grad.data()[i * w + j];
          }
        }
        an->accumulate_grad(g);
      });
}

Variable concat_rows(const std::vector<Variable>& parts) {
  HOGA_CHECK(!parts.empty(), "concat_rows: empty input");
  std::vector<Tensor> vals;
  std::vector<std::shared_ptr<Node>> parents;
  std::vector<std::int64_t> rows;
  for (const auto& p : parts) {
    vals.push_back(p.value());
    parents.push_back(p.node());
    rows.push_back(p.value().size(0));
  }
  return Variable::make_result(
      to::concat_rows(vals), parents, [rows](Node& n) {
        std::int64_t lo = 0;
        for (std::size_t i = 0; i < n.parents.size(); ++i) {
          const std::int64_t hi = lo + rows[i];
          if (n.parents[i]->requires_grad) {
            n.parents[i]->accumulate_grad(
                to::slice_rows(n.grad, lo, hi).reshape(
                    n.parents[i]->value.shape()));
          }
          lo = hi;
        }
      });
}

Variable slice_rows(const Variable& a, std::int64_t lo, std::int64_t hi) {
  auto an = a.node();
  return Variable::make_result(
      to::slice_rows(a.value(), lo, hi), {an}, [an, lo, hi](Node& n) {
        Tensor g = Tensor::zeros(an->value.shape());
        const std::int64_t stride =
            an->value.numel() / std::max<std::int64_t>(1, an->value.size(0));
        std::copy(n.grad.data(), n.grad.data() + n.grad.numel(),
                  g.data() + lo * stride);
        (void)hi;
        an->accumulate_grad(g);
      });
}

Variable gather_rows(const Variable& a, std::vector<std::int64_t> idx) {
  auto an = a.node();
  auto idx_ptr = std::make_shared<std::vector<std::int64_t>>(std::move(idx));
  return Variable::make_result(
      to::gather_rows(a.value(), *idx_ptr), {an}, [an, idx_ptr](Node& n) {
        Tensor g = Tensor::zeros(an->value.shape());
        to::scatter_add_rows(g, *idx_ptr, n.grad);
        an->accumulate_grad(g);
      });
}

Variable softmax_lastdim(const Variable& a) {
  auto an = a.node();
  Tensor y = to::softmax_lastdim(a.value());
  return Variable::make_result(y, {an}, [an, y](Node& n) {
    // dx = y * (g - sum(g * y, lastdim))
    const std::int64_t d = y.size(-1);
    const std::int64_t outer = y.numel() / d;
    Tensor dx(y.shape());
    for (std::int64_t i = 0; i < outer; ++i) {
      const float* py = y.data() + i * d;
      const float* pg = n.grad.data() + i * d;
      float* pd = dx.data() + i * d;
      double dot = 0;
      for (std::int64_t j = 0; j < d; ++j) dot += pg[j] * py[j];
      for (std::int64_t j = 0; j < d; ++j) {
        pd[j] = py[j] * (pg[j] - static_cast<float>(dot));
      }
    }
    an->accumulate_grad(dx);
  });
}

Variable layer_norm_lastdim(const Variable& a, float eps) {
  auto an = a.node();
  auto r = to::layer_norm_lastdim(a.value(), eps);
  Tensor y = r.y;
  Tensor rstd = r.rstd;
  return Variable::make_result(y, {an}, [an, y, rstd](Node& n) {
    // dx = rstd * (g - mean(g) - y * mean(g * y)) per row.
    const std::int64_t d = y.size(-1);
    const std::int64_t outer = y.numel() / d;
    Tensor dx(y.shape());
    for (std::int64_t i = 0; i < outer; ++i) {
      const float* py = y.data() + i * d;
      const float* pg = n.grad.data() + i * d;
      float* pd = dx.data() + i * d;
      double gsum = 0, gysum = 0;
      for (std::int64_t j = 0; j < d; ++j) {
        gsum += pg[j];
        gysum += pg[j] * py[j];
      }
      const float gmean = static_cast<float>(gsum / d);
      const float gymean = static_cast<float>(gysum / d);
      const float rs = rstd.data()[i];
      for (std::int64_t j = 0; j < d; ++j) {
        pd[j] = rs * (pg[j] - gmean - py[j] * gymean);
      }
    }
    an->accumulate_grad(dx);
  });
}

Variable layer_norm_affine(const Variable& x, const Variable& gamma,
                           const Variable& beta, float eps) {
  const Tensor& xv = x.value();
  HOGA_CHECK(xv.dim() >= 1 && xv.size(-1) > 0, "layer_norm_affine: bad shape");
  const std::int64_t d = xv.size(-1);
  HOGA_CHECK(gamma.value().numel() == d && beta.value().numel() == d,
             "layer_norm_affine: gamma/beta must be [" << d << "]");
  const std::int64_t rows = xv.numel() / d;
  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  Tensor y = Tensor::empty(xv.shape());
  Shape stat_shape(xv.shape().begin(), xv.shape().end() - 1);
  if (stat_shape.empty()) stat_shape = {1};
  Tensor mean = Tensor::empty(stat_shape);
  Tensor rstd = Tensor::empty(stat_shape);
  Tensor xhat = Tensor::empty(xv.shape());
  kernels::layer_norm_rows(xv.data(), rows, d, eps, gamma.value().data(),
                           beta.value().data(), y.data(), mean.data(),
                           rstd.data(), xhat.data());
  return Variable::make_result(
      y, {xn, gn, bn}, [xn, gn, bn, xhat, rstd, rows, d](Node& n) {
        const float* g = n.grad.data();
        const float* xh = xhat.data();
        if (bn->requires_grad) {
          Tensor dbeta = Tensor::zeros({d});
          float* pdb = dbeta.data();
          for (std::int64_t i = 0; i < rows; ++i) {
            const float* gr = g + i * d;
            for (std::int64_t j = 0; j < d; ++j) pdb[j] += gr[j];
          }
          bn->accumulate_grad(dbeta);
        }
        if (gn->requires_grad) {
          Tensor dgamma = Tensor::zeros({d});
          float* pdg = dgamma.data();
          for (std::int64_t i = 0; i < rows; ++i) {
            const float* gr = g + i * d;
            const float* xr = xh + i * d;
            for (std::int64_t j = 0; j < d; ++j) pdg[j] += gr[j] * xr[j];
          }
          gn->accumulate_grad(dgamma);
        }
        if (xn->requires_grad) {
          // dx̂ = g * gamma;  dx = rstd * (dx̂ - mean(dx̂) - x̂ * mean(dx̂ x̂)).
          const float* gam = gn->value.data();
          Tensor dx = Tensor::empty(xhat.shape());
          for (std::int64_t i = 0; i < rows; ++i) {
            const float* gr = g + i * d;
            const float* xr = xh + i * d;
            float* pd = dx.data() + i * d;
            double s1 = 0, s2 = 0;
            for (std::int64_t j = 0; j < d; ++j) {
              const double dxh = static_cast<double>(gr[j]) * gam[j];
              s1 += dxh;
              s2 += dxh * xr[j];
            }
            const float m1 = static_cast<float>(s1 / d);
            const float m2 = static_cast<float>(s2 / d);
            const float rs = rstd.data()[i];
            for (std::int64_t j = 0; j < d; ++j) {
              pd[j] = rs * (gr[j] * gam[j] - m1 - xr[j] * m2);
            }
          }
          xn->accumulate_grad(dx);
        }
      });
}

Variable attention_scores(const Variable& q, const Variable& k) {
  const Tensor& qv = q.value();
  const Tensor& kv = k.value();
  HOGA_CHECK(qv.dim() == 3 && kv.dim() == 3 && qv.shape() == kv.shape(),
             "attention_scores: need matching 3-D q/k, got "
                 << shape_to_string(qv.shape()) << " and "
                 << shape_to_string(kv.shape()));
  const std::int64_t B = qv.size(0);
  const std::int64_t m = qv.size(1);
  const std::int64_t dk = qv.size(2);
  auto qn = q.node();
  auto kn = k.node();
  // Logits land in the output tensor and are softmaxed in place: no
  // intermediate [B, m, m] logits allocation survives the op.
  Tensor y = Tensor::empty({B, m, m});
  kernels::gemm_batched(qv.data(), kv.data(), y.data(), B, m, m, dk, dk, dk,
                        m * dk, m * dk, m * m, /*trans_a=*/false,
                        /*trans_b=*/true);
  kernels::softmax_rows(y.data(), y.data(), B * m, m);
  return Variable::make_result(y, {qn, kn}, [qn, kn, y, B, m, dk](Node& n) {
    // Softmax backward per row into scratch, then two batched GEMMs:
    // dq = gl @ k and dk = glᵀ @ q.
    Scratch gl(B * m * m);
    const float* py = y.data();
    const float* pg = n.grad.data();
    float* pl = gl.data();
    for (std::int64_t r = 0; r < B * m; ++r) {
      const float* yr = py + r * m;
      const float* gr = pg + r * m;
      float* lr = pl + r * m;
      double dot = 0;
      for (std::int64_t j = 0; j < m; ++j) dot += gr[j] * yr[j];
      for (std::int64_t j = 0; j < m; ++j) {
        lr[j] = yr[j] * (gr[j] - static_cast<float>(dot));
      }
    }
    if (qn->requires_grad) {
      Tensor dq = Tensor::empty(qn->value.shape());
      kernels::gemm_batched(pl, kn->value.data(), dq.data(), B, m, dk, m, m,
                            dk, m * m, m * dk, m * dk, /*trans_a=*/false,
                            /*trans_b=*/false);
      qn->accumulate_grad(dq);
    }
    if (kn->requires_grad) {
      Tensor dkv = Tensor::empty(kn->value.shape());
      kernels::gemm_batched(pl, qn->value.data(), dkv.data(), B, m, dk, m, m,
                            dk, m * m, m * dk, m * dk, /*trans_a=*/true,
                            /*trans_b=*/false);
      kn->accumulate_grad(dkv);
    }
  });
}

Variable sum_all(const Variable& a) {
  auto an = a.node();
  Tensor out({1});
  out.data()[0] = to::sum_all(a.value());
  return Variable::make_result(out, {an}, [an](Node& n) {
    an->accumulate_grad(
        Tensor::full(an->value.shape(), n.grad.data()[0]));
  });
}

Variable mean_all(const Variable& a) {
  const float inv = 1.f / static_cast<float>(a.numel());
  return mul_scalar(sum_all(a), inv);
}

Variable mean_axis0(const Variable& a) {
  auto an = a.node();
  HOGA_CHECK(a.value().dim() == 2, "mean_axis0: need 2-D");
  const std::int64_t n_rows = a.size(0);
  Tensor out = to::mul_scalar(to::sum_axis0(a.value()),
                              1.f / static_cast<float>(n_rows));
  return Variable::make_result(out, {an}, [an, n_rows](Node& n) {
    const std::int64_t d = an->value.size(1);
    Tensor g(an->value.shape());
    const float inv = 1.f / static_cast<float>(n_rows);
    for (std::int64_t i = 0; i < n_rows; ++i) {
      for (std::int64_t j = 0; j < d; ++j) {
        g.data()[i * d + j] = n.grad.data()[j] * inv;
      }
    }
    an->accumulate_grad(g);
  });
}

Variable max_axis0(const Variable& a) {
  auto an = a.node();
  HOGA_CHECK(a.value().dim() == 2 && a.size(0) > 0, "max_axis0: need 2-D");
  const std::int64_t n_rows = a.size(0), d = a.size(1);
  Tensor out({d});
  auto argmax = std::make_shared<std::vector<std::int64_t>>(d, 0);
  for (std::int64_t j = 0; j < d; ++j) {
    float best = a.value().data()[j];
    for (std::int64_t i = 1; i < n_rows; ++i) {
      const float v = a.value().data()[i * d + j];
      if (v > best) {
        best = v;
        (*argmax)[j] = i;
      }
    }
    out.data()[j] = best;
  }
  return Variable::make_result(out, {an}, [an, argmax](Node& n) {
    const std::int64_t d = an->value.size(1);
    Tensor g = Tensor::zeros(an->value.shape());
    for (std::int64_t j = 0; j < d; ++j) {
      g.data()[(*argmax)[j] * d + j] = n.grad.data()[j];
    }
    an->accumulate_grad(g);
  });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  auto an = pred.node();
  HOGA_CHECK(pred.value().shape() == target.shape(),
             "mse_loss: shape mismatch");
  Tensor diff = to::sub(pred.value(), target);
  Tensor out({1});
  double s = 0;
  for (std::int64_t i = 0; i < diff.numel(); ++i) {
    s += static_cast<double>(diff.data()[i]) * diff.data()[i];
  }
  out.data()[0] = static_cast<float>(s / diff.numel());
  return Variable::make_result(out, {an}, [an, diff](Node& n) {
    const float scale = 2.f * n.grad.data()[0] / diff.numel();
    an->accumulate_grad(to::mul_scalar(diff, scale));
  });
}

Variable mae_loss(const Variable& pred, const Tensor& target) {
  auto an = pred.node();
  HOGA_CHECK(pred.value().shape() == target.shape(),
             "mae_loss: shape mismatch");
  Tensor diff = to::sub(pred.value(), target);
  Tensor out({1});
  double s = 0;
  for (std::int64_t i = 0; i < diff.numel(); ++i) {
    s += std::fabs(diff.data()[i]);
  }
  out.data()[0] = static_cast<float>(s / diff.numel());
  return Variable::make_result(out, {an}, [an, diff](Node& n) {
    const float scale = n.grad.data()[0] / diff.numel();
    Tensor g(diff.shape());
    for (std::int64_t i = 0; i < diff.numel(); ++i) {
      g.data()[i] = (diff.data()[i] > 0.f ? scale
                     : diff.data()[i] < 0.f ? -scale
                                            : 0.f);
    }
    an->accumulate_grad(g);
  });
}

Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<int>& labels,
                               const std::vector<float>& class_weights) {
  auto an = logits.node();
  HOGA_CHECK(logits.value().dim() == 2, "cross_entropy: logits must be 2-D");
  const std::int64_t n_rows = logits.size(0);
  const std::int64_t c = logits.size(1);
  HOGA_CHECK(static_cast<std::int64_t>(labels.size()) == n_rows,
             "cross_entropy: labels size mismatch");
  if (!class_weights.empty()) {
    HOGA_CHECK(static_cast<std::int64_t>(class_weights.size()) == c,
               "cross_entropy: class_weights size mismatch");
  }
  Tensor probs = to::softmax_lastdim(logits.value());
  double total_w = 0, loss = 0;
  std::vector<float> sample_w(static_cast<std::size_t>(n_rows), 1.f);
  for (std::int64_t i = 0; i < n_rows; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    HOGA_CHECK(y >= 0 && y < c, "cross_entropy: label " << y << " out of range");
    const float w = class_weights.empty()
                        ? 1.f
                        : class_weights[static_cast<std::size_t>(y)];
    sample_w[static_cast<std::size_t>(i)] = w;
    total_w += w;
    loss -= w * std::log(std::max(1e-12f, probs.data()[i * c + y]));
  }
  HOGA_CHECK(total_w > 0, "cross_entropy: total weight is zero");
  Tensor out({1});
  out.data()[0] = static_cast<float>(loss / total_w);
  auto labels_ptr = std::make_shared<std::vector<int>>(labels);
  auto w_ptr = std::make_shared<std::vector<float>>(std::move(sample_w));
  const float inv_total = static_cast<float>(1.0 / total_w);
  return Variable::make_result(
      out, {an}, [an, probs, labels_ptr, w_ptr, inv_total, c](Node& n) {
        const float seed = n.grad.data()[0];
        Tensor g = probs.clone();
        const std::int64_t n_rows = g.size(0);
        for (std::int64_t i = 0; i < n_rows; ++i) {
          const int y = (*labels_ptr)[static_cast<std::size_t>(i)];
          const float w = (*w_ptr)[static_cast<std::size_t>(i)];
          float* row = g.data() + i * c;
          row[y] -= 1.f;
          for (std::int64_t j = 0; j < c; ++j) {
            row[j] *= seed * w * inv_total;
          }
        }
        an->accumulate_grad(g);
      });
}

}  // namespace hoga::ag
