#pragma once
// Differentiable operations over Variables.
//
// Each op computes its value with the raw kernels in tensor/ops.hpp and
// registers a backward closure. Gradients are accumulated (+=) so diamond
// patterns and parameter reuse are handled naturally.

#include <vector>

#include "autograd/variable.hpp"

namespace hoga::ag {

/// Wraps a tensor as a non-differentiable constant.
Variable constant(Tensor t);

// -- Elementwise binary (suffix broadcast, see tensor/ops.hpp) ---------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);

// -- Scalar -------------------------------------------------------------
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);
Variable neg(const Variable& a);

// -- Elementwise unary --------------------------------------------------------
Variable relu(const Variable& a);
Variable sigmoid(const Variable& a);
Variable tanh(const Variable& a);
Variable exp(const Variable& a);
Variable log(const Variable& a);

/// Multiply by a constant mask (dropout and similar); mask is not a parent.
Variable mul_const(const Variable& a, const Tensor& mask);

/// Inverted dropout: scales surviving activations by 1/(1-p). Identity when
/// !training or p == 0.
Variable dropout(const Variable& a, float p, Rng& rng, bool training);

// -- Linear algebra -----------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b, bool trans_a = false,
                bool trans_b = false);
Variable bmm(const Variable& a, const Variable& b, bool trans_a = false,
             bool trans_b = false);

// -- Shape ---------------------------------------------------------------
Variable reshape(const Variable& a, Shape new_shape);
Variable concat_cols(const std::vector<Variable>& parts);
Variable slice_cols(const Variable& a, std::int64_t lo, std::int64_t hi);
Variable concat_rows(const std::vector<Variable>& parts);
Variable slice_rows(const Variable& a, std::int64_t lo, std::int64_t hi);
Variable gather_rows(const Variable& a, std::vector<std::int64_t> idx);

// -- Normalization -----------------------------------------------------------
Variable softmax_lastdim(const Variable& a);
/// LayerNorm over the last axis without affine parameters.
Variable layer_norm_lastdim(const Variable& a, float eps = 1e-5f);
/// Fused LayerNorm + affine: y = x̂ * gamma + beta with x̂ the normalized
/// input. One kernel pass and one backward closure — replaces the
/// layer_norm → mul → add chain (which materialized two intermediates and
/// reduced the broadcast grads with modulo loops). gamma/beta are [d].
Variable layer_norm_affine(const Variable& x, const Variable& gamma,
                           const Variable& beta, float eps = 1e-5f);

// -- Fused attention ----------------------------------------------------------
/// softmax(q @ kᵀ) over the last axis, batched: q and k are [B, m, d] ->
/// [B, m, m]. Fuses the bmm and softmax (the GEMM output is softmaxed in
/// place — no logits tensor) and backward runs two batched GEMMs instead of
/// the bmm/softmax closure pair.
Variable attention_scores(const Variable& q, const Variable& k);

// -- Reductions ----------------------------------------------------------
Variable sum_all(const Variable& a);
Variable mean_all(const Variable& a);
/// Mean over axis 0 of a 2-D input -> [d]. Used for graph-level pooling.
Variable mean_axis0(const Variable& a);
/// Max over axis 0 of a 2-D input -> [d] (subgradient to argmax rows).
Variable max_axis0(const Variable& a);

// -- Losses ---------------------------------------------------------------
/// Mean squared error against a constant target (same shape).
Variable mse_loss(const Variable& pred, const Tensor& target);
/// Mean absolute error against a constant target (same shape).
Variable mae_loss(const Variable& pred, const Tensor& target);
/// Softmax cross entropy. logits [n, c]; labels in [0, c). Optional per-class
/// weights (size c) reweight samples; loss is normalized by total weight.
Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<int>& labels,
                               const std::vector<float>& class_weights = {});

}  // namespace hoga::ag
