#pragma once
// Reverse-mode automatic differentiation.
//
// Define-by-run tape: every differentiable op allocates a Node holding the
// result value, links to its parents, and registers a closure that pushes
// the node's output gradient into the parents' gradients. Variable is a
// cheap shared handle to a Node.
//
// This is the training engine that stands in for PyTorch in the HOGA
// reproduction; tests gradient-check each op against central differences.

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace hoga::ag {

struct Node {
  Tensor value;
  Tensor grad;                 // allocated lazily on first accumulation
  bool requires_grad = false;  // true if this node or any ancestor is a leaf
                               // parameter
  bool is_leaf = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Reads this->grad and accumulates into parents' grads. Null for leaves
  // and non-differentiable constants.
  std::function<void(Node&)> backward_fn;

  /// Accumulates g into grad (allocating zeros first if needed).
  void accumulate_grad(const Tensor& g);
};

class Variable {
 public:
  /// Undefined variable (no node). defined() is false.
  Variable() = default;

  /// Wraps a tensor. requires_grad marks it a trainable leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return static_cast<bool>(node_); }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Shape& shape() const { return node_->value.shape(); }
  std::int64_t size(std::int64_t axis) const { return node_->value.size(axis); }
  std::int64_t numel() const { return node_->value.numel(); }

  bool requires_grad() const { return node_ && node_->requires_grad; }

  /// Gradient tensor; zeros if backward has not reached this node.
  const Tensor& grad() const;
  Tensor& mutable_grad();
  void zero_grad();

  /// Runs reverse-mode accumulation from this (scalar) variable with seed 1.
  void backward();
  /// Runs reverse-mode accumulation with an explicit seed gradient.
  void backward(const Tensor& seed);

  std::shared_ptr<Node> node() const { return node_; }

  /// Internal: creates a result variable from an op.
  static Variable make_result(Tensor value,
                              std::vector<std::shared_ptr<Node>> parents,
                              std::function<void(Node&)> backward_fn);

 private:
  std::shared_ptr<Node> node_;
};

}  // namespace hoga::ag
