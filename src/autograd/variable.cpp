#include "autograd/variable.hpp"

#include <algorithm>
#include <unordered_set>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace hoga::ag {

void Node::accumulate_grad(const Tensor& g) {
  if (grad.numel() == 0) {
    grad = Tensor::zeros(value.shape());
  }
  HOGA_CHECK(g.numel() == grad.numel(),
             "accumulate_grad: gradient numel mismatch");
  tensor_ops::axpy_inplace(grad, 1.f, g);
}

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

const Tensor& Variable::grad() const {
  HOGA_CHECK(node_, "grad() on undefined variable");
  if (node_->grad.numel() == 0) {
    node_->grad = Tensor::zeros(node_->value.shape());
  }
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  HOGA_CHECK(node_, "mutable_grad() on undefined variable");
  if (node_->grad.numel() == 0) {
    node_->grad = Tensor::zeros(node_->value.shape());
  }
  return node_->grad;
}

void Variable::zero_grad() {
  if (node_) node_->grad = Tensor();
}

void Variable::backward() {
  HOGA_CHECK(node_, "backward() on undefined variable");
  HOGA_CHECK(node_->value.numel() == 1,
             "backward() without seed requires a scalar; shape is "
                 << shape_to_string(node_->value.shape()));
  backward(Tensor::ones(node_->value.shape()));
}

void Variable::backward(const Tensor& seed) {
  HOGA_CHECK(node_, "backward() on undefined variable");
  HOGA_CHECK(seed.numel() == node_->value.numel(),
             "backward: seed numel mismatch");

  // Iterative post-order DFS to get a topological order over the subgraph of
  // nodes that require grad.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) {
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  node_->accumulate_grad(seed);
  // topo is post-order (parents before children); reverse iterate = children
  // (outputs) first.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.numel() != 0) {
      n->backward_fn(*n);
    }
  }
}

Variable Variable::make_result(Tensor value,
                               std::vector<std::shared_ptr<Node>> parents,
                               std::function<void(Node&)> backward_fn) {
  Variable v;
  v.node_ = std::make_shared<Node>();
  v.node_->value = std::move(value);
  bool rg = false;
  for (const auto& p : parents) rg = rg || (p && p->requires_grad);
  v.node_->requires_grad = rg;
  if (rg) {
    v.node_->parents = std::move(parents);
    v.node_->backward_fn = std::move(backward_fn);
  }
  return v;
}

}  // namespace hoga::ag
