#pragma once
// Finite-difference gradient checking for autograd ops; used heavily in the
// test suite to verify every backward rule.

#include <functional>
#include <vector>

#include "autograd/variable.hpp"

namespace hoga::ag {

struct GradCheckResult {
  bool ok = true;
  float max_abs_error = 0.f;
  float max_rel_error = 0.f;
  std::string detail;  // populated on failure
};

/// Checks d(sum-weighted scalar of f(inputs)) / d(inputs) against central
/// differences. `f` must return a Variable built only from the given inputs
/// and constants; all inputs must have requires_grad = true.
GradCheckResult grad_check(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    const std::vector<Variable>& inputs, float eps = 1e-3f,
    float atol = 2e-2f, float rtol = 5e-2f);

}  // namespace hoga::ag
