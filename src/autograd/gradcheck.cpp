#include "autograd/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "autograd/ops.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace hoga::ag {

GradCheckResult grad_check(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    const std::vector<Variable>& inputs, float eps, float atol, float rtol) {
  GradCheckResult result;

  // Deterministic weighting tensor turns a non-scalar output into a scalar:
  // s = sum_i w_i * out_i with w_i = sin(i + 1) so every output element
  // influences the loss distinctly.
  auto weighted_sum = [](const Variable& out) {
    Tensor w(out.shape());
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      w.data()[i] = std::sin(static_cast<float>(i) + 1.f);
    }
    return sum_all(mul_const(out, w));
  };

  // Analytic gradients.
  for (const auto& in : inputs) {
    HOGA_CHECK(in.requires_grad(), "grad_check: all inputs need grad");
    in.node()->grad = Tensor();
  }
  Variable loss = weighted_sum(f(inputs));
  loss.backward();
  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const auto& in : inputs) analytic.push_back(in.grad().clone());

  // Numeric gradients via central differences.
  auto eval = [&]() -> double {
    Variable out = weighted_sum(f(inputs));
    return out.value().data()[0];
  };
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    Tensor& x = inputs[t].node()->value;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      const float orig = x.data()[i];
      x.data()[i] = orig + eps;
      const double up = eval();
      x.data()[i] = orig - eps;
      const double down = eval();
      x.data()[i] = orig;
      const float numeric = static_cast<float>((up - down) / (2.0 * eps));
      const float exact = analytic[t].data()[i];
      const float abs_err = std::fabs(numeric - exact);
      const float rel_err =
          abs_err / std::max(1e-4f, std::max(std::fabs(numeric),
                                             std::fabs(exact)));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > atol && rel_err > rtol) {
        result.ok = false;
        if (result.detail.empty()) {
          std::ostringstream os;
          os << "input " << t << " element " << i << ": analytic " << exact
             << " vs numeric " << numeric;
          result.detail = os.str();
        }
      }
    }
  }
  return result;
}

}  // namespace hoga::ag
