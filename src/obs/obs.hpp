#pragma once
// hoga::obs — umbrella header and ambient observability context
// (DESIGN.md §10).
//
// Layers with explicit configuration (serve, the feature store) take
// MetricsRegistry/Tracer/RunLedger pointers in their config structs. Layers
// that are reached through free functions with settled signatures — the
// trainers, the fault hooks, the parallel scaling simulation — instead read
// an *ambient* Observability installed with ScopedObservability, mirroring
// how fault::ScopedInjector scopes an injector without threading it through
// every call. Null members are simply skipped, so uninstrumented runs pay
// one pointer test per site.

#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hoga::obs {

/// The ambient observability context: any member may be null. The ledger is
/// any LedgerSink — the single-file RunLedger or the rotating
/// storage::SegmentedLedger.
struct Observability {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  LedgerSink* ledger = nullptr;
};

/// The currently installed ambient context. Never null; members may be.
const Observability& ambient();

/// Installs `ctx` process-wide for this scope, restoring the previous
/// context on destruction. Same single-global pattern as
/// fault::ScopedInjector: scopes may nest but not overlap across threads.
class ScopedObservability {
 public:
  explicit ScopedObservability(Observability ctx);
  ~ScopedObservability();

  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

 private:
  Observability previous_;
};

/// Bumps `name` in the ambient registry (registering on first use). For hot
/// paths prefer resolving a Counter handle once; this is for cold sites like
/// fault hooks.
void count(const std::string& name, long long n = 1);

/// Records a point event on the innermost ambient span of the current
/// thread; no-op without an ambient tracer or open span.
void trace_event(const std::string& name);

/// Opens a span on the ambient tracer; returns an inert Span when no tracer
/// is installed.
Span ambient_span(const std::string& name);

/// Appends an event to the ambient ledger; no-op without one.
void ledger_event(const std::string& type, std::vector<LedgerField> fields);

}  // namespace hoga::obs
