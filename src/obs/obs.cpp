#include "obs/obs.hpp"

namespace hoga::obs {

namespace {
Observability g_ambient;
}  // namespace

const Observability& ambient() { return g_ambient; }

ScopedObservability::ScopedObservability(Observability ctx)
    : previous_(g_ambient) {
  g_ambient = ctx;
}

ScopedObservability::~ScopedObservability() { g_ambient = previous_; }

void count(const std::string& name, long long n) {
  if (g_ambient.metrics) g_ambient.metrics->counter(name).inc(n);
}

void trace_event(const std::string& name) {
  if (g_ambient.tracer) g_ambient.tracer->event(name);
}

Span ambient_span(const std::string& name) {
  if (!g_ambient.tracer) return Span();
  return g_ambient.tracer->span(name);
}

void ledger_event(const std::string& type, std::vector<LedgerField> fields) {
  if (g_ambient.ledger) g_ambient.ledger->event(type, std::move(fields));
}

}  // namespace hoga::obs
