#pragma once
// hoga::obs run ledger — a crash-safe, append-only JSONL record of what a
// run did (DESIGN.md §10).
//
// One line per event: an epoch finishing, a serve request completing, a
// feature-store access, a fault firing, a recovery action. Each line is a
// flat JSON object with a monotonically increasing "seq", a clock timestamp
// "ts_ns", a "type" tag, and the event's fields in the order the emitter
// listed them. Lines are written atomically with respect to crashes in the
// sense that a line is either fully present or absent: the ledger formats
// the complete line in memory, then issues a single fwrite + fflush, so a
// crash can at worst truncate the final line (and a truncated tail is
// detectable — it has no trailing newline and fails to parse).
//
// close() appends a footer line carrying the event count and a CRC32 over
// every byte written before the footer. A reader that finds the footer can
// verify the whole file; a reader that doesn't (the process died mid-run)
// still gets every complete event line — crash residue is useful, not
// poison. That mirrors the checkpoint formats ("hoga-ckpt v2"), which also
// end with an integrity trailer.
//
// Determinism: with a FakeClock and a scripted schedule, ledger bytes are
// identical across runs. Doubles are formatted with the shortest
// round-trippable form, so reading a ledger back reconstructs exact values
// (the fig5 scaling test asserts ScalingPoint equality through the ledger).

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/clock.hpp"
#include "obs/json.hpp"

namespace hoga::obs {

/// One field of a ledger event; emission order is preserved.
struct LedgerField {
  std::string key;
  detail::JsonScalar value;

  LedgerField(std::string k, long long v) : key(std::move(k)), value(v) {}
  LedgerField(std::string k, int v)
      : key(std::move(k)), value(static_cast<long long>(v)) {}
  LedgerField(std::string k, std::size_t v)
      : key(std::move(k)), value(static_cast<long long>(v)) {}
  LedgerField(std::string k, double v) : key(std::move(k)), value(v) {}
  LedgerField(std::string k, bool v) : key(std::move(k)), value(v) {}
  LedgerField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LedgerField(std::string k, const char* v)
      : key(std::move(k)), value(std::string(v)) {}
};

/// A parsed ledger event (see RunLedger::read).
struct LedgerEvent {
  long long seq = 0;
  std::uint64_t ts_ns = 0;
  std::string type;
  std::vector<std::pair<std::string, detail::JsonScalar>> fields;

  const detail::JsonScalar* find(const std::string& key) const;
  /// Typed accessors; HOGA_CHECK-fail when the field is absent or mistyped.
  long long int_field(const std::string& key) const;
  double double_field(const std::string& key) const;
  std::string string_field(const std::string& key) const;
};

/// Result of reading a ledger file back.
struct LedgerReadResult {
  std::vector<LedgerEvent> events;
  bool footer_present = false;
  bool footer_valid = false;   // count and CRC both match
  std::size_t skipped_lines = 0;  // unparseable lines (e.g. truncated tail)
  // Raw footer fields, for segment readers that chain CRCs across files
  // (storage::SegmentedLedger). Empty when absent from the footer.
  std::string footer_crc32;
  std::string footer_chain;
};

/// Anything that accepts ledger events. RunLedger below is the single-file
/// implementation; storage::SegmentedLedger (DESIGN.md §12) is the rotating,
/// compacting one for long-lived services. Consumers (the ambient
/// Observability context, ServeConfig) hold a LedgerSink* so either can be
/// wired in.
class LedgerSink {
 public:
  virtual ~LedgerSink() = default;
  /// Appends one event; must be thread-safe.
  virtual void event(const std::string& type,
                     std::vector<LedgerField> fields) = 0;
};

/// Formats one event line exactly as RunLedger writes it. Shared with the
/// segmented ledger so every segment file stays RunLedger::read-compatible.
std::string format_ledger_line(long long seq, std::uint64_t ts_ns,
                               const std::string& type,
                               const std::vector<LedgerField>& fields);

class RunLedger : public LedgerSink {
 public:
  /// Opens `path` for writing, truncating any previous content. `clock`
  /// must outlive the ledger; defaults to the shared SteadyClock.
  explicit RunLedger(const std::string& path, Clock* clock = nullptr);

  /// Closes (writing the footer) if still open.
  ~RunLedger();

  RunLedger(const RunLedger&) = delete;
  RunLedger& operator=(const RunLedger&) = delete;

  /// Appends one event line; thread-safe; no-op after close().
  void event(const std::string& type,
             std::vector<LedgerField> fields) override;

  /// Events written so far (excluding the footer).
  long long events_written() const;

  /// Writes the CRC footer and closes the file. Idempotent.
  void close();

  const std::string& path() const { return path_; }

  /// Parses a ledger file. Complete event lines are returned even when the
  /// footer is missing or wrong (crash residue); malformed lines are
  /// counted, not fatal. Throws only if the file cannot be opened.
  static LedgerReadResult read(const std::string& path);

 private:
  std::string path_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  long long seq_ = 0;
  std::uint32_t crc_state_;
};

}  // namespace hoga::obs
