#pragma once
// Pluggable time source for the observability subsystem (DESIGN.md §10).
//
// Every timestamp obs records — span start/end, span events, histogram
// latency samples, ledger event times — flows through a Clock. Production
// uses SteadyClock (a monotonic wall clock); tests and fault-injection runs
// swap in a FakeClock whose readings are a pure function of its seed and
// step, so a scripted schedule produces *byte-identical* span trees,
// metrics snapshots, and ledgers across runs. Determinism of the trace is
// exactly determinism of the clock-call sequence: single-client scripted
// schedules totally order every now_ns() call, so FakeClock readings are
// reproducible even though the serving runtime hops between the caller
// thread and a pool worker.
//
// Clocks deliberately have no relation to the deadlines and breaker timers
// in hoga::serve — those stay on std::chrono::steady_clock, because a
// request must time out in real time even when the observable timestamps
// are fake.

#include <cstdint>
#include <mutex>

#include "util/rng.hpp"

namespace hoga::obs {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds from an arbitrary but fixed origin; monotone non-decreasing.
  virtual std::uint64_t now_ns() = 0;
};

/// std::chrono::steady_clock, rebased so the first reading in the process is
/// near zero (keeps exported timestamps short and diffable).
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() override;
  /// Shared instance used whenever no clock is configured.
  static SteadyClock& instance();
};

/// Deterministic clock: each now_ns() returns the current time and advances
/// it by `step_ns`, optionally plus a seeded pseudo-random jitter in
/// [0, jitter_ns]. Two FakeClocks with the same constructor arguments
/// produce the same reading sequence — the bit-reproducibility contract the
/// determinism tests rely on. Thread-safe.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0, std::uint64_t step_ns = 1000,
                     std::uint64_t jitter_seed = 0,
                     std::uint64_t jitter_ns = 0);

  std::uint64_t now_ns() override;

  /// Manually advances the clock without consuming a reading.
  void advance(std::uint64_t ns);

 private:
  std::mutex mu_;
  std::uint64_t now_;
  std::uint64_t step_;
  std::uint64_t jitter_ns_;
  Rng rng_;
};

}  // namespace hoga::obs
