#pragma once
// hoga::obs tracing — RAII spans with parent/child nesting, a pluggable
// clock, and a bounded in-memory buffer of finished spans (DESIGN.md §10).
//
// A Span marks a timed region: construction records the start timestamp,
// destruction records the end and moves the finished record into the
// tracer's buffer. Nesting is tracked two ways:
//
//   - implicitly, via a thread-local stack: a span opened on a thread while
//     another span from the *same tracer* is open on that thread becomes its
//     child. This covers ordinary lexical nesting (epoch -> checkpoint).
//   - explicitly, via Tracer::span(name, parent_id): the serving runtime
//     opens the forward-execution span on a pool worker as a child of the
//     request span that lives on the caller thread, where TLS can't see the
//     parent.
//
// Spans can carry string attributes and point events (a named timestamp on
// the span, used by the fault layer to mark injected faults). Finished
// spans land in a bounded deque — when full, the oldest are dropped and
// counted, never blocking the hot path. export_jsonl() serializes finished
// spans sorted by (start_ns, span_id), which under a FakeClock is a total
// order: byte-identical across identical scripted runs.
//
// Sampling: a tracer can keep only 1-in-N finished spans (TraceSampling),
// for services where full tracing is too much retention. The decision is
// deterministic — a seeded mix of the span id, not a global RNG — so a
// scripted run keeps the identical subset every time, and spans marked
// set_error() are ALWAYS kept: the traces worth debugging survive any
// sampling rate. Kept/skipped tallies are mirrored to the ambient counters
// "trace.sampled" / "trace.skipped" (only when sampling is active, so the
// default configuration adds zero per-span overhead).

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace hoga::obs {

class Tracer;

/// A finished span as stored in the tracer's buffer.
struct SpanRecord {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  struct Event {
    std::string name;
    std::uint64_t ts_ns = 0;
  };
  std::vector<Event> events;
  bool error = false;  // set via Span::set_error; exempt from sampling
};

/// 1-in-N span sampling (see file comment). keep_one_in <= 1 keeps all.
struct TraceSampling {
  long long keep_one_in = 1;
  std::uint64_t seed = 0;  // varies which subset survives, deterministically
};

/// RAII handle for an open span. Move-only; a moved-from or default span is
/// inert. End happens at destruction (or explicitly via end()).
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return record_.span_id; }

  /// Attaches a string attribute (kept in insertion order).
  void set_attr(const std::string& key, const std::string& value);

  /// Records a named point event at the current clock reading.
  void add_event(const std::string& name);

  /// Marks the span as an error (recording `message` as an "error" attr).
  /// Error spans bypass sampling — they are always retained.
  void set_error(const std::string& message);

  /// Finishes the span now; further calls are no-ops.
  void end();

 private:
  friend class Tracer;
  // Registers this span on the current thread's open-span stack; the span
  // must be ended on the thread that opened it.
  Span(Tracer* tracer, SpanRecord record);

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

class Tracer {
 public:
  /// `clock` must outlive the tracer; defaults to the shared SteadyClock.
  /// `capacity` bounds the finished-span buffer.
  explicit Tracer(Clock* clock = nullptr, std::size_t capacity = 4096);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span. Parent is the innermost span of *this* tracer open on
  /// the current thread, if any.
  Span span(const std::string& name);

  /// Opens a span with an explicit parent (0 = root). Used when the logical
  /// parent is open on a different thread. The new span still becomes the
  /// implicit parent for further spans on the current thread.
  Span span(const std::string& name, std::uint64_t parent_id);

  /// Records a named point event on the innermost span of this tracer open
  /// on the current thread; no-op when none is open. This is how layers that
  /// never hold a Span object (the fault hooks) annotate whatever span is
  /// active around them.
  void event(const std::string& name);

  Clock& clock() { return *clock_; }

  /// Installs a sampling policy for spans finishing from now on. Open spans
  /// are sampled at their end, under whatever policy is current then.
  void set_sampling(TraceSampling sampling);
  TraceSampling sampling() const;

  /// Spans kept / skipped by an active sampling policy (both stay zero when
  /// sampling is off).
  long long sampled() const;
  long long skipped() const;

  /// Finished spans dropped because the buffer was full.
  long long dropped() const;

  /// Finished spans currently buffered.
  std::size_t size() const;

  /// Snapshot of the buffered finished spans sorted by (start_ns, span_id).
  std::vector<SpanRecord> finished() const;

  /// One JSON object per line per finished span, in finished() order.
  /// Deterministic under FakeClock.
  std::string export_jsonl() const;

  /// Clears buffered spans and the dropped counter. Open spans are
  /// unaffected (they land in the buffer when they end).
  void clear();

 private:
  friend class Span;
  void finish(SpanRecord record);
  std::uint64_t current_parent() const;

  Clock* clock_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::deque<SpanRecord> finished_;
  long long dropped_ = 0;
  TraceSampling sampling_;
  long long sampled_ = 0;
  long long skipped_ = 0;
};

}  // namespace hoga::obs
