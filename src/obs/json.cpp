#include "obs/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hoga::obs::detail {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::optional<std::string> json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        char hex[5] = {s[i + 1], s[i + 2], s[i + 3], s[i + 4], '\0'};
        char* end = nullptr;
        const unsigned long code = std::strtoul(hex, &end, 16);
        if (end != hex + 4 || code > 0xFF) return std::nullopt;  // ASCII only
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[40];
  // Integral values print as plain integers ("10", not the shortest-%g
  // "1e+01"); they parse back as JSON integers, which numeric readers
  // accept as the same value.
  if (v >= -9007199254740992.0 && v <= 9007199254740992.0 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

const JsonObject::Member* JsonObject::find(const std::string& key) const {
  for (const auto& m : members) {
    if (m.key == key) return &m;
  }
  return nullptr;
}

namespace {

/// Strict cursor-based parser for the emitted subset.
struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  bool consume(char c) {
    if (eof() || s[i] != c) return false;
    ++i;
    return true;
  }
};

bool parse_string(Cursor& c, std::string* out) {
  if (!c.consume('"')) return false;
  std::string raw;
  while (!c.eof() && c.peek() != '"') {
    if (c.peek() == '\\') {
      raw += c.s[c.i++];
      if (c.eof()) return false;
    }
    raw += c.s[c.i++];
  }
  if (!c.consume('"')) return false;
  auto unescaped = json_unescape(raw);
  if (!unescaped) return false;
  *out = *std::move(unescaped);
  return true;
}

bool parse_scalar(Cursor& c, JsonScalar* out) {
  if (c.eof()) return false;
  if (c.peek() == '"') {
    std::string s;
    if (!parse_string(c, &s)) return false;
    *out = std::move(s);
    return true;
  }
  if (c.s.compare(c.i, 4, "true") == 0) {
    c.i += 4;
    *out = true;
    return true;
  }
  if (c.s.compare(c.i, 5, "false") == 0) {
    c.i += 5;
    *out = false;
    return true;
  }
  const std::size_t start = c.i;
  bool is_double = false;
  while (!c.eof()) {
    const char ch = c.peek();
    if (ch == '-' || ch == '+' || (ch >= '0' && ch <= '9')) {
      ++c.i;
    } else if (ch == '.' || ch == 'e' || ch == 'E') {
      is_double = true;
      ++c.i;
    } else {
      break;
    }
  }
  if (c.i == start) return false;
  const std::string tok = c.s.substr(start, c.i - start);
  char* end = nullptr;
  if (is_double) {
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return false;
    *out = v;
  } else {
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size()) return false;
    *out = v;
  }
  return true;
}

bool parse_flat_object(Cursor& c,
                       std::vector<std::pair<std::string, JsonScalar>>* out) {
  if (!c.consume('{')) return false;
  if (c.consume('}')) return true;
  for (;;) {
    std::string key;
    JsonScalar value;
    if (!parse_string(c, &key) || !c.consume(':') ||
        !parse_scalar(c, &value)) {
      return false;
    }
    out->emplace_back(std::move(key), std::move(value));
    if (c.consume('}')) return true;
    if (!c.consume(',')) return false;
  }
}

}  // namespace

std::optional<JsonObject> parse_json_line(const std::string& line) {
  Cursor c{line};
  if (!c.consume('{')) return std::nullopt;
  JsonObject obj;
  if (c.consume('}')) {
    return c.eof() ? std::optional<JsonObject>(std::move(obj)) : std::nullopt;
  }
  for (;;) {
    JsonObject::Member m;
    if (!parse_string(c, &m.key) || !c.consume(':')) return std::nullopt;
    if (!c.eof() && c.peek() == '{') {
      m.has_object = true;
      if (!parse_flat_object(c, &m.object)) return std::nullopt;
    } else {
      if (!parse_scalar(c, &m.scalar)) return std::nullopt;
    }
    obj.members.push_back(std::move(m));
    if (c.consume('}')) break;
    if (!c.consume(',')) return std::nullopt;
  }
  return c.eof() ? std::optional<JsonObject>(std::move(obj)) : std::nullopt;
}

}  // namespace hoga::obs::detail
