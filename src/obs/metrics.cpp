#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace hoga::obs {

void Histogram::record(double v) {
  if (!cell_) return;
  // First bucket whose upper bound is >= v; everything above the last bound
  // lands in the overflow bucket at index bounds.size().
  const auto it =
      std::lower_bound(cell_->bounds.begin(), cell_->bounds.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - cell_->bounds.begin());
  cell_->counts[idx].fetch_add(1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  cell_->sum.fetch_add(v, std::memory_order_relaxed);
}

long long Histogram::bucket_count(std::size_t i) const {
  if (!cell_ || i >= cell_->counts.size()) return 0;
  return cell_->counts[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  if (!cell_) return 0.0;
  return detail::histogram_quantile(*cell_, q);
}

namespace detail {

double histogram_quantile(const HistogramCell& cell, double q) {
  const long long total = cell.count.load(std::memory_order_relaxed);
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  long long cumulative = 0;
  for (std::size_t i = 0; i < cell.bounds.size(); ++i) {
    const long long in_bucket =
        cell.counts[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const long long next = cumulative + in_bucket;
    if (static_cast<double>(next) >= target) {
      // Rank lands in this bucket: interpolate linearly between its lower
      // and upper bound (the first bucket's lower bound is 0 unless the
      // bound itself is negative).
      const double hi = cell.bounds[i];
      const double lo =
          i == 0 ? std::min(0.0, cell.bounds[0]) : cell.bounds[i - 1];
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  // Rank falls in the overflow bucket: no upper bound to interpolate
  // toward, so clamp to the last finite bound (standard histogram-quantile
  // behaviour — the estimate is a lower bound on the true value).
  return cell.bounds.back();
}

}  // namespace detail

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {}

Counter MetricsRegistry::counter(const std::string& name) {
  if (!enabled_) return Counter();
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = counters_[name];
  if (!cell) cell = std::make_unique<std::atomic<long long>>(0);
  return Counter(cell.get());
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  HOGA_CHECK(!bounds.empty(), "histogram '" << name << "': empty bounds");
  HOGA_CHECK(std::is_sorted(bounds.begin(), bounds.end()) &&
                 std::adjacent_find(bounds.begin(), bounds.end()) ==
                     bounds.end(),
             "histogram '" << name << "': bounds must strictly increase");
  if (!enabled_) return Histogram();
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = histograms_[name];
  if (!cell) {
    cell = std::make_unique<detail::HistogramCell>(std::move(bounds));
  } else {
    HOGA_CHECK(cell->bounds == bounds,
               "histogram '" << name << "': re-registered with different "
                             << "bounds");
  }
  return Histogram(cell.get());
}

std::string MetricsRegistry::text_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, cell] : counters_) {
    out << "counter " << name << ' '
        << cell->load(std::memory_order_relaxed) << '\n';
  }
  for (const auto& [name, cell] : histograms_) {
    out << "histogram " << name
        << " count=" << cell->count.load(std::memory_order_relaxed)
        << " sum=" << detail::format_double(
               cell->sum.load(std::memory_order_relaxed))
        << " p50=" << detail::format_double(
               detail::histogram_quantile(*cell, 0.50))
        << " p95=" << detail::format_double(
               detail::histogram_quantile(*cell, 0.95))
        << " p99=" << detail::format_double(
               detail::histogram_quantile(*cell, 0.99));
    for (std::size_t i = 0; i < cell->bounds.size(); ++i) {
      out << " le" << detail::format_double(cell->bounds[i]) << '='
          << cell->counts[i].load(std::memory_order_relaxed);
    }
    out << " inf="
        << cell->counts[cell->bounds.size()].load(std::memory_order_relaxed)
        << '\n';
  }
  return out.str();
}

std::string MetricsRegistry::json_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    if (!first) out << ',';
    first = false;
    out << '"' << detail::json_escape(name) << "\":"
        << cell->load(std::memory_order_relaxed);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cell] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << '"' << detail::json_escape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < cell->bounds.size(); ++i) {
      if (i > 0) out << ',';
      out << detail::format_double(cell->bounds[i]);
    }
    out << "],\"bucket_counts\":[";
    for (std::size_t i = 0; i < cell->counts.size(); ++i) {
      if (i > 0) out << ',';
      out << cell->counts[i].load(std::memory_order_relaxed);
    }
    out << "],\"count\":" << cell->count.load(std::memory_order_relaxed)
        << ",\"sum\":"
        << detail::format_double(cell->sum.load(std::memory_order_relaxed))
        << ",\"p50\":"
        << detail::format_double(detail::histogram_quantile(*cell, 0.50))
        << ",\"p95\":"
        << detail::format_double(detail::histogram_quantile(*cell, 0.95))
        << ",\"p99\":"
        << detail::format_double(detail::histogram_quantile(*cell, 0.99))
        << '}';
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : histograms_) {
    for (auto& c : cell->counts) c.store(0, std::memory_order_relaxed);
    cell->count.store(0, std::memory_order_relaxed);
    cell->sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry(true);
  return registry;
}

const std::vector<double>& latency_ms_bounds() {
  static const std::vector<double> bounds = {
      0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return bounds;
}

const std::vector<double>& row_count_bounds() {
  static const std::vector<double> bounds = {
      1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
      512.0, 1024.0, 2048.0, 4096.0};
  return bounds;
}

void attach_queue_latency(ThreadPool& pool, MetricsRegistry& registry,
                          const std::string& name) {
  Histogram hist = registry.histogram(name, latency_ms_bounds());
  pool.set_queue_latency_sink([hist](double ms) mutable { hist.record(ms); });
}

}  // namespace hoga::obs
