#include "obs/ledger.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/crc32.hpp"

namespace hoga::obs {

namespace {

void append_scalar(std::ostringstream& out, const detail::JsonScalar& v) {
  if (const auto* i = std::get_if<long long>(&v)) {
    out << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    out << detail::format_double(*d);
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    out << '"' << detail::json_escape(*s) << '"';
  } else {
    out << (std::get<bool>(v) ? "true" : "false");
  }
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace

const detail::JsonScalar* LedgerEvent::find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

long long LedgerEvent::int_field(const std::string& key) const {
  const auto* v = find(key);
  HOGA_CHECK(v && std::holds_alternative<long long>(*v),
             "ledger event '" << type << "': no integer field '" << key
                              << "'");
  return std::get<long long>(*v);
}

double LedgerEvent::double_field(const std::string& key) const {
  const auto* v = find(key);
  HOGA_CHECK(v, "ledger event '" << type << "': no field '" << key << "'");
  // Integral-valued doubles serialize without a decimal point and parse back
  // as integers; both are the same number to the caller.
  if (const auto* i = std::get_if<long long>(v)) {
    return static_cast<double>(*i);
  }
  HOGA_CHECK(std::holds_alternative<double>(*v),
             "ledger event '" << type << "': field '" << key
                              << "' is not numeric");
  return std::get<double>(*v);
}

std::string LedgerEvent::string_field(const std::string& key) const {
  const auto* v = find(key);
  HOGA_CHECK(v && std::holds_alternative<std::string>(*v),
             "ledger event '" << type << "': no string field '" << key
                              << "'");
  return std::get<std::string>(*v);
}

RunLedger::RunLedger(const std::string& path, Clock* clock)
    : path_(path), clock_(clock ? clock : &SteadyClock::instance()),
      crc_state_(util::crc32_init()) {
  file_ = std::fopen(path.c_str(), "wb");
  HOGA_CHECK(file_ != nullptr, "RunLedger: cannot open '" << path << "'");
}

RunLedger::~RunLedger() { close(); }

std::string format_ledger_line(long long seq, std::uint64_t ts_ns,
                               const std::string& type,
                               const std::vector<LedgerField>& fields) {
  std::ostringstream line;
  line << "{\"seq\":" << seq << ",\"ts_ns\":" << ts_ns << ",\"type\":\""
       << detail::json_escape(type) << '"';
  for (const auto& f : fields) {
    line << ",\"" << detail::json_escape(f.key) << "\":";
    append_scalar(line, f.value);
  }
  line << "}\n";
  return line.str();
}

void RunLedger::event(const std::string& type,
                      std::vector<LedgerField> fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_) return;
  const std::string bytes =
      format_ledger_line(seq_, clock_->now_ns(), type, fields);
  // One fwrite per line: a crash leaves at most one partial final line,
  // never an interleaved or half-updated earlier one.
  std::fwrite(bytes.data(), 1, bytes.size(), file_);
  std::fflush(file_);
  crc_state_ = util::crc32_update(crc_state_, bytes);
  ++seq_;
}

long long RunLedger::events_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void RunLedger::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_) return;
  std::ostringstream footer;
  footer << "{\"type\":\"ledger.footer\",\"events\":" << seq_
         << ",\"crc32\":\"" << crc_hex(util::crc32_final(crc_state_))
         << "\"}\n";
  const std::string bytes = footer.str();
  std::fwrite(bytes.data(), 1, bytes.size(), file_);
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

LedgerReadResult RunLedger::read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HOGA_CHECK(in.good(), "RunLedger::read: cannot open '" << path << "'");
  LedgerReadResult result;
  std::uint32_t crc = util::crc32_init();
  std::string line;
  while (std::getline(in, line)) {
    auto parsed = detail::parse_json_line(line);
    if (!parsed) {
      ++result.skipped_lines;
      continue;
    }
    const auto* type_m = parsed->find("type");
    if (!type_m || type_m->has_object ||
        !std::holds_alternative<std::string>(type_m->scalar)) {
      ++result.skipped_lines;
      continue;
    }
    const std::string type = std::get<std::string>(type_m->scalar);
    if (type == "ledger.footer") {
      result.footer_present = true;
      const auto* events_m = parsed->find("events");
      const auto* crc_m = parsed->find("crc32");
      if (crc_m && !crc_m->has_object &&
          std::holds_alternative<std::string>(crc_m->scalar)) {
        result.footer_crc32 = std::get<std::string>(crc_m->scalar);
      }
      if (const auto* chain_m = parsed->find("chain");
          chain_m && !chain_m->has_object &&
          std::holds_alternative<std::string>(chain_m->scalar)) {
        result.footer_chain = std::get<std::string>(chain_m->scalar);
      }
      result.footer_valid =
          events_m && !events_m->has_object &&
          std::holds_alternative<long long>(events_m->scalar) &&
          std::get<long long>(events_m->scalar) ==
              static_cast<long long>(result.events.size()) &&
          crc_m && !crc_m->has_object &&
          std::holds_alternative<std::string>(crc_m->scalar) &&
          std::get<std::string>(crc_m->scalar) ==
              crc_hex(util::crc32_final(crc));
      // Anything after a footer would be another run's residue; stop.
      break;
    }
    crc = util::crc32_update(crc, line + "\n");
    LedgerEvent event;
    event.type = type;
    bool ok = true;
    for (const auto& m : parsed->members) {
      if (m.has_object) {
        ok = false;  // event lines are flat
        break;
      }
      if (m.key == "seq") {
        if (!std::holds_alternative<long long>(m.scalar)) {
          ok = false;
          break;
        }
        event.seq = std::get<long long>(m.scalar);
      } else if (m.key == "ts_ns") {
        if (!std::holds_alternative<long long>(m.scalar)) {
          ok = false;
          break;
        }
        event.ts_ns =
            static_cast<std::uint64_t>(std::get<long long>(m.scalar));
      } else if (m.key == "type") {
        // already extracted
      } else {
        event.fields.emplace_back(m.key, m.scalar);
      }
    }
    if (!ok) {
      ++result.skipped_lines;
      continue;
    }
    result.events.push_back(std::move(event));
  }
  return result;
}

}  // namespace hoga::obs
