#include "obs/clock.hpp"

#include <chrono>

namespace hoga::obs {

std::uint64_t SteadyClock::now_ns() {
  using namespace std::chrono;
  static const steady_clock::time_point origin = steady_clock::now();
  return static_cast<std::uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now() - origin).count());
}

SteadyClock& SteadyClock::instance() {
  static SteadyClock clock;
  return clock;
}

FakeClock::FakeClock(std::uint64_t start_ns, std::uint64_t step_ns,
                     std::uint64_t jitter_seed, std::uint64_t jitter_ns)
    : now_(start_ns), step_(step_ns), jitter_ns_(jitter_ns),
      rng_(jitter_seed) {}

std::uint64_t FakeClock::now_ns() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t reading = now_;
  now_ += step_;
  if (jitter_ns_ > 0) now_ += rng_.uniform_int(jitter_ns_ + 1);
  return reading;
}

void FakeClock::advance(std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ += ns;
}

}  // namespace hoga::obs
