#pragma once
// Minimal JSON helpers shared by the obs exporters (metrics snapshot, span
// JSONL, run ledger) and the ledger reader. This is not a general JSON
// library: the writer emits exactly the subset the readers understand —
// flat objects of string/number values with at most one level of nesting —
// and the parser is strict about that subset. Everything the subsystem
// writes must be byte-deterministic, so all double formatting goes through
// format_double (shortest round-trippable form via %.17g with a trailing
// cleanup pass).

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace hoga::obs::detail {

/// Escapes `s` for inclusion in a JSON string literal (quotes not added).
std::string json_escape(const std::string& s);

/// Inverse of json_escape; returns nullopt on a malformed escape.
std::optional<std::string> json_unescape(const std::string& s);

/// Round-trippable, deterministic double formatting: tries %.1g..%.17g and
/// returns the shortest form that parses back bit-exactly.
std::string format_double(double v);

/// One parsed JSON scalar: integers stay exact, everything else numeric is
/// a double.
using JsonScalar = std::variant<long long, double, std::string, bool>;

/// A parsed flat JSON object: (key, value) pairs in document order; values
/// are scalars or nested flat objects (one level only).
struct JsonObject {
  struct Member {
    std::string key;
    // Exactly one of scalar/object is meaningful; has_object selects.
    JsonScalar scalar;
    std::vector<std::pair<std::string, JsonScalar>> object;
    bool has_object = false;
  };
  std::vector<Member> members;

  const Member* find(const std::string& key) const;
};

/// Parses one JSON object line of the subset described above. Returns
/// nullopt (never throws) on anything outside the subset.
std::optional<JsonObject> parse_json_line(const std::string& line);

}  // namespace hoga::obs::detail
