#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace hoga::obs {

namespace {

// splitmix64 finalizer (same mixer as util::Digest): turns seed ^ span_id
// into an unbiased sampling decision with no shared RNG state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Open spans of the current thread, innermost last. Spans strictly nest
// lexically within a thread, so push/pop at the back is the common case even
// when several tracers interleave; frames keep a pointer to the live Span so
// Tracer::event() can annotate it directly.
struct TlsFrame {
  const Tracer* tracer;
  std::uint64_t span_id;
  Span* span;
};
thread_local std::vector<TlsFrame> g_open_spans;

std::vector<TlsFrame>::iterator find_frame(const Tracer* tracer,
                                           std::uint64_t span_id) {
  for (auto it = g_open_spans.rbegin(); it != g_open_spans.rend(); ++it) {
    if (it->tracer == tracer && it->span_id == span_id) {
      return std::next(it).base();
    }
  }
  return g_open_spans.end();
}

}  // namespace

Span::Span(Tracer* tracer, SpanRecord record)
    : tracer_(tracer), record_(std::move(record)) {
  g_open_spans.push_back({tracer_, record_.span_id, this});
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
    if (tracer_) {
      auto it = find_frame(tracer_, record_.span_id);
      if (it != g_open_spans.end()) it->span = this;
    }
  }
  return *this;
}

void Span::set_attr(const std::string& key, const std::string& value) {
  if (!tracer_) return;
  record_.attrs.emplace_back(key, value);
}

void Span::add_event(const std::string& name) {
  if (!tracer_) return;
  record_.events.push_back({name, tracer_->clock().now_ns()});
}

void Span::set_error(const std::string& message) {
  if (!tracer_) return;
  record_.error = true;
  record_.attrs.emplace_back("error", message);
}

void Span::end() {
  if (!tracer_) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  auto it = find_frame(tracer, record_.span_id);
  if (it != g_open_spans.end()) g_open_spans.erase(it);
  record_.end_ns = tracer->clock().now_ns();
  tracer->finish(std::move(record_));
}

Tracer::Tracer(Clock* clock, std::size_t capacity)
    : clock_(clock ? clock : &SteadyClock::instance()), capacity_(capacity) {}

std::uint64_t Tracer::current_parent() const {
  for (auto it = g_open_spans.rbegin(); it != g_open_spans.rend(); ++it) {
    if (it->tracer == this) return it->span_id;
  }
  return 0;
}

Span Tracer::span(const std::string& name) {
  return span(name, current_parent());
}

Span Tracer::span(const std::string& name, std::uint64_t parent_id) {
  SpanRecord record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.span_id = next_id_++;
  }
  record.parent_id = parent_id;
  record.name = name;
  record.start_ns = clock_->now_ns();
  return Span(this, std::move(record));
}

void Tracer::event(const std::string& name) {
  for (auto it = g_open_spans.rbegin(); it != g_open_spans.rend(); ++it) {
    if (it->tracer == this) {
      it->span->add_event(name);
      return;
    }
  }
}

void Tracer::finish(SpanRecord record) {
  bool keep = true;
  bool sampling_active = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sampling_.keep_one_in > 1) {
      sampling_active = true;
      // Error spans bypass sampling; everything else keeps 1-in-N by a
      // seeded hash of the span id — deterministic per (seed, id).
      keep = record.error ||
             mix64(sampling_.seed ^ record.span_id) %
                     static_cast<std::uint64_t>(sampling_.keep_one_in) ==
                 0;
      if (keep) {
        ++sampled_;
      } else {
        ++skipped_;
      }
    }
    if (keep) {
      if (finished_.size() >= capacity_) {
        finished_.pop_front();
        ++dropped_;
      }
      finished_.push_back(std::move(record));
    }
  }
  // Mirror outside the tracer lock, and only when sampling is on — the
  // default configuration's finish path stays exactly as cheap as before
  // (bench_obs gates tracing overhead at <5%).
  if (sampling_active) obs::count(keep ? "trace.sampled" : "trace.skipped");
}

void Tracer::set_sampling(TraceSampling sampling) {
  std::lock_guard<std::mutex> lock(mu_);
  sampling_ = sampling;
}

TraceSampling Tracer::sampling() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampling_;
}

long long Tracer::sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_;
}

long long Tracer::skipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_;
}

long long Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_.size();
}

std::vector<SpanRecord> Tracer::finished() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(finished_.begin(), finished_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

std::string Tracer::export_jsonl() const {
  std::ostringstream out;
  for (const SpanRecord& s : finished()) {
    out << "{\"span_id\":" << s.span_id << ",\"parent_id\":" << s.parent_id
        << ",\"name\":\"" << detail::json_escape(s.name) << "\",\"start_ns\":"
        << s.start_ns << ",\"end_ns\":" << s.end_ns;
    if (!s.attrs.empty()) {
      out << ",\"attrs\":{";
      for (std::size_t i = 0; i < s.attrs.size(); ++i) {
        if (i > 0) out << ',';
        out << '"' << detail::json_escape(s.attrs[i].first) << "\":\""
            << detail::json_escape(s.attrs[i].second) << '"';
      }
      out << '}';
    }
    if (!s.events.empty()) {
      out << ",\"events\":{";
      for (std::size_t i = 0; i < s.events.size(); ++i) {
        if (i > 0) out << ',';
        out << '"' << detail::json_escape(s.events[i].name)
            << "\":" << s.events[i].ts_ns;
      }
      out << '}';
    }
    out << "}\n";
  }
  return out.str();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.clear();
  dropped_ = 0;
  sampled_ = 0;
  skipped_ = 0;
}

}  // namespace hoga::obs
