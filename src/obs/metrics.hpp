#pragma once
// hoga::obs metrics — process-wide registry of named counters and
// fixed-bucket histograms (DESIGN.md §10).
//
// The registry is the successor to the hand-rolled per-subsystem stat
// structs (ServeStats, StoreStats): one namespace of metrics, one snapshot
// format, one determinism contract. Design goals, in order:
//
//   - hot-path increments are one relaxed atomic add through a pre-resolved
//     handle (registration happens once, at wiring time, under a mutex;
//     Counter/Histogram handles are trivially copyable values that stay
//     valid for the registry's lifetime);
//   - a *disabled* registry hands out null handles whose operations are a
//     single predictable branch — the "no-op registry" baseline that
//     bench_obs compares the instrumented serve hot path against;
//   - snapshots are deterministic: metrics are emitted sorted by name, and
//     every value a scripted run records is either an exact integer count
//     or a clock reading — under FakeClock the whole text/JSON snapshot is
//     byte-identical across identical runs, the same way
//     ServeStats::counts_signature() is.
//
// Histograms are fixed-bucket (cumulative "le" upper bounds plus an
// implicit +inf overflow bucket) with an exact count and a double sum —
// there is no reservoir and no quantile sketch, so two runs that record
// the same values produce the same snapshot bytes. Quantiles (p50/p95/p99
// in snapshots, Histogram::quantile for arbitrary q) are estimated by
// linear interpolation within the bucket holding the target rank — a pure
// function of the bucket counts, so they share the determinism contract.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hoga {
class ThreadPool;
}

namespace hoga::obs {

namespace detail {
struct HistogramCell;
/// Shared quantile estimation over a cell (used by the Histogram handle and
/// the registry snapshots, which already hold the registry lock).
double histogram_quantile(const HistogramCell& cell, double q);

struct HistogramCell {
  std::vector<double> bounds;  // strictly increasing upper bounds
  std::vector<std::atomic<long long>> counts;  // bounds.size() + 1 (overflow)
  std::atomic<long long> count{0};
  std::atomic<double> sum{0.0};

  explicit HistogramCell(std::vector<double> b)
      : bounds(std::move(b)), counts(bounds.size() + 1) {}
};
}  // namespace detail

/// Handle to a registered counter. Null handles (from a disabled registry or
/// a default-constructed Counter) no-op on every operation.
class Counter {
 public:
  Counter() = default;

  void inc(long long n = 1) {
    if (cell_) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  long long value() const {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }
  void reset() {
    if (cell_) cell_->store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<long long>* cell) : cell_(cell) {}
  std::atomic<long long>* cell_ = nullptr;
};

/// Handle to a registered fixed-bucket histogram; null handles no-op.
class Histogram {
 public:
  Histogram() = default;

  /// Records one observation: bumps the first bucket whose bound is >= v
  /// (or the overflow bucket), the count, and the sum.
  void record(double v);

  long long count() const {
    return cell_ ? cell_->count.load(std::memory_order_relaxed) : 0;
  }
  double sum() const {
    return cell_ ? cell_->sum.load(std::memory_order_relaxed) : 0.0;
  }
  /// Observations in bucket `i` (i == bounds.size() is the overflow bucket);
  /// 0 for a null handle or out-of-range index.
  long long bucket_count(std::size_t i) const;

  /// Estimated quantile (q in [0, 1]) by linear interpolation within the
  /// bucket holding the target rank — the standard Prometheus-style
  /// histogram_quantile. Deterministic for a fixed set of recordings.
  /// Overflow-bucket ranks clamp to the last finite bound; an empty (or
  /// null-handle) histogram returns 0.
  double quantile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  /// A disabled registry hands out null handles and produces empty
  /// snapshots: the no-op baseline for overhead measurements.
  explicit MetricsRegistry(bool enabled = true);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Returns the counter named `name`, registering it on first use. The
  /// handle stays valid for the registry's lifetime.
  Counter counter(const std::string& name);

  /// Returns the histogram named `name` with the given strictly-increasing
  /// upper bounds, registering it on first use. Re-requesting an existing
  /// name must pass identical bounds.
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  /// Deterministic plain-text snapshot, one metric per line, sorted by
  /// name:
  ///   counter serve.served 9
  ///   histogram serve.latency_ms count=3 sum=4.5 p50=... p95=... p99=...
  ///     le0.5=1 le5=2 inf=0   (one line; wrapped here for width)
  std::string text_snapshot() const;

  /// The same data as sorted JSON:
  ///   {"counters":{...},"histograms":{"h":{"bounds":[...],
  ///    "bucket_counts":[...],"count":3,"sum":4.5,
  ///    "p50":...,"p95":...,"p99":...}}}
  std::string json_snapshot() const;

  /// Zeroes every registered metric (handles stay valid).
  void reset();

  /// The process-wide default registry.
  static MetricsRegistry& global();

 private:
  bool enabled_;
  mutable std::mutex mu_;
  // std::map: sorted iteration gives the snapshot determinism for free.
  std::map<std::string, std::unique_ptr<std::atomic<long long>>> counters_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>> histograms_;
};

/// Standard latency bucket bounds in milliseconds (sub-ms to 10 s).
const std::vector<double>& latency_ms_bounds();

/// Power-of-two row/occupancy bucket bounds (1 to 4096) for batch-size,
/// batch-occupancy, and queue-depth-in-rows histograms (DESIGN.md §14).
const std::vector<double>& row_count_bounds();

/// Wires `pool`'s queue-latency sink into `registry[name]` (latency-ms
/// buckets): every executed task records the time it spent queued. Replaces
/// any previously-installed sink; call before tasks are submitted.
void attach_queue_latency(ThreadPool& pool, MetricsRegistry& registry,
                          const std::string& name);

}  // namespace hoga::obs
