#include "dist/wire.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "fault/fault.hpp"
#include "storage/storage.hpp"
#include "util/check.hpp"

namespace hoga::dist {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Header layout inside the hoga-frame payload:
//   u8 type | u64 seq | i32 rank | i64 a | i64 b | payload bytes
constexpr std::size_t kHeaderBytes = 1 + 8 + 4 + 8 + 8;

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get(const char*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

std::string encode_message(const Message& msg, std::uint64_t seq) {
  std::string body;
  body.reserve(kHeaderBytes + msg.payload.size());
  put<std::uint8_t>(body, static_cast<std::uint8_t>(msg.type));
  put<std::uint64_t>(body, seq);
  put<std::int32_t>(body, static_cast<std::int32_t>(msg.rank));
  put<std::int64_t>(body, msg.a);
  put<std::int64_t>(body, msg.b);
  body.append(msg.payload);
  return storage::encode_framed(body);
}

bool decode_message(const std::string& frame, Message* msg,
                    std::uint64_t* seq) {
  const std::optional<std::string> body = storage::decode_framed(frame);
  if (!body || body->size() < kHeaderBytes) return false;
  const char* p = body->data();
  msg->type = static_cast<MsgType>(get<std::uint8_t>(p));
  *seq = get<std::uint64_t>(p);
  msg->rank = static_cast<int>(get<std::int32_t>(p));
  msg->a = get<std::int64_t>(p);
  msg->b = get<std::int64_t>(p);
  msg->payload.assign(body->data() + kHeaderBytes,
                      body->size() - kHeaderBytes);
  return true;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kCompute: return "compute";
    case MsgType::kShardGrad: return "shard_grad";
    case MsgType::kApply: return "apply";
    case MsgType::kRestore: return "restore";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kAck: return "ack";
    case MsgType::kNak: return "nak";
    case MsgType::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

Channel::Channel(int fd, WireConfig config) : fd_(fd), config_(config) {}

Channel::~Channel() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

double Channel::ms_since_heard() const {
  if (last_heard_ms_ < 0) return 1e18;
  return now_ms() - last_heard_ms_;
}

void Channel::transmit(const std::string& frame, bool is_payload) {
#if defined(__unix__) || defined(__APPLE__)
  std::string wire = frame;
  if (is_payload) {
    if (auto* inj = fault::active()) {
      const auto f = inj->next_send_fault();
      if (f.delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(f.delay_ms));
      }
      if (f.drop) return;  // never written; the ack timeout recovers it
      if (f.corrupt && wire.size() > kHeaderBytes) {
        wire[wire.size() / 2] ^= 0x40;  // CRC catches it at the receiver
      }
    }
  }
  const std::uint32_t len = static_cast<std::uint32_t>(wire.size());
  char prefix[4];
  std::memcpy(prefix, &len, 4);
  std::string out;
  out.reserve(4 + wire.size());
  out.append(prefix, 4);
  out.append(wire);
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) throw PeerDead("dist: send failed (peer gone)");
    off += static_cast<std::size_t>(n);
  }
  stats_.bytes_sent += static_cast<long long>(out.size());
#else
  (void)frame;
  (void)is_payload;
  throw PeerDead("dist: no socket support on this platform");
#endif
}

void Channel::send_control(MsgType type, std::uint64_t seq) {
  Message msg;
  msg.type = type;
  transmit(encode_message(msg, seq), /*is_payload=*/false);
}

std::optional<Message> Channel::read_frame(double timeout_ms,
                                           bool* crc_failed) {
  *crc_failed = false;
#if defined(__unix__) || defined(__APPLE__)
  struct pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int timeout =
      timeout_ms < 0 ? 0 : static_cast<int>(timeout_ms) + 1;
  const int ready = ::poll(&pfd, 1, timeout);
  if (ready == 0) return std::nullopt;
  if (ready < 0) throw PeerDead("dist: poll failed");
  // One length prefix + frame. The sender writes each unit with a single
  // send() over a SOCK_STREAM socketpair, so after poll says readable we
  // read the unit with short blocking reads (the remainder is already in
  // flight; a peer that dies mid-unit yields EOF).
  auto read_exact = [&](char* dst, std::size_t want) -> bool {
    std::size_t off = 0;
    while (off < want) {
      const ssize_t n = ::read(fd_, dst + off, want - off);
      if (n == 0) throw PeerDead("dist: peer closed the channel (EOF)");
      if (n < 0) throw PeerDead("dist: read failed");
      off += static_cast<std::size_t>(n);
    }
    return true;
  };
  std::uint32_t len = 0;
  read_exact(reinterpret_cast<char*>(&len), 4);
  if (len == 0 || len > (64u << 20)) {
    throw PeerDead("dist: insane frame length (protocol desync)");
  }
  std::string frame(len, '\0');
  read_exact(frame.data(), len);
  Message msg;
  std::uint64_t seq = 0;
  if (!decode_message(frame, &msg, &seq)) {
    *crc_failed = true;
    ++stats_.naks_sent;
    send_control(MsgType::kNak, 0);
    return std::nullopt;
  }
  last_heard_ms_ = now_ms();
  queued_seq_ = seq;  // callers pair the returned message with this seq
  return msg;
#else
  (void)timeout_ms;
  return std::nullopt;
#endif
}

std::optional<Message> Channel::accept(Message&& msg, std::uint64_t seq,
                                       bool /*is_ack*/,
                                       std::uint64_t* acked_seq) {
  if (msg.type == MsgType::kAck) {
    if (acked_seq) *acked_seq = seq;
    return std::nullopt;
  }
  if (msg.type == MsgType::kNak) {
    ++stats_.naks_received;
    if (acked_seq) *acked_seq = 0;  // sentinel: caller retransmits
    nak_pending_ = true;
    return std::nullopt;
  }
  if (msg.type == MsgType::kHeartbeat) return std::nullopt;
  // Payload frame: ack it unconditionally (even stale app-level messages
  // must be acked or the peer wedges in its retransmit loop), dedup on seq.
  send_control(MsgType::kAck, seq);
  if (seq <= last_delivered_) {
    ++stats_.duplicates;
    return std::nullopt;
  }
  last_delivered_ = seq;
  return std::optional<Message>(std::move(msg));
}

void Channel::send(const Message& msg) {
  const std::uint64_t seq = next_seq_++;
  last_frame_ = encode_message(msg, seq);
  double backoff_ms = config_.backoff_initial_ms;
  for (int attempt = 0; attempt < config_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retransmits;
    transmit(last_frame_, /*is_payload=*/true);
    // Wait for the ack, servicing whatever else arrives.
    bool resend_now = false;
    const double deadline = now_ms() + config_.ack_timeout_ms;
    while (true) {
      const double remaining = deadline - now_ms();
      if (remaining <= 0) break;  // timeout: retransmit
      bool crc_failed = false;
      auto frame = read_frame(remaining, &crc_failed);
      if (!frame) {
        if (crc_failed) continue;  // inbound garbage; keep waiting for ack
        break;                     // poll timeout
      }
      std::uint64_t acked = ~std::uint64_t{0};
      nak_pending_ = false;
      auto payload = accept(std::move(*frame), queued_seq_, false, &acked);
      if (payload) queued_.push_back(std::move(*payload));
      if (nak_pending_) {
        resend_now = true;  // peer rejected our frame: resend immediately
        break;
      }
      if (acked == seq) {
        ++stats_.sends;
        return;
      }
      // Stale ack (retransmit raced the original): keep waiting.
    }
    if (!resend_now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, config_.backoff_max_ms);
    }
  }
  throw PeerDead(std::string("dist: no ack for ") +
                 msg_type_name(msg.type) + " after " +
                 std::to_string(config_.max_retries) +
                 " attempts (backoff exhausted)");
}

std::optional<Message> Channel::recv(double timeout_ms, bool send_heartbeats) {
  if (!queued_.empty()) {
    Message msg = std::move(queued_.front());
    queued_.pop_front();
    return msg;
  }
  const double deadline = now_ms() + timeout_ms;
  double next_heartbeat = 0;  // immediately, then every interval
  while (true) {
    const double now = now_ms();
    if (now >= deadline) return std::nullopt;
    double wait = deadline - now;
    if (send_heartbeats) {
      if (now >= next_heartbeat) {
        send_control(MsgType::kHeartbeat, 0);
        next_heartbeat = now + config_.heartbeat_interval_ms;
      }
      wait = std::min(wait, next_heartbeat - now);
    }
    bool crc_failed = false;
    auto frame = read_frame(wait, &crc_failed);
    if (!frame) continue;
    auto payload = accept(std::move(*frame), queued_seq_, false, nullptr);
    if (payload) return payload;
  }
}

ChannelPair make_channel_pair() {
#if defined(__unix__) || defined(__APPLE__)
  int fds[2] = {-1, -1};
  HOGA_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
             "dist: socketpair failed");
  return ChannelPair{fds[0], fds[1]};
#else
  HOGA_CHECK(false, "dist: no socketpair support on this platform");
  return {};
#endif
}

}  // namespace hoga::dist
