#pragma once
// hoga::dist wire protocol (DESIGN.md §13).
//
// One Channel is one end of a coordinator<->worker Unix-domain stream
// socket. Messages go on the wire as
//
//   [u32 length][hoga-frame v1 bytes]
//
// where the hoga-frame (storage::encode_framed) wraps a fixed binary header
// (type, sequence number, rank, two i64 arguments) plus an opaque payload,
// so every message is CRC-guarded end to end with the same codec the
// storage layer uses for snapshots and append-file records.
//
// Reliability is a stop-and-wait layer sized for the runtime's strictly
// ping-pong RPC pattern (at most one in-flight payload per direction):
//
//   - every *payload* frame carries a per-link sequence number and is
//     acknowledged by the receiver; the sender retransmits on ack timeout
//     with capped exponential backoff and gives up (throws PeerDead) after
//     `max_retries` attempts;
//   - a CRC-rejected frame triggers a NAK, which forces an immediate
//     retransmit — corruption costs one round trip, never a wrong message;
//   - retransmits of an already-delivered sequence number are re-acked but
//     not redelivered (duplicate suppression);
//   - while waiting for its own ack a side keeps servicing incoming payload
//     frames (acking and queueing them), so two peers sending to each other
//     simultaneously cannot deadlock;
//   - heartbeats and acks are fire-and-forget control frames: they carry no
//     payload, are never retransmitted, and any received frame counts as
//     liveness.
//
// Fault injection: every payload transmission consults
// fault::Injector::next_send_fault() — drop (frame never written), corrupt
// (one payload byte flipped after framing, so the receiver's CRC catches
// it), delay (sleep before the write). Control frames are exempt, which
// keeps injected schedules deterministic: the nth send is the nth payload
// transmission, independent of ack timing.

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>

namespace hoga::dist {

enum class MsgType : std::uint8_t {
  kHello = 1,      // worker -> coordinator: ready (after fork / respawn)
  kCompute = 2,    // coordinator -> worker: run step (a=epoch, b=step)
  kShardGrad = 3,  // worker -> coordinator: per-shard grads + losses
  kApply = 4,      // coordinator -> worker: reduced gradient to apply
  kRestore = 5,    // coordinator -> worker: state + shard assignment
  kShutdown = 6,   // coordinator -> worker: clean exit
  kAck = 7,        // control: payload frame received intact
  kNak = 8,        // control: payload frame failed CRC, resend
  kHeartbeat = 9,  // control: liveness while idle
};
const char* msg_type_name(MsgType t);

struct Message {
  MsgType type = MsgType::kHeartbeat;
  int rank = -1;            // sender's rank (coordinator uses -1)
  std::int64_t a = 0;       // type-specific (usually epoch)
  std::int64_t b = 0;       // type-specific (usually step)
  std::string payload;
};

/// Thrown when a peer is unreachable: EOF/EPIPE on the socket, or the
/// retransmit budget is exhausted without an ack (backoff exhaustion). The
/// coordinator treats it as a worker death and runs recovery.
struct PeerDead : std::runtime_error {
  explicit PeerDead(const std::string& what) : std::runtime_error(what) {}
};

struct WireConfig {
  double ack_timeout_ms = 2000;   // per-attempt wait for an ack
  int max_retries = 5;            // transmissions before PeerDead
  double backoff_initial_ms = 1;  // doubles per retry
  double backoff_max_ms = 200;
  double heartbeat_interval_ms = 20;  // idle-wait heartbeat cadence
};

/// Transfer counters (per channel, monotonic).
struct WireStats {
  long long sends = 0;          // payload messages successfully delivered
  long long retransmits = 0;    // extra transmissions (timeout or NAK)
  long long naks_received = 0;  // CRC rejections reported by the peer
  long long naks_sent = 0;      // CRC rejections we detected
  long long duplicates = 0;     // already-delivered frames re-acked
  long long bytes_sent = 0;     // wire bytes written (frames + prefixes)
};

class Channel {
 public:
  /// Takes ownership of `fd` (one end of a socketpair).
  Channel(int fd, WireConfig config);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Sends one message reliably (ack/NAK/retransmit per WireConfig).
  /// Payload frames received while waiting are acked and queued for the
  /// next recv(). Throws PeerDead when the peer is gone or the retry
  /// budget is exhausted.
  void send(const Message& msg);

  /// Receives the next payload message, servicing control frames along the
  /// way. Returns nullopt after `timeout_ms` without a deliverable payload
  /// (control traffic resets nothing: the timeout bounds *payload* wait).
  /// Throws PeerDead on EOF. `send_heartbeats` emits a heartbeat every
  /// heartbeat_interval_ms while waiting — workers use it so an idle wait
  /// still proves liveness to the coordinator.
  std::optional<Message> recv(double timeout_ms, bool send_heartbeats = false);

  /// Milliseconds since any frame (control included) arrived on this
  /// channel; infinity before the first frame. The coordinator's liveness
  /// check compares this against DistConfig::heartbeat_timeout_ms.
  double ms_since_heard() const;

  const WireStats& stats() const { return stats_; }
  int fd() const { return fd_; }

 private:
  /// One physical transmission: fault hooks, length prefix, full write.
  void transmit(const std::string& frame, bool is_payload);
  /// Reads one [len][frame] unit; nullopt on timeout. Throws PeerDead on
  /// EOF/error. Decodes + CRC-checks; a bad frame sends a NAK and is
  /// reported as nullopt-with-nak (caller keeps waiting).
  std::optional<Message> read_frame(double timeout_ms, bool* crc_failed);
  void send_control(MsgType type, std::uint64_t seq);
  /// Handles one inbound frame: acks/dedups payloads, tracks liveness.
  /// Returns a deliverable payload message, if any.
  std::optional<Message> accept(Message&& msg, std::uint64_t seq, bool is_ack,
                                std::uint64_t* acked_seq);

  int fd_ = -1;
  WireConfig config_;
  WireStats stats_;
  std::uint64_t next_seq_ = 1;       // our next outbound payload seq
  std::uint64_t last_delivered_ = 0; // highest inbound payload seq delivered
  std::string last_frame_;           // last outbound payload frame (for NAK)
  std::deque<Message> queued_;       // payloads accepted while awaiting ack
  std::uint64_t queued_seq_ = 0;     // seq of the frame read_frame returned
  bool nak_pending_ = false;         // peer NAK'd our in-flight frame
  double last_heard_ms_ = -1;        // monotonic stamp of last inbound frame
};

/// A connected coordinator/worker channel pair over socketpair(AF_UNIX).
/// Created before fork; each process closes the end it does not use.
struct ChannelPair {
  int coordinator_fd = -1;
  int worker_fd = -1;
};
ChannelPair make_channel_pair();

}  // namespace hoga::dist
