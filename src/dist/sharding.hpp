#pragma once
// hoga::dist sharding (DESIGN.md §13).
//
// Bit-exact data parallelism rests on making the *logical* work layout
// independent of the *physical* worker layout:
//
//   - the training set is split into a fixed number S of logical shards
//     (near-equal contiguous node-id ranges). S never changes during a run;
//   - each shard has a content digest (graph digest mixed with the shard's
//     id range), which is the shard's stable identity across processes;
//   - shards are mapped to live workers by rendezvous (highest-random-
//     weight) hashing over (shard digest, worker rank): deterministic for
//     any live set, minimal movement when a worker dies — only the dead
//     worker's shards move, each to the survivor that scores next-highest;
//   - gradients are reduced in a fixed pairwise tree over the *shard*
//     index. Which worker computed a shard never affects the float
//     summation order, so any worker count — and any fault schedule that
//     re-homes shards mid-run — produces bit-identical parameters.

#include <cstdint>
#include <vector>

namespace hoga::dist {

struct Shard {
  int id = 0;                 // logical index, 0..S-1 (the reduction order)
  std::int64_t begin = 0;     // node-id range [begin, end)
  std::int64_t end = 0;
  std::uint64_t digest = 0;   // content identity (graph digest + range)
  std::int64_t rows() const { return end - begin; }
};

/// Splits [0, num_rows) into `num_shards` near-equal contiguous shards
/// (sizes differ by at most one) and stamps each with a digest derived from
/// `content_digest` and its range.
std::vector<Shard> make_shards(std::int64_t num_rows, int num_shards,
                               std::uint64_t content_digest);

/// shard id -> owning rank, by rendezvous hashing over the live ranks.
/// `live` must be non-empty and sorted ascending (the coordinator's view).
std::vector<int> assign_shards(const std::vector<Shard>& shards,
                               const std::vector<int>& live);

/// Fixed-order pairwise tree combine over shard slots: out[i] op out[i+1]
/// at each level, left-to-right. `combine(a, b)` must fold slot b into
/// slot a. Slots are indexed by shard id, so the float summation order is
/// a pure function of S — never of the worker layout.
template <typename T, typename Combine>
T tree_reduce(std::vector<T> slots, Combine&& combine) {
  while (slots.size() > 1) {
    std::vector<T> next;
    next.reserve((slots.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < slots.size(); i += 2) {
      combine(slots[i], slots[i + 1]);
      next.push_back(std::move(slots[i]));
    }
    if (slots.size() % 2 == 1) next.push_back(std::move(slots.back()));
    slots = std::move(next);
  }
  return std::move(slots.front());
}

}  // namespace hoga::dist
