#include "dist/sharding.hpp"

#include "util/check.hpp"
#include "util/digest.hpp"

namespace hoga::dist {

std::vector<Shard> make_shards(std::int64_t num_rows, int num_shards,
                               std::uint64_t content_digest) {
  HOGA_CHECK(num_rows > 0, "make_shards: num_rows must be > 0");
  HOGA_CHECK(num_shards > 0, "make_shards: num_shards must be > 0");
  const std::int64_t s = std::min<std::int64_t>(num_shards, num_rows);
  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>(s));
  const std::int64_t base = num_rows / s;
  const std::int64_t extra = num_rows % s;
  std::int64_t begin = 0;
  for (std::int64_t i = 0; i < s; ++i) {
    Shard shard;
    shard.id = static_cast<int>(i);
    shard.begin = begin;
    shard.end = begin + base + (i < extra ? 1 : 0);
    util::Digest d;
    d.update_value(content_digest);
    d.update_value(shard.begin);
    d.update_value(shard.end);
    shard.digest = d.value();
    begin = shard.end;
    shards.push_back(shard);
  }
  return shards;
}

std::vector<int> assign_shards(const std::vector<Shard>& shards,
                               const std::vector<int>& live) {
  HOGA_CHECK(!live.empty(), "assign_shards: no live workers");
  std::vector<int> owner(shards.size(), live.front());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    std::uint64_t best_score = 0;
    int best_rank = live.front();
    for (int rank : live) {
      util::Digest d;
      d.update_value(shards[i].digest);
      d.update_value(static_cast<std::int64_t>(rank));
      const std::uint64_t score = d.value();
      if (score > best_score ||
          (score == best_score && rank < best_rank)) {
        best_score = score;
        best_rank = rank;
      }
    }
    owner[i] = best_rank;
  }
  return owner;
}

}  // namespace hoga::dist
