#include "dist/dist.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <optional>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "autograd/ops.hpp"
#include "core/hop_features.hpp"
#include "dist/sharding.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "optim/optim.hpp"
#include "store/digest.hpp"
#include "store/feature_store.hpp"
#include "train/train_state.hpp"
#include "util/check.hpp"
#include "util/digest.hpp"
#include "util/timer.hpp"

namespace hoga::dist {

namespace {

// ---- payload (de)serialization -------------------------------------------

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get(const char*& p, const char* end) {
  HOGA_CHECK(p + sizeof(T) <= end, "dist: truncated payload");
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

/// One shard's contribution to one step: RAW (unweighted) gradients in
/// parameter order plus the shard batch's mean loss and row count.
struct ShardStep {
  int shard_id = 0;
  std::int64_t rows = 0;
  float loss = 0;
  std::vector<float> grads;
};

std::string encode_shard_grads(const std::vector<ShardStep>& v) {
  std::string out;
  put<std::uint32_t>(out, static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) {
    put<std::int32_t>(out, s.shard_id);
    put<std::int64_t>(out, s.rows);
    put<float>(out, s.loss);
    put<std::uint64_t>(out, s.grads.size());
    out.append(reinterpret_cast<const char*>(s.grads.data()),
               s.grads.size() * sizeof(float));
  }
  return out;
}

std::vector<ShardStep> decode_shard_grads(const std::string& p) {
  const char* it = p.data();
  const char* end = p.data() + p.size();
  const auto n = get<std::uint32_t>(it, end);
  std::vector<ShardStep> v(n);
  for (auto& s : v) {
    s.shard_id = get<std::int32_t>(it, end);
    s.rows = get<std::int64_t>(it, end);
    s.loss = get<float>(it, end);
    const auto nf = get<std::uint64_t>(it, end);
    HOGA_CHECK(it + nf * sizeof(float) <= end, "dist: truncated grads");
    s.grads.resize(nf);
    std::memcpy(s.grads.data(), it, nf * sizeof(float));
    it += nf * sizeof(float);
  }
  return v;
}

std::string encode_apply(const std::vector<float>& flat) {
  std::string out;
  put<std::uint64_t>(out, flat.size());
  out.append(reinterpret_cast<const char*>(flat.data()),
             flat.size() * sizeof(float));
  return out;
}

std::vector<float> decode_apply(const std::string& p) {
  const char* it = p.data();
  const char* end = p.data() + p.size();
  const auto nf = get<std::uint64_t>(it, end);
  HOGA_CHECK(it + nf * sizeof(float) <= end, "dist: truncated apply");
  std::vector<float> flat(nf);
  std::memcpy(flat.data(), it, nf * sizeof(float));
  return flat;
}

std::string encode_restore(const std::vector<int>& owners,
                           const std::string& state) {
  std::string out;
  put<std::uint32_t>(out, static_cast<std::uint32_t>(owners.size()));
  for (int o : owners) put<std::int32_t>(out, o);
  put<std::uint64_t>(out, state.size());
  out.append(state);
  return out;
}

void decode_restore(const std::string& p, std::vector<int>* owners,
                    std::string* state) {
  const char* it = p.data();
  const char* end = p.data() + p.size();
  const auto n = get<std::uint32_t>(it, end);
  owners->resize(n);
  for (auto& o : *owners) o = get<std::int32_t>(it, end);
  const auto len = get<std::uint64_t>(it, end);
  HOGA_CHECK(it + len <= end, "dist: truncated restore state");
  state->assign(it, len);
}

// ---- the deterministic logical schedule ----------------------------------

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t tag,
                          std::int64_t a, std::int64_t b, std::int64_t c) {
  util::Digest d;
  d.update_value(seed);
  d.update_value(tag);
  d.update_value(a);
  d.update_value(b);
  d.update_value(c);
  return d.value();
}

std::int64_t steps_per_epoch(const std::vector<Shard>& shards,
                             std::int64_t batch_size) {
  std::int64_t max_rows = 0;
  for (const auto& s : shards) max_rows = std::max(max_rows, s.rows());
  return (max_rows + batch_size - 1) / batch_size;
}

std::int64_t total_param_floats(const optim::Adam& opt) {
  std::int64_t n = 0;
  for (const auto& p : opt.params()) n += p.numel();
  return n;
}

/// The per-shard batch order for one epoch: the shard's node ids shuffled
/// by an Rng derived from (seed, epoch, shard) — never from the worker
/// that happens to run it.
std::vector<std::int64_t> shard_epoch_order(const Shard& shard,
                                            std::uint64_t seed, int epoch) {
  std::vector<std::int64_t> ids(static_cast<std::size_t>(shard.rows()));
  std::iota(ids.begin(), ids.end(), shard.begin);
  Rng order_rng(derive_seed(seed, /*tag=*/1, epoch, shard.id, 0));
  order_rng.shuffle(ids);
  return ids;
}

/// Forward/backward for one (shard, epoch, step) batch. Reads the current
/// replica parameters, never steps the optimizer; the dropout Rng is
/// derived from the logical coordinates so any process computes identical
/// bits.
ShardStep compute_shard_step(core::Hoga& model, optim::Adam& opt,
                             const core::HopFeatures& hops,
                             const std::vector<int>& labels,
                             const Shard& shard, const DistConfig& cfg,
                             int epoch, std::int64_t step) {
  ShardStep out;
  out.shard_id = shard.id;
  const auto ids = shard_epoch_order(shard, cfg.seed, epoch);
  const std::int64_t lo = step * cfg.batch_size;
  const std::int64_t hi =
      std::min<std::int64_t>(static_cast<std::int64_t>(ids.size()),
                             lo + cfg.batch_size);
  if (lo >= hi) return out;  // shard exhausted this step: rows == 0
  std::vector<std::int64_t> batch(ids.begin() + lo, ids.begin() + hi);
  std::vector<int> batch_labels;
  batch_labels.reserve(batch.size());
  for (std::int64_t i : batch) {
    batch_labels.push_back(labels[static_cast<std::size_t>(i)]);
  }
  opt.zero_grad();
  Rng batch_rng(derive_seed(cfg.seed, /*tag=*/2, epoch, step, shard.id));
  ag::Variable logits =
      model.forward(ag::constant(hops.gather(batch)), batch_rng);
  ag::Variable loss =
      ag::softmax_cross_entropy(logits, batch_labels, cfg.class_weights);
  loss.backward();
  out.rows = hi - lo;
  out.loss = loss.value().data()[0];
  out.grads.reserve(static_cast<std::size_t>(total_param_floats(opt)));
  for (const auto& p : opt.params()) {
    const Tensor& g = p.grad();
    out.grads.insert(out.grads.end(), g.data(), g.data() + g.numel());
  }
  return out;
}

/// One slot per shard id, carrying row-weighted grads. Weighting and the
/// pairwise tree combine below are the single float-summation order shared
/// by the distributed and reference paths.
struct StepSlot {
  std::vector<float> wgrad;
  double wloss = 0;
  std::int64_t rows = 0;
};

StepSlot make_slot(const ShardStep& s) {
  StepSlot slot;
  if (s.rows == 0) return slot;
  slot.rows = s.rows;
  slot.wloss = static_cast<double>(s.loss) * static_cast<double>(s.rows);
  const float w = static_cast<float>(s.rows);
  slot.wgrad.resize(s.grads.size());
  for (std::size_t i = 0; i < s.grads.size(); ++i) {
    slot.wgrad[i] = s.grads[i] * w;
  }
  return slot;
}

struct Reduced {
  std::vector<float> flat;  // mean gradient over the step's union batch
  double loss = 0;          // row-weighted mean loss
  std::int64_t rows = 0;
};

Reduced reduce_step(std::vector<StepSlot> slots) {
  StepSlot sum = tree_reduce(std::move(slots), [](StepSlot& a, StepSlot& b) {
    if (b.rows == 0) return;
    if (a.rows == 0) {
      a = std::move(b);
      return;
    }
    HOGA_CHECK(a.wgrad.size() == b.wgrad.size(),
               "dist: shard gradient size mismatch");
    for (std::size_t i = 0; i < a.wgrad.size(); ++i) a.wgrad[i] += b.wgrad[i];
    a.wloss += b.wloss;
    a.rows += b.rows;
  });
  Reduced r;
  r.rows = sum.rows;
  if (sum.rows > 0) {
    const float inv = 1.f / static_cast<float>(sum.rows);
    r.flat.resize(sum.wgrad.size());
    for (std::size_t i = 0; i < sum.wgrad.size(); ++i) {
      r.flat[i] = sum.wgrad[i] * inv;
    }
    r.loss = sum.wloss / static_cast<double>(sum.rows);
  }
  return r;
}

/// Installs the reduced gradient into the replica and steps Adam. Shared
/// verbatim by coordinator, workers, and the reference — THE invariant
/// that keeps replicas bit-identical.
void apply_reduced(optim::Adam& opt, const std::vector<float>& flat,
                   float grad_clip) {
  std::size_t off = 0;
  for (ag::Variable p : opt.params()) {  // cheap shared handles
    p.zero_grad();
    Tensor& g = p.mutable_grad();
    const std::size_t n = static_cast<std::size_t>(g.numel());
    HOGA_CHECK(off + n <= flat.size(), "dist: reduced gradient too short");
    std::memcpy(g.data(), flat.data() + off, n * sizeof(float));
    off += n;
  }
  HOGA_CHECK(off == flat.size(), "dist: reduced gradient size mismatch");
  if (grad_clip > 0) optim::clip_grad_norm(opt.params(), grad_clip);
  opt.step();
}

core::HopFeatures fetch_hops(const DistConfig& cfg, const graph::Csr& adj,
                             const Tensor& x, int num_hops) {
  if (cfg.store_directory.empty()) {
    return core::HopFeatures::compute(adj, x, num_hops);
  }
  store::StoreConfig sc;
  sc.directory = cfg.store_directory;
  sc.cross_process_leases = true;
  store::FeatureStore fs(sc);
  return fs.get_or_compute(adj, x, num_hops);
}

// ---- worker process -------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

[[noreturn]] void worker_main(int fd, int rank, core::Hoga& model,
                              optim::Adam& opt, Rng& rng,
                              const core::HopFeatures* inherited_hops,
                              const graph::Csr& adj, const Tensor& x,
                              const std::vector<int>& labels,
                              const std::vector<Shard>& shards,
                              const DistConfig& cfg) {
  try {
    const core::HopFeatures hops =
        inherited_hops ? *inherited_hops
                       : fetch_hops(cfg, adj, x, model.config().num_hops);
    model.set_training(true);
    Channel chan(fd, cfg.wire);
    chan.send(Message{MsgType::kHello, rank, 0, 0, ""});
    std::vector<int> owners;  // shard id -> owning rank
    const std::int64_t steps = steps_per_epoch(shards, cfg.batch_size);
    while (true) {
      auto m = chan.recv(cfg.heartbeat_timeout_ms * 10,
                         /*send_heartbeats=*/true);
      if (!m) _exit(3);  // coordinator silent for far too long
      switch (m->type) {
        case MsgType::kRestore: {
          std::string state;
          decode_restore(m->payload, &owners, &state);
          if (!state.empty()) train::load_train_state(model, opt, rng, state);
          break;
        }
        case MsgType::kCompute: {
          const int epoch = static_cast<int>(m->a);
          const std::int64_t step = m->b;
          if (auto* inj = fault::active()) {
            if (inj->worker_should_die_at(rank, epoch * steps + step)) {
              _exit(42);  // injected mid-epoch death
            }
          }
          std::vector<ShardStep> mine;
          for (const auto& shard : shards) {
            if (static_cast<std::size_t>(shard.id) < owners.size() &&
                owners[static_cast<std::size_t>(shard.id)] == rank) {
              mine.push_back(compute_shard_step(model, opt, hops, labels,
                                                shard, cfg, epoch, step));
            }
          }
          chan.send(Message{MsgType::kShardGrad, rank, epoch, step,
                            encode_shard_grads(mine)});
          break;
        }
        case MsgType::kApply: {
          apply_reduced(opt, decode_apply(m->payload), cfg.grad_clip);
          break;
        }
        case MsgType::kShutdown:
          _exit(0);
        default:
          break;  // stray control type: ignore
      }
    }
  } catch (...) {
    _exit(1);  // any error (PeerDead included): die; the coordinator heals
  }
}

#endif  // unix

}  // namespace

// ---- coordinator ----------------------------------------------------------

DistResult run_distributed(const core::HogaConfig& model_config,
                           const graph::Csr& adj_norm, const Tensor& features,
                           const std::vector<int>& labels,
                           const DistConfig& config) {
#if !defined(__unix__) && !defined(__APPLE__)
  (void)model_config, (void)adj_norm, (void)features, (void)labels,
      (void)config;
  HOGA_CHECK(false, "dist: run_distributed needs fork/socketpair (POSIX)");
#else
  HOGA_CHECK(config.workers >= 1, "dist: need at least one worker");
  HOGA_CHECK(config.epochs >= 1, "dist: need at least one epoch");
  HOGA_CHECK(config.batch_size >= 1, "dist: batch_size must be >= 1");
  Timer total;
  DistResult result;
  result.scaling.workers = config.workers;

  Rng rng(config.seed);
  core::Hoga model(model_config, rng);
  optim::Adam opt(model.parameters(), config.lr);
  const std::uint64_t content = store::graph_digest(adj_norm, features);
  const auto shards =
      make_shards(features.size(0), config.num_shards, content);
  const std::int64_t steps = steps_per_epoch(shards, config.batch_size);

  std::optional<core::HopFeatures> hops;  // pre-fork path only
  if (config.store_directory.empty()) {
    hops = core::HopFeatures::compute(adj_norm, features,
                                      model_config.num_hops);
  }

  struct WorkerProc {
    pid_t pid = -1;
    std::unique_ptr<Channel> chan;
    bool alive = false;
  };
  std::vector<WorkerProc> procs(static_cast<std::size_t>(config.workers));

  auto harvest_stats = [&](const Channel& chan) {
    result.bytes_sent += chan.stats().bytes_sent;
    result.retransmits += chan.stats().retransmits;
    result.naks += chan.stats().naks_sent + chan.stats().naks_received;
  };

  auto spawn = [&](int rank) {
    ChannelPair pair = make_channel_pair();
    const pid_t pid = ::fork();
    HOGA_CHECK(pid >= 0, "dist: fork failed");
    if (pid == 0) {
      // Child: drop every coordinator-side descriptor it inherited, or a
      // sibling's death would never read as EOF at the coordinator.
      ::close(pair.coordinator_fd);
      for (const auto& p : procs) {
        if (p.chan) ::close(p.chan->fd());
      }
      worker_main(pair.worker_fd, rank, model, opt, rng,
                  hops ? &*hops : nullptr, adj_norm, features, labels,
                  shards, config);  // never returns
    }
    ::close(pair.worker_fd);
    auto& proc = procs[static_cast<std::size_t>(rank)];
    proc.pid = pid;
    proc.chan = std::make_unique<Channel>(pair.coordinator_fd, config.wire);
    proc.alive = true;
    // Readiness: the worker says Hello once its hop features are in hand
    // (which may involve a cross-process lease wait on the store).
    auto hello = proc.chan->recv(config.heartbeat_timeout_ms * 10);
    if (!hello || hello->type != MsgType::kHello) {
      throw PeerDead("dist: worker " + std::to_string(rank) +
                     " never said hello");
    }
  };

  auto live_ranks = [&] {
    std::vector<int> live;
    for (int r = 0; r < config.workers; ++r) {
      if (procs[static_cast<std::size_t>(r)].alive) live.push_back(r);
    }
    return live;
  };

  auto mark_dead = [&](int rank) {
    auto& proc = procs[static_cast<std::size_t>(rank)];
    if (!proc.alive) return;
    proc.alive = false;
    if (proc.pid > 0) {
      ::kill(proc.pid, SIGKILL);  // decisive: hung counts the same as dead
      ::waitpid(proc.pid, nullptr, 0);
      proc.pid = -1;
    }
    if (proc.chan) {
      harvest_stats(*proc.chan);
      proc.chan.reset();
    }
    if (auto* inj = fault::active()) inj->acknowledge_worker_kill(rank);
    ++result.scaling.worker_failures;
  };

  std::vector<int> owners;
  auto broadcast_restore = [&](int resume_epoch, const std::string& state) {
    const auto live = live_ranks();
    HOGA_CHECK(!live.empty(), "dist: all workers dead");
    owners = assign_shards(shards, live);
    const std::string payload = encode_restore(owners, state);
    for (int r : live) {
      procs[static_cast<std::size_t>(r)].chan->send(
          Message{MsgType::kRestore, -1, resume_epoch,
                  static_cast<std::int64_t>(shards.size()), payload});
    }
  };

  train::TrainState st;
  auto write_checkpoint = [&] {
    if (config.checkpoint_path.empty()) return;
    train::save_train_state_file_with_retry(model, opt, rng, st,
                                            config.checkpoint_path);
  };
  write_checkpoint();  // epoch-0 rollback target always exists

  // Launch the fleet, then hand out the initial shard claims. No state
  // bytes: every replica is the coordinator's fork image already.
  int failed_rank = -1;  // rank being talked to when a PeerDead fires
  for (int r = 0; r < config.workers; ++r) spawn(r);
  broadcast_restore(0, "");

  while (st.epoch < config.epochs) {
    try {
      const int epoch = st.epoch;
      double loss_sum = 0;
      std::int64_t counted = 0;
      for (std::int64_t t = 0; t < steps; ++t) {
        for (int r : live_ranks()) {
          failed_rank = r;
          procs[static_cast<std::size_t>(r)].chan->send(
              Message{MsgType::kCompute, -1, epoch, t, ""});
        }
        std::vector<StepSlot> slots(shards.size());
        for (int r : live_ranks()) {
          failed_rank = r;
          auto& chan = *procs[static_cast<std::size_t>(r)].chan;
          while (true) {
            auto m = chan.recv(config.heartbeat_timeout_ms);
            if (!m) {
              throw PeerDead("dist: worker " + std::to_string(r) +
                             " heartbeat timeout");
            }
            if (m->type == MsgType::kShardGrad && m->a == epoch &&
                m->b == t) {
              for (auto& s : decode_shard_grads(m->payload)) {
                slots[static_cast<std::size_t>(s.shard_id)] = make_slot(s);
              }
              break;
            }
            // Anything else is pre-recovery residue: drop it.
          }
        }
        const Reduced red = reduce_step(std::move(slots));
        if (red.rows > 0) {
          apply_reduced(opt, red.flat, config.grad_clip);
          loss_sum += red.loss;
          ++counted;
          const Message apply{MsgType::kApply, -1, epoch, t,
                              encode_apply(red.flat)};
          for (int r : live_ranks()) {
            failed_rank = r;
            procs[static_cast<std::size_t>(r)].chan->send(apply);
          }
        }
      }
      st.epoch_losses.push_back(
          static_cast<float>(loss_sum / std::max<std::int64_t>(1, counted)));
      st.epoch += 1;
      if (config.checkpoint_every > 0 &&
          st.epoch % config.checkpoint_every == 0) {
        write_checkpoint();
      }
    } catch (const PeerDead&) {
      ++result.recoveries;
      obs::count("dist.recoveries");
      if (result.recoveries > config.max_recoveries) throw;
      if (config.checkpoint_path.empty()) throw;  // no rollback target
      Timer recovery;
      // Put the offender down, then sweep for other silent corpses.
      if (failed_rank >= 0) mark_dead(failed_rank);
      for (int r : live_ranks()) {
        auto& proc = procs[static_cast<std::size_t>(r)];
        if (proc.pid > 0 && ::waitpid(proc.pid, nullptr, WNOHANG) != 0) {
          proc.pid = -1;  // already reaped by the probe
          mark_dead(r);
        }
      }
      if (config.respawn_dead_workers) {
        for (int r = 0; r < config.workers; ++r) {
          if (!procs[static_cast<std::size_t>(r)].alive) {
            try {
              spawn(r);
              ++result.respawns;
              obs::count("dist.respawns");
            } catch (const PeerDead&) {
              mark_dead(r);  // replacement stillborn: stay on survivors
            }
          }
        }
      }
      // Roll every replica back to the durable checkpoint and re-shard:
      // one Restore message carries the state and the fresh claims.
      st = train::load_train_state_file(model, opt, rng,
                                        config.checkpoint_path);
      broadcast_restore(st.epoch, train::save_train_state(model, opt, rng, st));
      result.scaling.recovery_seconds += recovery.seconds();
      obs::ledger_event("dist.recovery",
                        {{"epoch", static_cast<long long>(st.epoch)},
                         {"live_workers",
                          static_cast<long long>(live_ranks().size())}});
    }
  }

  for (int r : live_ranks()) {
    try {
      procs[static_cast<std::size_t>(r)].chan->send(
          Message{MsgType::kShutdown, -1, 0, 0, ""});
    } catch (const PeerDead&) {
      // Dying during shutdown is as good as shutting down.
    }
  }
  for (auto& proc : procs) {
    if (proc.pid > 0) ::waitpid(proc.pid, nullptr, 0);
    if (proc.chan) {
      harvest_stats(*proc.chan);
      proc.chan.reset();
    }
  }

  result.epoch_losses = st.epoch_losses;
  result.final_state = train::save_train_state(model, opt, rng, st);
  result.seconds = total.seconds();
  result.scaling.epoch_seconds = result.seconds / config.epochs;
  return result;
#endif
}

DistResult run_reference(const core::HogaConfig& model_config,
                         const graph::Csr& adj_norm, const Tensor& features,
                         const std::vector<int>& labels,
                         const DistConfig& config) {
  HOGA_CHECK(config.epochs >= 1, "dist: need at least one epoch");
  HOGA_CHECK(config.batch_size >= 1, "dist: batch_size must be >= 1");
  Timer total;
  DistResult result;
  result.scaling.workers = 1;

  Rng rng(config.seed);
  core::Hoga model(model_config, rng);
  optim::Adam opt(model.parameters(), config.lr);
  const std::uint64_t content = store::graph_digest(adj_norm, features);
  const auto shards =
      make_shards(features.size(0), config.num_shards, content);
  const std::int64_t steps = steps_per_epoch(shards, config.batch_size);
  const core::HopFeatures hops =
      core::HopFeatures::compute(adj_norm, features, model_config.num_hops);
  model.set_training(true);

  train::TrainState st;
  while (st.epoch < config.epochs) {
    const int epoch = st.epoch;
    double loss_sum = 0;
    std::int64_t counted = 0;
    for (std::int64_t t = 0; t < steps; ++t) {
      std::vector<StepSlot> slots(shards.size());
      for (const auto& shard : shards) {
        slots[static_cast<std::size_t>(shard.id)] = make_slot(
            compute_shard_step(model, opt, hops, labels, shard, config,
                               epoch, t));
      }
      const Reduced red = reduce_step(std::move(slots));
      if (red.rows > 0) {
        apply_reduced(opt, red.flat, config.grad_clip);
        loss_sum += red.loss;
        ++counted;
      }
    }
    st.epoch_losses.push_back(
        static_cast<float>(loss_sum / std::max<std::int64_t>(1, counted)));
    st.epoch += 1;
  }

  result.epoch_losses = st.epoch_losses;
  result.final_state = train::save_train_state(model, opt, rng, st);
  result.seconds = total.seconds();
  result.scaling.epoch_seconds = result.seconds / config.epochs;
  return result;
}

}  // namespace hoga::dist
