#pragma once
// hoga::dist — multi-process data-parallel HOGA training (DESIGN.md §13).
//
// A coordinator process forks W worker processes connected over Unix-domain
// socketpairs (dist/wire.hpp). The training set is split into a fixed
// number S of logical shards (dist/sharding.hpp); live workers own shards
// by rendezvous hashing. Each step the coordinator drives a lockstep RPC
// round: Compute -> per-shard gradients back -> fixed-order tree reduce
// over shard index -> Apply broadcast. Every process holds a full
// model+Adam replica and applies the identical reduced gradient, so all
// replicas stay bit-identical — and because the reduction order is a
// function of S alone, the final parameters are bit-identical for ANY
// worker count and ANY fault schedule that the runtime heals.
//
// Fault tolerance:
//   - liveness is heartbeat-based: a worker that produces no frame within
//     heartbeat_timeout_ms (or whose socket EOFs) is declared dead, killed
//     decisively, and reaped;
//   - on a death the coordinator re-assigns the dead worker's shards to
//     survivors (rendezvous: only those shards move), rolls every replica
//     back to the last durable checkpoint (hoga-ckpt v2 via
//     storage::atomic_write_durable), broadcasts the state + new
//     assignment in one Restore message, and replays from the checkpoint
//     epoch. Replay is bit-exact, so healed runs match fault-free runs;
//   - dead workers are optionally respawned (re-forked) and re-admitted
//     with fresh shard claims through the same Restore path;
//   - transient transport faults (drops, CRC corruption, delays — all
//     injectable via hoga::fault) are absorbed by the wire layer's
//     ack/NAK/retransmit protocol and never surface here.
//
// Hop features: with `store_directory` set, every worker fetches the
// phase-1 precompute through its own FeatureStore with cross-process
// compute leases enabled — W workers missing the same key compute it once,
// the rest block-then-read (feature_store.hpp). Without a store directory
// the coordinator computes hop features before forking and children
// inherit them copy-on-write.

#include <cstdint>
#include <string>
#include <vector>

#include "core/hoga_model.hpp"
#include "dist/wire.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"
#include "train/parallel.hpp"

namespace hoga::dist {

struct DistConfig {
  int workers = 2;          // worker processes (the coordinator is extra)
  int epochs = 4;
  int num_shards = 8;       // S: fixed logical shard count (determinism unit)
  std::int64_t batch_size = 256;  // per-shard rows per step
  float lr = 3e-3f;
  std::uint64_t seed = 1;
  std::vector<float> class_weights;  // empty = unweighted
  float grad_clip = 0.f;    // global-norm clip on the reduced grad (0 = off)

  /// Durable rollback target, written every `checkpoint_every` epochs (and
  /// once at epoch 0 so a rollback target always exists). Empty disables
  /// checkpointing — and with it death recovery: a worker death then
  /// fails the run instead of healing.
  std::string checkpoint_path;
  int checkpoint_every = 1;

  /// Liveness: max silence from a worker before it is declared dead.
  double heartbeat_timeout_ms = 3000;
  /// Reliability knobs of every channel (ack timeout, retries, backoff).
  WireConfig wire;

  /// Re-fork replacements for dead workers after recovery (rejoin). When
  /// false the run continues on the survivors alone.
  bool respawn_dead_workers = true;
  /// Recovery budget: more deaths than this fail the run.
  int max_recoveries = 4;

  /// Non-empty: workers fetch hop features through a FeatureStore rooted
  /// here with cross-process compute leases on. Empty: hop features are
  /// computed once pre-fork and inherited.
  std::string store_directory;
};

struct DistResult {
  std::vector<float> epoch_losses;  // one per epoch, bit-exact vs reference
  /// Final hoga-ckpt v2 state (model + Adam + RNG + loop progress): the
  /// byte-identity witness. Equal strings == bit-identical replicas.
  std::string final_state;
  /// Cluster-level accounting (worker_failures, recovery_seconds, ...).
  train::ScalingPoint scaling;
  int recoveries = 0;   // rollback+replay events executed
  int respawns = 0;     // replacement workers re-admitted
  long long bytes_sent = 0;    // coordinator-side wire bytes
  long long retransmits = 0;   // coordinator-side extra transmissions
  long long naks = 0;          // CRC rejections observed (either side sent)
  double seconds = 0;          // total wall time of the run
};

/// Trains `model_config` on (adj_norm, features, labels) with `workers`
/// forked processes. Throws on unrecoverable failures (no checkpoint to
/// roll back to, recovery budget exhausted, all workers dead).
DistResult run_distributed(const core::HogaConfig& model_config,
                           const graph::Csr& adj_norm, const Tensor& features,
                           const std::vector<int>& labels,
                           const DistConfig& config);

/// Single-process reference: executes the identical logical schedule (same
/// shards, same batches, same tree reduction) in one process. Its
/// final_state is the byte-identity target for every run_distributed
/// configuration with the same DistConfig data/seed fields.
DistResult run_reference(const core::HogaConfig& model_config,
                         const graph::Csr& adj_norm, const Tensor& features,
                         const std::vector<int>& labels,
                         const DistConfig& config);

}  // namespace hoga::dist
