#include "optim/optim.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace hoga::optim {

float clip_grad_norm(const std::vector<ag::Variable>& params, float max_norm) {
  double sq = 0;
  for (const auto& p : params) {
    const Tensor& g = p.grad();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      sq += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.f) {
    const float scale = max_norm / norm;
    for (auto p : params) {  // Variable is a shared handle; copy is cheap
      Tensor& g = p.mutable_grad();
      for (std::int64_t i = 0; i < g.numel(); ++i) g.data()[i] *= scale;
    }
  }
  return norm;
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(Tensor::zeros(p.shape()));
    }
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& x = params_[i].mutable_value();
    const Tensor& g = params_[i].grad();
    if (momentum_ > 0.f) {
      Tensor& v = velocity_[i];
      for (std::int64_t j = 0; j < x.numel(); ++j) {
        v.data()[j] = momentum_ * v.data()[j] + g.data()[j];
        x.data()[j] -= lr_ * v.data()[j];
      }
    } else {
      for (std::int64_t j = 0; j < x.numel(); ++j) {
        x.data()[j] -= lr_ * g.data()[j];
      }
    }
  }
}

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.shape()));
    v_.push_back(Tensor::zeros(p.shape()));
  }
}

void Adam::restore_state(std::int64_t t, const std::vector<Tensor>& m,
                         const std::vector<Tensor>& v) {
  HOGA_CHECK(t >= 0, "Adam::restore_state: negative step count " << t);
  HOGA_CHECK(m.size() == m_.size() && v.size() == v_.size(),
             "Adam::restore_state: moment count mismatch (got "
                 << m.size() << "/" << v.size() << ", optimizer has "
                 << m_.size() << ")");
  for (std::size_t i = 0; i < m_.size(); ++i) {
    HOGA_CHECK(m[i].numel() == m_[i].numel() && v[i].numel() == v_[i].numel(),
               "Adam::restore_state: moment " << i << " size mismatch");
    m_[i].copy_from(m[i]);
    v_[i].copy_from(v[i]);
  }
  t_ = t;
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& x = params_[i].mutable_value();
    const Tensor& g = params_[i].grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < x.numel(); ++j) {
      float gj = g.data()[j];
      if (weight_decay_ > 0.f) gj += weight_decay_ * x.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.f - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.f - beta2_) * gj * gj;
      const float mhat = m.data()[j] / bc1;
      const float vhat = v.data()[j] / bc2;
      x.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace hoga::optim
