#pragma once
// Optimizers. The paper trains HOGA with Adam (lr 1e-4); SGD is provided for
// tests and ablations.

#include <vector>

#include "autograd/variable.hpp"

namespace hoga::optim {

/// Clips the global L2 norm of the gradients in-place; returns the norm
/// before clipping.
float clip_grad_norm(const std::vector<ag::Variable>& params, float max_norm);

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();
  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> params, float lr, float momentum = 0.f);
  void step() override;
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, float lr = 1e-4f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);
  void step() override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Optimizer state exposure for checkpoint/resume (TrainState v2): the
  /// step counter and both moment estimates. Resuming with these restored
  /// continues the parameter trajectory bit-exactly.
  std::int64_t step_count() const { return t_; }
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }
  /// Restores the step counter and moments; `m`/`v` must match the
  /// parameter list element-for-element in count and numel.
  void restore_state(std::int64_t t, const std::vector<Tensor>& m,
                     const std::vector<Tensor>& v);

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace hoga::optim
