#include "nn/serialize.hpp"

#include <iomanip>
#include <sstream>

#include "fault/fault.hpp"
#include "storage/storage.hpp"
#include "util/check.hpp"
#include "util/io.hpp"

namespace hoga::nn {

std::string save_checkpoint(const Module& module) {
  const auto params = module.parameters();
  const auto names = module.parameter_names();
  HOGA_CHECK(params.size() == names.size(), "save_checkpoint: registry bug");
  std::ostringstream os;
  os << "hoga-ckpt v1 " << params.size() << '\n';
  os << std::setprecision(9);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& t = params[i].value();
    os << names[i] << ' ' << t.dim();
    for (std::int64_t a = 0; a < t.dim(); ++a) os << ' ' << t.size(a);
    os << '\n';
    for (std::int64_t j = 0; j < t.numel(); ++j) {
      if (j) os << ' ';
      os << t.data()[j];
    }
    os << '\n';
  }
  return os.str();
}

void save_checkpoint_file(const Module& module, const std::string& path) {
  fault::maybe_fail_checkpoint_write(path);
  // Durable write-tmp-fsync-rename: a crash mid-save can never leave a torn
  // checkpoint at `path`, and a completed save survives power loss.
  storage::atomic_write_durable(path, save_checkpoint(module));
}

void load_checkpoint(Module& module, const std::string& text) {
  std::istringstream is(text);
  std::string magic, version;
  std::size_t count = 0;
  is >> magic >> version;
  HOGA_CHECK(!is.fail() && magic == "hoga-ckpt",
             "load_checkpoint: not a hoga-ckpt file");
  HOGA_CHECK(version == "v1",
             "load_checkpoint: unsupported checkpoint version '"
                 << version << "' (expected v1; v2 files carry full training "
                               "state — use train::load_train_state)");
  is >> count;
  HOGA_CHECK(!is.fail(), "load_checkpoint: bad parameter count in header");
  auto params = module.parameters();
  const auto names = module.parameter_names();
  HOGA_CHECK(count == params.size(),
             "load_checkpoint: checkpoint has " << count
                                                << " parameters, module has "
                                                << params.size());
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    std::int64_t rank = 0;
    is >> name >> rank;
    HOGA_CHECK(is.good() && name == names[i],
               "load_checkpoint: parameter " << i << " is '" << name
                                             << "', expected '" << names[i]
                                             << "'");
    Shape shape(static_cast<std::size_t>(rank));
    for (auto& s : shape) is >> s;
    HOGA_CHECK(is.good() && shape == params[i].shape(),
               "load_checkpoint: shape mismatch for " << name);
    Tensor& dst = params[i].mutable_value();
    for (std::int64_t j = 0; j < dst.numel(); ++j) {
      is >> dst.data()[j];
    }
    HOGA_CHECK(is.good() || is.eof(),
               "load_checkpoint: truncated data for " << name);
  }
}

void load_checkpoint_file(Module& module, const std::string& path) {
  fault::maybe_fail_checkpoint_read(path);
  load_checkpoint(module, util::read_file(path));
}

}  // namespace hoga::nn
