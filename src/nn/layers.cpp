#include "nn/layers.hpp"

#include "nn/init.hpp"
#include "util/check.hpp"

namespace hoga::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features) {
  weight_ = register_parameter("weight", xavier_uniform(in_, out_, rng));
  if (bias) {
    bias_ = register_parameter("bias", Tensor::zeros({out_}));
  }
}

ag::Variable Linear::forward(const ag::Variable& x) const {
  ag::Variable h;
  if (x.value().dim() == 2) {
    h = ag::matmul(x, weight_);
  } else {
    HOGA_CHECK(x.value().dim() == 3,
               "Linear: input must be 2-D or 3-D, got "
                   << shape_to_string(x.shape()));
    const auto& s = x.shape();
    ag::Variable flat = ag::reshape(x, {s[0] * s[1], s[2]});
    h = ag::reshape(ag::matmul(flat, weight_), {s[0], s[1], out_});
  }
  if (bias_.defined()) h = ag::add(h, bias_);
  return h;
}

LayerNorm::LayerNorm(std::int64_t dim, float eps) : dim_(dim), eps_(eps) {
  gamma_ = register_parameter("gamma", Tensor::ones({dim_}));
  beta_ = register_parameter("beta", Tensor::zeros({dim_}));
}

ag::Variable LayerNorm::forward(const ag::Variable& x) const {
  HOGA_CHECK(x.size(-1) == dim_, "LayerNorm: trailing dim "
                                     << x.size(-1) << " != " << dim_);
  return ag::layer_norm_affine(x, gamma_, beta_, eps_);
}

Embedding::Embedding(std::int64_t num_embeddings, std::int64_t dim, Rng& rng)
    : dim_(dim) {
  weight_ = register_parameter("weight",
                               normal_init({num_embeddings, dim}, rng, 0.05f));
}

ag::Variable Embedding::forward(const std::vector<std::int64_t>& indices) const {
  return ag::gather_rows(weight_, indices);
}

Mlp::Mlp(const std::vector<std::int64_t>& dims, Rng& rng, float dropout)
    : dropout_(dropout) {
  HOGA_CHECK(dims.size() >= 2, "Mlp: need at least {in, out} dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    auto layer = std::make_shared<Linear>(dims[i], dims[i + 1], rng);
    register_module("layer" + std::to_string(i), layer);
    layers_.push_back(std::move(layer));
  }
}

ag::Variable Mlp::forward(const ag::Variable& x, Rng& rng) const {
  ag::Variable h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    if (i + 1 < layers_.size()) {
      h = ag::relu(h);
      if (dropout_ > 0.f) h = ag::dropout(h, dropout_, rng, training());
    }
  }
  return h;
}

ag::Variable Mlp::forward(const ag::Variable& x) const {
  ag::Variable h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    if (i + 1 < layers_.size()) h = ag::relu(h);
  }
  return h;
}

}  // namespace hoga::nn
