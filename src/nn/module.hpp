#pragma once
// Module base class: a named registry of trainable parameters and
// submodules, so optimizers and the parallel trainer can enumerate, copy,
// and average parameters generically.

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.hpp"

namespace hoga::nn {

class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module and its submodules, in
  /// registration order (deterministic — the parallel trainer relies on it).
  std::vector<ag::Variable> parameters() const;

  /// Flat names ("layer0.weight") parallel to parameters().
  std::vector<std::string> parameter_names() const;

  /// Total number of trainable scalars.
  std::int64_t parameter_count() const;

  /// Copies parameter values from another module with an identical
  /// architecture (used to replicate models across simulated workers).
  void copy_parameters_from(const Module& other);

  void zero_grad();

  /// Train/eval mode toggle (affects dropout).
  void set_training(bool training);
  bool training() const { return training_; }

 protected:
  /// Registers a trainable parameter; returns it for storage by the layer.
  ag::Variable register_parameter(std::string name, Tensor init);
  /// Registers a child whose parameters are exposed through this module.
  void register_module(std::string name, std::shared_ptr<Module> child);

 private:
  struct Named {
    std::string name;
    ag::Variable param;
  };
  std::vector<Named> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace hoga::nn
