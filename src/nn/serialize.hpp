#pragma once
// Model checkpointing: saves/loads a Module's named parameters in a simple
// self-describing text format ("hoga-ckpt v1"). Names and shapes are
// verified on load, so architecture mismatches fail loudly instead of
// silently corrupting weights.

#include <iosfwd>
#include <string>

#include "nn/module.hpp"

namespace hoga::nn {

/// Serializes all parameters (names, shapes, float data) of `module`.
std::string save_checkpoint(const Module& module);
/// Atomic save: writes `path + ".tmp"` then renames, so an interrupted
/// write never leaves a torn checkpoint at `path`.
void save_checkpoint_file(const Module& module, const std::string& path);

/// Restores parameters into `module`; every name and shape must match the
/// module's registry exactly.
void load_checkpoint(Module& module, const std::string& text);
void load_checkpoint_file(Module& module, const std::string& path);

}  // namespace hoga::nn
