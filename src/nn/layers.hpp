#pragma once
// Standard layers used by HOGA and the baseline GNNs.

#include <memory>
#include <vector>

#include "autograd/ops.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace hoga::nn {

/// y = x W + b. Input may be 2-D [n, in] or 3-D [b, k, in] (applied to the
/// trailing axis via reshape).
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);

  ag::Variable forward(const ag::Variable& x) const;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  const ag::Variable& weight() const { return weight_; }

 private:
  std::int64_t in_, out_;
  ag::Variable weight_;  // [in, out]
  ag::Variable bias_;    // [out] or undefined
};

/// LayerNorm over the trailing axis with affine gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5f);

  ag::Variable forward(const ag::Variable& x) const;

 private:
  std::int64_t dim_;
  float eps_;
  ag::Variable gamma_;  // [dim]
  ag::Variable beta_;   // [dim]
};

/// Row-lookup table: forward(indices) gathers rows of a [num, dim] weight.
class Embedding : public Module {
 public:
  Embedding(std::int64_t num_embeddings, std::int64_t dim, Rng& rng);

  ag::Variable forward(const std::vector<std::int64_t>& indices) const;

  std::int64_t dim() const { return dim_; }

 private:
  std::int64_t dim_;
  ag::Variable weight_;  // [num, dim]
};

/// Multi-layer perceptron: Linear -> ReLU -> ... -> Linear, with optional
/// dropout between layers.
class Mlp : public Module {
 public:
  /// dims = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<std::int64_t>& dims, Rng& rng, float dropout = 0.f);

  ag::Variable forward(const ag::Variable& x, Rng& rng) const;
  /// Dropout-free forward for inference or dropout == 0 paths.
  ag::Variable forward(const ag::Variable& x) const;

 private:
  std::vector<std::shared_ptr<Linear>> layers_;
  float dropout_;
};

}  // namespace hoga::nn
