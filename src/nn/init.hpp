#pragma once
// Parameter initialization schemes.

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hoga::nn {

/// Xavier/Glorot uniform for a [fan_in, fan_out] weight.
Tensor xavier_uniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

/// Kaiming/He normal for ReLU nets, [fan_in, fan_out].
Tensor kaiming_normal(std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

/// Small-scale normal init for embeddings and attention vectors.
Tensor normal_init(Shape shape, Rng& rng, float stddev = 0.02f);

}  // namespace hoga::nn
