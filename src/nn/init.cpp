#include "nn/init.hpp"

#include <cmath>

namespace hoga::nn {

Tensor xavier_uniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  const float bound =
      std::sqrt(6.f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform({fan_in, fan_out}, rng, -bound, bound);
}

Tensor kaiming_normal(std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  const float stddev = std::sqrt(2.f / static_cast<float>(fan_in));
  Tensor t({fan_in, fan_out});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor normal_init(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

}  // namespace hoga::nn
