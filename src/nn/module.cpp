#include "nn/module.hpp"

#include "util/check.hpp"

namespace hoga::nn {

std::vector<ag::Variable> Module::parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& p : params_) out.push_back(p.param);
  for (const auto& [name, child] : children_) {
    auto sub = child->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::string> Module::parameter_names() const {
  std::vector<std::string> out;
  for (const auto& p : params_) out.push_back(p.name);
  for (const auto& [name, child] : children_) {
    for (const auto& sub : child->parameter_names()) {
      out.push_back(name + "." + sub);
    }
  }
  return out;
}

std::int64_t Module::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::copy_parameters_from(const Module& other) {
  auto dst = parameters();
  auto src = other.parameters();
  HOGA_CHECK(dst.size() == src.size(),
             "copy_parameters_from: architectures differ");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    HOGA_CHECK(dst[i].shape() == src[i].shape(),
               "copy_parameters_from: parameter " << i << " shape mismatch");
    dst[i].mutable_value().copy_from(src[i].value());
  }
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

ag::Variable Module::register_parameter(std::string name, Tensor init) {
  ag::Variable v(std::move(init), /*requires_grad=*/true);
  params_.push_back({std::move(name), v});
  return v;
}

void Module::register_module(std::string name, std::shared_ptr<Module> child) {
  HOGA_CHECK(child != nullptr, "register_module: null child");
  children_.emplace_back(std::move(name), std::move(child));
}

}  // namespace hoga::nn
