#pragma once
// Compressed-sparse-row graph with weighted edges.
//
// This is the adjacency substrate shared by hop-wise feature generation
// (HOGA phase 1, Eq. 3), the GCN/GraphSAGE baselines, and the GraphSAINT
// sampler. Normalizations follow the paper: symmetric D^-1/2 (A+sI) D^-1/2
// for GCN/HOGA and row-stochastic D^-1 A for GraphSAGE's mean aggregator.

#include <atomic>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "tensor/tensor.hpp"

namespace hoga::graph {

struct Edge {
  std::int64_t src;
  std::int64_t dst;
};

class Csr {
 public:
  Csr() = default;

  // The cached digest is identity-free state: copies and moves start with it
  // unset so a copy whose values are then mutated (normalized_row) can never
  // inherit a stale key.
  Csr(const Csr& other)
      : n_(other.n_),
        row_ptr_(other.row_ptr_),
        col_(other.col_),
        val_(other.val_) {}
  Csr(Csr&& other) noexcept
      : n_(other.n_),
        row_ptr_(std::move(other.row_ptr_)),
        col_(std::move(other.col_)),
        val_(std::move(other.val_)) {}
  Csr& operator=(const Csr& other) {
    n_ = other.n_;
    row_ptr_ = other.row_ptr_;
    col_ = other.col_;
    val_ = other.val_;
    digest_.store(0, std::memory_order_relaxed);
    return *this;
  }
  Csr& operator=(Csr&& other) noexcept {
    n_ = other.n_;
    row_ptr_ = std::move(other.row_ptr_);
    col_ = std::move(other.col_);
    val_ = std::move(other.val_);
    digest_.store(0, std::memory_order_relaxed);
    return *this;
  }

  /// Builds from an edge list. Duplicate edges are merged (weights summed,
  /// each edge contributing weight 1). Self loops allowed.
  static Csr from_edges(std::int64_t num_nodes, const std::vector<Edge>& edges);

  /// Builds an undirected (symmetrized) adjacency from a directed edge list:
  /// both (u,v) and (v,u) are inserted. This mirrors how OpenABC-D and Gamora
  /// feed netlists to GNNs (message passing in both directions).
  static Csr from_edges_undirected(std::int64_t num_nodes,
                                   const std::vector<Edge>& edges);

  std::int64_t num_nodes() const { return n_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(col_.size());
  }

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int64_t>& col_idx() const { return col_; }
  const std::vector<float>& values() const { return val_; }

  /// Out-degree (number of stored entries in the row).
  std::int64_t degree(std::int64_t node) const {
    return row_ptr_[node + 1] - row_ptr_[node];
  }

  /// Symmetric GCN normalization: D^-1/2 (A + s I) D^-1/2 where s is the
  /// self-loop weight (0 disables self loops). Isolated nodes are safe
  /// (their rows stay empty or self-loop-only).
  Csr normalized_symmetric(float self_loop_weight = 1.f) const;

  /// Row normalization: D^-1 A (mean aggregator).
  Csr normalized_row() const;

  /// Transposed matrix (needed for SpMM backward on asymmetric matrices).
  Csr transposed() const;

  /// Dense SpMM: this[n,n] * x[n,d] -> [n,d].
  Tensor spmm(const Tensor& x) const;

  /// Induced subgraph on `nodes` (order defines new ids). Edge weights are
  /// copied. `nodes` must not contain duplicates.
  Csr induced_subgraph(const std::vector<std::int64_t>& nodes) const;

  /// True if v_ij == v_ji for all stored entries.
  bool is_symmetric(float tol = 1e-6f) const;

  /// Content hash over (n, row_ptr, col, val) — the key the process-wide
  /// TransposeCache uses to share one Aᵀ per distinct graph. Computed on
  /// first call and cached (0 is reserved as the unset sentinel; the hash is
  /// remapped away from it).
  std::uint64_t content_digest() const;

 private:
  using Triple = std::tuple<std::int64_t, std::int64_t, float>;
  /// Sorts, merges duplicates (summing weights), and packs into CSR.
  static Csr build_from_triples(std::int64_t n, std::vector<Triple> triples);

  std::int64_t n_ = 0;
  std::vector<std::int64_t> row_ptr_{0};
  std::vector<std::int64_t> col_;
  std::vector<float> val_;
  // Lazily computed content_digest(); 0 = not yet computed. Benign race:
  // concurrent first calls compute the same value.
  mutable std::atomic<std::uint64_t> digest_{0};
};

}  // namespace hoga::graph
