#pragma once
// Compressed-sparse-row graph with weighted edges.
//
// This is the adjacency substrate shared by hop-wise feature generation
// (HOGA phase 1, Eq. 3), the GCN/GraphSAGE baselines, and the GraphSAINT
// sampler. Normalizations follow the paper: symmetric D^-1/2 (A+sI) D^-1/2
// for GCN/HOGA and row-stochastic D^-1 A for GraphSAGE's mean aggregator.

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "tensor/tensor.hpp"

namespace hoga::graph {

struct Edge {
  std::int64_t src;
  std::int64_t dst;
};

class Csr {
 public:
  Csr() = default;

  /// Builds from an edge list. Duplicate edges are merged (weights summed,
  /// each edge contributing weight 1). Self loops allowed.
  static Csr from_edges(std::int64_t num_nodes, const std::vector<Edge>& edges);

  /// Builds an undirected (symmetrized) adjacency from a directed edge list:
  /// both (u,v) and (v,u) are inserted. This mirrors how OpenABC-D and Gamora
  /// feed netlists to GNNs (message passing in both directions).
  static Csr from_edges_undirected(std::int64_t num_nodes,
                                   const std::vector<Edge>& edges);

  std::int64_t num_nodes() const { return n_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(col_.size());
  }

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int64_t>& col_idx() const { return col_; }
  const std::vector<float>& values() const { return val_; }

  /// Out-degree (number of stored entries in the row).
  std::int64_t degree(std::int64_t node) const {
    return row_ptr_[node + 1] - row_ptr_[node];
  }

  /// Symmetric GCN normalization: D^-1/2 (A + s I) D^-1/2 where s is the
  /// self-loop weight (0 disables self loops). Isolated nodes are safe
  /// (their rows stay empty or self-loop-only).
  Csr normalized_symmetric(float self_loop_weight = 1.f) const;

  /// Row normalization: D^-1 A (mean aggregator).
  Csr normalized_row() const;

  /// Transposed matrix (needed for SpMM backward on asymmetric matrices).
  Csr transposed() const;

  /// Dense SpMM: this[n,n] * x[n,d] -> [n,d].
  Tensor spmm(const Tensor& x) const;

  /// Induced subgraph on `nodes` (order defines new ids). Edge weights are
  /// copied. `nodes` must not contain duplicates.
  Csr induced_subgraph(const std::vector<std::int64_t>& nodes) const;

  /// True if v_ij == v_ji for all stored entries.
  bool is_symmetric(float tol = 1e-6f) const;

 private:
  using Triple = std::tuple<std::int64_t, std::int64_t, float>;
  /// Sorts, merges duplicates (summing weights), and packs into CSR.
  static Csr build_from_triples(std::int64_t n, std::vector<Triple> triples);

  std::int64_t n_ = 0;
  std::vector<std::int64_t> row_ptr_{0};
  std::vector<std::int64_t> col_;
  std::vector<float> val_;
};

}  // namespace hoga::graph
