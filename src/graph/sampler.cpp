#include "graph/sampler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hoga::graph {

RandomWalkSampler::RandomWalkSampler(const Csr& graph, std::int64_t roots,
                                     std::int64_t walk_length)
    : graph_(&graph), roots_(roots), walk_length_(walk_length) {
  HOGA_CHECK(graph.num_nodes() > 0, "RandomWalkSampler: empty graph");
  HOGA_CHECK(roots > 0 && walk_length >= 0, "RandomWalkSampler: bad params");
}

std::vector<std::int64_t> RandomWalkSampler::walk_nodes(Rng& rng) const {
  std::vector<std::int64_t> visited;
  visited.reserve(static_cast<std::size_t>(roots_ * (walk_length_ + 1)));
  const std::int64_t n = graph_->num_nodes();
  for (std::int64_t r = 0; r < roots_; ++r) {
    std::int64_t cur =
        static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(n)));
    visited.push_back(cur);
    for (std::int64_t s = 0; s < walk_length_; ++s) {
      const std::int64_t deg = graph_->degree(cur);
      if (deg == 0) break;  // dead end; walker stops
      const std::int64_t e =
          graph_->row_ptr()[cur] +
          static_cast<std::int64_t>(rng.uniform_int(
              static_cast<std::uint64_t>(deg)));
      cur = graph_->col_idx()[e];
      visited.push_back(cur);
    }
  }
  std::sort(visited.begin(), visited.end());
  visited.erase(std::unique(visited.begin(), visited.end()), visited.end());
  return visited;
}

void RandomWalkSampler::estimate_norms(Rng& rng, int num_estimation_runs) {
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(graph_->num_nodes()), 0);
  for (int r = 0; r < num_estimation_runs; ++r) {
    for (std::int64_t v : walk_nodes(rng)) {
      counts[static_cast<std::size_t>(v)]++;
    }
  }
  inclusion_prob_.assign(counts.size(), 0.f);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    inclusion_prob_[i] =
        static_cast<float>(counts[i]) / static_cast<float>(num_estimation_runs);
  }
}

SaintSample RandomWalkSampler::sample(Rng& rng) const {
  SaintSample s;
  s.nodes = walk_nodes(rng);
  s.subgraph = graph_->induced_subgraph(s.nodes);
  s.node_weight.reserve(s.nodes.size());
  for (std::int64_t v : s.nodes) {
    float w = 1.f;
    if (!inclusion_prob_.empty()) {
      const float p = inclusion_prob_[static_cast<std::size_t>(v)];
      w = p > 1e-6f ? 1.f / p : 1.f;
    }
    s.node_weight.push_back(w);
  }
  return s;
}

}  // namespace hoga::graph
