#pragma once
// Differentiable sparse-dense matmul: y = A x with A a constant CSR matrix.
// Backward: dx = A^T dy. This is the core op of the GCN/GraphSAGE baselines
// (message passing) and of HOGA's offline hop-feature generation.

#include <memory>

#include "autograd/variable.hpp"
#include "graph/csr.hpp"

namespace hoga::graph {

/// y = A x. `a` must outlive the backward pass (held by shared_ptr).
/// If A is symmetric (GCN normalization) pass `a` itself as the transpose;
/// for asymmetric matrices used across many training steps, compute the
/// transpose once per graph and pass it through (the trainers do). When
/// omitted, the transpose is materialized lazily inside backward — so
/// inference-only forwards never build it, but each training-step op that
/// reaches backward without one rebuilds it.
ag::Variable spmm(std::shared_ptr<const Csr> a, const ag::Variable& x,
                  std::shared_ptr<const Csr> a_transposed = nullptr);

}  // namespace hoga::graph
