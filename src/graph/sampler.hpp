#pragma once
// GraphSAINT-style random-walk subgraph sampler (Zeng et al., ICLR 2020),
// used as a baseline in the paper's Figure 6. Sampling-based GNNs are the
// approach the paper argues is unsuitable for circuits because subgraphs
// break design functionality — reproducing that failure mode requires a
// faithful sampler.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace hoga::graph {

struct SaintSample {
  /// Original ids of the sampled nodes; position = new id in `subgraph`.
  std::vector<std::int64_t> nodes;
  Csr subgraph;
  /// Loss normalization per sampled node ~ 1 / inclusion probability,
  /// estimated from sampling frequency as in the GraphSAINT paper.
  std::vector<float> node_weight;
};

class RandomWalkSampler {
 public:
  /// `roots` walkers, each taking `walk_length` steps over the (directed)
  /// adjacency. The union of visited nodes induces the subgraph.
  RandomWalkSampler(const Csr& graph, std::int64_t roots,
                    std::int64_t walk_length);

  /// Pre-samples `num_estimation_runs` subgraphs to estimate node inclusion
  /// probabilities (GraphSAINT's normalization-coefficient estimation).
  void estimate_norms(Rng& rng, int num_estimation_runs = 20);

  SaintSample sample(Rng& rng) const;

 private:
  std::vector<std::int64_t> walk_nodes(Rng& rng) const;

  const Csr* graph_;
  std::int64_t roots_;
  std::int64_t walk_length_;
  std::vector<float> inclusion_prob_;  // empty until estimate_norms
};

}  // namespace hoga::graph
