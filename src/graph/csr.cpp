#include "graph/csr.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "tensor/kernels.hpp"
#include "util/check.hpp"
#include "util/digest.hpp"

namespace hoga::graph {

Csr Csr::build_from_triples(std::int64_t n, std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end(),
            [](const Triple& a, const Triple& b) {
              if (std::get<0>(a) != std::get<0>(b)) {
                return std::get<0>(a) < std::get<0>(b);
              }
              return std::get<1>(a) < std::get<1>(b);
            });
  std::vector<Triple> merged;
  merged.reserve(triples.size());
  for (const auto& t : triples) {
    if (!merged.empty() && std::get<0>(merged.back()) == std::get<0>(t) &&
        std::get<1>(merged.back()) == std::get<1>(t)) {
      std::get<2>(merged.back()) += std::get<2>(t);
    } else {
      merged.push_back(t);
    }
  }
  Csr c;
  c.n_ = n;
  c.row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& t : merged) c.row_ptr_[std::get<0>(t) + 1]++;
  for (std::int64_t i = 0; i < n; ++i) c.row_ptr_[i + 1] += c.row_ptr_[i];
  c.col_.reserve(merged.size());
  c.val_.reserve(merged.size());
  for (const auto& t : merged) {
    c.col_.push_back(std::get<1>(t));
    c.val_.push_back(std::get<2>(t));
  }
  return c;
}

Csr Csr::from_edges(std::int64_t num_nodes, const std::vector<Edge>& edges) {
  std::vector<Triple> triples;
  triples.reserve(edges.size());
  for (const auto& e : edges) {
    HOGA_CHECK(e.src >= 0 && e.src < num_nodes && e.dst >= 0 &&
                   e.dst < num_nodes,
               "from_edges: edge (" << e.src << ", " << e.dst
                                    << ") out of range");
    triples.emplace_back(e.src, e.dst, 1.f);
  }
  return build_from_triples(num_nodes, std::move(triples));
}

Csr Csr::from_edges_undirected(std::int64_t num_nodes,
                               const std::vector<Edge>& edges) {
  std::vector<Triple> triples;
  triples.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    HOGA_CHECK(e.src >= 0 && e.src < num_nodes && e.dst >= 0 &&
                   e.dst < num_nodes,
               "from_edges_undirected: edge out of range");
    triples.emplace_back(e.src, e.dst, 1.f);
    if (e.src != e.dst) triples.emplace_back(e.dst, e.src, 1.f);
  }
  return build_from_triples(num_nodes, std::move(triples));
}

Csr Csr::normalized_symmetric(float self_loop_weight) const {
  std::vector<Triple> triples;
  triples.reserve(col_.size() +
                  (self_loop_weight != 0.f ? static_cast<std::size_t>(n_) : 0));
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      triples.emplace_back(i, col_[e], val_[e]);
    }
  }
  if (self_loop_weight != 0.f) {
    for (std::int64_t i = 0; i < n_; ++i) {
      triples.emplace_back(i, i, self_loop_weight);
    }
  }
  Csr out = build_from_triples(n_, std::move(triples));
  std::vector<double> deg(static_cast<std::size_t>(n_), 0.0);
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t e = out.row_ptr_[i]; e < out.row_ptr_[i + 1]; ++e) {
      deg[static_cast<std::size_t>(i)] += out.val_[e];
    }
  }
  std::vector<float> dinv(static_cast<std::size_t>(n_), 0.f);
  for (std::int64_t i = 0; i < n_; ++i) {
    const double d = deg[static_cast<std::size_t>(i)];
    dinv[static_cast<std::size_t>(i)] =
        d > 0 ? static_cast<float>(1.0 / std::sqrt(d)) : 0.f;
  }
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t e = out.row_ptr_[i]; e < out.row_ptr_[i + 1]; ++e) {
      out.val_[e] *= dinv[static_cast<std::size_t>(i)] *
                     dinv[static_cast<std::size_t>(out.col_[e])];
    }
  }
  return out;
}

Csr Csr::normalized_row() const {
  Csr out = *this;
  for (std::int64_t i = 0; i < n_; ++i) {
    double deg = 0;
    for (std::int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      deg += val_[e];
    }
    if (deg <= 0) continue;
    const float inv = static_cast<float>(1.0 / deg);
    for (std::int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      out.val_[e] *= inv;
    }
  }
  return out;
}

Csr Csr::transposed() const {
  std::vector<Triple> triples;
  triples.reserve(col_.size());
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      triples.emplace_back(col_[e], i, val_[e]);
    }
  }
  return build_from_triples(n_, std::move(triples));
}

Tensor Csr::spmm(const Tensor& x) const {
  HOGA_CHECK(x.dim() == 2 && x.size(0) == n_,
             "spmm: x shape " << shape_to_string(x.shape())
                              << " incompatible with n=" << n_);
  const std::int64_t d = x.size(1);
  Tensor out = Tensor::empty({n_, d});
  kernels::spmm(row_ptr_.data(), col_.data(), val_.data(), n_, x.data(), d,
                out.data());
  return out;
}

std::uint64_t Csr::content_digest() const {
  std::uint64_t v = digest_.load(std::memory_order_relaxed);
  if (v != 0) return v;
  util::Digest d;
  d.update_value(n_);
  d.update(row_ptr_.data(), row_ptr_.size() * sizeof(std::int64_t));
  d.update(col_.data(), col_.size() * sizeof(std::int64_t));
  d.update(val_.data(), val_.size() * sizeof(float));
  v = d.value();
  if (v == 0) v = 1;  // keep 0 as the unset sentinel
  digest_.store(v, std::memory_order_relaxed);
  return v;
}

Csr Csr::induced_subgraph(const std::vector<std::int64_t>& nodes) const {
  std::unordered_map<std::int64_t, std::int64_t> remap;
  remap.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    HOGA_CHECK(nodes[i] >= 0 && nodes[i] < n_,
               "induced_subgraph: node out of range");
    const bool inserted =
        remap.emplace(nodes[i], static_cast<std::int64_t>(i)).second;
    HOGA_CHECK(inserted, "induced_subgraph: duplicate node " << nodes[i]);
  }
  std::vector<Triple> triples;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::int64_t u = nodes[i];
    for (std::int64_t e = row_ptr_[u]; e < row_ptr_[u + 1]; ++e) {
      auto it = remap.find(col_[e]);
      if (it != remap.end()) {
        triples.emplace_back(static_cast<std::int64_t>(i), it->second,
                             val_[e]);
      }
    }
  }
  return build_from_triples(static_cast<std::int64_t>(nodes.size()),
                            std::move(triples));
}

bool Csr::is_symmetric(float tol) const {
  Csr t = transposed();
  if (t.col_ != col_ || t.row_ptr_ != row_ptr_) return false;
  for (std::size_t i = 0; i < val_.size(); ++i) {
    if (std::fabs(val_[i] - t.val_[i]) > tol) return false;
  }
  return true;
}

}  // namespace hoga::graph
