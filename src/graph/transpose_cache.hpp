#pragma once
// Process-wide cache of CSR transposes, keyed by graph content.
//
// SpMM backward on an asymmetric adjacency needs Aᵀ, and GraphSAGE's mean
// aggregator needs it explicitly in forward. The seed rebuilt it per call
// site (an O(nnz log nnz) triple sort each time); with hundreds of epochs
// over the same graph that rebuild dominated backward. The cache keys on
// Csr::content_digest(), so every call site that sees the same graph —
// across trainers, models, and serving — shares one transpose, built
// exactly once per process (the build runs under the cache mutex, so
// concurrent first requests for one graph cannot race to build twice).
//
// Entries are shared_ptr<const Csr> and are never evicted: the working set
// is a handful of adjacencies per run (see ROADMAP for eviction follow-up).
// Hits/misses are tallied locally and mirrored to the ambient obs counters
// "spmm.transpose_hits" / "spmm.transpose_misses".

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/csr.hpp"

namespace hoga::graph {

class TransposeCache {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
  };

  /// The process-wide instance.
  static TransposeCache& global();

  /// The transpose of `a`, built on first request for this graph content.
  std::shared_ptr<const Csr> get(const std::shared_ptr<const Csr>& a);

  Stats stats() const;
  std::size_t entries() const;
  /// Drops all entries and zeroes the stats (tests only).
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Csr>> entries_;
  Stats stats_;
};

}  // namespace hoga::graph
