#pragma once
// Process-wide cache of CSR transposes, keyed by graph content.
//
// SpMM backward on an asymmetric adjacency needs Aᵀ, and GraphSAGE's mean
// aggregator needs it explicitly in forward. The seed rebuilt it per call
// site (an O(nnz log nnz) triple sort each time); with hundreds of epochs
// over the same graph that rebuild dominated backward. The cache keys on
// Csr::content_digest(), so every call site that sees the same graph —
// across trainers, models, and serving — shares one transpose, built
// exactly once per process while it stays resident (the build runs under
// the cache mutex, so concurrent first requests for one graph cannot race
// to build twice).
//
// Eviction is byte-budgeted LRU: entries() holds shared_ptr<const Csr>, so
// a caller still using an evicted transpose keeps it alive — eviction only
// drops the cache's reference. A re-request after eviction rebuilds the
// transpose from the same content, so the result is bit-identical (the
// rebuild is deterministic); the eviction test pins exactly that. Evictions
// are tallied locally and mirrored to "spmm.transpose_evictions"; hits and
// misses to "spmm.transpose_hits" / "spmm.transpose_misses".

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/csr.hpp"

namespace hoga::graph {

class TransposeCache {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
  };

  /// Default byte budget: a handful of large adjacencies; far above any
  /// test or bench working set, so eviction only engages when configured
  /// down (or in a genuinely huge multi-graph run).
  static constexpr std::size_t kDefaultBudgetBytes = std::size_t{256} << 20;

  /// The process-wide instance.
  static TransposeCache& global();

  /// The transpose of `a`, built on first request for this graph content
  /// (or rebuilt after eviction). May evict least-recently-used entries to
  /// fit the new one under the byte budget.
  std::shared_ptr<const Csr> get(const std::shared_ptr<const Csr>& a);

  /// Sets the byte budget and immediately evicts down to it. 0 disables
  /// eviction entirely.
  void set_budget_bytes(std::size_t budget);
  std::size_t budget_bytes() const;

  /// Bytes held by resident entries (heap payload of each cached Csr).
  std::size_t bytes() const;

  Stats stats() const;
  std::size_t entries() const;
  /// Drops all entries, zeroes the stats, restores the default budget
  /// (tests only).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const Csr> csr;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
  };

  static std::size_t csr_bytes(const Csr& c);
  void evict_to_budget_locked();

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent, back = next victim
  std::size_t bytes_ = 0;
  std::size_t budget_bytes_ = kDefaultBudgetBytes;
  Stats stats_;
};

}  // namespace hoga::graph
