#include "graph/spmm_op.hpp"

#include "util/check.hpp"

namespace hoga::graph {

ag::Variable spmm(std::shared_ptr<const Csr> a, const ag::Variable& x,
                  std::shared_ptr<const Csr> a_transposed) {
  HOGA_CHECK(a != nullptr, "spmm: null matrix");
  auto xn = x.node();
  return ag::Variable::make_result(
      a->spmm(x.value()), {xn}, [xn, a, a_transposed](ag::Node& n) mutable {
        // The transpose is only ever needed by backward, so build it lazily
        // inside the closure: inference-only forwards (forward_eval paths,
        // the serving runtime) never pay for it. The closure owns the
        // materialized transpose — no shared state is mutated, and a node's
        // backward runs at most once per pass.
        if (!a_transposed) {
          a_transposed = std::make_shared<const Csr>(a->transposed());
        }
        xn->accumulate_grad(a_transposed->spmm(n.grad));
      });
}

}  // namespace hoga::graph
