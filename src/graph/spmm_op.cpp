#include "graph/spmm_op.hpp"

#include "util/check.hpp"

namespace hoga::graph {

ag::Variable spmm(std::shared_ptr<const Csr> a, const ag::Variable& x,
                  std::shared_ptr<const Csr> a_transposed) {
  HOGA_CHECK(a != nullptr, "spmm: null matrix");
  auto xn = x.node();
  if (!a_transposed) {
    // Safe default: materialize the transpose once at op construction so
    // backward never mutates shared state.
    a_transposed = std::make_shared<const Csr>(a->transposed());
  }
  return ag::Variable::make_result(
      a->spmm(x.value()), {xn}, [xn, a_transposed](ag::Node& n) {
        xn->accumulate_grad(a_transposed->spmm(n.grad));
      });
}

}  // namespace hoga::graph
