#include "graph/spmm_op.hpp"

#include "graph/transpose_cache.hpp"
#include "util/check.hpp"

namespace hoga::graph {

ag::Variable spmm(std::shared_ptr<const Csr> a, const ag::Variable& x,
                  std::shared_ptr<const Csr> a_transposed) {
  HOGA_CHECK(a != nullptr, "spmm: null matrix");
  auto xn = x.node();
  return ag::Variable::make_result(
      a->spmm(x.value()), {xn}, [xn, a, a_transposed](ag::Node& n) mutable {
        // The transpose is only ever needed by backward, so resolve it
        // lazily inside the closure: inference-only forwards (forward_eval
        // paths, the serving runtime) never pay for it. Resolution goes
        // through the process-wide TransposeCache, so every backward over
        // the same graph content shares one materialized Aᵀ.
        if (!a_transposed) {
          a_transposed = TransposeCache::global().get(a);
        }
        xn->accumulate_grad(a_transposed->spmm(n.grad));
      });
}

}  // namespace hoga::graph
