#include "graph/transpose_cache.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace hoga::graph {

TransposeCache& TransposeCache::global() {
  static TransposeCache cache;
  return cache;
}

std::size_t TransposeCache::csr_bytes(const Csr& c) {
  return c.row_ptr().size() * sizeof(std::int64_t) +
         c.col_idx().size() * sizeof(std::int64_t) +
         c.values().size() * sizeof(float);
}

std::shared_ptr<const Csr> TransposeCache::get(
    const std::shared_ptr<const Csr>& a) {
  HOGA_CHECK(a != nullptr, "TransposeCache::get: null matrix");
  const std::uint64_t key = a->content_digest();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    obs::count("spmm.transpose_hits");
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.csr;
  }
  // Build under the lock: a second thread asking for the same graph blocks
  // here instead of duplicating the O(nnz log nnz) rebuild — this is what
  // makes "exactly one transpose build per resident graph" a guarantee
  // rather than a likelihood.
  auto t = std::make_shared<const Csr>(a->transposed());
  Entry entry;
  entry.csr = t;
  entry.bytes = csr_bytes(*t);
  bytes_ += entry.bytes;
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
  ++stats_.misses;
  obs::count("spmm.transpose_misses");
  evict_to_budget_locked();
  return t;
}

void TransposeCache::evict_to_budget_locked() {
  if (budget_bytes_ == 0) return;
  // Never evict the entry just inserted/touched (lru_.front()): a cache
  // that cannot hold even one graph must still serve the current caller.
  while (bytes_ > budget_bytes_ && lru_.size() > 1) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    ++stats_.evictions;
    obs::count("spmm.transpose_evictions");
  }
}

void TransposeCache::set_budget_bytes(std::size_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = budget;
  evict_to_budget_locked();
}

std::size_t TransposeCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_;
}

std::size_t TransposeCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

TransposeCache::Stats TransposeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t TransposeCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void TransposeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  budget_bytes_ = kDefaultBudgetBytes;
  stats_ = Stats{};
}

}  // namespace hoga::graph
