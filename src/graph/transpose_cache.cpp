#include "graph/transpose_cache.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace hoga::graph {

TransposeCache& TransposeCache::global() {
  static TransposeCache cache;
  return cache;
}

std::shared_ptr<const Csr> TransposeCache::get(
    const std::shared_ptr<const Csr>& a) {
  HOGA_CHECK(a != nullptr, "TransposeCache::get: null matrix");
  const std::uint64_t key = a->content_digest();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    obs::count("spmm.transpose_hits");
    return it->second;
  }
  // Build under the lock: a second thread asking for the same graph blocks
  // here instead of duplicating the O(nnz log nnz) rebuild — this is what
  // makes "exactly one transpose build per graph per process" a guarantee
  // rather than a likelihood.
  auto t = std::make_shared<const Csr>(a->transposed());
  entries_.emplace(key, t);
  ++stats_.misses;
  obs::count("spmm.transpose_misses");
  return t;
}

TransposeCache::Stats TransposeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t TransposeCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void TransposeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace hoga::graph
