#pragma once
// k-feasible cut enumeration with truth tables, the workhorse behind the
// functional XOR/MAJ labeler, the rewrite pass, and the LUT mapper.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/truth.hpp"

namespace hoga::aig {

struct Cut {
  /// Sorted node ids of the cut leaves (size <= k).
  std::vector<NodeId> leaves;
  /// Function of the (non-complemented) root node over the leaves.
  Tt tt = 0;

  int size() const { return static_cast<int>(leaves.size()); }
};

struct CutParams {
  int k = 4;          // max leaves per cut
  int max_cuts = 8;   // cuts retained per node (smallest first)
};

/// Cuts per node, indexed by node id. PIs and const-0 get their trivial cut.
/// Every AND node additionally keeps its trivial cut {node} last so callers
/// can always find the identity. Dominated (superset) cuts are pruned.
std::vector<std::vector<Cut>> enumerate_cuts(const Aig& aig,
                                             const CutParams& params = {});

}  // namespace hoga::aig
