#pragma once
// Truth-table manipulation for small functions (up to 6 inputs in a 64-bit
// word). Used by cut enumeration, the functional XOR/MAJ labeler (Gamora's
// ground truth), rewrite/refactor gain evaluation, and LUT re-decomposition
// in the technology-mapping substitute.

#include <cstdint>
#include <vector>

namespace hoga::aig {

using Tt = std::uint64_t;

constexpr int kMaxTtVars = 6;

/// Low 2^nvars bits set.
constexpr Tt tt_mask(int nvars) {
  return nvars >= kMaxTtVars ? ~Tt{0} : ((Tt{1} << (1u << nvars)) - 1);
}

/// Truth table of projection x_var among nvars variables.
Tt tt_var(int var);

/// Equality under the nvars mask.
bool tt_equal(Tt a, Tt b, int nvars);

Tt tt_not(Tt a, int nvars);

/// Cofactor swap: f with input `var` complemented.
Tt tt_flip_input(Tt t, int var);

/// Number of minterms (ones) within the nvars mask.
int tt_count_ones(Tt t, int nvars);

/// True if t does not depend on variable var.
bool tt_has_var(Tt t, int var, int nvars);

/// Positive/negative cofactor with respect to var (result still expressed
/// over the same variable set; var becomes a don't-care).
Tt tt_cofactor0(Tt t, int var);
Tt tt_cofactor1(Tt t, int var);

/// Re-expresses a truth table defined over `old_support` (sorted ids) on a
/// superset `new_support` (sorted ids). Each element of old_support must
/// appear in new_support; both sizes <= 6.
Tt tt_expand(Tt t, const std::vector<std::uint32_t>& old_support,
             const std::vector<std::uint32_t>& new_support);

/// XOR3 reference: x0 ^ x1 ^ x2 over 3 vars.
Tt tt_xor3();
/// MAJ3 reference: majority(x0, x1, x2).
Tt tt_maj3();

/// True if t (over 3 vars) equals `target` under any combination of input
/// complementations and output complementation. Both XOR3 and MAJ3 are
/// fully symmetric, so input permutations need not be enumerated.
bool tt_matches_up_to_phase3(Tt t, Tt target);

/// Actual support size of t over nvars candidates.
int tt_support_size(Tt t, int nvars);

}  // namespace hoga::aig
