#include "aig/simulate.hpp"

namespace hoga::aig {

std::vector<std::uint64_t> simulate_words(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words) {
  HOGA_CHECK(static_cast<std::int64_t>(pi_words.size()) == aig.num_pis(),
             "simulate_words: need one word per PI");
  std::vector<std::uint64_t> sim(static_cast<std::size_t>(aig.num_nodes()), 0);
  const auto& pis = aig.pis();
  for (std::size_t i = 0; i < pis.size(); ++i) sim[pis[i]] = pi_words[i];
  for (NodeId id = 0; id < static_cast<NodeId>(aig.num_nodes()); ++id) {
    const auto& n = aig.node(id);
    if (n.type != NodeType::kAnd) continue;
    std::uint64_t a = sim[lit_node(n.fanin0)];
    std::uint64_t b = sim[lit_node(n.fanin1)];
    if (lit_is_compl(n.fanin0)) a = ~a;
    if (lit_is_compl(n.fanin1)) b = ~b;
    sim[id] = a & b;
  }
  return sim;
}

std::vector<std::uint64_t> simulate_outputs(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words) {
  const auto sim = simulate_words(aig, pi_words);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(aig.num_pos()));
  for (Lit po : aig.pos()) {
    std::uint64_t v = sim[lit_node(po)];
    if (lit_is_compl(po)) v = ~v;
    out.push_back(v);
  }
  return out;
}

bool random_equivalent(const Aig& a, const Aig& b, Rng& rng, int rounds) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  std::vector<std::uint64_t> words(static_cast<std::size_t>(a.num_pis()));
  for (int r = 0; r < rounds; ++r) {
    for (auto& w : words) w = rng.next_u64();
    if (simulate_outputs(a, words) != simulate_outputs(b, words)) {
      return false;
    }
  }
  return true;
}

bool exhaustive_equivalent(const Aig& a, const Aig& b) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  const int n = static_cast<int>(a.num_pis());
  HOGA_CHECK(n <= 16, "exhaustive_equivalent: too many PIs (" << n << ")");
  const std::uint64_t patterns = std::uint64_t{1} << n;
  const std::uint64_t words = (patterns + 63) / 64;
  std::vector<std::uint64_t> pi_words(static_cast<std::size_t>(n));
  for (std::uint64_t w = 0; w < words; ++w) {
    // Pattern index = w * 64 + bit; PI i takes bit i of the pattern index.
    for (int i = 0; i < n; ++i) {
      std::uint64_t word = 0;
      for (int bit = 0; bit < 64; ++bit) {
        const std::uint64_t pattern = w * 64 + static_cast<std::uint64_t>(bit);
        if (pattern < patterns && ((pattern >> i) & 1)) {
          word |= std::uint64_t{1} << bit;
        }
      }
      pi_words[static_cast<std::size_t>(i)] = word;
    }
    auto oa = simulate_outputs(a, pi_words);
    auto ob = simulate_outputs(b, pi_words);
    if (patterns >= 64 && patterns - w * 64 >= 64) {
      if (oa != ob) return false;
    } else {
      const std::uint64_t valid = patterns - w * 64;
      const std::uint64_t mask =
          valid >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << valid) - 1);
      for (std::size_t p = 0; p < oa.size(); ++p) {
        if ((oa[p] & mask) != (ob[p] & mask)) return false;
      }
    }
  }
  return true;
}

std::uint64_t evaluate(const Aig& aig, std::uint64_t pi_values) {
  HOGA_CHECK(aig.num_pos() <= 64, "evaluate: more than 64 POs");
  std::vector<std::uint64_t> words(static_cast<std::size_t>(aig.num_pis()));
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = ((pi_values >> i) & 1) ? ~std::uint64_t{0} : 0;
  }
  const auto out = simulate_outputs(aig, words);
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] & 1) result |= std::uint64_t{1} << i;
  }
  return result;
}

}  // namespace hoga::aig
