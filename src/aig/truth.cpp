#include "aig/truth.hpp"

#include <bit>

#include "util/check.hpp"

namespace hoga::aig {
namespace {

// Classic bit-parallel variable projections for 6-var tables.
constexpr Tt kVarMasks[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

}  // namespace

Tt tt_var(int var) {
  HOGA_CHECK(var >= 0 && var < kMaxTtVars, "tt_var: var out of range");
  return kVarMasks[var];
}

bool tt_equal(Tt a, Tt b, int nvars) {
  const Tt m = tt_mask(nvars);
  return (a & m) == (b & m);
}

Tt tt_not(Tt a, int nvars) { return ~a & tt_mask(nvars); }

Tt tt_flip_input(Tt t, int var) {
  HOGA_CHECK(var >= 0 && var < kMaxTtVars, "tt_flip_input: var out of range");
  const Tt m = kVarMasks[var];
  const int shift = 1 << var;
  return ((t & m) >> shift) | ((t & ~m) << shift);
}

int tt_count_ones(Tt t, int nvars) {
  return std::popcount(t & tt_mask(nvars));
}

bool tt_has_var(Tt t, int var, int nvars) {
  const Tt m = tt_mask(nvars);
  return ((t ^ tt_flip_input(t, var)) & m) != 0;
}

Tt tt_cofactor0(Tt t, int var) {
  const Tt m = kVarMasks[var];
  const int shift = 1 << var;
  const Tt lo = t & ~m;
  return lo | (lo << shift);
}

Tt tt_cofactor1(Tt t, int var) {
  const Tt m = kVarMasks[var];
  const int shift = 1 << var;
  const Tt hi = t & m;
  return hi | (hi >> shift);
}

Tt tt_expand(Tt t, const std::vector<std::uint32_t>& old_support,
             const std::vector<std::uint32_t>& new_support) {
  HOGA_CHECK(old_support.size() <= 6 && new_support.size() <= 6,
             "tt_expand: support too large");
  // Map each old variable position to its position in new_support, then
  // rebuild the table minterm by minterm. Tables are tiny (<= 64 bits), so
  // the simple loop is plenty fast.
  std::vector<int> pos(old_support.size());
  for (std::size_t i = 0; i < old_support.size(); ++i) {
    int p = -1;
    for (std::size_t j = 0; j < new_support.size(); ++j) {
      if (new_support[j] == old_support[i]) {
        p = static_cast<int>(j);
        break;
      }
    }
    HOGA_CHECK(p >= 0, "tt_expand: old support var missing from new support");
    pos[i] = p;
  }
  const int new_n = static_cast<int>(new_support.size());
  Tt out = 0;
  for (int m = 0; m < (1 << new_n); ++m) {
    int old_m = 0;
    for (std::size_t i = 0; i < old_support.size(); ++i) {
      if (m & (1 << pos[i])) old_m |= 1 << static_cast<int>(i);
    }
    if (t & (Tt{1} << old_m)) out |= Tt{1} << m;
  }
  return out;
}

Tt tt_xor3() {
  return tt_var(0) ^ tt_var(1) ^ tt_var(2);
}

Tt tt_maj3() {
  const Tt a = tt_var(0), b = tt_var(1), c = tt_var(2);
  return (a & b) | (a & c) | (b & c);
}

bool tt_matches_up_to_phase3(Tt t, Tt target) {
  for (int phases = 0; phases < 8; ++phases) {
    Tt v = target;
    for (int var = 0; var < 3; ++var) {
      if (phases & (1 << var)) v = tt_flip_input(v, var);
    }
    if (tt_equal(t, v, 3) || tt_equal(t, tt_not(v, 3), 3)) return true;
  }
  return false;
}

int tt_support_size(Tt t, int nvars) {
  int count = 0;
  for (int v = 0; v < nvars; ++v) {
    if (tt_has_var(t, v, nvars)) ++count;
  }
  return count;
}

}  // namespace hoga::aig
