#include "aig/dot.hpp"

#include <sstream>

namespace hoga::aig {

std::string to_dot(const Aig& aig, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph aig {\n  rankdir=BT;\n";
  const std::int64_t limit =
      options.max_nodes > 0 ? std::min(options.max_nodes, aig.num_nodes())
                            : aig.num_nodes();
  for (NodeId id = 0; id < static_cast<NodeId>(limit); ++id) {
    std::string label;
    std::string shape = "ellipse";
    if (aig.is_const0(id)) {
      label = "0";
      shape = "box";
    } else if (aig.is_pi(id)) {
      label = "i" + std::to_string(id);
      shape = "triangle";
    } else {
      label = "n" + std::to_string(id);
    }
    if (options.node_label) {
      const std::string extra = options.node_label(id);
      if (!extra.empty()) label += "\\n" + extra;
    }
    os << "  n" << id << " [label=\"" << label << "\", shape=" << shape;
    if (options.node_color) {
      const std::string color = options.node_color(id);
      if (!color.empty()) {
        os << ", style=filled, fillcolor=" << color;
      }
    }
    os << "];\n";
  }
  for (NodeId id = 0; id < static_cast<NodeId>(limit); ++id) {
    if (!aig.is_and(id)) continue;
    const auto& n = aig.node(id);
    for (Lit f : {n.fanin0, n.fanin1}) {
      if (static_cast<std::int64_t>(lit_node(f)) >= limit) continue;
      os << "  n" << lit_node(f) << " -> n" << id;
      if (lit_is_compl(f)) os << " [style=dashed]";
      os << ";\n";
    }
  }
  // PO markers.
  for (std::size_t i = 0; i < aig.pos().size(); ++i) {
    const Lit po = aig.pos()[i];
    if (static_cast<std::int64_t>(lit_node(po)) >= limit) continue;
    os << "  o" << i << " [label=\"o" << i << "\", shape=invtriangle];\n";
    os << "  n" << lit_node(po) << " -> o" << i;
    if (lit_is_compl(po)) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hoga::aig
