#include "aig/cuts.hpp"

#include <algorithm>

namespace hoga::aig {
namespace {

// Merged sorted leaf union, or empty if it would exceed k.
bool merge_leaves(const std::vector<NodeId>& a, const std::vector<NodeId>& b,
                  int k, std::vector<NodeId>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    NodeId next;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == next) ++j;
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    out.push_back(next);
    if (static_cast<int>(out.size()) > k) return false;
  }
  return true;
}

bool is_subset(const std::vector<NodeId>& small,
               const std::vector<NodeId>& big) {
  std::size_t i = 0;
  for (NodeId v : big) {
    if (i < small.size() && small[i] == v) ++i;
  }
  return i == small.size();
}

}  // namespace

std::vector<std::vector<Cut>> enumerate_cuts(const Aig& aig,
                                             const CutParams& params) {
  HOGA_CHECK(params.k >= 2 && params.k <= kMaxTtVars,
             "enumerate_cuts: k must be in [2, 6]");
  const std::int64_t n = aig.num_nodes();
  std::vector<std::vector<Cut>> cuts(static_cast<std::size_t>(n));

  std::vector<NodeId> merged;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    if (aig.is_const0(id)) {
      cuts[id].push_back(Cut{{}, 0});  // constant function, no leaves
      continue;
    }
    if (aig.is_pi(id)) {
      cuts[id].push_back(Cut{{id}, tt_var(0)});
      continue;
    }
    const auto& node = aig.node(id);
    const NodeId f0 = lit_node(node.fanin0);
    const NodeId f1 = lit_node(node.fanin1);
    const bool c0 = lit_is_compl(node.fanin0);
    const bool c1 = lit_is_compl(node.fanin1);
    std::vector<Cut>& my = cuts[id];
    for (const Cut& cut0 : cuts[f0]) {
      for (const Cut& cut1 : cuts[f1]) {
        if (!merge_leaves(cut0.leaves, cut1.leaves, params.k, merged)) {
          continue;
        }
        const int nv = static_cast<int>(merged.size());
        Tt t0 = tt_expand(cut0.tt, cut0.leaves, merged);
        Tt t1 = tt_expand(cut1.tt, cut1.leaves, merged);
        if (c0) t0 = tt_not(t0, nv);
        if (c1) t1 = tt_not(t1, nv);
        Cut cut{merged, t0 & t1 & tt_mask(nv)};
        // Skip duplicates and dominated cuts; drop existing cuts dominated
        // by the new one.
        bool skip = false;
        for (const Cut& ex : my) {
          if (is_subset(ex.leaves, cut.leaves)) {
            skip = true;
            break;
          }
        }
        if (skip) continue;
        my.erase(std::remove_if(my.begin(), my.end(),
                                [&](const Cut& ex) {
                                  return is_subset(cut.leaves, ex.leaves);
                                }),
                 my.end());
        my.push_back(std::move(cut));
        if (static_cast<int>(my.size()) > params.max_cuts * 2) {
          // Over-full: keep the smallest cuts.
          std::sort(my.begin(), my.end(), [](const Cut& a, const Cut& b) {
            return a.size() < b.size();
          });
          my.resize(static_cast<std::size_t>(params.max_cuts));
        }
      }
    }
    std::sort(my.begin(), my.end(), [](const Cut& a, const Cut& b) {
      return a.size() < b.size();
    });
    if (static_cast<int>(my.size()) > params.max_cuts) {
      my.resize(static_cast<std::size_t>(params.max_cuts));
    }
    // Trivial cut last (never pruned) so callers can always identify the node
    // with itself.
    my.push_back(Cut{{id}, tt_var(0)});
  }
  return cuts;
}

}  // namespace hoga::aig
