#include "aig/aig.hpp"

#include <algorithm>
#include <sstream>

namespace hoga::aig {
namespace {

std::uint64_t strash_key(Lit a, Lit b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Aig::Aig() {
  nodes_.push_back(Node{NodeType::kConst0, 0, 0});
}

Lit Aig::add_pi() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{NodeType::kPi, 0, 0});
  pis_.push_back(id);
  return make_lit(id, false);
}

Lit Aig::add_and(Lit a, Lit b) {
  HOGA_CHECK(lit_node(a) < nodes_.size() && lit_node(b) < nodes_.size(),
             "add_and: literal refers to unknown node");
  // Constant / identity simplification (ABC's trivial cases).
  if (a == kLitFalse || b == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (b == kLitTrue) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  const std::uint64_t key = strash_key(a, b);
  auto it = strash_.find(key);
  if (it != strash_.end()) return make_lit(it->second, false);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Lit f0 = a, f1 = b;
  if (f0 > f1) std::swap(f0, f1);
  nodes_.push_back(Node{NodeType::kAnd, f0, f1});
  strash_.emplace(key, id);
  ++num_ands_;
  return make_lit(id, false);
}

Lit Aig::find_and(Lit a, Lit b) const {
  if (a == kLitFalse || b == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (b == kLitTrue) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  auto it = strash_.find(strash_key(a, b));
  if (it != strash_.end()) return make_lit(it->second, false);
  return kNoLit;
}

Lit Aig::add_or(Lit a, Lit b) {
  return lit_not(add_and(lit_not(a), lit_not(b)));
}

Lit Aig::add_xor(Lit a, Lit b) {
  // a ^ b = (a + b) (!a + !b) = !(!a !b) !(a b)
  const Lit nand_ab = lit_not(add_and(a, b));
  const Lit or_ab = add_or(a, b);
  return add_and(or_ab, nand_ab);
}

Lit Aig::add_xnor(Lit a, Lit b) { return lit_not(add_xor(a, b)); }

Lit Aig::add_mux(Lit sel, Lit t, Lit e) {
  // sel·t + !sel·e
  const Lit st = add_and(sel, t);
  const Lit se = add_and(lit_not(sel), e);
  return add_or(st, se);
}

Lit Aig::add_maj(Lit a, Lit b, Lit c) {
  // ab + ac + bc = ab + c(a + b)
  const Lit ab = add_and(a, b);
  const Lit a_or_b = add_or(a, b);
  const Lit c_ab = add_and(c, a_or_b);
  return add_or(ab, c_ab);
}

Lit Aig::add_and_multi(const std::vector<Lit>& lits) {
  if (lits.empty()) return kLitTrue;
  std::vector<Lit> level(lits);
  while (level.size() > 1) {
    std::vector<Lit> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add_and(level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Lit Aig::add_or_multi(const std::vector<Lit>& lits) {
  if (lits.empty()) return kLitFalse;
  std::vector<Lit> inv;
  inv.reserve(lits.size());
  for (Lit l : lits) inv.push_back(lit_not(l));
  return lit_not(add_and_multi(inv));
}

Lit Aig::add_xor_multi(const std::vector<Lit>& lits) {
  if (lits.empty()) return kLitFalse;
  Lit acc = lits[0];
  for (std::size_t i = 1; i < lits.size(); ++i) acc = add_xor(acc, lits[i]);
  return acc;
}

void Aig::add_po(Lit l) {
  HOGA_CHECK(lit_node(l) < nodes_.size(), "add_po: unknown node");
  pos_.push_back(l);
}

std::vector<int> Aig::levels() const {
  std::vector<int> lvl(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.type == NodeType::kAnd) {
      lvl[id] = 1 + std::max(lvl[lit_node(n.fanin0)], lvl[lit_node(n.fanin1)]);
    }
  }
  return lvl;
}

int Aig::depth() const {
  const auto lvl = levels();
  int d = 0;
  for (Lit po : pos_) d = std::max(d, lvl[lit_node(po)]);
  return d;
}

std::vector<int> Aig::fanout_counts() const {
  std::vector<int> fo(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.type == NodeType::kAnd) {
      fo[lit_node(n.fanin0)]++;
      fo[lit_node(n.fanin1)]++;
    }
  }
  for (Lit po : pos_) fo[lit_node(po)]++;
  return fo;
}

std::vector<Aig::EdgeRef> Aig::structural_edges() const {
  std::vector<EdgeRef> edges;
  edges.reserve(static_cast<std::size_t>(num_ands_) * 2);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.type == NodeType::kAnd) {
      edges.push_back({lit_node(n.fanin0), id, lit_is_compl(n.fanin0)});
      edges.push_back({lit_node(n.fanin1), id, lit_is_compl(n.fanin1)});
    }
  }
  return edges;
}

std::vector<NodeId> Aig::cone(NodeId root) const {
  HOGA_CHECK(root < nodes_.size(), "cone: bad root");
  std::vector<NodeId> out;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack{root};
  seen[root] = true;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const Node& n = nodes_[id];
    if (n.type == NodeType::kAnd) {
      for (Lit f : {n.fanin0, n.fanin1}) {
        const NodeId fid = lit_node(f);
        if (!seen[fid]) {
          seen[fid] = true;
          stack.push_back(fid);
        }
      }
    }
  }
  return out;
}

std::vector<bool> Aig::reachable_from_pos() const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack;
  for (Lit po : pos_) {
    const NodeId id = lit_node(po);
    if (!seen[id]) {
      seen[id] = true;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (n.type == NodeType::kAnd) {
      for (Lit f : {n.fanin0, n.fanin1}) {
        const NodeId fid = lit_node(f);
        if (!seen[fid]) {
          seen[fid] = true;
          stack.push_back(fid);
        }
      }
    }
  }
  return seen;
}

std::int64_t Aig::num_live_ands() const {
  const auto live = reachable_from_pos();
  std::int64_t count = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == NodeType::kAnd && live[id]) ++count;
  }
  return count;
}

std::string Aig::stats_string(const std::string& name) const {
  std::ostringstream os;
  if (!name.empty()) os << name << ": ";
  os << "pi=" << num_pis() << " po=" << num_pos() << " and=" << num_ands()
     << " lev=" << depth();
  return os.str();
}

}  // namespace hoga::aig
