#pragma once
// ASCII AIGER ("aag") reading and writing, the interchange format used by
// ABC, the HWMCC benchmarks, and OpenABC-D itself. Lets this library
// exchange combinational netlists with standard EDA tools (latches are not
// supported — the paper's pipelines are purely combinational).

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace hoga::aig {

/// Serializes to ASCII AIGER. Node ids are renumbered to AIGER's
/// convention (variables 1..M, inputs first).
std::string write_aiger(const Aig& aig);
void write_aiger_file(const Aig& aig, const std::string& path);

/// Parses ASCII AIGER ("aag" header). Throws std::runtime_error on
/// malformed input or if latches are present. AND definitions may appear
/// in any topological-consistent order (AIGER guarantees LHS > RHS).
Aig read_aiger(const std::string& text);
Aig read_aiger_file(const std::string& path);

}  // namespace hoga::aig
