#pragma once
// Graphviz DOT export for AIGs — debugging and documentation aid. Inverted
// edges are drawn dashed (the usual AIG convention); optional per-node
// labels let callers color by functional class or attention weight.

#include <functional>
#include <string>

#include "aig/aig.hpp"

namespace hoga::aig {

struct DotOptions {
  /// Extra label per node (appended to the id); empty = none.
  std::function<std::string(NodeId)> node_label;
  /// Fill color per node (X11 color name); empty = default.
  std::function<std::string(NodeId)> node_color;
  /// Cap on nodes to emit (0 = unlimited); large graphs are unreadable.
  std::int64_t max_nodes = 2000;
};

std::string to_dot(const Aig& aig, const DotOptions& options = {});

}  // namespace hoga::aig
