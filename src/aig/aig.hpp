#pragma once
// And-Inverter Graph: the single circuit IR of this reproduction, mirroring
// ABC's role in the paper's pipeline (OpenABC-D netlists and Gamora inputs
// are both AIGs).
//
// Representation: node 0 is constant-0; PIs and 2-input AND nodes follow in
// topological order (fanins always precede the node). Edges are literals:
// (node_id << 1) | complemented. Structural hashing plus constant/identity
// simplification happen in add_and, as in ABC's strashed networks.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace hoga::aig {

using Lit = std::uint32_t;
using NodeId = std::uint32_t;

constexpr Lit kLitFalse = 0;  // node 0, plain
constexpr Lit kLitTrue = 1;   // node 0, complemented

constexpr Lit make_lit(NodeId node, bool complemented) {
  return (node << 1) | static_cast<Lit>(complemented);
}
constexpr NodeId lit_node(Lit l) { return l >> 1; }
constexpr bool lit_is_compl(Lit l) { return l & 1u; }
constexpr Lit lit_not(Lit l) { return l ^ 1u; }
constexpr Lit lit_not_if(Lit l, bool c) { return l ^ static_cast<Lit>(c); }
constexpr Lit lit_regular(Lit l) { return l & ~1u; }

enum class NodeType : std::uint8_t { kConst0 = 0, kPi = 1, kAnd = 2 };

class Aig {
 public:
  struct Node {
    NodeType type = NodeType::kConst0;
    Lit fanin0 = 0;  // valid for kAnd only
    Lit fanin1 = 0;
  };

  /// Constructs with the constant-0 node only.
  Aig();

  /// Appends a primary input; returns its (plain) literal.
  Lit add_pi();

  /// AND of two existing literals, with constant propagation, identity
  /// rules (a·a = a, a·!a = 0) and structural hashing.
  Lit add_and(Lit a, Lit b);

  /// Strash lookup without insertion: the literal an add_and(a, b) would
  /// return if it requires no new node, or 0xffffffff if a node would be
  /// created. Lets synthesis passes cost candidate structures without
  /// committing them.
  static constexpr Lit kNoLit = 0xffffffffu;
  Lit find_and(Lit a, Lit b) const;

  // Derived gates (each expands to ANDs/inverters).
  Lit add_or(Lit a, Lit b);
  Lit add_xor(Lit a, Lit b);
  Lit add_xnor(Lit a, Lit b);
  /// sel ? t : e.
  Lit add_mux(Lit sel, Lit t, Lit e);
  /// Majority of three.
  Lit add_maj(Lit a, Lit b, Lit c);
  /// AND over a span of literals, built as a balanced tree.
  Lit add_and_multi(const std::vector<Lit>& lits);
  Lit add_or_multi(const std::vector<Lit>& lits);
  Lit add_xor_multi(const std::vector<Lit>& lits);

  /// Registers a primary output.
  void add_po(Lit l);

  // -- Introspection ---------------------------------------------------------
  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes_.size());
  }
  std::int64_t num_pis() const {
    return static_cast<std::int64_t>(pis_.size());
  }
  std::int64_t num_pos() const {
    return static_cast<std::int64_t>(pos_.size());
  }
  /// Number of AND nodes — the paper's QoR metric ("optimized gate count").
  std::int64_t num_ands() const { return num_ands_; }

  const Node& node(NodeId id) const {
    HOGA_CHECK(id < nodes_.size(), "node id " << id << " out of range");
    return nodes_[id];
  }
  bool is_and(NodeId id) const { return node(id).type == NodeType::kAnd; }
  bool is_pi(NodeId id) const { return node(id).type == NodeType::kPi; }
  bool is_const0(NodeId id) const {
    return node(id).type == NodeType::kConst0;
  }

  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<Lit>& pos() const { return pos_; }

  /// Logic level per node (PIs/const = 0; AND = 1 + max fanin level).
  std::vector<int> levels() const;
  int depth() const;

  /// Fanout count per node (PO references included).
  std::vector<int> fanout_counts() const;

  /// Directed structural edges fanin-node -> node for graph learning export.
  struct EdgeRef {
    NodeId src;
    NodeId dst;
    bool complemented;
  };
  std::vector<EdgeRef> structural_edges() const;

  /// Ids of nodes in the transitive fanin cone of `root` (root included).
  std::vector<NodeId> cone(NodeId root) const;

  /// True for nodes reachable from any PO (used by DCE accounting).
  std::vector<bool> reachable_from_pos() const;

  /// AND nodes reachable from POs — QoR after implicit dead-node removal.
  std::int64_t num_live_ands() const;

  std::string stats_string(const std::string& name = "") const;

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<Lit> pos_;
  std::int64_t num_ands_ = 0;
  // Strash table: key packs the ordered fanin pair.
  std::unordered_map<std::uint64_t, NodeId> strash_;
};

}  // namespace hoga::aig
