#pragma once
// Bit-parallel AIG simulation and equivalence checking. Every synthesis and
// mapping pass in this repo is verified against these checks in the test
// suite (random and, for small circuits, exhaustive).

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace hoga::aig {

/// Simulates one 64-pattern word per node. pi_words[i] drives pis()[i].
/// Returns a word per node id (const-0 node is all zeros).
std::vector<std::uint64_t> simulate_words(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words);

/// Output words (one per PO) for the given PI words.
std::vector<std::uint64_t> simulate_outputs(
    const Aig& aig, const std::vector<std::uint64_t>& pi_words);

/// Random simulation equivalence: same #PIs/#POs and identical outputs on
/// `rounds` random 64-pattern words. Sound only probabilistically.
bool random_equivalent(const Aig& a, const Aig& b, Rng& rng, int rounds = 16);

/// Exhaustive equivalence for up to 16 PIs (2^n patterns).
bool exhaustive_equivalent(const Aig& a, const Aig& b);

/// Evaluates the circuit on a single integer input assignment:
/// bit i of `pi_values` drives pis()[i]. Returns PO bits packed into a
/// uint64 (num_pos() <= 64).
std::uint64_t evaluate(const Aig& aig, std::uint64_t pi_values);

}  // namespace hoga::aig
