#include "aig/aiger.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace hoga::aig {

std::string write_aiger(const Aig& aig) {
  // AIGER variable numbering: 0 = constant false, 1..I = inputs, then ANDs.
  // Our node ids already satisfy "inputs and ANDs in topological order" but
  // may interleave PIs and ANDs, so renumber.
  const std::int64_t n = aig.num_nodes();
  std::vector<std::uint32_t> var(static_cast<std::size_t>(n), 0);
  std::uint32_t next = 1;
  for (NodeId pi : aig.pis()) var[pi] = next++;
  std::vector<NodeId> and_nodes;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    if (aig.is_and(id)) {
      var[id] = next++;
      and_nodes.push_back(id);
    }
  }
  auto lit_of = [&](Lit l) -> std::uint32_t {
    return (var[lit_node(l)] << 1) | static_cast<std::uint32_t>(
                                         lit_is_compl(l));
  };

  std::ostringstream os;
  const std::uint32_t m = next - 1;
  os << "aag " << m << ' ' << aig.num_pis() << " 0 " << aig.num_pos() << ' '
     << and_nodes.size() << '\n';
  for (NodeId pi : aig.pis()) {
    os << (var[pi] << 1) << '\n';
  }
  for (Lit po : aig.pos()) {
    os << lit_of(po) << '\n';
  }
  for (NodeId id : and_nodes) {
    const auto& node = aig.node(id);
    std::uint32_t a = lit_of(node.fanin0);
    std::uint32_t b = lit_of(node.fanin1);
    if (a < b) std::swap(a, b);  // AIGER requires rhs0 >= rhs1
    os << (var[id] << 1) << ' ' << a << ' ' << b << '\n';
  }
  return os.str();
}

void write_aiger_file(const Aig& aig, const std::string& path) {
  std::ofstream out(path);
  HOGA_CHECK(out.good(), "write_aiger_file: cannot open " << path);
  out << write_aiger(aig);
}

Aig read_aiger(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::uint32_t m = 0, num_in = 0, num_latch = 0, num_out = 0, num_and = 0;
  is >> magic >> m >> num_in >> num_latch >> num_out >> num_and;
  HOGA_CHECK(!is.fail() && magic == "aag",
             "read_aiger: expected ASCII AIGER ('aag') header");
  HOGA_CHECK(num_latch == 0, "read_aiger: latches are not supported");
  HOGA_CHECK(m >= num_in + num_and,
             "read_aiger: inconsistent header (M=" << m << " < I+A="
                                                   << num_in + num_and << ")");

  // AIGER literal -> our literal, indexed by variable.
  std::vector<Lit> map(static_cast<std::size_t>(m) + 1, Aig::kNoLit);
  map[0] = kLitFalse;
  Aig aig;

  std::vector<std::uint32_t> input_lits(num_in);
  for (std::size_t i = 0; i < input_lits.size(); ++i) {
    std::uint32_t& l = input_lits[i];
    is >> l;
    HOGA_CHECK(!is.fail(), "read_aiger: truncated input section (expected "
                               << num_in << " inputs, got " << i << ")");
    HOGA_CHECK(l >= 2 && (l & 1) == 0 && (l >> 1) <= m,
               "read_aiger: bad input literal " << l);
    HOGA_CHECK(map[l >> 1] == Aig::kNoLit,
               "read_aiger: input variable " << (l >> 1) << " defined twice");
    map[l >> 1] = aig.add_pi();
  }
  std::vector<std::uint32_t> output_lits(num_out);
  for (std::size_t i = 0; i < output_lits.size(); ++i) {
    std::uint32_t& l = output_lits[i];
    is >> l;
    HOGA_CHECK(!is.fail(), "read_aiger: truncated output section (expected "
                               << num_out << " outputs, got " << i << ")");
    HOGA_CHECK((l >> 1) <= m, "read_aiger: output literal " << l
                                  << " out of range (M=" << m << ")");
  }
  struct AndDef {
    std::uint32_t lhs, rhs0, rhs1;
  };
  std::vector<AndDef> defs(num_and);
  for (std::size_t i = 0; i < defs.size(); ++i) {
    AndDef& d = defs[i];
    is >> d.lhs >> d.rhs0 >> d.rhs1;
    HOGA_CHECK(!is.fail(), "read_aiger: truncated AND section (expected "
                               << num_and << " ANDs, got " << i << ")");
    HOGA_CHECK((d.lhs & 1) == 0 && d.lhs >= 2 && (d.lhs >> 1) <= m,
               "read_aiger: bad AND lhs literal " << d.lhs);
    HOGA_CHECK((d.rhs0 >> 1) <= m && (d.rhs1 >> 1) <= m,
               "read_aiger: AND rhs literal out of range (M=" << m << ")");
  }
  // AIGER guarantees lhs > rhs0 >= rhs1, so a pass in lhs order is
  // topological.
  std::sort(defs.begin(), defs.end(),
            [](const AndDef& a, const AndDef& b) { return a.lhs < b.lhs; });
  auto resolve = [&](std::uint32_t aiger_lit) -> Lit {
    const Lit base = map[aiger_lit >> 1];
    HOGA_CHECK(base != Aig::kNoLit,
               "read_aiger: literal " << aiger_lit << " used before defined");
    return lit_not_if(base, aiger_lit & 1);
  };
  for (const auto& d : defs) {
    HOGA_CHECK(map[d.lhs >> 1] == Aig::kNoLit,
               "read_aiger: variable " << (d.lhs >> 1) << " defined twice");
    map[d.lhs >> 1] = aig.add_and(resolve(d.rhs0), resolve(d.rhs1));
  }
  for (std::uint32_t l : output_lits) {
    aig.add_po(resolve(l));
  }

  // After the definitions, the AIGER spec allows an optional symbol table
  // ("i<k> name" / "o<k> name") and a comment section introduced by a line
  // holding just "c". Anything else is junk — reject it precisely instead
  // of silently ignoring trailing bytes.
  std::string line;
  std::getline(is, line);  // consume the remainder of the last token's line
  while (std::getline(is, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line == "c") break;  // comment section: rest of the file is free-form
    const char kind = line[0];
    bool symbol_ok = false;
    if ((kind == 'i' || kind == 'o') && line.size() >= 2) {
      std::size_t pos = 1;
      while (pos < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      // "<i|o><index> <name>": at least one digit (at most 9, so stoul
      // cannot overflow), then a space and a name.
      if (pos > 1 && pos <= 10 && pos < line.size() && line[pos] == ' ') {
        const std::uint32_t index = static_cast<std::uint32_t>(
            std::stoul(line.substr(1, pos - 1)));
        symbol_ok = index < (kind == 'i' ? num_in : num_out);
      }
    }
    HOGA_CHECK(symbol_ok,
               "read_aiger: trailing junk after definitions: '" << line
                                                                << "'");
  }
  return aig;
}

Aig read_aiger_file(const std::string& path) {
  std::ifstream in(path);
  HOGA_CHECK(in.good(), "read_aiger_file: cannot open " << path);
  std::ostringstream os;
  os << in.rdbuf();
  return read_aiger(os.str());
}

}  // namespace hoga::aig
