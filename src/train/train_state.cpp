#include "train/train_state.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "storage/storage.hpp"
#include "tensor/arena.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace hoga::train {
namespace {

// Floats/doubles are stored as hex bit patterns: decimal text would lose
// bits and break bit-exact resume.
void put_hex(std::ostream& os, std::uint64_t v) {
  os << std::hex << v << std::dec;
}

std::uint64_t get_hex(std::istream& is, const char* what) {
  std::string tok;
  is >> tok;
  HOGA_CHECK(!tok.empty(), "train-state: truncated while reading " << what);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(tok.c_str(), &end, 16);
  HOGA_CHECK(end != nullptr && *end == '\0',
             "train-state: bad hex token '" << tok << "' for " << what);
  return v;
}

void put_f32(std::ostream& os, float f) {
  put_hex(os, std::bit_cast<std::uint32_t>(f));
}

float get_f32(std::istream& is, const char* what) {
  const std::uint64_t bits = get_hex(is, what);
  HOGA_CHECK(bits <= 0xFFFFFFFFull,
             "train-state: fp32 bit pattern out of range for " << what);
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}

void expect_keyword(std::istream& is, const char* keyword) {
  std::string tok;
  is >> tok;
  HOGA_CHECK(tok == keyword, "train-state: expected section '"
                                 << keyword << "', found '" << tok << "'");
}

void put_tensor_bits(std::ostream& os, const Tensor& t) {
  os << t.numel();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    os << ' ';
    put_f32(os, t.data()[i]);
  }
  os << '\n';
}

void get_tensor_bits(std::istream& is, Tensor& dst, const char* what) {
  std::int64_t numel = -1;
  is >> numel;
  HOGA_CHECK(is.good() && numel == dst.numel(),
             "train-state: element count mismatch for " << what << " (got "
                                                        << numel << ", want "
                                                        << dst.numel() << ")");
  for (std::int64_t i = 0; i < numel; ++i) dst.data()[i] = get_f32(is, what);
}

}  // namespace

std::string save_train_state(const nn::Module& model, const optim::Adam& opt,
                             const Rng& rng, const TrainState& state) {
  std::ostringstream body;
  body << "epoch " << state.epoch << '\n';
  body << "losses " << state.epoch_losses.size();
  for (float l : state.epoch_losses) {
    body << ' ';
    put_f32(body, l);
  }
  body << '\n';

  const Rng::State rs = rng.state();
  body << "rng";
  for (std::uint64_t s : rs.s) {
    body << ' ';
    put_hex(body, s);
  }
  body << ' ' << (rs.have_cached_normal ? 1 : 0) << ' ';
  put_hex(body, std::bit_cast<std::uint64_t>(rs.cached_normal));
  body << '\n';

  const auto& m = opt.first_moments();
  const auto& v = opt.second_moments();
  body << "adam " << opt.step_count() << ' ';
  put_f32(body, opt.lr());
  body << ' ' << m.size() << '\n';
  for (std::size_t i = 0; i < m.size(); ++i) {
    body << "m ";
    put_tensor_bits(body, m[i]);
    body << "v ";
    put_tensor_bits(body, v[i]);
  }

  const auto params = model.parameters();
  const auto names = model.parameter_names();
  body << "model " << params.size() << '\n';
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& t = params[i].value();
    body << names[i] << ' ' << t.dim();
    for (std::int64_t a = 0; a < t.dim(); ++a) body << ' ' << t.size(a);
    body << '\n';
    put_tensor_bits(body, t);
  }

  const std::string payload = body.str();
  std::ostringstream os;
  os << "hoga-ckpt v2 " << payload.size() << ' ';
  put_hex(os, util::crc32(payload));
  os << '\n' << payload;
  return os.str();
}

TrainState load_train_state(nn::Module& model, optim::Adam& opt, Rng& rng,
                            const std::string& text) {
  // Header: "hoga-ckpt v2 <payload bytes> <crc32 hex>\n".
  const std::size_t header_end = text.find('\n');
  HOGA_CHECK(header_end != std::string::npos,
             "load_train_state: missing header line");
  std::istringstream header(text.substr(0, header_end));
  std::string magic, version;
  std::size_t payload_size = 0;
  // Magic and version are checked *before* the size field is parsed: a v1
  // header is shorter, and parsing past its end would flip the stream's
  // fail state and turn a clear version mismatch into "not a hoga-ckpt
  // file".
  header >> magic >> version;
  HOGA_CHECK(!header.fail() && magic == "hoga-ckpt",
             "load_train_state: not a hoga-ckpt file");
  HOGA_CHECK(version == "v2",
             "load_train_state: unsupported checkpoint version '"
                 << version << "' (expected v2; v1 files hold model weights "
                               "only — use nn::load_checkpoint)");
  header >> payload_size;
  HOGA_CHECK(!header.fail(), "load_train_state: bad payload size in header");
  const std::uint32_t expect_crc =
      static_cast<std::uint32_t>(get_hex(header, "header crc"));
  const std::string payload = text.substr(header_end + 1);
  HOGA_CHECK(payload.size() == payload_size,
             "load_train_state: payload is " << payload.size()
                                             << " bytes, header declares "
                                             << payload_size
                                             << " (truncated write?)");
  const std::uint32_t got_crc = util::crc32(payload);
  HOGA_CHECK(got_crc == expect_crc,
             "load_train_state: CRC mismatch (corrupted checkpoint)");

  std::istringstream is(payload);
  TrainState state;
  expect_keyword(is, "epoch");
  is >> state.epoch;
  HOGA_CHECK(is.good() && state.epoch >= 0,
             "load_train_state: bad epoch counter");

  expect_keyword(is, "losses");
  std::size_t num_losses = 0;
  is >> num_losses;
  HOGA_CHECK(is.good(), "load_train_state: bad loss-history length");
  state.epoch_losses.resize(num_losses);
  for (auto& l : state.epoch_losses) l = get_f32(is, "loss history");

  expect_keyword(is, "rng");
  Rng::State rs;
  for (auto& s : rs.s) s = get_hex(is, "rng state");
  int have_cached = 0;
  is >> have_cached;
  HOGA_CHECK(is.good() && (have_cached == 0 || have_cached == 1),
             "load_train_state: bad rng cache flag");
  rs.have_cached_normal = have_cached == 1;
  rs.cached_normal =
      std::bit_cast<double>(get_hex(is, "rng cached normal"));

  expect_keyword(is, "adam");
  std::int64_t t = -1;
  std::size_t num_moments = 0;
  is >> t;
  const float lr = get_f32(is, "adam lr");
  is >> num_moments;
  HOGA_CHECK(is.good() && t >= 0, "load_train_state: bad adam section");
  auto params = model.parameters();
  HOGA_CHECK(num_moments == params.size(),
             "load_train_state: checkpoint has " << num_moments
                                                 << " moment pairs, model has "
                                                 << params.size()
                                                 << " parameters");
  std::vector<Tensor> m, v;
  m.reserve(num_moments);
  v.reserve(num_moments);
  for (std::size_t i = 0; i < num_moments; ++i) {
    Tensor mi(params[i].shape()), vi(params[i].shape());
    expect_keyword(is, "m");
    get_tensor_bits(is, mi, "adam m");
    expect_keyword(is, "v");
    get_tensor_bits(is, vi, "adam v");
    m.push_back(std::move(mi));
    v.push_back(std::move(vi));
  }

  expect_keyword(is, "model");
  std::size_t num_params = 0;
  is >> num_params;
  const auto names = model.parameter_names();
  HOGA_CHECK(is.good() && num_params == params.size(),
             "load_train_state: checkpoint has " << num_params
                                                 << " parameters, model has "
                                                 << params.size());
  // Parse everything into staging tensors before mutating the model, so a
  // truncated tail cannot leave it half-restored.
  std::vector<Tensor> values;
  values.reserve(num_params);
  for (std::size_t i = 0; i < num_params; ++i) {
    std::string name;
    std::int64_t rank = 0;
    is >> name >> rank;
    HOGA_CHECK(is.good() && name == names[i],
               "load_train_state: parameter " << i << " is '" << name
                                              << "', expected '" << names[i]
                                              << "'");
    Shape shape(static_cast<std::size_t>(rank));
    for (auto& s : shape) is >> s;
    HOGA_CHECK(is.good() && shape == params[i].shape(),
               "load_train_state: shape mismatch for " << name);
    Tensor value(shape);
    get_tensor_bits(is, value, name.c_str());
    values.push_back(std::move(value));
  }

  for (std::size_t i = 0; i < num_params; ++i) {
    params[i].mutable_value().copy_from(values[i]);
  }
  opt.restore_state(t, m, v);
  opt.set_lr(lr);
  rng.set_state(rs);
  return state;
}

void save_train_state_file(const nn::Module& model, const optim::Adam& opt,
                           const Rng& rng, const TrainState& state,
                           const std::string& path) {
  fault::maybe_fail_checkpoint_write(path);
  storage::atomic_write_durable(path, save_train_state(model, opt, rng, state));
}

TrainState load_train_state_file(nn::Module& model, optim::Adam& opt,
                                 Rng& rng, const std::string& path) {
  fault::maybe_fail_checkpoint_read(path);
  return load_train_state(model, opt, rng, util::read_file(path));
}

int save_train_state_file_with_retry(const nn::Module& model,
                                     const optim::Adam& opt, const Rng& rng,
                                     const TrainState& state,
                                     const std::string& path,
                                     int max_attempts,
                                     double initial_backoff_ms,
                                     double max_backoff_ms) {
  HOGA_CHECK(max_attempts > 0,
             "save_train_state_file_with_retry: max_attempts must be > 0");
  double backoff_ms = initial_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      save_train_state_file(model, opt, rng, state, path);
      return attempt;
    } catch (const std::exception&) {
      if (attempt + 1 >= max_attempts) throw;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2.0, max_backoff_ms);
    }
  }
}

std::vector<std::pair<int, std::string>> list_checkpoints(
    const std::string& base) {
  namespace fs = std::filesystem;
  std::vector<std::pair<int, std::string>> out;
  const fs::path base_path(base);
  const std::string stem = base_path.filename().string() + ".e";
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= stem.size() ||
        name.compare(0, stem.size(), stem) != 0) {
      continue;
    }
    const std::string digits = name.substr(stem.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    out.emplace_back(std::stoi(digits), entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::string> latest_checkpoint(const std::string& base) {
  const auto found = list_checkpoints(base);
  if (found.empty()) return std::nullopt;
  return found.back().second;
}

int prune_checkpoints(const std::string& base, int keep_last) {
  HOGA_CHECK(keep_last > 0, "prune_checkpoints: keep_last must be > 0");
  const auto found = list_checkpoints(base);
  int removed = 0;
  if (found.size() <= static_cast<std::size_t>(keep_last)) return removed;
  const std::size_t excess = found.size() - static_cast<std::size_t>(keep_last);
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code ec;
    if (std::filesystem::remove(found[i].second, ec) && !ec) ++removed;
  }
  return removed;
}

std::vector<float> run_fault_tolerant_epochs(
    nn::Module& model, optim::Adam& opt, Rng& rng, int epochs,
    const CheckpointConfig& ckpt,
    const std::function<double(bool* ok)>& epoch_body, LoopStats* stats) {
  TrainState state;
  if (!ckpt.resume_from.empty()) {
    obs::Span resume_span = obs::ambient_span("train.resume");
    state = load_train_state_file(model, opt, rng, ckpt.resume_from);
    HOGA_CHECK(state.epoch <= epochs,
               "run_fault_tolerant_epochs: checkpoint is at epoch "
                   << state.epoch << ", run only has " << epochs);
    resume_span.end();
    obs::ledger_event("train.resume", {{"epoch", state.epoch}});
  }
  LoopStats local;
  local.resumed_from_epoch = state.epoch;

  // In-memory last-good snapshot for non-finite rollback. Serialized once
  // per epoch; O(parameters) next to an epoch of O(steps * parameters)
  // compute, so the overhead is negligible.
  std::string last_good;
  if (ckpt.recover_nonfinite) {
    last_good = save_train_state(model, opt, rng, state);
  }

  while (state.epoch < epochs) {
    obs::Span epoch_span = obs::ambient_span("train.epoch");
    bool ok = true;
    // Arena-backed kernel scratch for the whole epoch body: after the first
    // epoch reserves the peak, later epochs run allocation-free.
    const double mean_loss = with_arena([&] { return epoch_body(&ok); });
    if (!ok) {
      HOGA_CHECK(ckpt.recover_nonfinite,
                 "trainer: non-finite loss/gradient at epoch "
                     << state.epoch << " (recovery disabled)");
      HOGA_CHECK(local.rollbacks < ckpt.max_rollbacks,
                 "trainer: still diverging after "
                     << local.rollbacks
                     << " rollbacks; refusing to continue");
      {
        obs::Span recovery_span = obs::ambient_span("train.recovery");
        state = load_train_state(model, opt, rng, last_good);
        opt.set_lr(opt.lr() * ckpt.rollback_lr_cut);
        // Refresh the snapshot so repeated rollbacks compound the LR cut
        // instead of resetting to the pre-cut rate each time.
        last_good = save_train_state(model, opt, rng, state);
      }
      ++local.rollbacks;
      obs::ledger_event("train.rollback", {{"epoch", state.epoch},
                                           {"rollbacks", local.rollbacks},
                                           {"lr", opt.lr()}});
      continue;
    }
    state.epoch_losses.push_back(static_cast<float>(mean_loss));
    ++state.epoch;
    if (ckpt.recover_nonfinite) {
      last_good = save_train_state(model, opt, rng, state);
    }
    if (ckpt.every > 0 && !ckpt.path.empty() &&
        state.epoch % ckpt.every == 0) {
      obs::Span ckpt_span = obs::ambient_span("train.checkpoint");
      const std::string target =
          ckpt.keep_last > 0 ? ckpt.path + ".e" + std::to_string(state.epoch)
                             : ckpt.path;
      const int retries = save_train_state_file_with_retry(
          model, opt, rng, state, target, ckpt.max_retries,
          ckpt.backoff_initial_ms, ckpt.backoff_max_ms);
      local.checkpoint_retries += retries;
      int pruned = 0;
      if (ckpt.keep_last > 0) {
        // Strictly after the newer checkpoint's durable write returned
        // (atomic_write_durable fsyncs the file and its directory): a crash
        // before this line leaves one extra checkpoint, never one fewer.
        pruned = prune_checkpoints(ckpt.path, ckpt.keep_last);
      }
      ckpt_span.end();
      obs::ledger_event("train.checkpoint", {{"epoch", state.epoch},
                                             {"retries", retries},
                                             {"pruned", pruned}});
    }
    epoch_span.end();
    obs::ledger_event("train.epoch",
                      {{"epoch", state.epoch}, {"mean_loss", mean_loss}});
  }
  if (stats) *stats = local;
  return state.epoch_losses;
}

}  // namespace hoga::train
