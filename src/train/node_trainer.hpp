#pragma once
// Training loops for the functional-reasoning task (node classification),
// one per model family. All trainers use Adam + class-weighted cross
// entropy (the classes are heavily imbalanced after technology mapping).

#include "core/hoga_model.hpp"
#include "data/reasoning_dataset.hpp"
#include "models/gcn.hpp"
#include "models/graphsage.hpp"
#include "models/saint.hpp"
#include "models/sign.hpp"
#include "optim/optim.hpp"
#include "train/train_state.hpp"

namespace hoga::store {
class FeatureStore;
}

namespace hoga::train {

struct NodeTrainConfig {
  int epochs = 120;
  float lr = 3e-3f;
  std::int64_t batch_size = 1024;  // minibatch models (HOGA, SIGN)
  std::uint64_t seed = 1;
  std::vector<float> class_weights;  // empty = unweighted
  float grad_clip = 5.f;
  /// Fault tolerance: checkpoint/resume targets, retry policy, and
  /// non-finite rollback behavior (see train_state.hpp).
  CheckpointConfig checkpoint;
};

struct TrainLog {
  std::vector<float> epoch_losses;
  double seconds = 0;  // training wall time (excludes any precompute)
  /// Recovery events: resume epoch, non-finite rollbacks taken, and
  /// checkpoint write attempts that had to be retried.
  LoopStats fault_stats;
};

// -- HOGA ----------------------------------------------------------------
TrainLog train_hoga_node(core::Hoga& model, const core::HopFeatures& hops,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg);

/// Store-aware variant: fetches the phase-1 precompute through the feature
/// store (DESIGN.md §9) — keyed by the graph's content digest and the
/// model's K — then trains as above. Warm reruns on the same graph skip
/// the K SpMM passes entirely.
TrainLog train_hoga_node(core::Hoga& model, store::FeatureStore& store,
                         const graph::Csr& adj_hop, const Tensor& features,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg);

// -- GCN (full graph) ---------------------------------------------------------
TrainLog train_gcn_node(models::Gcn& model,
                        std::shared_ptr<const graph::Csr> adj_norm,
                        const Tensor& features, const std::vector<int>& labels,
                        const NodeTrainConfig& cfg);

// -- GraphSAGE (full graph) --------------------------------------------------
TrainLog train_sage_node(models::GraphSage& model,
                         std::shared_ptr<const graph::Csr> adj_row,
                         const Tensor& features,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg);

// -- SIGN (minibatch over nodes) -----------------------------------------
TrainLog train_sign_node(models::Sign& model, const core::HopFeatures& hops,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg);

/// Store-aware variant (see train_hoga_node above): SIGN consumes the same
/// hop-feature precompute, so the same cache entry serves both models.
TrainLog train_sign_node(models::Sign& model, store::FeatureStore& store,
                         const graph::Csr& adj_hop, const Tensor& features,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg);

// -- GraphSAINT (subgraph sampling; one step per epoch unit) ----------------
TrainLog train_saint_node(models::Gcn& model,
                          const models::SaintConfig& saint_cfg,
                          const graph::Csr& adj_raw, const Tensor& features,
                          const std::vector<int>& labels,
                          const NodeTrainConfig& cfg);

// -- Inference helpers (no autograd; const and reentrant: they use the
// models' forward_eval paths and never touch the train/eval flag) -----------
Tensor predict_gcn(const models::Gcn& model,
                   std::shared_ptr<const graph::Csr> adj_norm,
                   const Tensor& features);
Tensor predict_sage(const models::GraphSage& model,
                    std::shared_ptr<const graph::Csr> adj_row,
                    const Tensor& features);
Tensor predict_sign(const models::Sign& model, const core::HopFeatures& hops,
                    std::int64_t batch_size = 8192);

}  // namespace hoga::train
