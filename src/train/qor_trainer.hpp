#pragma once
// QoR prediction model + trainer (paper §IV-B, Figure 3b): a graph backbone
// (GCN as in OpenABC-D, or HOGA as the paper's replacement) produces node
// representations that are mean+max pooled into a graph embedding,
// concatenated with a recipe embedding, and regressed to the optimized gate
// count ratio.

#include <memory>
#include <optional>
#include <vector>

#include "core/hoga_model.hpp"
#include "data/qor_dataset.hpp"
#include "models/gcn.hpp"
#include "optim/optim.hpp"
#include "train/train_state.hpp"

namespace hoga::store {
class FeatureStore;
}

namespace hoga::train {

enum class QorBackbone { kGcn, kHoga };

struct QorModelConfig {
  QorBackbone backbone = QorBackbone::kHoga;
  std::int64_t in_dim = 0;
  std::int64_t hidden = 48;
  int num_hops = 5;     // HOGA K
  int gcn_layers = 5;   // GCN depth (paper baseline: 5)
  float dropout = 0.f;
};

/// Per-design inputs prepared once before training. For HOGA the hop
/// features are the *only* graph-derived input (phase 1 precompute).
struct QorDesignInput {
  std::shared_ptr<const graph::Csr> adj_norm;  // GCN only
  Tensor features;                             // GCN only
  std::optional<core::HopFeatures> hops;       // HOGA only
};

/// Builds the per-design inputs for the chosen backbone; returns the hop
/// feature precompute time in seconds (0 for GCN). With a feature store
/// (DESIGN.md §9) the HOGA precompute is fetched through it — warm runs
/// (re-training on the same designs, hyperparameter sweeps) reuse cached
/// hop features instead of recomputing phase 1 per run.
double prepare_qor_inputs(const data::QorDataset& ds,
                          const QorModelConfig& cfg,
                          std::vector<QorDesignInput>* out,
                          store::FeatureStore* store = nullptr);

class QorModel : public nn::Module {
 public:
  QorModel(const QorModelConfig& cfg, Rng& rng);

  /// Predicted gate-count ratio for one (design, recipe) sample: [1, 1].
  ag::Variable forward(const QorDesignInput& design,
                       const std::vector<std::int64_t>& recipe_tokens,
                       Rng& rng) const;

  /// Inference-only forward: no dropout, no RNG, no train/eval toggles —
  /// reentrant for concurrent evaluation.
  ag::Variable forward_eval(const QorDesignInput& design,
                            const std::vector<std::int64_t>& recipe_tokens)
      const;

  const QorModelConfig& config() const { return config_; }

 private:
  QorModelConfig config_;
  std::shared_ptr<models::Gcn> gcn_;
  std::shared_ptr<core::Hoga> hoga_;
  std::shared_ptr<nn::Embedding> recipe_embedding_;
  std::shared_ptr<nn::Mlp> head_;
};

struct QorTrainConfig {
  int epochs = 30;
  float lr = 2e-3f;
  int batch_size = 8;  // samples per optimizer step
  std::uint64_t seed = 7;
  float grad_clip = 5.f;
  /// Fault tolerance: checkpoint/resume targets, retry policy, and
  /// non-finite rollback behavior (see train_state.hpp).
  CheckpointConfig checkpoint;
};

struct QorTrainLog {
  std::vector<float> epoch_losses;
  double seconds = 0;          // training time
  double precompute_seconds = 0;  // hop-feature generation (HOGA)
  LoopStats fault_stats;       // resume/rollback/retry events
};

QorTrainLog train_qor(QorModel& model,
                      const std::vector<QorDesignInput>& inputs,
                      const std::vector<data::QorSample>& samples,
                      const QorTrainConfig& cfg);

struct QorEval {
  /// Per-test-design MAPE on gate counts, aligned with `design_names`.
  std::vector<std::string> design_names;
  std::vector<double> design_mape;
  double average_mape = 0;
  /// Raw (truth, prediction) gate-count pairs for Figure 4.
  std::vector<std::pair<double, double>> scatter;
  std::vector<int> scatter_design;  // design index per scatter point
};

QorEval evaluate_qor(const QorModel& model, const data::QorDataset& ds,
                     const std::vector<QorDesignInput>& inputs,
                     const std::vector<data::QorSample>& samples);

}  // namespace hoga::train
