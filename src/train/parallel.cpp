#include "train/parallel.hpp"

#include <numeric>

#include "util/timer.hpp"

namespace hoga::train {

std::vector<ScalingPoint> simulate_hoga_scaling(
    core::Hoga& model, const core::HopFeatures& hops,
    const std::vector<int>& labels, const NodeTrainConfig& train_cfg,
    const ClusterConfig& cluster_cfg) {
  const std::int64_t n = hops.num_nodes();
  const std::int64_t param_bytes = model.parameter_count() * 4;
  std::vector<ScalingPoint> points;
  double base_epoch = 0;

  for (int workers : cluster_cfg.worker_counts) {
    Rng rng(train_cfg.seed);
    optim::Adam opt(model.parameters(), train_cfg.lr);
    model.set_training(true);
    // Shuffle once per epoch, split contiguously into W shards (the DDP
    // sampler's behavior).
    double worst_compute = 0;
    for (int epoch = 0; epoch < cluster_cfg.epochs_to_time; ++epoch) {
      std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
      std::iota(ids.begin(), ids.end(), 0);
      rng.shuffle(ids);
      const std::int64_t per =
          (n + workers - 1) / static_cast<std::int64_t>(workers);
      double epoch_worst = 0;
      for (int w = 0; w < workers; ++w) {
        const std::int64_t lo = static_cast<std::int64_t>(w) * per;
        const std::int64_t hi = std::min<std::int64_t>(n, lo + per);
        if (lo >= hi) continue;
        Timer t;
        for (std::int64_t blo = lo; blo < hi; blo += train_cfg.batch_size) {
          const std::int64_t bhi =
              std::min(hi, blo + train_cfg.batch_size);
          std::vector<std::int64_t> batch(ids.begin() + blo,
                                          ids.begin() + bhi);
          std::vector<int> batch_labels;
          batch_labels.reserve(batch.size());
          for (std::int64_t i : batch) {
            batch_labels.push_back(labels[static_cast<std::size_t>(i)]);
          }
          opt.zero_grad();
          ag::Variable logits =
              model.forward(ag::constant(hops.gather(batch)), rng);
          ag::Variable loss = ag::softmax_cross_entropy(
              logits, batch_labels, train_cfg.class_weights);
          loss.backward();
          opt.step();
        }
        epoch_worst = std::max(epoch_worst, t.seconds());
      }
      worst_compute += epoch_worst;
    }
    worst_compute /= std::max(1, cluster_cfg.epochs_to_time);

    ScalingPoint p;
    p.workers = workers;
    p.compute_seconds = worst_compute;
    if (workers > 1) {
      // Ring all-reduce: 2 (W-1)/W of the gradient bytes cross each link,
      // once per optimizer step.
      const std::int64_t steps_per_worker =
          ((n + workers - 1) / workers + train_cfg.batch_size - 1) /
          train_cfg.batch_size;
      const double per_step =
          2.0 * (workers - 1) / workers * static_cast<double>(param_bytes) /
              cluster_cfg.bandwidth_bytes_per_sec +
          cluster_cfg.collective_latency * 2 * (workers - 1);
      p.allreduce_seconds = per_step * static_cast<double>(steps_per_worker);
    }
    p.epoch_seconds = p.compute_seconds + p.allreduce_seconds;
    if (points.empty()) base_epoch = p.epoch_seconds;
    p.speedup = base_epoch / p.epoch_seconds;
    p.efficiency = p.speedup / workers;
    points.push_back(p);
  }
  return points;
}

}  // namespace hoga::train
