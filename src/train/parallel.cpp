#include "train/parallel.hpp"

#include <numeric>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "tensor/arena.hpp"
#include "util/timer.hpp"

namespace hoga::train {

std::vector<ScalingPoint> simulate_hoga_scaling(
    core::Hoga& model, const core::HopFeatures& hops,
    const std::vector<int>& labels, const NodeTrainConfig& train_cfg,
    const ClusterConfig& cluster_cfg) {
  const std::int64_t n = hops.num_nodes();
  HOGA_CHECK(labels.size() == static_cast<std::size_t>(n),
             "simulate_hoga_scaling: labels.size() (" << labels.size()
                                                      << ") != number of "
                                                         "nodes ("
                                                      << n << ")");
  HOGA_CHECK(train_cfg.batch_size > 0,
             "simulate_hoga_scaling: batch_size must be > 0");
  const std::int64_t param_bytes = model.parameter_count() * 4;
  std::vector<ScalingPoint> points;
  double base_epoch = cluster_cfg.baseline_epoch_seconds;

  for (int workers : cluster_cfg.worker_counts) {
    Rng rng(train_cfg.seed);
    optim::Adam opt(model.parameters(), train_cfg.lr);
    model.set_training(true);
    // Shuffle once per epoch, split contiguously into W shards (the DDP
    // sampler's behavior).
    double worst_compute = 0;
    double recovery_total = 0;
    int failures_total = 0;
    for (int epoch = 0; epoch < cluster_cfg.epochs_to_time; ++epoch) {
      std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
      std::iota(ids.begin(), ids.end(), 0);
      rng.shuffle(ids);
      // Runs one forward/backward/step over ids[lo, hi) as a single batch.
      auto run_batch = [&](std::int64_t lo, std::int64_t hi) {
        ArenaScope arena;  // kernel scratch reused across a shard's batches
        std::vector<std::int64_t> batch(ids.begin() + lo, ids.begin() + hi);
        std::vector<int> batch_labels;
        batch_labels.reserve(batch.size());
        for (std::int64_t i : batch) {
          batch_labels.push_back(labels[static_cast<std::size_t>(i)]);
        }
        opt.zero_grad();
        ag::Variable logits =
            model.forward(ag::constant(hops.gather(batch)), rng);
        ag::Variable loss = ag::softmax_cross_entropy(
            logits, batch_labels, train_cfg.class_weights);
        loss.backward();
        opt.step();
      };

      const std::int64_t per =
          (n + workers - 1) / static_cast<std::int64_t>(workers);
      double epoch_worst = 0;
      // Pending [lo, hi) node ranges orphaned by failed workers, and which
      // workers survived to absorb them.
      std::vector<std::pair<std::int64_t, std::int64_t>> orphaned;
      std::vector<int> survivors;
      int epoch_failures = 0;
      fault::Injector* inj = fault::active();
      for (int w = 0; w < workers; ++w) {
        const std::int64_t lo = static_cast<std::int64_t>(w) * per;
        const std::int64_t hi = std::min<std::int64_t>(n, lo + per);
        if (lo >= hi) continue;
        // A failing worker dies mid-epoch: it completes the first half of
        // its batches and the remainder must be re-assigned. Single-worker
        // runs have nobody to heal them, so failures only make sense for
        // W > 1.
        const bool fails =
            workers > 1 && inj && inj->worker_should_fail(epoch, w);
        std::int64_t processed_end = hi;
        if (fails) {
          const std::int64_t num_batches =
              (hi - lo + train_cfg.batch_size - 1) / train_cfg.batch_size;
          processed_end =
              std::min(hi, lo + (num_batches / 2) * train_cfg.batch_size);
        }
        Timer t;
        for (std::int64_t blo = lo; blo < processed_end;
             blo += train_cfg.batch_size) {
          run_batch(blo, std::min(processed_end, blo + train_cfg.batch_size));
        }
        epoch_worst = std::max(epoch_worst, t.seconds());
        if (fails) {
          if (processed_end < hi) orphaned.emplace_back(processed_end, hi);
          ++epoch_failures;
          obs::trace_event("scaling.worker_failure");
          obs::ledger_event("scaling.worker_failure",
                            {{"workers", workers},
                             {"epoch", epoch},
                             {"worker", w}});
        } else {
          survivors.push_back(w);
        }
      }
      worst_compute += epoch_worst;

      // Elastic re-partition: survivors absorb the orphaned batches
      // round-robin. If every worker died, a single replacement worker is
      // restarted to drain the backlog (worst case, still correct).
      if (!orphaned.empty()) {
        failures_total += epoch_failures;
        const std::size_t num_survivors = std::max<std::size_t>(
            1, survivors.size());
        std::vector<double> extra(num_survivors, 0.0);
        std::size_t next = 0;
        for (const auto& [olo, ohi] : orphaned) {
          for (std::int64_t blo = olo; blo < ohi;
               blo += train_cfg.batch_size) {
            Timer t;
            run_batch(blo, std::min(ohi, blo + train_cfg.batch_size));
            extra[next % num_survivors] += t.seconds();
            ++next;
          }
        }
        double recovery = 0;
        for (double e : extra) recovery = std::max(recovery, e);
        // Failure detection + re-shard broadcast, one barrier per failure.
        recovery += cluster_cfg.collective_latency * 2 * epoch_failures;
        recovery_total += recovery;
      } else if (epoch_failures > 0) {
        // Failure fired on the last batch boundary: nothing to re-assign,
        // only the detection barrier.
        failures_total += epoch_failures;
        recovery_total += cluster_cfg.collective_latency * 2 * epoch_failures;
      }
    }
    const int epochs = std::max(1, cluster_cfg.epochs_to_time);
    worst_compute /= epochs;
    recovery_total /= epochs;

    ScalingPoint p;
    p.workers = workers;
    p.compute_seconds = worst_compute;
    p.worker_failures = failures_total;
    p.recovery_seconds = recovery_total;
    if (workers > 1) {
      // Ring all-reduce: 2 (W-1)/W of the gradient bytes cross each link,
      // once per optimizer step.
      const std::int64_t steps_per_worker =
          ((n + workers - 1) / workers + train_cfg.batch_size - 1) /
          train_cfg.batch_size;
      const double per_step =
          2.0 * (workers - 1) / workers * static_cast<double>(param_bytes) /
              cluster_cfg.bandwidth_bytes_per_sec +
          cluster_cfg.collective_latency * 2 * (workers - 1);
      p.allreduce_seconds = per_step * static_cast<double>(steps_per_worker);
    }
    p.epoch_seconds =
        p.compute_seconds + p.allreduce_seconds + p.recovery_seconds;
    if (base_epoch == 0) base_epoch = p.epoch_seconds;
    p.speedup = base_epoch / p.epoch_seconds;
    p.efficiency = p.speedup / workers;
    // Every field of the point goes to the ledger; doubles are written in
    // shortest round-trippable form, so the figure is reconstructible from
    // the ledger alone (asserted by test_obs).
    obs::ledger_event("scaling.point",
                      {{"workers", p.workers},
                       {"worker_failures", p.worker_failures},
                       {"compute_seconds", p.compute_seconds},
                       {"allreduce_seconds", p.allreduce_seconds},
                       {"recovery_seconds", p.recovery_seconds},
                       {"epoch_seconds", p.epoch_seconds},
                       {"speedup", p.speedup},
                       {"efficiency", p.efficiency}});
    points.push_back(p);
  }
  return points;
}

}  // namespace hoga::train
