#include "train/node_trainer.hpp"

#include <numeric>

#include "tensor/ops.hpp"
#include "util/timer.hpp"

namespace hoga::train {
namespace {

std::vector<std::int64_t> shuffled_ids(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  rng.shuffle(ids);
  return ids;
}

std::vector<int> gather_labels(const std::vector<int>& labels,
                               const std::vector<std::int64_t>& ids) {
  std::vector<int> out;
  out.reserve(ids.size());
  for (std::int64_t i : ids) out.push_back(labels[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace

TrainLog train_hoga_node(core::Hoga& model, const core::HopFeatures& hops,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  TrainLog log;
  Timer timer;
  const std::int64_t n = hops.num_nodes();
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto ids = shuffled_ids(n, rng);
    double epoch_loss = 0;
    std::int64_t batches = 0;
    for (std::int64_t lo = 0; lo < n; lo += cfg.batch_size) {
      const std::int64_t hi = std::min(n, lo + cfg.batch_size);
      std::vector<std::int64_t> batch(ids.begin() + lo, ids.begin() + hi);
      opt.zero_grad();
      ag::Variable logits =
          model.forward(ag::constant(hops.gather(batch)), rng);
      ag::Variable loss = ag::softmax_cross_entropy(
          logits, gather_labels(labels, batch), cfg.class_weights);
      loss.backward();
      if (cfg.grad_clip > 0) optim::clip_grad_norm(opt.params(), cfg.grad_clip);
      opt.step();
      epoch_loss += loss.value().data()[0];
      ++batches;
    }
    log.epoch_losses.push_back(
        static_cast<float>(epoch_loss / std::max<std::int64_t>(1, batches)));
  }
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_gcn_node(models::Gcn& model,
                        std::shared_ptr<const graph::Csr> adj_norm,
                        const Tensor& features, const std::vector<int>& labels,
                        const NodeTrainConfig& cfg) {
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  TrainLog log;
  Timer timer;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    opt.zero_grad();
    ag::Variable logits = model.forward(adj_norm, ag::constant(features), rng);
    ag::Variable loss =
        ag::softmax_cross_entropy(logits, labels, cfg.class_weights);
    loss.backward();
    if (cfg.grad_clip > 0) optim::clip_grad_norm(opt.params(), cfg.grad_clip);
    opt.step();
    log.epoch_losses.push_back(loss.value().data()[0]);
  }
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_sage_node(models::GraphSage& model,
                         std::shared_ptr<const graph::Csr> adj_row,
                         const Tensor& features,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  auto adj_row_t = std::make_shared<const graph::Csr>(adj_row->transposed());
  TrainLog log;
  Timer timer;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    opt.zero_grad();
    ag::Variable logits =
        model.forward(adj_row, ag::constant(features), rng, adj_row_t);
    ag::Variable loss =
        ag::softmax_cross_entropy(logits, labels, cfg.class_weights);
    loss.backward();
    if (cfg.grad_clip > 0) optim::clip_grad_norm(opt.params(), cfg.grad_clip);
    opt.step();
    log.epoch_losses.push_back(loss.value().data()[0]);
  }
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_sign_node(models::Sign& model, const core::HopFeatures& hops,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  const Tensor flat = hops.flat();
  TrainLog log;
  Timer timer;
  const std::int64_t n = flat.size(0);
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto ids = shuffled_ids(n, rng);
    double epoch_loss = 0;
    std::int64_t batches = 0;
    for (std::int64_t lo = 0; lo < n; lo += cfg.batch_size) {
      const std::int64_t hi = std::min(n, lo + cfg.batch_size);
      std::vector<std::int64_t> batch(ids.begin() + lo, ids.begin() + hi);
      opt.zero_grad();
      ag::Variable logits = model.forward(
          ag::constant(tensor_ops::gather_rows(flat, batch)), rng);
      ag::Variable loss = ag::softmax_cross_entropy(
          logits, gather_labels(labels, batch), cfg.class_weights);
      loss.backward();
      if (cfg.grad_clip > 0) optim::clip_grad_norm(opt.params(), cfg.grad_clip);
      opt.step();
      epoch_loss += loss.value().data()[0];
      ++batches;
    }
    log.epoch_losses.push_back(
        static_cast<float>(epoch_loss / std::max<std::int64_t>(1, batches)));
  }
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_saint_node(models::Gcn& model,
                          const models::SaintConfig& saint_cfg,
                          const graph::Csr& adj_raw, const Tensor& features,
                          const std::vector<int>& labels,
                          const NodeTrainConfig& cfg) {
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  models::SaintTrainer trainer(saint_cfg, adj_raw, rng);
  TrainLog log;
  Timer timer;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    log.epoch_losses.push_back(
        trainer.step(model, opt, features, labels, rng));
  }
  log.seconds = timer.seconds();
  return log;
}

Tensor predict_gcn(models::Gcn& m,
                   std::shared_ptr<const graph::Csr> adj_norm,
                   const Tensor& features) {
  Rng rng(0);
  const bool was = m.training();
  m.set_training(false);
  Tensor out = m.forward(adj_norm, ag::constant(features), rng).value();
  m.set_training(was);
  return out;
}

Tensor predict_sage(models::GraphSage& m,
                    std::shared_ptr<const graph::Csr> adj_row,
                    const Tensor& features) {
  Rng rng(0);
  const bool was = m.training();
  m.set_training(false);
  Tensor out = m.forward(adj_row, ag::constant(features), rng).value();
  m.set_training(was);
  return out;
}

Tensor predict_sign(models::Sign& m, const core::HopFeatures& hops,
                    std::int64_t batch_size) {
  Rng rng(0);
  const bool was = m.training();
  m.set_training(false);
  const Tensor flat = hops.flat();
  const std::int64_t n = flat.size(0);
  const std::int64_t c = m.config().out_dim;
  Tensor out({n, c});
  for (std::int64_t lo = 0; lo < n; lo += batch_size) {
    const std::int64_t hi = std::min(n, lo + batch_size);
    Tensor part =
        m.forward(ag::constant(tensor_ops::slice_rows(flat, lo, hi)), rng)
            .value();
    std::copy(part.data(), part.data() + part.numel(), out.data() + lo * c);
  }
  m.set_training(was);
  return out;
}

}  // namespace hoga::train
