#include "train/node_trainer.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "fault/fault.hpp"
#include "graph/transpose_cache.hpp"
#include "store/feature_store.hpp"
#include "tensor/ops.hpp"
#include "util/timer.hpp"
#include "validate/validate.hpp"

namespace hoga::train {
namespace {

std::vector<std::int64_t> shuffled_ids(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  rng.shuffle(ids);
  return ids;
}

std::vector<int> gather_labels(const std::vector<int>& labels,
                               const std::vector<std::int64_t>& ids) {
  std::vector<int> out;
  out.reserve(ids.size());
  for (std::int64_t i : ids) out.push_back(labels[static_cast<std::size_t>(i)]);
  return out;
}

// Shared with the serving runtime: hoga::validate is the single source of
// truth for what counts as well-formed labels/features (DESIGN.md §8).
void check_label_preconditions(const char* name, std::int64_t num_nodes,
                               const std::vector<int>& labels,
                               const std::vector<float>& class_weights,
                               std::int64_t num_classes) {
  validate::require(
      validate::check_labels(num_nodes, labels, class_weights, num_classes),
      name);
}

/// backward + fault hook + clip + step, with non-finite detection. Returns
/// false (step skipped) when the loss or the pre-clip gradient norm is
/// NaN/Inf — the fault-tolerant loop then rolls back instead of letting the
/// parameters diverge.
bool guarded_step(optim::Adam& opt, ag::Variable loss, float grad_clip) {
  loss.backward();
  fault::maybe_corrupt_gradients(opt.params());
  const float max_norm =
      grad_clip > 0 ? grad_clip : std::numeric_limits<float>::infinity();
  const float norm = optim::clip_grad_norm(opt.params(), max_norm);
  if (!std::isfinite(loss.value().data()[0]) || !std::isfinite(norm)) {
    return false;
  }
  opt.step();
  return true;
}

}  // namespace

TrainLog train_hoga_node(core::Hoga& model, const core::HopFeatures& hops,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  const std::int64_t n = hops.num_nodes();
  check_label_preconditions("train_hoga_node", n, labels, cfg.class_weights,
                            model.config().out_dim);
  validate::require(validate::check_hop_features(hops, model.config().num_hops,
                                                 model.config().in_dim),
                    "train_hoga_node");
  HOGA_CHECK(cfg.batch_size > 0, "train_hoga_node: batch_size must be > 0");
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  TrainLog log;
  Timer timer;
  auto epoch_body = [&](bool* ok) -> double {
    const auto ids = shuffled_ids(n, rng);
    double epoch_loss = 0;
    std::int64_t batches = 0;
    for (std::int64_t lo = 0; lo < n; lo += cfg.batch_size) {
      const std::int64_t hi = std::min(n, lo + cfg.batch_size);
      std::vector<std::int64_t> batch(ids.begin() + lo, ids.begin() + hi);
      opt.zero_grad();
      ag::Variable logits =
          model.forward(ag::constant(hops.gather(batch)), rng);
      ag::Variable loss = ag::softmax_cross_entropy(
          logits, gather_labels(labels, batch), cfg.class_weights);
      if (!guarded_step(opt, loss, cfg.grad_clip)) {
        *ok = false;
        return 0;
      }
      epoch_loss += loss.value().data()[0];
      ++batches;
    }
    return epoch_loss / std::max<std::int64_t>(1, batches);
  };
  log.epoch_losses = run_fault_tolerant_epochs(
      model, opt, rng, cfg.epochs, cfg.checkpoint, epoch_body,
      &log.fault_stats);
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_hoga_node(core::Hoga& model, store::FeatureStore& store,
                         const graph::Csr& adj_hop, const Tensor& features,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  const core::HopFeatures hops =
      store.get_or_compute(adj_hop, features, model.config().num_hops);
  return train_hoga_node(model, hops, labels, cfg);
}

TrainLog train_gcn_node(models::Gcn& model,
                        std::shared_ptr<const graph::Csr> adj_norm,
                        const Tensor& features, const std::vector<int>& labels,
                        const NodeTrainConfig& cfg) {
  check_label_preconditions("train_gcn_node", features.size(0), labels,
                            cfg.class_weights, model.config().out_dim);
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  TrainLog log;
  Timer timer;
  auto epoch_body = [&](bool* ok) -> double {
    opt.zero_grad();
    ag::Variable logits = model.forward(adj_norm, ag::constant(features), rng);
    ag::Variable loss =
        ag::softmax_cross_entropy(logits, labels, cfg.class_weights);
    if (!guarded_step(opt, loss, cfg.grad_clip)) {
      *ok = false;
      return 0;
    }
    return loss.value().data()[0];
  };
  log.epoch_losses = run_fault_tolerant_epochs(
      model, opt, rng, cfg.epochs, cfg.checkpoint, epoch_body,
      &log.fault_stats);
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_sage_node(models::GraphSage& model,
                         std::shared_ptr<const graph::Csr> adj_row,
                         const Tensor& features,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  check_label_preconditions("train_sage_node", features.size(0), labels,
                            cfg.class_weights, model.config().out_dim);
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  auto adj_row_t = graph::TransposeCache::global().get(adj_row);
  TrainLog log;
  Timer timer;
  auto epoch_body = [&](bool* ok) -> double {
    opt.zero_grad();
    ag::Variable logits =
        model.forward(adj_row, ag::constant(features), rng, adj_row_t);
    ag::Variable loss =
        ag::softmax_cross_entropy(logits, labels, cfg.class_weights);
    if (!guarded_step(opt, loss, cfg.grad_clip)) {
      *ok = false;
      return 0;
    }
    return loss.value().data()[0];
  };
  log.epoch_losses = run_fault_tolerant_epochs(
      model, opt, rng, cfg.epochs, cfg.checkpoint, epoch_body,
      &log.fault_stats);
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_sign_node(models::Sign& model, const core::HopFeatures& hops,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  check_label_preconditions("train_sign_node", hops.num_nodes(), labels,
                            cfg.class_weights, model.config().out_dim);
  HOGA_CHECK(cfg.batch_size > 0, "train_sign_node: batch_size must be > 0");
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  const Tensor flat = hops.flat();
  TrainLog log;
  Timer timer;
  const std::int64_t n = flat.size(0);
  auto epoch_body = [&](bool* ok) -> double {
    const auto ids = shuffled_ids(n, rng);
    double epoch_loss = 0;
    std::int64_t batches = 0;
    for (std::int64_t lo = 0; lo < n; lo += cfg.batch_size) {
      const std::int64_t hi = std::min(n, lo + cfg.batch_size);
      std::vector<std::int64_t> batch(ids.begin() + lo, ids.begin() + hi);
      opt.zero_grad();
      ag::Variable logits = model.forward(
          ag::constant(tensor_ops::gather_rows(flat, batch)), rng);
      ag::Variable loss = ag::softmax_cross_entropy(
          logits, gather_labels(labels, batch), cfg.class_weights);
      if (!guarded_step(opt, loss, cfg.grad_clip)) {
        *ok = false;
        return 0;
      }
      epoch_loss += loss.value().data()[0];
      ++batches;
    }
    return epoch_loss / std::max<std::int64_t>(1, batches);
  };
  log.epoch_losses = run_fault_tolerant_epochs(
      model, opt, rng, cfg.epochs, cfg.checkpoint, epoch_body,
      &log.fault_stats);
  log.seconds = timer.seconds();
  return log;
}

TrainLog train_sign_node(models::Sign& model, store::FeatureStore& store,
                         const graph::Csr& adj_hop, const Tensor& features,
                         const std::vector<int>& labels,
                         const NodeTrainConfig& cfg) {
  const core::HopFeatures hops =
      store.get_or_compute(adj_hop, features, model.config().num_hops);
  return train_sign_node(model, hops, labels, cfg);
}

TrainLog train_saint_node(models::Gcn& model,
                          const models::SaintConfig& saint_cfg,
                          const graph::Csr& adj_raw, const Tensor& features,
                          const std::vector<int>& labels,
                          const NodeTrainConfig& cfg) {
  check_label_preconditions("train_saint_node", features.size(0), labels,
                            cfg.class_weights, model.config().out_dim);
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  models::SaintTrainer trainer(saint_cfg, adj_raw, rng);
  TrainLog log;
  Timer timer;
  auto epoch_body = [&](bool* ok) -> double {
    const float loss = trainer.step(model, opt, features, labels, rng);
    if (!std::isfinite(loss)) {
      *ok = false;
      return 0;
    }
    return loss;
  };
  log.epoch_losses = run_fault_tolerant_epochs(
      model, opt, rng, cfg.epochs, cfg.checkpoint, epoch_body,
      &log.fault_stats);
  log.seconds = timer.seconds();
  return log;
}

Tensor predict_gcn(const models::Gcn& m,
                   std::shared_ptr<const graph::Csr> adj_norm,
                   const Tensor& features) {
  return m.forward_eval(adj_norm, ag::constant(features)).value();
}

Tensor predict_sage(const models::GraphSage& m,
                    std::shared_ptr<const graph::Csr> adj_row,
                    const Tensor& features) {
  return m.forward_eval(adj_row, ag::constant(features)).value();
}

Tensor predict_sign(const models::Sign& m, const core::HopFeatures& hops,
                    std::int64_t batch_size) {
  const Tensor flat = hops.flat();
  const std::int64_t n = flat.size(0);
  const std::int64_t c = m.config().out_dim;
  Tensor out({n, c});
  for (std::int64_t lo = 0; lo < n; lo += batch_size) {
    const std::int64_t hi = std::min(n, lo + batch_size);
    Tensor part =
        m.forward_eval(ag::constant(tensor_ops::slice_rows(flat, lo, hi)))
            .value();
    std::copy(part.data(), part.data() + part.numel(), out.data() + lo * c);
  }
  return out;
}

}  // namespace hoga::train
