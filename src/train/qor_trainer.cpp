#include "train/qor_trainer.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "fault/fault.hpp"
#include "store/feature_store.hpp"
#include "synth/recipe.hpp"
#include "train/metrics.hpp"
#include "util/timer.hpp"

namespace hoga::train {

double prepare_qor_inputs(const data::QorDataset& ds,
                          const QorModelConfig& cfg,
                          std::vector<QorDesignInput>* out,
                          store::FeatureStore* store) {
  out->clear();
  out->reserve(ds.designs.size());
  double precompute_seconds = 0;
  for (const auto& design : ds.designs) {
    QorDesignInput in;
    if (cfg.backbone == QorBackbone::kGcn) {
      in.adj_norm = design.adj_norm;
      in.features = design.features;
    } else {
      Timer t;
      in.hops = store != nullptr
                    ? store->get_or_compute(*design.adj_hop, design.features,
                                            cfg.num_hops)
                    : core::HopFeatures::compute(*design.adj_hop,
                                                 design.features,
                                                 cfg.num_hops);
      precompute_seconds += t.seconds();
    }
    out->push_back(std::move(in));
  }
  return precompute_seconds;
}

QorModel::QorModel(const QorModelConfig& cfg, Rng& rng) : config_(cfg) {
  HOGA_CHECK(cfg.in_dim > 0, "QorModel: in_dim unset");
  if (cfg.backbone == QorBackbone::kGcn) {
    gcn_ = std::make_shared<models::Gcn>(
        models::GcnConfig{.in_dim = cfg.in_dim,
                          .hidden = cfg.hidden,
                          .out_dim = cfg.hidden,
                          .num_layers = cfg.gcn_layers,
                          .dropout = cfg.dropout},
        rng);
    register_module("gcn", gcn_);
  } else {
    hoga_ = std::make_shared<core::Hoga>(
        core::HogaConfig{.in_dim = cfg.in_dim,
                         .hidden = cfg.hidden,
                         .num_hops = cfg.num_hops,
                         .num_layers = 1,
                         .out_dim = cfg.hidden,
                         .dropout = cfg.dropout},
        rng);
    register_module("hoga", hoga_);
  }
  recipe_embedding_ = std::make_shared<nn::Embedding>(
      synth::kNumPassKinds, cfg.hidden, rng);
  register_module("recipe_embedding", recipe_embedding_);
  head_ = std::make_shared<nn::Mlp>(
      std::vector<std::int64_t>{3 * cfg.hidden, cfg.hidden, 1}, rng);
  register_module("head", head_);
}

ag::Variable QorModel::forward(const QorDesignInput& design,
                               const std::vector<std::int64_t>& recipe_tokens,
                               Rng& rng) const {
  ag::Variable node_reprs;  // [n, hidden]
  if (config_.backbone == QorBackbone::kGcn) {
    node_reprs =
        gcn_->forward(design.adj_norm, ag::constant(design.features), rng);
  } else {
    HOGA_CHECK(design.hops.has_value(), "QorModel: hop features missing");
    // The HOGA child tracks this module's train/eval flag through
    // Module::set_training's recursion — no per-forward toggle needed.
    node_reprs = hoga_->forward_repr(
        ag::constant(design.hops->gather_all()), rng);
  }
  ag::Variable mean_pool =
      ag::reshape(ag::mean_axis0(node_reprs), {1, config_.hidden});
  ag::Variable max_pool =
      ag::reshape(ag::max_axis0(node_reprs), {1, config_.hidden});
  ag::Variable recipe =
      ag::reshape(ag::mean_axis0(recipe_embedding_->forward(recipe_tokens)),
                  {1, config_.hidden});
  ag::Variable joint = ag::concat_cols({mean_pool, max_pool, recipe});
  return head_->forward(joint, rng);
}

ag::Variable QorModel::forward_eval(
    const QorDesignInput& design,
    const std::vector<std::int64_t>& recipe_tokens) const {
  ag::Variable node_reprs;  // [n, hidden]
  if (config_.backbone == QorBackbone::kGcn) {
    node_reprs =
        gcn_->forward_eval(design.adj_norm, ag::constant(design.features));
  } else {
    HOGA_CHECK(design.hops.has_value(), "QorModel: hop features missing");
    node_reprs =
        hoga_->forward_eval_repr(ag::constant(design.hops->gather_all()));
  }
  ag::Variable mean_pool =
      ag::reshape(ag::mean_axis0(node_reprs), {1, config_.hidden});
  ag::Variable max_pool =
      ag::reshape(ag::max_axis0(node_reprs), {1, config_.hidden});
  ag::Variable recipe =
      ag::reshape(ag::mean_axis0(recipe_embedding_->forward(recipe_tokens)),
                  {1, config_.hidden});
  ag::Variable joint = ag::concat_cols({mean_pool, max_pool, recipe});
  return head_->forward(joint);
}

QorTrainLog train_qor(QorModel& model,
                      const std::vector<QorDesignInput>& inputs,
                      const std::vector<data::QorSample>& samples,
                      const QorTrainConfig& cfg) {
  HOGA_CHECK(cfg.batch_size > 0, "train_qor: batch_size must be > 0");
  for (const auto& sample : samples) {
    HOGA_CHECK(sample.design_index >= 0 &&
                   static_cast<std::size_t>(sample.design_index) <
                       inputs.size(),
               "train_qor: sample design_index " << sample.design_index
                                                 << " out of range (have "
                                                 << inputs.size()
                                                 << " design inputs)");
  }
  Rng rng(cfg.seed);
  optim::Adam opt(model.parameters(), cfg.lr);
  model.set_training(true);
  QorTrainLog log;
  Timer timer;
  auto epoch_body = [&](bool* ok) -> double {
    // Regenerated from identity every epoch so the permutation is a pure
    // function of the RNG state — bit-exact resume depends on the epoch
    // body carrying no state outside (model, optimizer, RNG).
    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    double epoch_loss = 0;
    int batches = 0;
    for (std::size_t lo = 0; lo < order.size();
         lo += static_cast<std::size_t>(cfg.batch_size)) {
      const std::size_t hi = std::min(
          order.size(), lo + static_cast<std::size_t>(cfg.batch_size));
      opt.zero_grad();
      std::vector<ag::Variable> preds;
      Tensor targets({static_cast<std::int64_t>(hi - lo), 1});
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& sample = samples[order[i]];
        preds.push_back(model.forward(
            inputs[static_cast<std::size_t>(sample.design_index)],
            sample.recipe.token_ids(), rng));
        targets.data()[i - lo] = sample.target_ratio;
      }
      ag::Variable pred = ag::concat_rows(preds);
      ag::Variable loss = ag::mse_loss(pred, targets);
      loss.backward();
      fault::maybe_corrupt_gradients(opt.params());
      const float max_norm = cfg.grad_clip > 0
                                 ? cfg.grad_clip
                                 : std::numeric_limits<float>::infinity();
      const float norm = optim::clip_grad_norm(opt.params(), max_norm);
      if (!std::isfinite(loss.value().data()[0]) || !std::isfinite(norm)) {
        *ok = false;
        return 0;
      }
      opt.step();
      epoch_loss += loss.value().data()[0];
      ++batches;
    }
    return epoch_loss / std::max(1, batches);
  };
  log.epoch_losses = run_fault_tolerant_epochs(
      model, opt, rng, cfg.epochs, cfg.checkpoint, epoch_body,
      &log.fault_stats);
  log.seconds = timer.seconds();
  return log;
}

QorEval evaluate_qor(const QorModel& m, const data::QorDataset& ds,
                     const std::vector<QorDesignInput>& inputs,
                     const std::vector<data::QorSample>& samples) {
  // Per-design truth/prediction lists over gate counts.
  std::vector<std::vector<double>> truth(ds.designs.size());
  std::vector<std::vector<double>> pred(ds.designs.size());
  QorEval eval;
  for (const auto& sample : samples) {
    const auto di = static_cast<std::size_t>(sample.design_index);
    const double init =
        static_cast<double>(ds.designs[di].initial_ands);
    const double predicted_ratio =
        m.forward_eval(inputs[di], sample.recipe.token_ids())
            .value()
            .data()[0];
    const double predicted_gates = predicted_ratio * init;
    const double true_gates = static_cast<double>(sample.final_ands);
    truth[di].push_back(true_gates);
    pred[di].push_back(predicted_gates);
    eval.scatter.emplace_back(true_gates, predicted_gates);
    eval.scatter_design.push_back(sample.design_index);
  }
  double mape_sum = 0;
  int designs_counted = 0;
  for (std::size_t di = 0; di < ds.designs.size(); ++di) {
    if (truth[di].empty()) continue;
    eval.design_names.push_back(ds.designs[di].name);
    eval.design_mape.push_back(mape(truth[di], pred[di]));
    mape_sum += eval.design_mape.back();
    ++designs_counted;
  }
  eval.average_mape = designs_counted ? mape_sum / designs_counted : 0;
  return eval;
}

}  // namespace hoga::train
