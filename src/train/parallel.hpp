#pragma once
// Simulated-cluster data-parallel training (Figure 5 substitute, see
// DESIGN.md §1). The machine has one core, so real multi-GPU wall clock is
// unavailable; instead we exploit the property the paper demonstrates —
// HOGA has no inter-node dependencies — by partitioning each epoch's node
// batches across W simulated workers, measuring every partition's compute
// serially, and reporting
//
//   T_epoch(W) = max_w T_compute(w) + T_allreduce(W)
//
// where T_allreduce models a ring all-reduce of the gradients. A model with
// cross-node dependencies could not be partitioned this way without extra
// communication, which is exactly the paper's point.

#include <vector>

#include "core/hoga_model.hpp"
#include "train/node_trainer.hpp"

namespace hoga::train {

struct ScalingPoint {
  int workers = 1;
  double compute_seconds = 0;    // max over workers
  double allreduce_seconds = 0;  // modeled communication
  double epoch_seconds = 0;      // compute + allreduce + recovery
  double speedup = 1;            // vs workers == 1
  double efficiency = 1;         // speedup / workers
  /// Elastic-epoch fault tolerance (fault::Injector-driven): injected
  /// worker failures healed in this configuration, and the per-epoch cost
  /// of healing them — survivors re-executing the dead worker's remaining
  /// node batches, plus a modeled re-partition barrier. Hop-wise
  /// independence is what makes this cheap: a dead worker's partition can
  /// be re-assigned without any cross-node communication.
  int worker_failures = 0;
  double recovery_seconds = 0;
};

struct ClusterConfig {
  std::vector<int> worker_counts{1, 2, 3, 4};
  /// Modeled interconnect bandwidth for the gradient all-reduce (NVLink-ish).
  double bandwidth_bytes_per_sec = 50e9;
  /// Per-step latency of a collective (s).
  double collective_latency = 50e-6;
  int epochs_to_time = 1;
  /// Speedup/efficiency baseline. 0 (default) = the first measured point's
  /// epoch time; set it when splitting one sweep across several calls so
  /// every point (and its "scaling.point" ledger event) is normalized
  /// against the same single-worker run.
  double baseline_epoch_seconds = 0;
};

/// Measures HOGA data-parallel epoch time for each worker count. The model
/// is trained for `epochs_to_time` epochs per configuration (real compute,
/// real gradients; partitions measured serially).
std::vector<ScalingPoint> simulate_hoga_scaling(
    core::Hoga& model, const core::HopFeatures& hops,
    const std::vector<int>& labels, const NodeTrainConfig& train_cfg,
    const ClusterConfig& cluster_cfg);

}  // namespace hoga::train
