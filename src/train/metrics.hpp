#pragma once
// Evaluation metrics used in the paper: MAPE for QoR prediction (Table 2)
// and node-classification accuracy (Figure 6).

#include <array>
#include <vector>

#include "tensor/tensor.hpp"

namespace hoga::train {

/// Mean absolute percentage error: (1/g) sum |y - yhat| / |y| * 100.
double mape(const std::vector<double>& truth,
            const std::vector<double>& predicted);

/// Argmax accuracy of logits [n, c] against labels.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

/// Per-class recall from logits.
std::vector<double> per_class_accuracy(const Tensor& logits,
                                       const std::vector<int>& labels,
                                       int num_classes);

/// Row = truth, column = prediction.
std::vector<std::vector<std::int64_t>> confusion_matrix(
    const Tensor& logits, const std::vector<int>& labels, int num_classes);

/// Inverse-frequency class weights (normalized to mean 1); classes absent
/// from `labels` get weight 0.
std::vector<float> inverse_frequency_weights(const std::vector<int>& labels,
                                             int num_classes);

}  // namespace hoga::train
