#include "train/metrics.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hoga::train {
namespace {

int argmax_row(const Tensor& logits, std::int64_t row) {
  const std::int64_t c = logits.size(1);
  const float* p = logits.data() + row * c;
  int best = 0;
  for (std::int64_t j = 1; j < c; ++j) {
    if (p[j] > p[best]) best = static_cast<int>(j);
  }
  return best;
}

}  // namespace

double mape(const std::vector<double>& truth,
            const std::vector<double>& predicted) {
  HOGA_CHECK(truth.size() == predicted.size() && !truth.empty(),
             "mape: size mismatch or empty");
  double acc = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    HOGA_CHECK(truth[i] != 0, "mape: zero ground truth at " << i);
    acc += std::fabs((truth[i] - predicted[i]) / truth[i]);
  }
  return acc / static_cast<double>(truth.size()) * 100.0;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  HOGA_CHECK(logits.dim() == 2 &&
                 logits.size(0) == static_cast<std::int64_t>(labels.size()),
             "accuracy: shape mismatch");
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < logits.size(0); ++i) {
    if (argmax_row(logits, i) == labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(std::max<std::int64_t>(1, logits.size(0)));
}

std::vector<double> per_class_accuracy(const Tensor& logits,
                                       const std::vector<int>& labels,
                                       int num_classes) {
  std::vector<std::int64_t> correct(static_cast<std::size_t>(num_classes), 0);
  std::vector<std::int64_t> total(static_cast<std::size_t>(num_classes), 0);
  for (std::int64_t i = 0; i < logits.size(0); ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    total[static_cast<std::size_t>(y)]++;
    if (argmax_row(logits, i) == y) correct[static_cast<std::size_t>(y)]++;
  }
  std::vector<double> out(static_cast<std::size_t>(num_classes), 0.0);
  for (int c = 0; c < num_classes; ++c) {
    out[static_cast<std::size_t>(c)] =
        total[static_cast<std::size_t>(c)] == 0
            ? 0.0
            : static_cast<double>(correct[static_cast<std::size_t>(c)]) /
                  static_cast<double>(total[static_cast<std::size_t>(c)]);
  }
  return out;
}

std::vector<std::vector<std::int64_t>> confusion_matrix(
    const Tensor& logits, const std::vector<int>& labels, int num_classes) {
  std::vector<std::vector<std::int64_t>> m(
      static_cast<std::size_t>(num_classes),
      std::vector<std::int64_t>(static_cast<std::size_t>(num_classes), 0));
  for (std::int64_t i = 0; i < logits.size(0); ++i) {
    m[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])]
     [static_cast<std::size_t>(argmax_row(logits, i))]++;
  }
  return m;
}

std::vector<float> inverse_frequency_weights(const std::vector<int>& labels,
                                             int num_classes) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (int y : labels) counts[static_cast<std::size_t>(y)]++;
  std::vector<float> w(static_cast<std::size_t>(num_classes), 0.f);
  double sum = 0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (counts[static_cast<std::size_t>(c)] > 0) {
      w[static_cast<std::size_t>(c)] =
          static_cast<float>(labels.size()) /
          static_cast<float>(counts[static_cast<std::size_t>(c)]);
      sum += w[static_cast<std::size_t>(c)];
      ++present;
    }
  }
  if (present > 0) {
    const float norm = static_cast<float>(present) / static_cast<float>(sum);
    for (auto& v : w) v *= norm;
  }
  return w;
}

}  // namespace hoga::train
