#pragma once
// Fault-tolerant training state: the "hoga-ckpt v2" format (DESIGN.md §7).
//
// A v2 checkpoint bundles everything a trainer needs to continue a run
// *bit-exactly* after a crash:
//
//   - model parameters (raw fp32 bit patterns, not decimal text),
//   - Adam state (step counter, learning rate, both moment vectors),
//   - RNG state (xoshiro words + Box-Muller cache),
//   - the epoch counter and the per-epoch loss history so far.
//
// The payload is guarded by a CRC32 in the header and written via
// write-tmp-then-rename, so a torn or bit-flipped checkpoint is rejected on
// load instead of silently restoring garbage. All floats are serialized as
// hex bit patterns: a resumed run replays the identical loss curve.
//
// run_fault_tolerant_epochs() is the epoch-loop harness shared by the node
// and QoR trainers: it handles resume, periodic checkpointing with
// retry/backoff, and non-finite-loss rollback (restore last good state, cut
// the learning rate, retry) — the trainers only supply the epoch body.

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.hpp"
#include "optim/optim.hpp"
#include "util/rng.hpp"

namespace hoga::train {

/// Loop progress carried by a v2 checkpoint (model/optimizer/RNG state is
/// restored directly into the objects passed to load_train_state).
struct TrainState {
  int epoch = 0;                    // completed epochs
  std::vector<float> epoch_losses;  // one entry per completed epoch
};

/// Fault-tolerance knobs embedded in every trainer config.
struct CheckpointConfig {
  std::string path;         // v2 TrainState target ("" disables writes)
  int every = 0;            // checkpoint every E completed epochs (0 = off)
  std::string resume_from;  // v2 TrainState to resume from ("" = fresh run)
  int max_retries = 4;      // write attempts before giving up (I/O errors)
  double backoff_initial_ms = 0.5;  // first retry delay
  double backoff_max_ms = 50.0;     // exponential backoff cap
  bool recover_nonfinite = true;    // roll back + LR cut instead of diverging
  float rollback_lr_cut = 0.5f;     // LR multiplier applied per rollback
  int max_rollbacks = 8;            // divergence guard
  /// 0 keeps the legacy behaviour: one file at `path`, overwritten each
  /// checkpoint. N > 0 writes epoch-stamped files "<path>.e<epoch>" and
  /// prunes to the newest N — and prunes only *after* the newer
  /// checkpoint's durable write (fsync'd rename) returned, so a crash at
  /// any instant leaves at least the previous N checkpoints intact.
  int keep_last = 0;
};

/// Recovery/restart events observed by one run_fault_tolerant_epochs call.
struct LoopStats {
  int resumed_from_epoch = 0;  // first epoch executed by this call
  int rollbacks = 0;           // non-finite recoveries taken
  int checkpoint_retries = 0;  // failed write attempts that were retried
};

// -- Serialization ----------------------------------------------------------
std::string save_train_state(const nn::Module& model, const optim::Adam& opt,
                             const Rng& rng, const TrainState& state);
/// Restores model parameters, Adam state, and RNG from `text`; returns the
/// loop progress. Verifies the CRC and every name/shape before touching
/// anything.
TrainState load_train_state(nn::Module& model, optim::Adam& opt, Rng& rng,
                            const std::string& text);

void save_train_state_file(const nn::Module& model, const optim::Adam& opt,
                           const Rng& rng, const TrainState& state,
                           const std::string& path);
TrainState load_train_state_file(nn::Module& model, optim::Adam& opt,
                                 Rng& rng, const std::string& path);

/// save_train_state_file with capped exponential backoff on I/O errors.
/// Returns the number of failed attempts that were retried; rethrows after
/// `max_attempts` consecutive failures.
int save_train_state_file_with_retry(const nn::Module& model,
                                     const optim::Adam& opt, const Rng& rng,
                                     const TrainState& state,
                                     const std::string& path,
                                     int max_attempts = 4,
                                     double initial_backoff_ms = 0.5,
                                     double max_backoff_ms = 50.0);

// -- Checkpoint retention ---------------------------------------------------
/// Epoch-stamped checkpoints "<base>.e<epoch>" next to `base`, sorted by
/// epoch ascending. Files whose suffix is not a pure decimal epoch are
/// ignored (quarantined or temp files never match).
std::vector<std::pair<int, std::string>> list_checkpoints(
    const std::string& base);

/// Path of the newest epoch-stamped checkpoint, or nullopt when none exist.
/// The resume entry point after a crash under keep_last retention.
std::optional<std::string> latest_checkpoint(const std::string& base);

/// Deletes all but the newest `keep_last` stamped checkpoints; returns how
/// many files were removed. Callers must only invoke this after the
/// checkpoint that justifies the pruning is durably on disk.
int prune_checkpoints(const std::string& base, int keep_last);

// -- Shared fault-tolerant epoch loop ---------------------------------------
/// Runs `epoch_body` until `epochs` epochs have completed. The body runs one
/// epoch (forward/backward/step over all its batches) and returns the mean
/// loss; it sets `*ok = false` when it observed a non-finite loss or
/// gradient norm (after skipping the poisoned optimizer step).
///
/// The harness resumes from `ckpt.resume_from` if set, checkpoints every
/// `ckpt.every` epochs with retry/backoff, keeps an in-memory last-good
/// snapshot, and on a non-finite epoch restores that snapshot and cuts the
/// learning rate by `ckpt.rollback_lr_cut`. Returns the full loss history
/// (including any resumed prefix).
std::vector<float> run_fault_tolerant_epochs(
    nn::Module& model, optim::Adam& opt, Rng& rng, int epochs,
    const CheckpointConfig& ckpt,
    const std::function<double(bool* ok)>& epoch_body, LoopStats* stats);

}  // namespace hoga::train
