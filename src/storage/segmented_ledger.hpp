#pragma once
// Rotating, compacting run ledger for long-lived services (DESIGN.md §12).
//
// obs::RunLedger writes one append-only file per run — right for a bench or
// a training job, wrong for a serving process that stays up for weeks: the
// file grows without bound and a single torn tail is the only crash story.
// SegmentedLedger keeps the same line format (every segment file is
// RunLedger::read-compatible) but splits the stream into segments:
//
//   <prefix>.000001.seg   closed: events + a footer {events, crc32, chain}
//   <prefix>.000002.seg   closed
//   <prefix>.000003.seg   active: events only, footer written on roll/close
//   <prefix>.snap         compaction snapshot (hoga-frame blob)
//
// Rotation: before an append, if the active segment exceeds the size or age
// bound, a new segment is opened (kill-point "ledger.rolled") and then the
// old one gets its footer (kill-point "ledger.footer_written") — in that
// order, so a crash between the two leaves a footer-less segment whose
// complete lines are still fully recoverable (and are re-footered on the
// next open; see recovery below).
//
// Footers chain: each carries chain_i = crc32(chain_{i-1} ":" crc_i), so a
// reader can prove no closed segment was deleted or reordered behind its
// back. The compaction snapshot stores the chain tail of the last folded
// segment, restarting verification there.
//
// Compaction: when closed segments exceed the configured count, the oldest
// excess segments (plus the previous snapshot) are folded into a new
// snapshot — total event count, per-type counts, last folded seq, chain
// tail — written via atomic_write_durable and only then are the folded
// segments deleted. A crash between snapshot write and deletion leaves
// segments that are fully covered by the snapshot; readers skip events with
// seq <= the snapshot's last_seq, and the next open deletes the residue. So
// the file count stays bounded (snapshot + closed cap + active) over a
// week-long run while total_events() is conserved exactly.
//
// Recovery: constructing over a directory with existing segments resumes —
// seq continues, covered segments are deleted, torn closed segments are
// repaired (complete lines + a freshly computed footer, atomically
// rewritten), and appending continues in a new segment.
//
// Crash semantics: when a SimulatedCrash escapes any operation the ledger
// poisons itself — every later call (including the destructor) is a no-op,
// so the on-disk state stays exactly as the "dead process" left it. That is
// what lets the soak harness sweep kills across every boundary and then
// recover with a fresh instance.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "obs/ledger.hpp"
#include "storage/storage.hpp"

namespace hoga::storage {

struct SegmentedLedgerConfig {
  /// Directory holding the segment files (created if missing).
  std::string directory;
  /// File-name prefix; one directory can host several ledgers.
  std::string prefix = "ledger";
  /// Roll the active segment once it holds at least this many bytes.
  std::size_t max_segment_bytes = std::size_t{4} << 20;
  /// Roll the active segment once it has been open this long (clock time);
  /// 0 disables age-based rolling.
  std::uint64_t max_segment_age_ns = 0;
  /// Closed segments kept before the oldest are folded into the snapshot;
  /// 0 disables compaction (file count then grows with the roll count).
  std::size_t max_closed_segments = 8;
  /// Timestamp source; defaults to the shared SteadyClock.
  obs::Clock* clock = nullptr;
};

class SegmentedLedger final : public obs::LedgerSink {
 public:
  explicit SegmentedLedger(SegmentedLedgerConfig config);
  ~SegmentedLedger() override;

  SegmentedLedger(const SegmentedLedger&) = delete;
  SegmentedLedger& operator=(const SegmentedLedger&) = delete;

  /// Appends one event, rolling/compacting first when due. Thread-safe.
  /// Real or injected append errors (ENOSPC) drop the event and count it —
  /// a full disk degrades the ledger, it never takes down the service.
  void event(const std::string& type,
             std::vector<obs::LedgerField> fields) override;

  /// Footers and fsyncs the active segment. Idempotent.
  void close();

  struct Stats {
    long long events = 0;            // appended through this instance
    long long rolls = 0;             // segment rotations
    long long compactions = 0;       // snapshot folds
    long long folded_events = 0;     // events absorbed by snapshots (total,
                                     // including recovered prior state)
    long long repaired_segments = 0; // torn segments re-footered on open
    long long append_errors = 0;     // events dropped on append failure
  };
  Stats stats() const;

  /// Ledger files currently on disk (active + closed + snapshot).
  std::size_t file_count() const;

  /// Seq the next event will carry (continues across recovery).
  long long next_seq() const;

  /// Per-type event counts over the whole history as this live instance
  /// knows it: the snapshot accumulator plus every live (not yet folded)
  /// event, including events recovered from pre-existing segments at open.
  /// Answered from memory — no segment is re-read. Matches what read_dir
  /// on this directory would report via ReadResult::counts_by_type().
  std::vector<std::pair<std::string, long long>> counts_by_type() const;

  const SegmentedLedgerConfig& config() const { return config_; }

  /// Everything read_dir recovered from a ledger directory.
  struct ReadResult {
    /// Live (not yet folded) events across all segments, in seq order.
    std::vector<obs::LedgerEvent> events;
    /// Events absorbed into the snapshot, with per-type counts (sorted).
    long long folded_events = 0;
    std::vector<std::pair<std::string, long long>> folded_by_type;
    bool snapshot_present = false;
    std::size_t segments = 0;        // segment files contributing events
    std::size_t torn_segments = 0;   // segments recovered without a footer
    std::size_t skipped_lines = 0;   // unparseable (torn/corrupt) lines
    /// False when a closed segment's footer chain fails verification —
    /// evidence of deletion/reordering/corruption among closed segments.
    bool chain_valid = true;

    /// Events ever appended: folded + live. Conserved across rotation and
    /// compaction (the bounded-file-count soak asserts this).
    long long total_events() const {
      return folded_events + static_cast<long long>(events.size());
    }

    /// Per-type event counts over the whole history: the snapshot's folded
    /// counts merged with the live events, sorted by type. Conserved across
    /// rotation and compaction — folding segments into the snapshot must
    /// never change what this returns (test_storage proves it against a
    /// never-compacted ledger).
    std::vector<std::pair<std::string, long long>> counts_by_type() const;
  };

  /// Recovers a ledger directory without mutating it: reads the snapshot,
  /// every segment (torn tails tolerated and counted), skips folded
  /// duplicates, and verifies the footer CRC chain.
  static ReadResult read_dir(const std::string& directory,
                             const std::string& prefix = "ledger");

 private:
  std::string segment_path(std::uint64_t index) const;
  std::string snapshot_path() const;
  void open_active_locked();
  void roll_locked();
  void compact_locked();
  void append_line_locked(const std::string& line);
  void write_footer_locked();

  SegmentedLedgerConfig config_;
  obs::Clock* clock_;
  mutable std::mutex mu_;
  std::unique_ptr<AppendFile> active_;
  std::uint64_t active_index_ = 0;
  std::uint64_t active_opened_ns_ = 0;
  long long seq_ = 0;
  // Per-active-segment footer state.
  long long seg_events_ = 0;
  std::uint32_t seg_crc_state_;
  // Chain tail: the "chain" value of the last closed segment (or snapshot).
  std::string chain_;
  std::vector<std::uint64_t> closed_;  // closed segment indices, ascending
  bool have_snapshot_ = false;
  // Snapshot accumulator (carried across compactions).
  long long snap_events_ = 0;
  long long snap_last_seq_ = -1;
  std::vector<std::pair<std::string, long long>> snap_by_type_;
  // Per-type counts of live (not yet folded) events: incremented on append,
  // seeded from surviving segments at open, drained into snap_by_type_ by
  // compaction. snap + live together answer counts_by_type() from memory.
  std::vector<std::pair<std::string, long long>> live_by_type_;
  bool crashed_ = false;  // a SimulatedCrash escaped; everything no-ops
  bool closed_ledger_ = false;
  Stats stats_;
};

}  // namespace hoga::storage
