#include "storage/scrubber.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "obs/obs.hpp"
#include "storage/storage.hpp"

namespace hoga::storage {

namespace fs = std::filesystem;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Files the scrubber must leave alone: in-flight temps (atomic_write_durable
// owns them — plain ".tmp" or the pid-suffixed ".tmp.<pid>" form), lease
// lock files, and files it already set aside.
bool skip_file(const std::string& name) {
  return ends_with(name, ".tmp") || name.find(".tmp.") != std::string::npos ||
         ends_with(name, ".lock") || ends_with(name, ".quarantine");
}

}  // namespace

std::string ScrubStats::counts_signature() const {
  std::ostringstream os;
  os << "passes=" << passes << " files=" << files_scanned
     << " clean=" << clean << " corrupt=" << corrupt
     << " quarantined=" << quarantined << " unrecognized=" << unrecognized;
  return os.str();
}

Scrubber::Scrubber(ScrubConfig config) : config_(std::move(config)) {}

Scrubber::~Scrubber() { stop(); }

void Scrubber::refill_queue_locked() {
  std::vector<std::string> files;
  for (const auto& dir : config_.directories) {
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator();
         it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string path = it->path().string();
      if (skip_file(it->path().filename().string())) continue;
      files.push_back(path);
    }
  }
  // Deterministic scan order regardless of directory-entry order.
  std::sort(files.begin(), files.end());
  pending_.assign(files.begin(), files.end());
}

std::size_t Scrubber::verify_one_locked(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  const std::size_t bytes = ec ? 0 : static_cast<std::size_t>(size);
  std::string why;
  const FileIntegrity verdict = verify_file_integrity(path, &why);
  ++stats_.files_scanned;
  stats_.bytes_scanned += static_cast<long long>(bytes);
  switch (verdict) {
    case FileIntegrity::kOk:
      ++stats_.clean;
      break;
    case FileIntegrity::kUnrecognized:
      ++stats_.unrecognized;
      break;
    case FileIntegrity::kCorrupt: {
      ++stats_.corrupt;
      obs::count("storage.scrub_corrupt");
      bool quarantined = false;
      if (config_.quarantine) {
        std::error_code rename_ec;
        fs::rename(path, path + ".quarantine", rename_ec);
        quarantined = !rename_ec;
        if (quarantined) ++stats_.quarantined;
      }
      obs::ledger_event("storage.quarantine",
                        {{"path", path},
                         {"why", why},
                         {"quarantined", quarantined}});
      break;
    }
  }
  return bytes;
}

void Scrubber::scrub_pass() {
  std::lock_guard<std::mutex> lock(mu_);
  refill_queue_locked();
  while (!pending_.empty()) {
    const std::string path = pending_.front();
    pending_.pop_front();
    verify_one_locked(path);
  }
  ++stats_.passes;
}

std::size_t Scrubber::tick() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) refill_queue_locked();
  std::size_t files = 0;
  std::size_t budget_spent = 0;
  while (!pending_.empty()) {
    const std::string path = pending_.front();
    pending_.pop_front();
    budget_spent += verify_one_locked(path);
    ++files;
    if (config_.budget_bytes_per_tick > 0 &&
        budget_spent >= config_.budget_bytes_per_tick) {
      break;
    }
  }
  if (pending_.empty()) ++stats_.passes;
  return files;
}

void Scrubber::start(long long interval_ms) {
  if (running_.exchange(true)) return;
  worker_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(mu_);
    while (running_.load()) {
      lock.unlock();
      tick();
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                   [this] { return !running_.load(); });
    }
  });
}

void Scrubber::stop() {
  if (!running_.exchange(false)) return;
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

ScrubStats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hoga::storage
