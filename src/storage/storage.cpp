#include "storage/storage.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace hoga::storage {
namespace {

// Writes `content` (or an injected torn prefix of it) to `tmp`, flushing
// before returning. Shared by atomic_write_durable; a torn write flushes the
// prefix so the partial bytes are really on disk, then dies.
void write_payload_or_die(const std::string& tmp, const std::string& target,
                          std::string_view content) {
  fault::maybe_fail_storage_write(target);  // injected ENOSPC: nothing lands
  const double tear = fault::storage_tear_fraction();
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  HOGA_CHECK(out.good(), "atomic_write_durable: cannot open '" << tmp << "'");
  const std::size_t n =
      tear >= 0.0 ? static_cast<std::size_t>(
                        static_cast<double>(content.size()) * tear)
                  : content.size();
  out.write(content.data(), static_cast<std::streamsize>(n));
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp.c_str());
    HOGA_CHECK(false,
               "atomic_write_durable: write to '" << tmp << "' failed");
  }
  out.close();
  if (tear >= 0.0) fault::storage_torn_write_crash(target);
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

FileIntegrity fail(std::string* why, std::string reason) {
  if (why) *why = std::move(reason);
  return FileIntegrity::kCorrupt;
}

// Verifies a "<magic> <version> <payload bytes> <crc32 hex>" header file by
// streaming the payload through the incremental CRC. `expect_magic` empty
// accepts any of the known magics.
FileIntegrity verify_header_crc_file(const std::string& path,
                                     const std::string& expect_magic,
                                     std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return fail(why, "cannot open");
  std::string header_line;
  if (!std::getline(in, header_line)) return fail(why, "missing header line");
  std::istringstream header(header_line);
  std::string magic, version;
  std::size_t payload_size = 0;
  std::uint64_t expect_crc = 0;
  header >> magic >> version >> payload_size >> std::hex >> expect_crc;
  if (header.fail() || expect_crc > 0xFFFFFFFFull) {
    return fail(why, "malformed header");
  }
  if (!expect_magic.empty() && magic != expect_magic) {
    return fail(why, "magic is '" + magic + "', expected '" + expect_magic +
                         "'");
  }
  std::uint32_t crc = util::crc32_init();
  std::size_t seen = 0;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const auto got = static_cast<std::size_t>(in.gcount());
    crc = util::crc32_update(crc, std::string_view(buf, got));
    seen += got;
    if (in.eof()) break;
  }
  if (seen != payload_size) {
    std::ostringstream os;
    os << "payload is " << seen << " bytes, header declares " << payload_size
       << (seen < payload_size ? " (truncated write?)" : " (trailing junk)");
    return fail(why, os.str());
  }
  if (util::crc32_final(crc) != static_cast<std::uint32_t>(expect_crc)) {
    return fail(why, "CRC mismatch (corrupted payload)");
  }
  return FileIntegrity::kOk;
}

// Verifies a ledger segment: every complete line parses as a flat JSON
// object; a footer, when present, must close the file with a matching event
// count and CRC. A torn *final* line (no trailing newline) is crash
// residue, not corruption.
FileIntegrity verify_ledger_segment(const std::string& path,
                                    std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return fail(why, "cannot open");
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return fail(why, "I/O error while reading");
  const std::string text = os.str();
  if (text.empty()) return FileIntegrity::kOk;  // just-rolled empty segment

  const bool ends_newline = text.back() == '\n';
  std::uint32_t crc = util::crc32_init();
  long long events = 0;
  bool saw_footer = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // A torn final line — recoverable crash residue by construction
      // (AppendFile writes one flushed record per line); anything after a
      // footer is another story, caught below.
      break;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (saw_footer) {
      return fail(why, "bytes after the footer");
    }
    auto parsed = obs::detail::parse_json_line(line);
    if (!parsed) return fail(why, "unparseable event line");
    const auto* type_m = parsed->find("type");
    if (!type_m || type_m->has_object ||
        !std::holds_alternative<std::string>(type_m->scalar)) {
      return fail(why, "event line without a type");
    }
    if (std::get<std::string>(type_m->scalar) == "ledger.footer") {
      saw_footer = true;
      const auto* events_m = parsed->find("events");
      const auto* crc_m = parsed->find("crc32");
      char expect[9] = {0};
      std::snprintf(expect, sizeof(expect), "%08x", util::crc32_final(crc));
      const bool ok =
          events_m && !events_m->has_object &&
          std::holds_alternative<long long>(events_m->scalar) &&
          std::get<long long>(events_m->scalar) == events && crc_m &&
          !crc_m->has_object &&
          std::holds_alternative<std::string>(crc_m->scalar) &&
          std::get<std::string>(crc_m->scalar) == expect;
      if (!ok) return fail(why, "footer count/CRC mismatch");
      continue;
    }
    crc = util::crc32_update(crc, line + "\n");
    ++events;
  }
  if (saw_footer && !ends_newline) {
    return fail(why, "bytes after the footer");
  }
  if (!ends_newline && why) *why = "torn final line (recoverable)";
  return FileIntegrity::kOk;
}

}  // namespace

void atomic_write_durable(const std::string& path, std::string_view content) {
  obs::count("storage.writes");
  // The temp name carries the pid so two processes replacing the same
  // destination (e.g. both recomputing one feature-store shard) never
  // interleave writes into one temp file — each publishes its own complete
  // payload and the later rename wins whole (last-writer-wins, no torn
  // reads). Within a process the name is stable, so a retry after a crash
  // overwrites its own residue instead of accumulating files.
  const std::string tmp =
      path + ".tmp." + std::to_string(util::process_id());
  try {
    write_payload_or_die(tmp, path, content);
    fault::storage_kill_point("storage.temp_written");
    util::fsync_file(tmp);
    fault::storage_kill_point("storage.temp_synced");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      HOGA_CHECK(false, "atomic_write_durable: rename '" << tmp << "' -> '"
                                                         << path
                                                         << "' failed");
    }
    fault::storage_kill_point("storage.renamed");
    util::fsync_parent_dir(path);
    fault::storage_kill_point("storage.dir_synced");
  } catch (const fault::SimulatedCrash&) {
    throw;  // a crash leaves the filesystem as-is — that is the point
  } catch (const std::exception&) {
    obs::count("storage.write_errors");
    std::remove(tmp.c_str());
    throw;
  }
}

AppendFile::AppendFile(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "ab");
  HOGA_CHECK(file_ != nullptr, "AppendFile: cannot open '" << path << "'");
}

AppendFile::~AppendFile() {
  if (file_) std::fclose(file_);
}

void AppendFile::append(std::string_view bytes) {
  HOGA_CHECK(file_ != nullptr, "AppendFile: '" << path_ << "' is closed");
  fault::maybe_fail_storage_write(path_);  // injected ENOSPC: nothing lands
  const double tear = fault::storage_tear_fraction();
  if (tear >= 0.0) {
    const auto n = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * tear);
    std::fwrite(bytes.data(), 1, n, file_);
    std::fflush(file_);
    fault::storage_torn_write_crash(path_);
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), file_);
  std::fflush(file_);
  HOGA_CHECK(wrote == bytes.size(),
             "AppendFile: short write to '" << path_ << "'");
  bytes_written_ += wrote;
}

void AppendFile::sync() {
  HOGA_CHECK(file_ != nullptr, "AppendFile: '" << path_ << "' is closed");
  std::fflush(file_);
  util::fsync_file(path_);
}

void AppendFile::close() {
  if (!file_) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

std::string encode_framed(std::string_view payload) {
  std::ostringstream os;
  os << "hoga-frame v1 " << payload.size() << ' ' << std::hex
     << util::crc32(payload) << std::dec << '\n';
  return os.str() + std::string(payload);
}

std::optional<std::string> decode_framed(std::string_view bytes,
                                         std::string* why) {
  auto reject = [&](std::string reason) -> std::optional<std::string> {
    if (why) *why = std::move(reason);
    return std::nullopt;
  };
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string_view::npos) {
    return reject("missing header line");
  }
  std::istringstream header(std::string(bytes.substr(0, header_end)));
  std::string magic, version;
  std::size_t payload_size = 0;
  std::uint64_t expect_crc = 0;
  header >> magic >> version >> payload_size >> std::hex >> expect_crc;
  if (header.fail() || magic != "hoga-frame") {
    return reject("not a hoga-frame blob");
  }
  if (version != "v1") {
    return reject("unsupported frame version '" + version + "'");
  }
  if (expect_crc > 0xFFFFFFFFull) return reject("bad crc in header");
  const std::string_view payload = bytes.substr(header_end + 1);
  if (payload.size() != payload_size) {
    return reject("frame payload size mismatch (truncated write?)");
  }
  if (util::crc32(payload) != static_cast<std::uint32_t>(expect_crc)) {
    return reject("frame CRC mismatch");
  }
  return std::string(payload);
}

const char* integrity_name(FileIntegrity v) {
  switch (v) {
    case FileIntegrity::kOk: return "ok";
    case FileIntegrity::kCorrupt: return "corrupt";
    case FileIntegrity::kUnrecognized: return "unrecognized";
  }
  return "unknown";
}

FileIntegrity verify_file_integrity(const std::string& path,
                                    std::string* why) {
  // Extension routes first (a corrupted header must not demote a shard to
  // "unrecognized"), then magic sniffing for extension-less artifacts like
  // checkpoints.
  if (ends_with(path, ".seg")) return verify_ledger_segment(path, why);
  if (ends_with(path, ".feat")) {
    return verify_header_crc_file(path, "hoga-feat", why);
  }
  if (ends_with(path, ".snap")) {
    return verify_header_crc_file(path, "hoga-frame", why);
  }
  std::ifstream probe(path, std::ios::binary);
  if (!probe.good()) return fail(why, "cannot open");
  char head[11] = {0};
  probe.read(head, sizeof(head) - 1);
  const std::string_view sniff(head, static_cast<std::size_t>(probe.gcount()));
  probe.close();
  if (!sniff.empty() && sniff.front() == '{') {
    return verify_ledger_segment(path, why);
  }
  for (const char* magic : {"hoga-feat ", "hoga-ckpt ", "hoga-frame"}) {
    if (sniff.substr(0, std::string_view(magic).size()) == magic) {
      return verify_header_crc_file(path, "", why);
    }
  }
  if (why) *why = "unknown format";
  return FileIntegrity::kUnrecognized;
}

}  // namespace hoga::storage
