#pragma once
// Background CRC scrubber (DESIGN.md §12).
//
// Checkpoints, feature-store shards, and ledger segments are written once
// and read much later — plenty of time for bit rot, truncation by a full
// disk, or an operator's stray edit to corrupt them silently. The scrubber
// walks the storage directories and runs verify_file_integrity on every
// recognized artifact, at a configurable byte-rate budget so a week-long
// training run is never starved of I/O by its own integrity checks.
//
// A corrupt file is counted, reported via the ambient observability
// ("storage.scrub_corrupt" counter, "storage.quarantine" ledger event) and
// — when quarantine is on — renamed to "<path>.quarantine" so consumers
// stop reading it. For feature-store shards, quarantine *is* the heal: the
// store treats a missing shard as a cache miss and recomputes the features
// (heal-by-recompute). For checkpoints and ledger segments it converts a
// silent wrong read into a loud, counted absence.
//
// Three driving modes, strictest to loosest coupling:
//   scrub_pass()        — one full synchronous sweep (tests, shutdown);
//   tick()              — verify files until the per-tick byte budget is
//                         spent; repeated ticks resume where the last one
//                         stopped and start a fresh pass when done;
//   start()/stop()      — a background thread calling tick() on an
//                         interval.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hoga::storage {

struct ScrubConfig {
  /// Directories to walk (recursively). Missing ones are skipped, not
  /// errors — a run may not have created its checkpoint dir yet.
  std::vector<std::string> directories;
  /// Bytes verified per tick(); 0 means a full pass per tick.
  std::size_t budget_bytes_per_tick = std::size_t{8} << 20;
  /// Rename corrupt files to "<path>.quarantine" (else just count them).
  bool quarantine = true;
};

struct ScrubStats {
  long long passes = 0;         // completed full sweeps
  long long files_scanned = 0;
  long long bytes_scanned = 0;
  long long clean = 0;
  long long corrupt = 0;        // integrity violations found
  long long quarantined = 0;    // corrupt files renamed aside
  long long unrecognized = 0;   // files the engine has no verifier for

  /// Stable "k=v k=v" rendering for tests and the soak report.
  std::string counts_signature() const;
};

class Scrubber {
 public:
  explicit Scrubber(ScrubConfig config);
  ~Scrubber();  // joins the background thread if running

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// One full synchronous sweep over every directory.
  void scrub_pass();

  /// Verifies queued files until the byte budget is spent; refills the
  /// queue (and bumps `passes`) when it drains. Returns the number of
  /// files verified this tick.
  std::size_t tick();

  /// Starts a background thread ticking every `interval_ms`. No-op when
  /// already running.
  void start(long long interval_ms);

  /// Stops and joins the background thread. Idempotent.
  void stop();

  ScrubStats stats() const;

 private:
  void refill_queue_locked();
  std::size_t verify_one_locked(const std::string& path);

  ScrubConfig config_;
  mutable std::mutex mu_;
  std::deque<std::string> pending_;
  ScrubStats stats_;
  std::thread worker_;
  std::condition_variable cv_;
  std::atomic<bool> running_{false};
};

}  // namespace hoga::storage
