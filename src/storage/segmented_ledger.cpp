#include "storage/segmented_ledger.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace hoga::storage {

namespace fs = std::filesystem;

namespace {

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

// chain_i = crc32(chain_{i-1} ":" crc_i); the seed chain is "00000000".
std::string chain_next(const std::string& prev, const std::string& seg_crc) {
  return crc_hex(util::crc32(prev + ":" + seg_crc));
}

std::string footer_line(long long events, const std::string& seg_crc,
                        const std::string& chain) {
  std::ostringstream os;
  os << "{\"type\":\"ledger.footer\",\"events\":" << events
     << ",\"crc32\":\"" << seg_crc << "\",\"chain\":\"" << chain << "\"}\n";
  return os.str();
}

// Parses "<prefix>.<digits>.seg"; returns the index or nullopt.
std::optional<std::uint64_t> parse_segment_index(const std::string& name,
                                                 const std::string& prefix) {
  const std::string head = prefix + ".";
  const std::string tail = ".seg";
  if (name.size() <= head.size() + tail.size()) return std::nullopt;
  if (name.compare(0, head.size(), head) != 0) return std::nullopt;
  if (name.compare(name.size() - tail.size(), tail.size(), tail) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(head.size(), name.size() - head.size() - tail.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t index = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    index = index * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return index;
}

std::vector<std::uint64_t> list_segment_indices(const std::string& dir,
                                                const std::string& prefix) {
  std::vector<std::uint64_t> indices;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (auto idx =
            parse_segment_index(entry.path().filename().string(), prefix)) {
      indices.push_back(*idx);
    }
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

struct SnapshotState {
  long long folded_events = 0;
  long long last_seq = -1;
  std::string chain = "00000000";
  std::vector<std::pair<std::string, long long>> by_type;
};

// Renders the snapshot accumulator as one framed JSON line. by_type is
// emitted sorted so snapshot bytes are deterministic.
std::string encode_snapshot(const SnapshotState& s, long long folded_segments) {
  std::ostringstream os;
  os << "{\"type\":\"ledger.snapshot\",\"folded_events\":" << s.folded_events
     << ",\"folded_segments\":" << folded_segments
     << ",\"last_seq\":" << s.last_seq << ",\"chain\":\"" << s.chain
     << "\",\"by_type\":{";
  bool first = true;
  for (const auto& [type, n] : s.by_type) {
    if (!first) os << ',';
    first = false;
    os << '"' << obs::detail::json_escape(type) << "\":" << n;
  }
  os << "}}\n";
  return os.str();
}

std::optional<SnapshotState> decode_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  const auto payload = decode_framed(os.str());
  if (!payload) return std::nullopt;
  std::string line = *payload;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  auto parsed = obs::detail::parse_json_line(line);
  if (!parsed) return std::nullopt;
  SnapshotState s;
  const auto* folded = parsed->find("folded_events");
  const auto* last_seq = parsed->find("last_seq");
  const auto* chain = parsed->find("chain");
  if (!folded || folded->has_object ||
      !std::holds_alternative<long long>(folded->scalar) || !last_seq ||
      last_seq->has_object ||
      !std::holds_alternative<long long>(last_seq->scalar) || !chain ||
      chain->has_object ||
      !std::holds_alternative<std::string>(chain->scalar)) {
    return std::nullopt;
  }
  s.folded_events = std::get<long long>(folded->scalar);
  s.last_seq = std::get<long long>(last_seq->scalar);
  s.chain = std::get<std::string>(chain->scalar);
  if (const auto* by_type = parsed->find("by_type");
      by_type && by_type->has_object) {
    for (const auto& [key, value] : by_type->object) {
      if (std::holds_alternative<long long>(value)) {
        s.by_type.emplace_back(key, std::get<long long>(value));
      }
    }
    std::sort(s.by_type.begin(), s.by_type.end());
  }
  return s;
}

// Re-wraps parsed event fields so format_ledger_line reproduces the
// original line bytes (scalar values round-trip exactly).
std::vector<obs::LedgerField> to_fields(
    const std::vector<std::pair<std::string, obs::detail::JsonScalar>>& in) {
  std::vector<obs::LedgerField> out;
  out.reserve(in.size());
  for (const auto& [k, v] : in) {
    obs::LedgerField f(k, 0LL);
    f.value = v;
    out.push_back(std::move(f));
  }
  return out;
}

void merge_by_type(std::vector<std::pair<std::string, long long>>& into,
                   const std::string& type, long long n) {
  for (auto& [k, v] : into) {
    if (k == type) {
      v += n;
      return;
    }
  }
  into.emplace_back(type, n);
}

}  // namespace

SegmentedLedger::SegmentedLedger(SegmentedLedgerConfig config)
    : config_(std::move(config)),
      clock_(config_.clock ? config_.clock : &obs::SteadyClock::instance()),
      seg_crc_state_(util::crc32_init()),
      chain_("00000000") {
  HOGA_CHECK(!config_.directory.empty(),
             "SegmentedLedger: directory must be set");
  fs::create_directories(config_.directory);

  // --- Recovery: adopt whatever a previous incarnation (possibly one that
  // crashed mid-roll or mid-compaction) left behind.
  if (auto snap = decode_snapshot(snapshot_path())) {
    have_snapshot_ = true;
    snap_events_ = snap->folded_events;
    snap_last_seq_ = snap->last_seq;
    snap_by_type_ = snap->by_type;
    chain_ = snap->chain;
    seq_ = snap->last_seq + 1;
    stats_.folded_events = snap->folded_events;
  }

  std::uint64_t max_index = 0;
  for (std::uint64_t idx : list_segment_indices(config_.directory,
                                                config_.prefix)) {
    max_index = std::max(max_index, idx);
    const std::string path = segment_path(idx);
    auto read = obs::RunLedger::read(path);
    // A segment fully covered by the snapshot is residue of a crash between
    // snapshot write and segment deletion — finish the deletion now.
    if (have_snapshot_ && !read.events.empty() &&
        read.events.back().seq <= snap_last_seq_) {
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    if (have_snapshot_ && read.events.empty() && read.footer_present) {
      // Footered but empty: nothing to keep either way.
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    for (const auto& e : read.events) {
      seq_ = std::max(seq_, e.seq + 1);
      // Seed the live per-type counts with the events this segment keeps
      // (a partial snapshot overlap contributes only the uncovered tail).
      if (e.seq > snap_last_seq_) merge_by_type(live_by_type_, e.type, 1);
    }
    // A footer also has to link correctly from the current chain tail: when
    // an earlier segment was repaired (its chain link recomputed), every
    // later stored footer still chains over the gap and must be re-chained
    // too, or the closed set would never verify again.
    const bool footer_ok =
        read.footer_present && read.footer_valid &&
        !read.footer_chain.empty() &&
        (read.footer_crc32.empty() ||
         read.footer_chain == chain_next(chain_, read.footer_crc32));
    if (!footer_ok) {
      // Torn (killed before the footer landed), legacy, or chain-stale
      // segment: rewrite the complete lines with a freshly computed,
      // chained footer so the closed set is uniformly verifiable again.
      std::uint32_t crc = util::crc32_init();
      std::string body;
      for (const auto& e : read.events) {
        const std::string line = obs::format_ledger_line(
            e.seq, e.ts_ns, e.type, to_fields(e.fields));
        crc = util::crc32_update(crc, line);
        body += line;
      }
      const std::string seg_crc = crc_hex(util::crc32_final(crc));
      chain_ = chain_next(chain_, seg_crc);
      body += footer_line(static_cast<long long>(read.events.size()), seg_crc,
                          chain_);
      atomic_write_durable(path, body);
      ++stats_.repaired_segments;
    } else {
      chain_ = read.footer_chain;
    }
    closed_.push_back(idx);
  }
  active_index_ = max_index + 1;
  open_active_locked();
  // Recovery may have left more closed segments than the cap allows (e.g.
  // a crash right before compaction); fold now.
  std::lock_guard<std::mutex> lock(mu_);
  compact_locked();
}

SegmentedLedger::~SegmentedLedger() {
  if (crashed_) return;  // a dead process closes nothing
  try {
    close();
  } catch (const fault::SimulatedCrash&) {
    crashed_ = true;
  } catch (...) {
  }
}

std::string SegmentedLedger::segment_path(std::uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(index));
  return config_.directory + "/" + config_.prefix + "." + buf + ".seg";
}

std::string SegmentedLedger::snapshot_path() const {
  return config_.directory + "/" + config_.prefix + ".snap";
}

void SegmentedLedger::open_active_locked() {
  active_ = std::make_unique<AppendFile>(segment_path(active_index_));
  active_opened_ns_ = clock_->now_ns();
  seg_events_ = 0;
  seg_crc_state_ = util::crc32_init();
}

void SegmentedLedger::event(const std::string& type,
                            std::vector<obs::LedgerField> fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_ || closed_ledger_) return;
  try {
    const bool over_size =
        active_ && active_->bytes_written() >= config_.max_segment_bytes;
    const bool over_age =
        active_ && config_.max_segment_age_ns > 0 &&
        clock_->now_ns() - active_opened_ns_ >= config_.max_segment_age_ns;
    if ((over_size || over_age) && seg_events_ > 0) {
      roll_locked();
      compact_locked();
    }
    const std::string line =
        obs::format_ledger_line(seq_, clock_->now_ns(), type, fields);
    append_line_locked(line);
    merge_by_type(live_by_type_, type, 1);
    ++seq_;
    ++stats_.events;
  } catch (const fault::SimulatedCrash&) {
    crashed_ = true;  // freeze: disk now looks like a dead process left it
    throw;
  } catch (const std::exception&) {
    // Real or injected ENOSPC: drop the event, keep the service alive.
    ++stats_.append_errors;
    obs::count("storage.ledger_append_errors");
  }
}

void SegmentedLedger::append_line_locked(const std::string& line) {
  active_->append(line);
  seg_crc_state_ = util::crc32_update(seg_crc_state_, line);
  ++seg_events_;
}

void SegmentedLedger::write_footer_locked() {
  const std::string seg_crc = crc_hex(util::crc32_final(seg_crc_state_));
  chain_ = chain_next(chain_, seg_crc);
  active_->append(footer_line(seg_events_, seg_crc, chain_));
  active_->sync();
}

void SegmentedLedger::roll_locked() {
  // Capture the predecessor's footer inputs before open_active_locked
  // resets them for the successor. The successor opens FIRST, then the
  // predecessor gets its footer: a crash between the two (kill-point
  // "ledger.rolled") leaves a footer-less closed segment whose complete
  // lines are recoverable and which the next open re-footers — never a
  // footered segment with no successor to carry new events.
  auto old = std::move(active_);
  const std::uint64_t old_index = active_index_;
  const long long old_events = seg_events_;
  const std::uint32_t old_crc = seg_crc_state_;
  ++active_index_;
  open_active_locked();
  fault::storage_kill_point("ledger.rolled");
  const std::string seg_crc = crc_hex(util::crc32_final(old_crc));
  const std::string next_chain = chain_next(chain_, seg_crc);
  old->append(footer_line(old_events, seg_crc, next_chain));
  old->sync();
  old->close();
  chain_ = next_chain;
  closed_.push_back(old_index);
  ++stats_.rolls;
  obs::count("storage.ledger_rolls");
  fault::storage_kill_point("ledger.footer_written");
}

void SegmentedLedger::compact_locked() {
  if (config_.max_closed_segments == 0) return;
  if (closed_.size() <= config_.max_closed_segments) return;
  fault::storage_kill_point("ledger.compact_begin");
  const std::size_t fold_n = closed_.size() - config_.max_closed_segments;

  SnapshotState s;
  s.folded_events = snap_events_;
  s.last_seq = snap_last_seq_;
  s.by_type = snap_by_type_;
  long long folded_segments = 0;
  for (std::size_t i = 0; i < fold_n; ++i) {
    auto read = obs::RunLedger::read(segment_path(closed_[i]));
    for (const auto& e : read.events) {
      ++s.folded_events;
      s.last_seq = std::max(s.last_seq, e.seq);
      merge_by_type(s.by_type, e.type, 1);
      // The event moves from the live tally to the snapshot accumulator;
      // counts_by_type() (= snap + live) must be conserved by compaction.
      merge_by_type(live_by_type_, e.type, -1);
    }
    // The snapshot chain tail is the chain of the LAST folded segment, so
    // verification of the remaining closed segments picks up from there.
    if (!read.footer_chain.empty()) s.chain = read.footer_chain;
    ++folded_segments;
  }
  std::sort(s.by_type.begin(), s.by_type.end());

  atomic_write_durable(snapshot_path(),
                       encode_framed(encode_snapshot(s, folded_segments)));
  fault::storage_kill_point("ledger.snapshot_written");

  for (std::size_t i = 0; i < fold_n; ++i) {
    std::error_code ec;
    fs::remove(segment_path(closed_[i]), ec);
  }
  fault::storage_kill_point("ledger.segments_deleted");

  closed_.erase(closed_.begin(),
                closed_.begin() + static_cast<std::ptrdiff_t>(fold_n));
  have_snapshot_ = true;
  snap_events_ = s.folded_events;
  snap_last_seq_ = s.last_seq;
  snap_by_type_ = s.by_type;
  stats_.folded_events = s.folded_events;
  ++stats_.compactions;
  obs::count("storage.ledger_compactions");
}

void SegmentedLedger::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_ || closed_ledger_) return;
  closed_ledger_ = true;
  if (!active_) return;
  try {
    write_footer_locked();
    active_->close();
  } catch (const fault::SimulatedCrash&) {
    crashed_ = true;
    throw;
  }
}

SegmentedLedger::Stats SegmentedLedger::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SegmentedLedger::file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = closed_.size();
  if (active_) ++n;
  if (have_snapshot_) ++n;
  return n;
}

long long SegmentedLedger::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::vector<std::pair<std::string, long long>>
SegmentedLedger::counts_by_type() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto out = snap_by_type_;
  for (const auto& [type, n] : live_by_type_) merge_by_type(out, type, n);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const auto& kv) { return kv.second == 0; }),
            out.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, long long>>
SegmentedLedger::ReadResult::counts_by_type() const {
  auto out = folded_by_type;
  for (const auto& e : events) merge_by_type(out, e.type, 1);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const auto& kv) { return kv.second == 0; }),
            out.end());
  std::sort(out.begin(), out.end());
  return out;
}

SegmentedLedger::ReadResult SegmentedLedger::read_dir(
    const std::string& directory, const std::string& prefix) {
  ReadResult result;
  long long cover_seq = -1;
  std::string chain = "00000000";
  if (auto snap =
          decode_snapshot(directory + "/" + prefix + ".snap")) {
    result.snapshot_present = true;
    result.folded_events = snap->folded_events;
    result.folded_by_type = snap->by_type;
    cover_seq = snap->last_seq;
    chain = snap->chain;
  }
  for (std::uint64_t idx : list_segment_indices(directory, prefix)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%06llu",
                  static_cast<unsigned long long>(idx));
    const std::string path =
        directory + "/" + prefix + "." + std::string(buf) + ".seg";
    auto read = obs::RunLedger::read(path);
    result.skipped_lines += read.skipped_lines;
    if (!read.events.empty() && read.events.back().seq <= cover_seq) {
      // Fully folded into the snapshot: residue of a crash mid-compaction.
      // Skip it — its chain link was superseded by the snapshot's tail.
      continue;
    }
    ++result.segments;
    if (read.footer_present && read.footer_valid &&
        !read.footer_chain.empty()) {
      if (!read.footer_crc32.empty() &&
          read.footer_chain != chain_next(chain, read.footer_crc32)) {
        result.chain_valid = false;
      }
      chain = read.footer_chain;
    } else if (read.footer_present && !read.footer_valid) {
      result.chain_valid = false;
      ++result.torn_segments;
    } else if (!read.footer_present) {
      // Active segment, or a closed one killed before its footer. Its
      // complete lines still count; the chain resumes from the next footer.
      ++result.torn_segments;
    }
    for (auto& e : read.events) {
      if (e.seq <= cover_seq) continue;  // partial overlap with the snapshot
      result.events.push_back(std::move(e));
    }
  }
  std::sort(result.events.begin(), result.events.end(),
            [](const obs::LedgerEvent& a, const obs::LedgerEvent& b) {
              return a.seq < b.seq;
            });
  return result;
}

}  // namespace hoga::storage
