#pragma once
// hoga::storage — the unified crash-safe storage engine (DESIGN.md §12).
//
// Three persistence consumers grew their own atomic-write and CRC logic:
// feature-store shards (§9), the run ledger (§10), and hoga-ckpt
// checkpoints (§7). This subsystem puts one audited file primitive behind
// all of them and makes its failure behaviour *testable*:
//
//   - atomic_write_durable: write temp → flush → fsync(temp) → rename →
//     fsync(parent dir). Every boundary is a named fault kill-point
//     (fault::storage_kill_point), so the soak harness (bench_storage) can
//     sweep a simulated crash across every instant of the sequence and
//     assert the destination always holds a complete old or complete new
//     file — never a torn one. Payload writes additionally honour injected
//     ENOSPC errors (clean rollback: temp removed, ordinary exception) and
//     torn writes (prefix written, then SimulatedCrash).
//
//   - AppendFile: the durable append handle behind ledger segments — one
//     write + flush per record, with the same ENOSPC/torn-write injection,
//     so a crash leaves at most one torn final record (which readers
//     already tolerate and count).
//
//   - CRC-framed records: "hoga-frame v1 <payload bytes> <crc32 hex>\n" +
//     payload, the same header convention as hoga-feat and hoga-ckpt.
//     encode_framed/decode_framed are used by ledger compaction snapshots
//     and by anything that needs a small integrity-checked blob without
//     inventing another format.
//
//   - verify_file_integrity: one check that understands all four on-disk
//     artifact families (hoga-feat shards, hoga-ckpt checkpoints,
//     hoga-frame blobs, ledger .seg segments). The scrubber
//     (storage/scrubber.hpp) walks directories with it.
//
// Kill-point names, in the order atomic_write_durable crosses them:
//   storage.temp_written  — temp file holds the full payload, not yet
//                           synced; destination untouched
//   storage.temp_synced   — temp durable; destination untouched
//   storage.renamed       — destination points at the new content, but the
//                           rename itself may not survive power loss
//   storage.dir_synced    — everything durable; caller not yet notified
// A crash at any of them must recover to "old complete file" or "new
// complete file"; the sweep in bench_storage asserts exactly that.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

namespace hoga::storage {

/// Crash-safe, durable replacement of `path` (see file comment for the
/// boundary sequence). Throws std::runtime_error on real or injected I/O
/// errors after removing the temp file; throws fault::SimulatedCrash from
/// kill-points and torn writes, leaving the filesystem exactly as a real
/// crash would. Counts "storage.writes" / "storage.write_errors" on the
/// ambient metrics.
void atomic_write_durable(const std::string& path, std::string_view content);

/// Durable append handle: open once, append records, close. Each append is
/// one fwrite + fflush (a crash tears at most the final record). sync()
/// additionally fsyncs — callers decide the durability/throughput tradeoff
/// per record class (the segmented ledger syncs on segment close, not per
/// event).
class AppendFile {
 public:
  /// Opens `path` for appending, creating it if missing. Throws when the
  /// file cannot be opened.
  explicit AppendFile(const std::string& path);
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Appends `bytes` with ENOSPC/torn-write fault injection. A torn append
  /// writes a prefix, flushes it, and dies via SimulatedCrash.
  void append(std::string_view bytes);

  /// fsyncs the file (no-op on platforms without fsync).
  void sync();

  /// Bytes appended through this handle (not the on-disk size — reopening
  /// an existing file starts from the current size).
  std::size_t bytes_written() const { return bytes_written_; }

  const std::string& path() const { return path_; }

  /// Flushes and closes; idempotent. Further appends are errors.
  void close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_written_ = 0;
};

/// Wraps `payload` in a CRC frame:
/// "hoga-frame v1 <payload bytes> <crc32 hex>\n" + payload.
std::string encode_framed(std::string_view payload);

/// Parses and verifies a frame; returns the payload, or nullopt (never
/// throws) on a bad magic/version/size/CRC. `why` receives the reason.
std::optional<std::string> decode_framed(std::string_view bytes,
                                         std::string* why = nullptr);

/// What verify_file_integrity concluded about one file.
enum class FileIntegrity {
  kOk,          // recognized format, all integrity checks pass
  kCorrupt,     // recognized format, CRC/size/structure violated
  kUnrecognized // not one of the storage engine's artifact families
};
const char* integrity_name(FileIntegrity v);

/// Verifies one on-disk artifact:
///   - "hoga-feat"/"hoga-ckpt"/"hoga-frame" header files: payload size and
///     CRC32 against the header (streamed, so large checkpoints do not
///     round-trip through a second copy);
///   - ledger segments (first byte '{', or a ".seg" suffix): every line
///     parses as a flat JSON object; a footer, when present, must carry the
///     matching event count and CRC. A footer-less segment with parseable
///     lines is OK (an in-flight or crash-torn active segment) unless its
///     final line is garbage mid-file.
/// Unreadable files are kCorrupt; unknown formats are kUnrecognized.
/// `why` (optional) receives the failure reason.
FileIntegrity verify_file_integrity(const std::string& path,
                                    std::string* why = nullptr);

}  // namespace hoga::storage
