#pragma once
// hoga::batch — coalescing batch scheduler for the serving runtime
// (DESIGN.md §14).
//
// HOGA's hop-wise decoupling (Eq. 3) makes every node's forward pass
// independent of every other node's, so concurrent inference requests can
// be merged into ONE batched forward by concatenating their hop-feature
// rows and scattering the head outputs back — the same property the paper
// exploits for scalable training transfers directly to serving. This
// module is the piece that decides *when* to merge and *what* to merge:
//
//   - requests are accumulated into a pending FIFO per priority lane
//     (kInteractive drains before kBulk whenever both are runnable, so an
//     interactive request is never stuck behind a full bulk batch);
//   - a batch closes when (a) it reaches the row cap, (b) the oldest
//     request's deadline slack drops below the EWMA-estimated forward
//     time, or (c) a max-linger timer fires — and early when the next
//     request's hop shape is not concat-compatible with the open batch
//     (validate::check_concat_compatible);
//   - per-tenant admission quotas are token buckets in rows/sec: no one
//     tenant can monopolize batch capacity, and a rejected tenant gets a
//     retry hint equal to its bucket's actual refill time;
//   - lane-depth backpressure: when a lane's pending rows exceed the cap,
//     the reject's retry_after is the lane's estimated drain time
//     (queued batches × EWMA forward time), not a flat constant.
//
// Bit-exactness: the scheduler never changes arithmetic — it only chooses
// row order within one forward. Every kernel the serving forward touches
// (GEMM, layer norm, softmax, the attention ops) processes rows
// independently with a per-element accumulation order that does not depend
// on which other rows share the call (DESIGN.md §11), so the scattered
// slice of a coalesced forward is byte-identical to the request's own
// sequential forward. tests/test_batch.cpp asserts this for arbitrary
// arrival interleavings.
//
// Determinism: every timing decision (deadline slack, linger, token-bucket
// refill, the EWMA samples) reads the configured obs::Clock. With
// `background = false` the scheduler has no thread of its own — tests
// drive it with pump() under an obs::FakeClock and get byte-identical
// stats snapshots, spans, and signatures for a scripted schedule. The
// serving runtime uses `background = true`, where a single closer/executor
// thread applies the same close logic on real time.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace hoga::batch {

/// Priority lanes, highest priority first. Whenever both lanes have a
/// runnable batch, kInteractive executes before kBulk.
enum class Lane : int { kInteractive = 0, kBulk = 1 };
inline constexpr int kNumLanes = 2;
const char* lane_name(Lane lane);

/// Why a batch was closed (the close-reason counters/histogram key).
enum class CloseReason : int {
  kRowCap = 0,   // pending rows reached max_batch_rows
  kDeadline,     // oldest request's slack fell below the EWMA forward time
  kLinger,       // oldest request waited max_linger_ms
  kShape,        // next request not concat-compatible with the open batch
  kFlush,        // explicit flush() / shutdown drain
  kEager,        // executor idle + lane past the work-conserving threshold
};
inline constexpr int kNumCloseReasons = 6;
const char* close_reason_name(CloseReason reason);

struct BatchConfig {
  std::size_t max_batch_rows = 64;  // close (a): rows per coalesced forward
  double max_linger_ms = 2.0;       // close (c): oldest-request wait bound
  /// EWMA smoothing for the forward-time estimate that drives close (b)
  /// and the drain-time retry hints.
  double ewma_alpha = 0.25;
  double initial_forward_ms = 1.0;  // EWMA prior before the first sample
  /// Work-conserving close: when the background executor is otherwise idle
  /// and a lane holds at least this fraction of max_batch_rows, close it
  /// immediately instead of waiting for linger/deadline — batching exists
  /// to fill the executor's time, not to delay work when capacity is free.
  /// A half-full batch already amortizes most per-forward overhead; below
  /// the threshold the linger/deadline heuristics still gather more rows.
  /// 0 disables (strict-trigger mode). Background mode only.
  double eager_close_fraction = 0.5;
  /// Admission bound per lane, in pending rows; at or past it submits are
  /// rejected with a drain-time retry hint.
  std::size_t max_lane_rows = 4096;
  /// Token-bucket tenant quotas in rows/sec; 0 disables quotas entirely
  /// (every tenant_id admitted). Requests with tenant_id 0 are exempt.
  double tenant_rows_per_sec = 0;
  double tenant_burst_rows = 0;  // bucket capacity; 0 = tenant_rows_per_sec
  /// true: the scheduler owns a closer/executor thread (serving mode).
  /// false: no thread; the owner calls pump()/flush() — the deterministic
  /// mode the FakeClock tests script.
  bool background = true;
  /// Timing source for every scheduling decision; null = SteadyClock.
  /// Background mode requires a clock whose readings track real time.
  obs::Clock* clock = nullptr;
  /// Optional sinks: "batch.*" counters/histograms and one "batch.execute"
  /// span per coalesced forward. A private registry backs stats() when
  /// `metrics` is null, so counts work either way.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Admission verdict for one submit. When admitted, `output` resolves to
/// this request's rows of the coalesced forward ([b, out_dim]); it carries
/// the forward's exception if the batch failed. When rejected, `output` is
/// invalid and retry_after_ms holds the backpressure hint.
struct SubmitResult {
  bool admitted = false;
  std::string reject_reason;  // "tenant quota exceeded" / "lane full"
  double retry_after_ms = 0;
  std::future<Tensor> output;
};

/// Deterministic outcome counters (mirrored in the obs registry under
/// "batch.*" names; stats() reconstructs the struct from the handles).
struct BatchStats {
  long long submitted = 0;       // requests admitted into a lane
  long long rejected_quota = 0;  // token-bucket rejections
  long long rejected_depth = 0;  // lane-full rejections
  long long batches = 0;         // coalesced forwards executed
  long long rows = 0;            // total rows across executed batches
  long long failed_batches = 0;  // forwards that threw
  long long closed_row_cap = 0;
  long long closed_deadline = 0;
  long long closed_linger = 0;
  long long closed_shape = 0;
  long long closed_flush = 0;
  long long closed_eager = 0;
  /// The deterministic part, e.g. "submitted=12 ... closed_flush=1".
  std::string counts_signature() const;
};

class BatchScheduler {
 public:
  /// `forward` maps a concatenated hop batch [ΣB, k+1, d0] to head outputs
  /// [ΣB, out_dim]. It runs on the executor thread (background mode) or
  /// inside pump()/flush(); one call at a time, never concurrently.
  using Forward = std::function<Tensor(const Tensor&)>;

  BatchScheduler(BatchConfig config, Forward forward);
  /// Drains: every pending request is executed (close reason kFlush) before
  /// the executor joins — no admitted future is ever abandoned.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Admits `input` ([b, k+1, d0]) into `lane`. `deadline_ms` is this
  /// request's slack from now; it drives close (b). Thread-safe.
  SubmitResult submit(const Tensor& input, Lane lane, std::uint64_t tenant_id,
                      double deadline_ms);

  /// Closes and executes every batch that is due at the current clock
  /// reading, highest-priority lane first; returns how many ran. The
  /// manual-mode pacing hook (background mode pumps itself).
  int pump();

  /// Closes and executes everything pending regardless of due times
  /// (close reason kFlush); returns how many batches ran.
  int flush();

  BatchStats stats() const;

  /// Current EWMA estimate of one coalesced forward, in ms. Seeds at
  /// config.initial_forward_ms; the serving runtime scales its overload
  /// retry hints by it.
  double ewma_forward_ms() const;

  /// Pending rows in `lane` (admission depth the backpressure compares
  /// against max_lane_rows).
  std::size_t lane_rows(Lane lane) const;

  const BatchConfig& config() const { return config_; }

 private:
  struct Pending {
    Tensor input;
    std::int64_t rows = 0;
    std::uint64_t enqueue_ns = 0;
    std::uint64_t deadline_ns = 0;  // absolute, scheduler-clock
    std::promise<Tensor> promise;
  };
  struct LaneState {
    std::deque<Pending> fifo;
    std::int64_t pending_rows = 0;
  };
  struct Closed {
    Lane lane = Lane::kInteractive;
    CloseReason reason = CloseReason::kFlush;
    std::vector<Pending> requests;
    std::int64_t rows = 0;
  };
  struct TokenBucket {
    bool initialized = false;  // first sight starts the bucket full
    double tokens = 0;
    std::uint64_t last_refill_ns = 0;
  };

  /// Close trigger for `lane` at time `now`; false when nothing is due.
  bool lane_due(const LaneState& lane, std::uint64_t now_ns,
                CloseReason* reason) const;
  /// Earliest future instant at which some lane becomes due (UINT64_MAX
  /// when all lanes are empty).
  std::uint64_t earliest_due_ns() const;
  /// Pops the next runnable batch (priority order) if one is due; empty
  /// optional otherwise. Caller holds mu_.
  bool pop_due(std::uint64_t now_ns, Closed* out);
  /// Pops the longest concat-compatible prefix of `lane` within the row
  /// cap. Caller holds mu_.
  Closed pop_batch(Lane which, CloseReason reason);
  /// Runs one closed batch: concat → forward → scatter. No lock held.
  void execute(Closed closed);
  double drain_estimate_ms(const LaneState& lane) const;
  void executor_loop();

  BatchConfig config_;
  Forward forward_;
  obs::Clock* clock_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct Counters {
    obs::Counter submitted, rejected_quota, rejected_depth, batches, rows,
        failed_batches;
    obs::Counter closed[kNumCloseReasons];  // indexed by CloseReason
    obs::Histogram occupancy_rows;     // rows per executed batch
    obs::Histogram requests_per_batch; // coalesced requests per batch
    obs::Histogram lane_rows[kNumLanes];  // lane depth sampled per admit
  } c_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  LaneState lanes_[kNumLanes];
  std::unordered_map<std::uint64_t, TokenBucket> buckets_;
  double ewma_forward_ms_ = 0;
  bool stopping_ = false;
  std::thread executor_;  // background mode only
};

}  // namespace hoga::batch
