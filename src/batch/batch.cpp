#include "batch/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "validate/validate.hpp"

namespace hoga::batch {
namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

std::uint64_t ms_to_ns(double ms) {
  if (ms <= 0) return 0;
  return static_cast<std::uint64_t>(ms * 1e6);
}

}  // namespace

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kInteractive: return "interactive";
    case Lane::kBulk: return "bulk";
  }
  return "unknown";
}

const char* close_reason_name(CloseReason reason) {
  switch (reason) {
    case CloseReason::kRowCap: return "row_cap";
    case CloseReason::kDeadline: return "deadline";
    case CloseReason::kLinger: return "linger";
    case CloseReason::kShape: return "shape";
    case CloseReason::kFlush: return "flush";
    case CloseReason::kEager: return "eager";
  }
  return "unknown";
}

std::string BatchStats::counts_signature() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " rejected_quota=" << rejected_quota
     << " rejected_depth=" << rejected_depth << " batches=" << batches
     << " rows=" << rows << " failed_batches=" << failed_batches
     << " closed_row_cap=" << closed_row_cap
     << " closed_deadline=" << closed_deadline
     << " closed_linger=" << closed_linger << " closed_shape=" << closed_shape
     << " closed_flush=" << closed_flush << " closed_eager=" << closed_eager;
  return os.str();
}

BatchScheduler::BatchScheduler(BatchConfig config, Forward forward)
    : config_(config), forward_(std::move(forward)) {
  HOGA_CHECK(config_.max_batch_rows > 0,
             "BatchScheduler: max_batch_rows must be > 0");
  HOGA_CHECK(config_.ewma_alpha > 0 && config_.ewma_alpha <= 1,
             "BatchScheduler: ewma_alpha must be in (0, 1]");
  HOGA_CHECK(forward_ != nullptr, "BatchScheduler: forward must be set");
  clock_ = config_.clock ? config_.clock : &obs::SteadyClock::instance();
  ewma_forward_ms_ = config_.initial_forward_ms;

  if (config_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(true);
  }
  metrics_ = config_.metrics ? config_.metrics : owned_metrics_.get();
  c_.submitted = metrics_->counter("batch.submitted");
  c_.rejected_quota = metrics_->counter("batch.rejected_quota");
  c_.rejected_depth = metrics_->counter("batch.rejected_depth");
  c_.batches = metrics_->counter("batch.batches");
  c_.rows = metrics_->counter("batch.rows");
  c_.failed_batches = metrics_->counter("batch.failed_batches");
  for (int r = 0; r < kNumCloseReasons; ++r) {
    c_.closed[r] = metrics_->counter(
        std::string("batch.closed.") +
        close_reason_name(static_cast<CloseReason>(r)));
  }
  c_.occupancy_rows =
      metrics_->histogram("batch.occupancy_rows", obs::row_count_bounds());
  c_.requests_per_batch =
      metrics_->histogram("batch.requests_per_batch", obs::row_count_bounds());
  for (int l = 0; l < kNumLanes; ++l) {
    c_.lane_rows[l] = metrics_->histogram(
        std::string("batch.lane_rows.") + lane_name(static_cast<Lane>(l)),
        obs::row_count_bounds());
  }

  if (config_.background) {
    executor_ = std::thread([this] { executor_loop(); });
  }
}

BatchScheduler::~BatchScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (executor_.joinable()) executor_.join();
  // Anything still pending (manual mode, or admitted after the executor's
  // final drain began) runs now so no admitted future is abandoned.
  flush();
}

SubmitResult BatchScheduler::submit(const Tensor& input, Lane lane,
                                    std::uint64_t tenant_id,
                                    double deadline_ms) {
  HOGA_CHECK(input.defined() && input.dim() == 3,
             "BatchScheduler::submit: input must be a [B, k+1, d0] batch");
  const std::int64_t rows = input.size(0);
  SubmitResult result;
  Closed due;
  bool run_due = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t now = clock_->now_ns();
    LaneState& state = lanes_[static_cast<int>(lane)];

    // Tenant token bucket (rows/sec). Tenant 0 and rate 0 bypass quotas.
    if (config_.tenant_rows_per_sec > 0 && tenant_id != 0) {
      const double burst = config_.tenant_burst_rows > 0
                               ? config_.tenant_burst_rows
                               : config_.tenant_rows_per_sec;
      TokenBucket& bucket = buckets_[tenant_id];
      if (!bucket.initialized) {
        bucket.initialized = true;
        bucket.tokens = burst;
      } else {
        const double elapsed_s =
            static_cast<double>(now - bucket.last_refill_ns) / 1e9;
        bucket.tokens = std::min(
            burst, bucket.tokens + elapsed_s * config_.tenant_rows_per_sec);
      }
      bucket.last_refill_ns = now;
      if (bucket.tokens < static_cast<double>(rows)) {
        c_.rejected_quota.inc();
        result.reject_reason = "tenant quota exceeded";
        result.retry_after_ms = (static_cast<double>(rows) - bucket.tokens) /
                                config_.tenant_rows_per_sec * 1000.0;
        return result;
      }
      bucket.tokens -= static_cast<double>(rows);
    }

    // Lane-depth backpressure: retry hint = the lane's estimated drain
    // time, so clients back off for as long as the backlog really needs.
    if (static_cast<std::size_t>(state.pending_rows) >= config_.max_lane_rows) {
      c_.rejected_depth.inc();
      result.reject_reason = "lane full";
      result.retry_after_ms = drain_estimate_ms(state);
      return result;
    }

    Pending pending;
    pending.input = input;
    pending.rows = rows;
    pending.enqueue_ns = now;
    pending.deadline_ns = now + ms_to_ns(deadline_ms);
    result.output = pending.promise.get_future();
    state.fifo.push_back(std::move(pending));
    state.pending_rows += rows;
    c_.submitted.inc();
    c_.lane_rows[static_cast<int>(lane)].record(
        static_cast<double>(state.pending_rows));
    result.admitted = true;

    if (config_.background) {
      cv_.notify_one();
    } else if (static_cast<std::size_t>(state.pending_rows) >=
               config_.max_batch_rows) {
      // Manual mode still honors close (a) inline: a cap-full batch must
      // not wait for the next pump() — that is what bounds batch size.
      run_due = pop_due(clock_->now_ns(), &due);
    }
  }
  if (run_due) execute(std::move(due));
  return result;
}

bool BatchScheduler::lane_due(const LaneState& lane, std::uint64_t now_ns,
                              CloseReason* reason) const {
  if (lane.fifo.empty()) return false;
  if (static_cast<std::size_t>(lane.pending_rows) >= config_.max_batch_rows) {
    *reason = CloseReason::kRowCap;
    return true;
  }
  const Pending& oldest = lane.fifo.front();
  const std::int64_t slack_ns =
      static_cast<std::int64_t>(oldest.deadline_ns) -
      static_cast<std::int64_t>(now_ns);
  if (slack_ns <= static_cast<std::int64_t>(ms_to_ns(ewma_forward_ms_))) {
    *reason = CloseReason::kDeadline;
    return true;
  }
  if (now_ns - oldest.enqueue_ns >= ms_to_ns(config_.max_linger_ms)) {
    *reason = CloseReason::kLinger;
    return true;
  }
  return false;
}

std::uint64_t BatchScheduler::earliest_due_ns() const {
  std::uint64_t due = kNever;
  for (const LaneState& lane : lanes_) {
    if (lane.fifo.empty()) continue;
    const Pending& oldest = lane.fifo.front();
    const std::uint64_t linger_at =
        oldest.enqueue_ns + ms_to_ns(config_.max_linger_ms);
    const std::uint64_t ewma_ns = ms_to_ns(ewma_forward_ms_);
    const std::uint64_t deadline_at =
        oldest.deadline_ns > ewma_ns ? oldest.deadline_ns - ewma_ns : 0;
    due = std::min({due, linger_at, deadline_at});
  }
  return due;
}

bool BatchScheduler::pop_due(std::uint64_t now_ns, Closed* out) {
  for (int l = 0; l < kNumLanes; ++l) {
    CloseReason reason;
    if (lane_due(lanes_[l], now_ns, &reason)) {
      *out = pop_batch(static_cast<Lane>(l), reason);
      return true;
    }
  }
  return false;
}

BatchScheduler::Closed BatchScheduler::pop_batch(Lane which,
                                                 CloseReason reason) {
  LaneState& lane = lanes_[static_cast<int>(which)];
  Closed closed;
  closed.lane = which;
  closed.reason = reason;
  while (!lane.fifo.empty()) {
    Pending& next = lane.fifo.front();
    if (!closed.requests.empty()) {
      if (static_cast<std::size_t>(closed.rows + next.rows) >
          config_.max_batch_rows) {
        break;
      }
      if (validate::check_concat_compatible(closed.requests.front().input,
                                            next.input)) {
        // Shape fault line: the open batch closes here; the incompatible
        // request leads the next one.
        if (closed.reason != CloseReason::kRowCap) {
          closed.reason = CloseReason::kShape;
        }
        break;
      }
    }
    closed.rows += next.rows;
    closed.requests.push_back(std::move(next));
    lane.fifo.pop_front();
  }
  lane.pending_rows -= closed.rows;
  return closed;
}

void BatchScheduler::execute(Closed closed) {
  if (closed.requests.empty()) return;
  const Tensor& head = closed.requests.front().input;
  const std::int64_t hops = head.size(1);
  const std::int64_t dim = head.size(2);

  obs::Span span;
  if (config_.tracer) span = config_.tracer->span("batch.execute");
  if (span.active()) {
    span.set_attr("lane", lane_name(closed.lane));
    span.set_attr("reason", close_reason_name(closed.reason));
    span.set_attr("rows", std::to_string(closed.rows));
    span.set_attr("requests", std::to_string(closed.requests.size()));
  }

  // Concatenate rows — requests in one batch are concat-compatible by
  // construction (pop_batch cuts at the first shape fault line).
  Tensor input({closed.rows, hops, dim});
  std::int64_t row = 0;
  for (const Pending& p : closed.requests) {
    std::memcpy(input.data() + row * hops * dim, p.input.data(),
                static_cast<std::size_t>(p.rows * hops * dim) * sizeof(float));
    row += p.rows;
  }

  const std::uint64_t t0 = clock_->now_ns();
  Tensor output;
  bool ok = true;
  std::exception_ptr error;
  try {
    output = forward_(input);
  } catch (...) {
    ok = false;
    error = std::current_exception();
  }
  const double forward_ms =
      static_cast<double>(clock_->now_ns() - t0) / 1e6;

  c_.batches.inc();
  c_.rows.inc(closed.rows);
  c_.closed[static_cast<int>(closed.reason)].inc();
  c_.occupancy_rows.record(static_cast<double>(closed.rows));
  c_.requests_per_batch.record(static_cast<double>(closed.requests.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ewma_forward_ms_ = config_.ewma_alpha * forward_ms +
                       (1 - config_.ewma_alpha) * ewma_forward_ms_;
  }

  if (!ok) {
    c_.failed_batches.inc();
    if (span.active()) span.set_error("batched forward failed");
    for (Pending& p : closed.requests) p.promise.set_exception(error);
    return;
  }
  // Scatter: request i owns rows [offset, offset + rows) of the output.
  const std::int64_t out_dim = output.size(1);
  std::int64_t offset = 0;
  for (Pending& p : closed.requests) {
    Tensor slice({p.rows, out_dim});
    std::memcpy(slice.data(), output.data() + offset * out_dim,
                static_cast<std::size_t>(p.rows * out_dim) * sizeof(float));
    offset += p.rows;
    p.promise.set_value(std::move(slice));
  }
}

int BatchScheduler::pump() {
  int executed = 0;
  for (;;) {
    Closed due;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!pop_due(clock_->now_ns(), &due)) break;
    }
    execute(std::move(due));
    ++executed;
  }
  return executed;
}

int BatchScheduler::flush() {
  int executed = 0;
  for (;;) {
    Closed closed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      int which = -1;
      for (int l = 0; l < kNumLanes; ++l) {
        if (!lanes_[l].fifo.empty()) {
          which = l;
          break;
        }
      }
      if (which < 0) break;
      closed = pop_batch(static_cast<Lane>(which), CloseReason::kFlush);
    }
    execute(std::move(closed));
    ++executed;
  }
  return executed;
}

void BatchScheduler::executor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    Closed due;
    if (pop_due(clock_->now_ns(), &due)) {
      lock.unlock();
      execute(std::move(due));
      lock.lock();
      continue;
    }
    // Work-conserving close: nothing is due and the executor is about to
    // sleep, yet a lane already holds a substantial batch. Waiting for the
    // linger timer here would idle the executor while work sits queued —
    // the dead time cap-1 scheduling never pays — so run it now. Below the
    // threshold the linger/deadline heuristics still gather more rows.
    if (config_.eager_close_fraction > 0) {
      const auto eager_rows = static_cast<std::int64_t>(std::max(
          1.0, config_.eager_close_fraction *
                   static_cast<double>(config_.max_batch_rows)));
      int which = -1;
      for (int l = 0; l < kNumLanes; ++l) {
        if (lanes_[l].pending_rows >= eager_rows) {
          which = l;
          break;
        }
      }
      if (which >= 0) {
        Closed eager = pop_batch(static_cast<Lane>(which), CloseReason::kEager);
        lock.unlock();
        execute(std::move(eager));
        lock.lock();
        continue;
      }
    }
    const std::uint64_t due_at = earliest_due_ns();
    if (due_at == kNever) {
      cv_.wait(lock);
      continue;
    }
    const std::uint64_t now = clock_->now_ns();
    if (due_at <= now) continue;
    cv_.wait_for(lock, std::chrono::nanoseconds(due_at - now));
  }
}

BatchStats BatchScheduler::stats() const {
  BatchStats s;
  s.submitted = c_.submitted.value();
  s.rejected_quota = c_.rejected_quota.value();
  s.rejected_depth = c_.rejected_depth.value();
  s.batches = c_.batches.value();
  s.rows = c_.rows.value();
  s.failed_batches = c_.failed_batches.value();
  s.closed_row_cap = c_.closed[static_cast<int>(CloseReason::kRowCap)].value();
  s.closed_deadline =
      c_.closed[static_cast<int>(CloseReason::kDeadline)].value();
  s.closed_linger = c_.closed[static_cast<int>(CloseReason::kLinger)].value();
  s.closed_shape = c_.closed[static_cast<int>(CloseReason::kShape)].value();
  s.closed_flush = c_.closed[static_cast<int>(CloseReason::kFlush)].value();
  s.closed_eager = c_.closed[static_cast<int>(CloseReason::kEager)].value();
  return s;
}

double BatchScheduler::ewma_forward_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_forward_ms_;
}

std::size_t BatchScheduler::lane_rows(Lane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      lanes_[static_cast<int>(lane)].pending_rows);
}

double BatchScheduler::drain_estimate_ms(const LaneState& lane) const {
  const double queued_batches = std::max(
      1.0, std::ceil(static_cast<double>(lane.pending_rows) /
                     static_cast<double>(config_.max_batch_rows)));
  return queued_batches * std::max(ewma_forward_ms_, 0.01);
}

}  // namespace hoga::batch
