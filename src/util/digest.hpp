#pragma once
// 64-bit content digest primitive shared by the feature store and the graph
// transpose cache.
//
// The hash is FNV-1a folded over 8-byte words — four independent lanes on
// large buffers, so the fold is not serialized on the multiply's latency —
// with a splitmix64 finalizer. This keeps digesting far cheaper than the
// SpMM/GEMM work it guards; the finalizer and the per-lane mixing break up
// FNV's weak low-bit diffusion. It is an integrity-adjacent fingerprint,
// not a cryptographic hash — on-disk shards additionally carry a CRC32 so
// corruption is caught independently.
//
// Lives in util (below tensor/graph/store) so content-keyed caches at any
// layer can use it without pulling in the store. The store's graph_digest /
// aig_digest wrappers (store/digest.hpp) are thin layers over this class.

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace hoga::util {

class Digest {
 public:
  /// Folds `bytes` raw bytes into the digest (word-at-a-time FNV-1a).
  Digest& update(const void* data, std::size_t bytes);

  /// Folds one trivially-copyable value (its object representation).
  template <typename T>
  Digest& update_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return update(&v, sizeof(T));
  }

  /// Finalized digest (mixing pass over the accumulated state).
  std::uint64_t value() const;

 private:
  std::uint64_t h_ = 14695981039346656037ull;  // FNV-1a 64 offset basis
};

}  // namespace hoga::util
