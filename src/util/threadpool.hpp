#pragma once
// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by tensor kernels and the data-parallel trainer. On a single-core
// machine the pool degrades gracefully to serial execution; correctness does
// not depend on real parallelism.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hoga {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> fn);

  /// Run fn(i) for i in [0, n), partitioned into contiguous chunks across the
  /// pool. Blocks until all chunks complete. Exceptions from tasks are
  /// rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Global pool shared by tensor kernels.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hoga
