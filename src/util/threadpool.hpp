#pragma once
// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by tensor kernels, the data-parallel trainer, and the inference
// serving runtime. On a single-core machine the pool degrades gracefully to
// serial execution; correctness does not depend on real parallelism.
//
// Guarantees relied on by hoga::serve (DESIGN.md §8):
//   - Exceptions thrown by a task are captured and rethrown from the
//     returned future's get(), never swallowed and never fatal to a worker.
//   - submit_cancellable() tasks can be revoked while still queued; a
//     successful cancel means the callable will never run and the future
//     completes with TaskCancelled. A task that already started cannot be
//     revoked (cancellation of running work is cooperative, at a higher
//     layer).
//   - The destructor drains: every task already queued runs to completion
//     (or is delivered as cancelled) before the workers join, so no future
//     obtained from this pool is ever abandoned with no state.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hoga {

/// Delivered through the future of a task that was cancelled before it ran.
struct TaskCancelled : std::runtime_error {
  TaskCancelled() : std::runtime_error("task cancelled before execution") {}
};

/// Handle to a cancellable submission: the completion future plus a revoke
/// switch. Default-constructed handles are empty (valid() == false).
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Revokes the task if it has not started. Returns true iff the callable
  /// will never run; its future then throws TaskCancelled from get().
  /// Returns false when the task is already running or finished.
  bool cancel();

  /// True once cancel() succeeded.
  bool cancelled() const;

  /// Completion future: value on success, the task's exception on failure,
  /// TaskCancelled if revoked in time.
  std::future<void>& future() { return future_; }

 private:
  friend class ThreadPool;
  // 0 = queued, 1 = running/done, 2 = cancelled.
  std::shared_ptr<std::atomic<int>> state_;
  std::future<void> future_;
};

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue (runs or cancels-and-delivers every queued task),
  /// then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Tasks queued but not yet started (admission-queue depth for
  /// backpressure decisions; running tasks are not counted).
  std::size_t pending() const;

  /// Tasks currently executing on a worker. Together with pending() this
  /// gives the pool's in-flight total; serve's bench uses it to wait for a
  /// request to actually occupy a worker rather than guessing with sleeps.
  std::size_t active() const { return active_.load(); }

  /// Enqueue a task; returns a future for its completion. Exceptions the
  /// task throws are rethrown from future.get().
  std::future<void> submit(std::function<void()> fn);

  /// Enqueue a task that can still be revoked while queued.
  TaskHandle submit_cancellable(std::function<void()> fn);

  /// Run fn(i) for i in [0, n), partitioned into contiguous chunks across the
  /// pool. Blocks until all chunks complete. Exceptions from tasks are
  /// rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Global pool shared by tensor kernels.
  static ThreadPool& global();

  /// Installs a callback invoked by a worker, just before it runs each task,
  /// with the milliseconds the task spent queued. Generic on purpose: the
  /// pool lives below the observability layer, so obs wires a histogram in
  /// from above (obs::attach_queue_latency) instead of the pool depending on
  /// it. Replaces any previous sink; pass an empty function to detach.
  /// Install before tasks are submitted — the sink is read per-dequeue under
  /// the queue lock but invoked outside it.
  void set_queue_latency_sink(std::function<void(double)> sink);

 private:
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t queued_ = 0;
  std::atomic<std::size_t> active_{0};
  bool stopping_ = false;
  std::function<void(double)> queue_latency_sink_;
};

}  // namespace hoga
