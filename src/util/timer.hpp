#pragma once
// Wall-clock timing helpers for benchmarks and the simulated-cluster trainer.

#include <chrono>
#include <cstdint>
#include <string>

namespace hoga {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Pretty "1.23 s" / "45.6 ms" formatting for tables.
std::string format_duration(double seconds);

}  // namespace hoga
