#include "util/digest.hpp"

namespace hoga::util {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Digest& Digest::update(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = h_;
  std::size_t i = 0;
  // Bulk path: four independent FNV lanes, folded together at the end. A
  // single lane serializes on the multiply's latency (~5 cycles per word);
  // four lanes keep the multiplier busy, which is what makes digesting a
  // multi-hundred-KB graph far cheaper than the SpMM compute it guards.
  if (bytes >= 64) {
    std::uint64_t lanes[4] = {h ^ 0x9e3779b97f4a7c15ull,
                              h ^ 0xbf58476d1ce4e5b9ull,
                              h ^ 0x94d049bb133111ebull,
                              h ^ 0xd6e8feb86659fd93ull};
    for (; i + 32 <= bytes; i += 32) {
      std::uint64_t words[4];
      std::memcpy(words, p + i, 32);
      for (int j = 0; j < 4; ++j) {
        lanes[j] = (lanes[j] ^ words[j]) * kFnvPrime;
      }
    }
    for (int j = 0; j < 4; ++j) {
      h = (h ^ splitmix64(lanes[j])) * kFnvPrime;
    }
  }
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kFnvPrime;
  }
  if (i < bytes) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + i, bytes - i);
    // Fold the tail length in too, so "abc" and "abc\0" differ.
    h = (h ^ tail) * kFnvPrime;
    h = (h ^ static_cast<std::uint64_t>(bytes - i)) * kFnvPrime;
  }
  h_ = h;
  return *this;
}

std::uint64_t Digest::value() const { return splitmix64(h_); }

}  // namespace hoga::util
