#pragma once
// ASCII table formatting used by the benchmark harness to print paper-shaped
// tables (Table 1, Table 2, the Figure 6 accuracy grid, ...).

#include <string>
#include <vector>

namespace hoga {

/// Column-aligned plain-text table. All cells are strings; numeric helpers
/// format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);
  /// Formats as a percentage, e.g. 12.34%.
  Table& pct(double fraction_times_100, int precision = 2);

  /// Render with column alignment and a header separator.
  std::string to_string() const;

  /// Render as CSV (for EXPERIMENTS.md extraction).
  std::string to_csv() const;

  /// Convenience: print to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hoga
