#include "util/crc32.hpp"

#include <array>

namespace hoga::util {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

std::uint32_t crc32_update(std::uint32_t state, std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_table();
  for (unsigned char byte : data) {
    state = table[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace hoga::util
