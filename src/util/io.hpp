#pragma once
// Small file-I/O helpers shared by the checkpoint writers.
//
// atomic_write_file is the durability primitive of the fault-tolerance
// layer: a crash (or injected I/O error) mid-write can only ever leave a
// stale ".tmp" file behind — the destination path either holds the previous
// complete file or the new complete file, never a torn one.

#include <string>

namespace hoga::util {

/// Reads a whole file into a string. Throws with a precise message when the
/// file is missing, unreadable, or empty (an empty file is always the
/// residue of a failed write, never a valid checkpoint).
std::string read_file(const std::string& path);

/// Atomically replaces `path`: writes `content` to `path + ".tmp"`, flushes
/// and closes it, then renames it over the target. Cleans up the temporary
/// on failure.
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace hoga::util
