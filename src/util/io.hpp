#pragma once
// Small file-I/O helpers shared by the checkpoint writers.
//
// atomic_write_file is the durability primitive of the fault-tolerance
// layer: a crash (or injected I/O error) mid-write can only ever leave a
// stale ".tmp" file behind — the destination path either holds the previous
// complete file or the new complete file, never a torn one.

#include <cstddef>
#include <memory>
#include <string>

namespace hoga::util {

/// Reads a whole file into a string. Throws with a precise message when the
/// file is missing, unreadable, or empty (an empty file is always the
/// residue of a failed write, never a valid checkpoint).
std::string read_file(const std::string& path);

/// Atomically replaces `path`: writes `content` to `path + ".tmp"`, flushes
/// and closes it, then renames it over the target. Cleans up the temporary
/// on failure.
///
/// NOTE: this is atomic with respect to crashes but not *durable* — nothing
/// is fsynced, so a power loss shortly after can still lose the rename.
/// Persistence consumers (shards, checkpoints, ledger snapshots) route
/// through storage::atomic_write_durable instead, which adds the
/// fsync-temp → rename → fsync-dir sequence plus fault-injection
/// kill-points (DESIGN.md §12).
void atomic_write_file(const std::string& path, const std::string& content);

/// Flushes a file's data and metadata to stable storage (POSIX fsync).
/// Opens the path read-only to obtain a descriptor; throws when the file
/// cannot be opened or synced. No-op on platforms without fsync.
void fsync_file(const std::string& path);

/// Flushes the directory entry *containing* `path`: after a rename, the new
/// name itself is only durable once its parent directory is synced. Throws
/// when the directory cannot be opened or synced; no-op without fsync.
void fsync_parent_dir(const std::string& path);

/// This process's OS pid (1 on platforms without one). Used to make temp
/// names process-unique so concurrent writers of the same destination never
/// share a temp file.
long long process_id();

/// An advisory exclusive file lock (POSIX flock) held for the object's
/// lifetime. The kernel releases the lock when the holding process exits —
/// including a crash — which is what makes it usable as a cross-process
/// compute lease: a dead leaseholder never wedges the survivors.
class FileLock {
 public:
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  /// Creates `path` if missing and takes the exclusive lock without
  /// blocking. Returns nullptr when another process holds it. On platforms
  /// without flock, always "succeeds" with an inert lock (callers degrade
  /// to single-process semantics). Never throws.
  static std::unique_ptr<FileLock> try_acquire(const std::string& path);

 private:
  FileLock() = default;

  int fd_ = -1;
};

/// A file mapped into memory (copy-on-write private mapping, so callers may
/// write the pages — e.g. fault injection flipping shard bytes — without
/// touching the file). Lets the feature store alias tensor storage straight
/// into the page cache instead of copying shard payloads through the heap.
class MappedFile {
 public:
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path`, or returns nullptr when mapping is unavailable (platform
  /// without mmap, empty file, open/map failure) — callers fall back to
  /// read_file(). Never throws.
  static std::shared_ptr<MappedFile> map(const std::string& path);

  char* data() { return data_; }
  const char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile() = default;

  char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hoga::util
