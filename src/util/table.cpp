#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hoga {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HOGA_CHECK(!header_.empty(), "Table: empty header");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  HOGA_CHECK(!rows_.empty(), "Table: cell() before row()");
  HOGA_CHECK(rows_.back().size() < header_.size(),
             "Table: too many cells in row");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return cell(std::string(buf));
}

Table& Table::pct(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, value);
  return cell(std::string(buf));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      os << (c == 0 ? "| " : " | ");
      os << v << std::string(width[c] - v.size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace hoga
