#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace hoga {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  HOGA_CHECK(n > 0, "uniform_int: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.have_cached_normal = have_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  HOGA_CHECK(k <= n, "sample_without_replacement: k > n");
  // Floyd's algorithm.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::vector<bool> used(n, false);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(uniform_int(j + 1));
    if (used[t]) t = j;
    used[t] = true;
    out.push_back(t);
  }
  return out;
}

}  // namespace hoga
