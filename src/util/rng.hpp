#pragma once
// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (initializers, samplers, dataset
// generators) takes an explicit Rng so that experiments are reproducible
// run-to-run. The generator is xoshiro256**, seeded through splitmix64.

#include <cstdint>
#include <vector>

namespace hoga {

/// xoshiro256** PRNG with convenience draws used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// A fresh generator deterministically derived from this one; use to give
  /// independent streams to parallel workers.
  Rng split();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Full generator state, including the Box-Muller cache, so a restored
  /// generator replays the exact draw sequence (bit-exact checkpoint resume
  /// depends on this).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hoga
