#pragma once
// Lightweight runtime-check macros used across the library.
//
// HOGA_CHECK(cond, msg): throws std::runtime_error with file:line context on
// failure. Used to validate API preconditions (shape mismatches, bad
// arguments) — these are programmer errors the caller can fix, so an
// exception with a precise message beats an abort.

#include <sstream>
#include <stdexcept>
#include <string>

namespace hoga {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace hoga

#define HOGA_CHECK(cond, msg)                               \
  do {                                                      \
    if (!(cond)) {                                          \
      std::ostringstream hoga_check_os_;                    \
      hoga_check_os_ << msg;                                \
      ::hoga::check_failed(__FILE__, __LINE__,              \
                           hoga_check_os_.str());           \
    }                                                       \
  } while (0)
