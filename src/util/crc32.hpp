#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320 — the zip/png/zlib
// variant). Used to verify checkpoint payload integrity on load, so a
// partially-written or bit-flipped checkpoint is rejected loudly instead of
// loading garbage weights.

#include <cstdint>
#include <string_view>

namespace hoga::util {

/// CRC of `data`; crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

}  // namespace hoga::util
