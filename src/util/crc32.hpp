#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320 — the zip/png/zlib
// variant). Used to verify checkpoint payload integrity on load, so a
// partially-written or bit-flipped checkpoint is rejected loudly instead of
// loading garbage weights.

#include <cstdint>
#include <string_view>

namespace hoga::util {

/// CRC of `data`; crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// Incremental form for streamed data (e.g. the run ledger, which CRCs each
/// appended line without buffering the whole file). Start from
/// crc32_init(), fold in chunks with crc32_update, finish with
/// crc32_final: crc32_final(crc32_update(crc32_init(), d)) == crc32(d), and
/// updates compose: update(update(s, a), b) == update(s, a+b).
inline std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
std::uint32_t crc32_update(std::uint32_t state, std::string_view data);
inline std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace hoga::util
