#pragma once
// Tiny leveled logger; benches use it for progress lines so table output
// stays clean on stdout (logs go to stderr).

#include <sstream>
#include <string>

namespace hoga {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hoga

#define HOGA_LOG_DEBUG ::hoga::detail::LogLine(::hoga::LogLevel::kDebug)
#define HOGA_LOG_INFO ::hoga::detail::LogLine(::hoga::LogLevel::kInfo)
#define HOGA_LOG_WARN ::hoga::detail::LogLine(::hoga::LogLevel::kWarn)
#define HOGA_LOG_ERROR ::hoga::detail::LogLine(::hoga::LogLevel::kError)
