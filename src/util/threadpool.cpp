#include "util/threadpool.hpp"

#include <algorithm>
#include <exception>

namespace hoga {

bool TaskHandle::cancel() {
  if (!state_) return false;
  int expected = 0;
  return state_->compare_exchange_strong(expected, 2);
}

bool TaskHandle::cancelled() const { return state_ && state_->load() == 2; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_;
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    ++queued_;
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::set_queue_latency_sink(std::function<void(double)> sink) {
  std::lock_guard<std::mutex> lk(mu_);
  queue_latency_sink_ = std::move(sink);
}

TaskHandle ThreadPool::submit_cancellable(std::function<void()> fn) {
  TaskHandle handle;
  handle.state_ = std::make_shared<std::atomic<int>>(0);
  auto state = handle.state_;
  // The claim (0 -> 1) races only against cancel's 0 -> 2: exactly one of
  // "the callable runs" and "the future gets TaskCancelled" happens.
  handle.future_ = submit([state, fn = std::move(fn)] {
    int expected = 0;
    if (!state->compare_exchange_strong(expected, 1)) {
      throw TaskCancelled();
    }
    fn();
  });
  return handle;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask item;
    std::function<void(double)> sink;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      item = std::move(tasks_.front());
      tasks_.pop();
      --queued_;
      ++active_;
      sink = queue_latency_sink_;
    }
    if (sink) {
      const auto waited = std::chrono::steady_clock::now() - item.enqueued;
      sink(std::chrono::duration<double, std::milli>(waited).count());
    }
    // packaged_task captures any exception into the shared state; a
    // throwing task can never take a worker thread down.
    item.task();
    --active_;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hoga
