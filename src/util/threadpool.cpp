#include "util/threadpool.hpp"

#include <algorithm>
#include <exception>

namespace hoga {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hoga
