#include "util/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/check.hpp"

namespace hoga::util {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HOGA_CHECK(in.good(), "read_file: cannot open '" << path
                                                   << "' (missing file?)");
  std::ostringstream os;
  os << in.rdbuf();
  HOGA_CHECK(!in.bad(), "read_file: I/O error while reading '" << path << "'");
  std::string text = os.str();
  HOGA_CHECK(!text.empty(), "read_file: '" << path
                                           << "' is empty (interrupted or "
                                              "failed write?)");
  return text;
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    HOGA_CHECK(out.good(), "atomic_write_file: cannot open '" << tmp << "'");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      HOGA_CHECK(false, "atomic_write_file: write to '" << tmp << "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    HOGA_CHECK(false, "atomic_write_file: rename '" << tmp << "' -> '" << path
                                                    << "' failed");
  }
}

void fsync_file(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  HOGA_CHECK(fd >= 0, "fsync_file: cannot open '" << path << "'");
  const int rc = ::fsync(fd);
  ::close(fd);
  HOGA_CHECK(rc == 0, "fsync_file: fsync failed for '" << path << "'");
#else
  (void)path;
#endif
}

void fsync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  HOGA_CHECK(fd >= 0, "fsync_parent_dir: cannot open '" << dir << "'");
  const int rc = ::fsync(fd);
  ::close(fd);
  HOGA_CHECK(rc == 0, "fsync_parent_dir: fsync failed for '" << dir << "'");
#else
  (void)path;
#endif
}

long long process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long long>(::getpid());
#else
  return 1;
#endif
}

FileLock::~FileLock() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
#endif
}

std::unique_ptr<FileLock> FileLock::try_acquire(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return nullptr;
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return nullptr;
  }
  auto lock = std::unique_ptr<FileLock>(new FileLock());
  lock->fd_ = fd;
  return lock;
#else
  (void)path;
  return std::unique_ptr<FileLock>(new FileLock());
#endif
}

MappedFile::~MappedFile() {
#if defined(__unix__) || defined(__APPLE__)
  if (data_ != nullptr) munmap(data_, size_);
#endif
}

std::shared_ptr<MappedFile> MappedFile::map(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  // MAP_PRIVATE + PROT_WRITE: copy-on-write, so in-memory mutation (fault
  // injection corrupting shard bytes) never reaches the file.
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (p == MAP_FAILED) return nullptr;
  auto f = std::shared_ptr<MappedFile>(new MappedFile());
  f->data_ = static_cast<char*>(p);
  f->size_ = size;
  return f;
#else
  (void)path;
  return nullptr;
#endif
}

}  // namespace hoga::util
