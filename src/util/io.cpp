#include "util/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace hoga::util {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HOGA_CHECK(in.good(), "read_file: cannot open '" << path
                                                   << "' (missing file?)");
  std::ostringstream os;
  os << in.rdbuf();
  HOGA_CHECK(!in.bad(), "read_file: I/O error while reading '" << path << "'");
  std::string text = os.str();
  HOGA_CHECK(!text.empty(), "read_file: '" << path
                                           << "' is empty (interrupted or "
                                              "failed write?)");
  return text;
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    HOGA_CHECK(out.good(), "atomic_write_file: cannot open '" << tmp << "'");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      HOGA_CHECK(false, "atomic_write_file: write to '" << tmp << "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    HOGA_CHECK(false, "atomic_write_file: rename '" << tmp << "' -> '" << path
                                                    << "' failed");
  }
}

}  // namespace hoga::util
