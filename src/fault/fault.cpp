#include "fault/fault.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace hoga::fault {
namespace {

// Every fired fault is observable: a counter bump plus a point event on
// whatever ambient span is open around the injection site. Both no-op when
// no ambient observability is installed.
void observe_fault(const char* kind) {
  obs::count("fault.injected");
  obs::count(std::string("fault.") + kind);
  obs::trace_event(std::string("fault.") + kind);
}

}  // namespace
namespace {

Injector* g_active = nullptr;

}  // namespace

Injector::Injector(std::uint64_t seed) : rng_(seed) {}

void Injector::kill_worker(int epoch, int worker) {
  worker_kills_.emplace(epoch, worker);
}

void Injector::set_worker_failure_prob(double p) { worker_failure_prob_ = p; }

void Injector::fail_checkpoint_write(int nth) { write_fails_.insert(nth); }

void Injector::fail_checkpoint_read(int nth) { read_fails_.insert(nth); }

void Injector::corrupt_gradient_step(int nth) { grad_corruptions_.insert(nth); }

void Injector::delay_request(int nth, double ms) { slow_requests_[nth] = ms; }

void Injector::poison_request(int nth) { poisoned_requests_.insert(nth); }

void Injector::stall_queue(int nth, double ms) { queue_stalls_[nth] = ms; }

void Injector::corrupt_store_read(int nth) {
  store_read_corruptions_.insert(nth);
}

void Injector::fail_store_write(int nth) { store_write_fails_.insert(nth); }

void Injector::fail_storage_write(int nth) { storage_write_fails_.insert(nth); }

void Injector::tear_storage_write(int nth, double fraction) {
  storage_tears_[nth] = fraction;
}

void Injector::kill_at_storage_point(int nth) { storage_kills_.insert(nth); }

bool Injector::worker_should_fail(int epoch, int worker) {
  if (auto it = worker_kills_.find({epoch, worker});
      it != worker_kills_.end()) {
    worker_kills_.erase(it);  // fires once; the healed epoch must survive
    ++counts_.worker_failures;
    return true;
  }
  if (worker_failure_prob_ > 0 && rng_.bernoulli(worker_failure_prob_)) {
    ++counts_.worker_failures;
    return true;
  }
  return false;
}

bool Injector::checkpoint_write_should_fail() {
  const int attempt = write_attempts_++;
  if (auto it = write_fails_.find(attempt); it != write_fails_.end()) {
    write_fails_.erase(it);
    ++counts_.checkpoint_write_errors;
    return true;
  }
  return false;
}

bool Injector::checkpoint_read_should_fail() {
  const int attempt = read_attempts_++;
  if (auto it = read_fails_.find(attempt); it != read_fails_.end()) {
    read_fails_.erase(it);
    ++counts_.checkpoint_read_errors;
    return true;
  }
  return false;
}

bool Injector::gradient_should_corrupt() {
  const int step = grad_steps_++;
  if (auto it = grad_corruptions_.find(step); it != grad_corruptions_.end()) {
    grad_corruptions_.erase(it);
    ++counts_.gradient_corruptions;
    return true;
  }
  return false;
}

double Injector::request_delay_ms() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = executed_requests_++;
  if (auto it = slow_requests_.find(n); it != slow_requests_.end()) {
    const double ms = it->second;
    slow_requests_.erase(it);
    ++counts_.slow_requests;
    return ms;
  }
  return 0;
}

bool Injector::request_should_poison() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = submitted_requests_++;
  if (auto it = poisoned_requests_.find(n); it != poisoned_requests_.end()) {
    poisoned_requests_.erase(it);
    ++counts_.poisoned_requests;
    return true;
  }
  return false;
}

double Injector::queue_stall_ms() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = stall_checks_++;
  if (auto it = queue_stalls_.find(n); it != queue_stalls_.end()) {
    const double ms = it->second;
    queue_stalls_.erase(it);
    ++counts_.queue_stalls;
    return ms;
  }
  return 0;
}

bool Injector::store_read_should_corrupt() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = store_reads_++;
  if (auto it = store_read_corruptions_.find(n);
      it != store_read_corruptions_.end()) {
    store_read_corruptions_.erase(it);
    ++counts_.store_shard_corruptions;
    return true;
  }
  return false;
}

bool Injector::store_write_should_fail() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = store_writes_++;
  if (auto it = store_write_fails_.find(n); it != store_write_fails_.end()) {
    store_write_fails_.erase(it);
    ++counts_.store_write_errors;
    return true;
  }
  return false;
}

bool Injector::storage_write_should_fail() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = storage_writes_++;
  if (auto it = storage_write_fails_.find(n);
      it != storage_write_fails_.end()) {
    storage_write_fails_.erase(it);
    ++counts_.storage_write_errors;
    return true;
  }
  return false;
}

double Injector::storage_write_tear_fraction() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = storage_tear_checks_++;
  if (auto it = storage_tears_.find(n); it != storage_tears_.end()) {
    const double fraction = it->second;
    storage_tears_.erase(it);
    ++counts_.storage_torn_writes;
    return fraction;
  }
  return -1.0;
}

bool Injector::storage_should_kill() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = storage_kill_checks_++;
  if (auto it = storage_kills_.find(n); it != storage_kills_.end()) {
    storage_kills_.erase(it);
    ++counts_.storage_kills;
    return true;
  }
  return false;
}

int Injector::storage_points_probed() const {
  std::lock_guard<std::mutex> lk(serve_mu_);
  return storage_kill_checks_;
}

void Injector::drop_message(int nth) { message_drops_.insert(nth); }

void Injector::delay_message(int nth, double ms) {
  message_delays_[nth] = ms;
}

void Injector::corrupt_frame(int nth) { frame_corruptions_.insert(nth); }

void Injector::kill_worker_at_step(int rank, long long step) {
  worker_step_kills_.emplace(rank, step);
}

Injector::SendFault Injector::next_send_fault() {
  std::lock_guard<std::mutex> lk(serve_mu_);
  const int n = message_sends_++;
  SendFault f;
  if (auto it = message_drops_.find(n); it != message_drops_.end()) {
    message_drops_.erase(it);
    ++counts_.dropped_messages;
    f.drop = true;
  } else if (auto it2 = frame_corruptions_.find(n);
             it2 != frame_corruptions_.end()) {
    frame_corruptions_.erase(it2);
    ++counts_.corrupted_frames;
    f.corrupt = true;
  }
  if (auto it = message_delays_.find(n); it != message_delays_.end()) {
    f.delay_ms = it->second;
    message_delays_.erase(it);
    ++counts_.delayed_messages;
  }
  return f;
}

bool Injector::worker_should_die_at(int rank, long long step) {
  if (auto it = worker_step_kills_.find({rank, step});
      it != worker_step_kills_.end()) {
    worker_step_kills_.erase(it);
    ++counts_.worker_kills;
    return true;
  }
  return false;
}

void Injector::acknowledge_worker_kill(int rank) {
  for (auto it = worker_step_kills_.begin(); it != worker_step_kills_.end();
       ++it) {
    if (it->first == rank) {
      worker_step_kills_.erase(it);
      ++counts_.worker_kills;
      return;
    }
  }
}

int Injector::messages_probed() const {
  std::lock_guard<std::mutex> lk(serve_mu_);
  return message_sends_;
}

Injector* active() { return g_active; }

ScopedInjector::ScopedInjector(Injector& injector) : previous_(g_active) {
  g_active = &injector;
}

ScopedInjector::~ScopedInjector() { g_active = previous_; }

bool maybe_corrupt_gradients(const std::vector<ag::Variable>& params) {
  Injector* inj = active();
  if (!inj || !inj->gradient_should_corrupt()) return false;
  observe_fault("gradient_corruption");
  for (const auto& p : params) {
    if (p.grad().numel() > 0) {
      ag::Variable handle = p;  // Variable is a shared handle
      handle.mutable_grad().data()[0] =
          std::numeric_limits<float>::quiet_NaN();
      return true;
    }
  }
  return true;
}

void maybe_fail_checkpoint_write(const std::string& path) {
  if (Injector* inj = active();
      inj && inj->checkpoint_write_should_fail()) {
    observe_fault("checkpoint_write");
    throw std::runtime_error("fault-injected checkpoint write I/O error: " +
                             path);
  }
}

void maybe_fail_checkpoint_read(const std::string& path) {
  if (Injector* inj = active(); inj && inj->checkpoint_read_should_fail()) {
    observe_fault("checkpoint_read");
    throw std::runtime_error("fault-injected checkpoint read I/O error: " +
                             path);
  }
}

bool maybe_poison_request(Tensor& payload) {
  Injector* inj = active();
  if (!inj || !inj->request_should_poison()) return false;
  observe_fault("poisoned_request");
  if (payload.numel() > 0) {
    payload.data()[0] = std::numeric_limits<float>::quiet_NaN();
  }
  return true;
}

bool maybe_corrupt_store_shard(char* bytes, std::size_t size) {
  Injector* inj = active();
  if (!inj || !inj->store_read_should_corrupt()) return false;
  observe_fault("store_shard_corruption");
  if (size > 0) {
    // Mid-buffer keeps the header parseable, so the corruption must be
    // caught by the CRC, not by a lucky syntax error.
    bytes[size / 2] ^= 0x40;
  }
  return true;
}

bool maybe_corrupt_store_shard(std::string& bytes) {
  return maybe_corrupt_store_shard(bytes.data(), bytes.size());
}

void maybe_fail_store_write(const std::string& path) {
  if (Injector* inj = active(); inj && inj->store_write_should_fail()) {
    observe_fault("store_write");
    throw std::runtime_error("fault-injected shard write I/O error: " + path);
  }
}

void storage_kill_point(const char* name) {
  if (Injector* inj = active(); inj && inj->storage_should_kill()) {
    observe_fault("storage_kill");
    throw SimulatedCrash(name);
  }
}

void maybe_fail_storage_write(const std::string& path) {
  if (Injector* inj = active(); inj && inj->storage_write_should_fail()) {
    observe_fault("storage_write");
    throw std::runtime_error(
        "fault-injected storage write error (ENOSPC): " + path);
  }
}

double storage_tear_fraction() {
  Injector* inj = active();
  return inj ? inj->storage_write_tear_fraction() : -1.0;
}

void storage_torn_write_crash(const std::string& path) {
  observe_fault("storage_torn_write");
  throw SimulatedCrash("storage.torn_write:" + path);
}

}  // namespace hoga::fault
