#pragma once
// Deterministic fault injection for the training runtime (DESIGN.md §7).
//
// Production-scale training must survive worker crashes, checkpoint I/O
// errors, and numerically-corrupt gradients. This subsystem lets tests and
// benches inject exactly those faults on a reproducible, seeded schedule:
//
//   fault::Injector inj(seed);
//   inj.kill_worker(/*epoch=*/0, /*worker=*/1);
//   inj.fail_checkpoint_write(0);      // first write attempt errors
//   inj.corrupt_gradient_step(7);      // step 7 gets a NaN gradient
//   fault::ScopedInjector scope(inj);  // install for this block
//   ... run training; the runtime heals every injected fault ...
//
// Hook sites (checkpoint save/load, trainer steps, simulated-cluster
// workers) query `fault::active()` — a single pointer load plus one
// predictable branch — so hot paths pay effectively nothing when no
// injector is installed, and exactly nothing is injected by default.
//
// Every scheduled fault fires at most once: the schedule entry is consumed
// when it triggers, so a healed retry of the same epoch/step/write does not
// re-fail. Probabilistic failures (set_worker_failure_prob) draw from the
// injector's own seeded Rng and are therefore also reproducible.

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "autograd/variable.hpp"
#include "util/rng.hpp"

namespace hoga::fault {

/// How many faults of each kind have actually fired.
struct Counts {
  int worker_failures = 0;
  int checkpoint_write_errors = 0;
  int checkpoint_read_errors = 0;
  int gradient_corruptions = 0;
};

class Injector {
 public:
  explicit Injector(std::uint64_t seed = 0);

  // -- Schedule (all deterministic) -----------------------------------------
  /// Worker `worker` dies mid-epoch in epoch `epoch` of a simulated
  /// data-parallel run.
  void kill_worker(int epoch, int worker);
  /// Every (epoch, worker) slot additionally fails with probability p,
  /// drawn from the injector's seeded Rng.
  void set_worker_failure_prob(double p);
  /// The nth (0-based) checkpoint write attempt raises an I/O error.
  void fail_checkpoint_write(int nth);
  /// The nth (0-based) checkpoint read attempt raises an I/O error.
  void fail_checkpoint_read(int nth);
  /// The nth (0-based) observed optimizer step gets a NaN gradient.
  void corrupt_gradient_step(int nth);

  // -- Hot-path queries (count attempts internally) -------------------------
  bool worker_should_fail(int epoch, int worker);
  bool checkpoint_write_should_fail();
  bool checkpoint_read_should_fail();
  bool gradient_should_corrupt();

  const Counts& counts() const { return counts_; }

 private:
  Rng rng_;
  double worker_failure_prob_ = 0.0;
  std::set<std::pair<int, int>> worker_kills_;
  std::set<int> write_fails_, read_fails_, grad_corruptions_;
  int write_attempts_ = 0, read_attempts_ = 0, grad_steps_ = 0;
  Counts counts_;
};

/// The installed injector, or nullptr when fault injection is disabled.
Injector* active();

/// RAII install/uninstall of the process-wide injector (restores whatever
/// was installed before, so scopes nest).
class ScopedInjector {
 public:
  explicit ScopedInjector(Injector& injector);
  ~ScopedInjector();
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

 private:
  Injector* previous_;
};

/// Trainer-side hook: if an active injector schedules a corruption for this
/// optimizer step, poison the first gradient scalar with a quiet NaN
/// (modeling a flipped bit in an accumulator). Returns true if it fired.
bool maybe_corrupt_gradients(const std::vector<ag::Variable>& params);

/// Checkpoint-side hooks: throw an injected I/O error when scheduled.
void maybe_fail_checkpoint_write(const std::string& path);
void maybe_fail_checkpoint_read(const std::string& path);

}  // namespace hoga::fault
