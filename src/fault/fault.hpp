#pragma once
// Deterministic fault injection for the training runtime (DESIGN.md §7).
//
// Production-scale training must survive worker crashes, checkpoint I/O
// errors, and numerically-corrupt gradients. This subsystem lets tests and
// benches inject exactly those faults on a reproducible, seeded schedule:
//
//   fault::Injector inj(seed);
//   inj.kill_worker(/*epoch=*/0, /*worker=*/1);
//   inj.fail_checkpoint_write(0);      // first write attempt errors
//   inj.corrupt_gradient_step(7);      // step 7 gets a NaN gradient
//   fault::ScopedInjector scope(inj);  // install for this block
//   ... run training; the runtime heals every injected fault ...
//
// Hook sites (checkpoint save/load, trainer steps, simulated-cluster
// workers) query `fault::active()` — a single pointer load plus one
// predictable branch — so hot paths pay effectively nothing when no
// injector is installed, and exactly nothing is injected by default.
//
// Every scheduled fault fires at most once: the schedule entry is consumed
// when it triggers, so a healed retry of the same epoch/step/write does not
// re-fail. Probabilistic failures (set_worker_failure_prob) draw from the
// injector's own seeded Rng and are therefore also reproducible.

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.hpp"
#include "util/rng.hpp"

namespace hoga::fault {

/// How many faults of each kind have actually fired.
struct Counts {
  int worker_failures = 0;
  int checkpoint_write_errors = 0;
  int checkpoint_read_errors = 0;
  int gradient_corruptions = 0;
  // Serving-runtime faults (DESIGN.md §8).
  int slow_requests = 0;
  int poisoned_requests = 0;
  int queue_stalls = 0;
  // Feature-store faults (DESIGN.md §9).
  int store_shard_corruptions = 0;
  int store_write_errors = 0;
  // Storage-engine faults (DESIGN.md §12).
  int storage_write_errors = 0;  // ENOSPC-style write failures
  int storage_torn_writes = 0;   // writes cut short mid-payload
  int storage_kills = 0;         // simulated crashes at kill-point boundaries
  // Distributed-transport faults (DESIGN.md §13).
  int dropped_messages = 0;    // sends suppressed (peer must retry)
  int delayed_messages = 0;    // sends delayed past their schedule
  int corrupted_frames = 0;    // frames bit-flipped in flight (CRC rejects)
  int worker_kills = 0;        // worker processes hard-killed at a step
};

/// A simulated mid-operation process death, thrown from a storage kill-point
/// or a torn write. Distinct from std::runtime_error so the soak harness can
/// tell "the process died here" (filesystem left exactly as a real crash
/// would) from an ordinary I/O error (the operation failed but cleaned up).
/// Deliberately NOT derived from std::runtime_error: retry loops and
/// swallow-and-degrade paths catch std::exception subclasses that model
/// recoverable errors, and a crash is not recoverable from inside the dying
/// operation.
class SimulatedCrash {
 public:
  explicit SimulatedCrash(std::string point) : point_(std::move(point)) {}
  /// The kill-point name the crash fired at (e.g. "storage.renamed").
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class Injector {
 public:
  explicit Injector(std::uint64_t seed = 0);

  // -- Schedule (all deterministic) -----------------------------------------
  /// Worker `worker` dies mid-epoch in epoch `epoch` of a simulated
  /// data-parallel run.
  void kill_worker(int epoch, int worker);
  /// Every (epoch, worker) slot additionally fails with probability p,
  /// drawn from the injector's seeded Rng.
  void set_worker_failure_prob(double p);
  /// The nth (0-based) checkpoint write attempt raises an I/O error.
  void fail_checkpoint_write(int nth);
  /// The nth (0-based) checkpoint read attempt raises an I/O error.
  void fail_checkpoint_read(int nth);
  /// The nth (0-based) observed optimizer step gets a NaN gradient.
  void corrupt_gradient_step(int nth);

  // -- Serving-runtime schedule ----------------------------------------------
  /// The nth (0-based) *executed* inference request runs on a slow worker:
  /// its execution is delayed by `ms` (the runtime sleeps cooperatively, so
  /// deadline cancellation still works).
  void delay_request(int nth, double ms);
  /// The nth (0-based) *submitted* inference request arrives with a
  /// poisoned payload (a NaN written into its feature tensor) — the
  /// validation layer must reject it before it reaches a kernel.
  void poison_request(int nth);
  /// The nth (0-based) *executed* request wedges the executor for `ms`
  /// before any request processing (models a stalled queue head; admissions
  /// pile up behind it and backpressure must kick in).
  void stall_queue(int nth, double ms);

  // -- Feature-store schedule (DESIGN.md §9) ---------------------------------
  /// The nth (0-based) shard read returns rotted bytes (one byte flipped in
  /// the middle of the buffer) — the store's CRC must reject the shard and
  /// fall back to recompute.
  void corrupt_store_read(int nth);
  /// The nth (0-based) shard write attempt raises an I/O error — the store
  /// must swallow it (degrading to memory-only) and count it.
  void fail_store_write(int nth);

  // -- Storage-engine schedule (DESIGN.md §12) -------------------------------
  /// The nth (0-based) storage payload write fails with an ENOSPC-style
  /// error after writing nothing — the engine must clean up its temp file
  /// and surface an ordinary (retryable/swallowable) I/O error.
  void fail_storage_write(int nth);
  /// The nth (0-based) storage payload write is torn: only the first
  /// `fraction` of the bytes reach the file, then the process "dies"
  /// (SimulatedCrash). The destination must still hold its previous
  /// complete content on recovery.
  void tear_storage_write(int nth, double fraction);
  /// The nth (0-based) kill-point boundary the engine crosses (temp
  /// written/synced, renamed, directory synced, segment rolled, footer
  /// written, ...) dies with SimulatedCrash, leaving the filesystem exactly
  /// as a real crash at that instant would. The soak harness sweeps nth over
  /// every boundary a workload crosses.
  void kill_at_storage_point(int nth);

  // -- Distributed-transport schedule (DESIGN.md §13) ------------------------
  // All nth counts are per-process: the coordinator and each forked worker
  // inherit the injector at fork time and consume their own copies, so a
  // schedule is deterministic per process for a deterministic send sequence.
  /// The nth (0-based) transport payload send in this process is silently
  /// suppressed — the peer sees nothing and the sender's ack wait times out,
  /// exercising the bounded-retry path (the retransmit is a fresh send slot).
  void drop_message(int nth);
  /// The nth (0-based) transport payload send is delayed by `ms` before the
  /// bytes reach the socket (models a congested or half-partitioned link).
  void delay_message(int nth, double ms);
  /// The nth (0-based) transport payload send has one byte flipped mid-frame
  /// — the receiver's CRC must reject it and NAK for a retransmit.
  void corrupt_frame(int nth);
  /// Worker process `rank` dies hard (_exit, no cleanup) when it reaches
  /// global optimizer step `step` — the real-process analogue of
  /// kill_worker(epoch, worker).
  void kill_worker_at_step(int rank, long long step);

  // -- Hot-path queries (count attempts internally) -------------------------
  bool worker_should_fail(int epoch, int worker);
  bool checkpoint_write_should_fail();
  bool checkpoint_read_should_fail();
  bool gradient_should_corrupt();
  /// Delay for this executed request in ms (0 = none); consumes one slot.
  double request_delay_ms();
  /// True when this submitted request's payload should be poisoned.
  bool request_should_poison();
  /// Queue-stall duration for this executed request in ms (0 = none).
  double queue_stall_ms();
  /// True when this shard read's bytes should be corrupted.
  bool store_read_should_corrupt();
  /// True when this shard write attempt should fail.
  bool store_write_should_fail();
  /// True when this storage payload write should fail with ENOSPC.
  bool storage_write_should_fail();
  /// Tear fraction in [0, 1] for this storage payload write, or a negative
  /// value when the write proceeds untorn; consumes one write slot.
  double storage_write_tear_fraction();
  /// True when the kill-point boundary being crossed should die; consumes
  /// one boundary slot.
  bool storage_should_kill();
  /// Kill-point boundaries crossed so far — the probe a sweep uses to learn
  /// how many kill slots a workload exposes before scheduling kills.
  int storage_points_probed() const;

  /// What the injector wants done to one transport payload send. At most
  /// one of drop/corrupt fires per slot (drop wins); delay composes with
  /// either.
  struct SendFault {
    bool drop = false;
    bool corrupt = false;
    double delay_ms = 0;
  };
  /// Consumes one transport send slot and returns the faults scheduled for
  /// it. A retransmit of a dropped/corrupted frame is a fresh slot.
  SendFault next_send_fault();
  /// True when worker `rank` should die at global step `step`; fires once.
  bool worker_should_die_at(int rank, long long step);
  /// Coordinator-side consumption of a fired kill: a worker's erase-on-fire
  /// happens in the *worker's* fork copy of the injector, so the
  /// coordinator must remove the earliest pending kill for `rank` itself
  /// when it observes the death — otherwise a respawned replacement
  /// inherits the entry and dies again on replay, forever.
  void acknowledge_worker_kill(int rank);
  /// Transport payload sends attempted so far in this process — the probe a
  /// fault sweep uses to size its nth schedules.
  int messages_probed() const;

  const Counts& counts() const { return counts_; }

 private:
  Rng rng_;
  double worker_failure_prob_ = 0.0;
  std::set<std::pair<int, int>> worker_kills_;
  std::set<int> write_fails_, read_fails_, grad_corruptions_;
  std::set<int> poisoned_requests_;
  std::set<int> store_read_corruptions_, store_write_fails_;
  std::set<int> storage_write_fails_, storage_kills_;
  std::map<int, double> storage_tears_;
  std::map<int, double> slow_requests_, queue_stalls_;
  std::set<int> message_drops_, frame_corruptions_;
  std::map<int, double> message_delays_;
  std::set<std::pair<int, long long>> worker_step_kills_;
  int write_attempts_ = 0, read_attempts_ = 0, grad_steps_ = 0;
  int executed_requests_ = 0, submitted_requests_ = 0, stall_checks_ = 0;
  int store_reads_ = 0, store_writes_ = 0;
  int storage_writes_ = 0, storage_tear_checks_ = 0, storage_kill_checks_ = 0;
  int message_sends_ = 0;
  // Serve-side, store-side, and storage-side queries run on pool workers /
  // client threads; training-side queries stay single-threaded and
  // lock-free.
  mutable std::mutex serve_mu_;
  Counts counts_;
};

/// The installed injector, or nullptr when fault injection is disabled.
Injector* active();

/// RAII install/uninstall of the process-wide injector (restores whatever
/// was installed before, so scopes nest).
class ScopedInjector {
 public:
  explicit ScopedInjector(Injector& injector);
  ~ScopedInjector();
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

 private:
  Injector* previous_;
};

/// Trainer-side hook: if an active injector schedules a corruption for this
/// optimizer step, poison the first gradient scalar with a quiet NaN
/// (modeling a flipped bit in an accumulator). Returns true if it fired.
bool maybe_corrupt_gradients(const std::vector<ag::Variable>& params);

/// Checkpoint-side hooks: throw an injected I/O error when scheduled.
void maybe_fail_checkpoint_write(const std::string& path);
void maybe_fail_checkpoint_read(const std::string& path);

/// Serve-side hook: if the active injector poisons this submitted request,
/// writes a quiet NaN into the first element of `payload` (modeling a
/// corrupt client buffer). Returns true if it fired. The caller must pass
/// storage it owns — the hook mutates in place.
bool maybe_poison_request(Tensor& payload);

/// Store-side hooks (DESIGN.md §9): bit-rot a just-read shard buffer in
/// place (flips one byte mid-buffer; returns true if it fired), and throw
/// an injected I/O error on a scheduled shard write. The pointer form also
/// serves mmap'd shards (copy-on-write mappings: the flip stays in memory).
bool maybe_corrupt_store_shard(char* bytes, std::size_t size);
bool maybe_corrupt_store_shard(std::string& bytes);
void maybe_fail_store_write(const std::string& path);

/// Storage-engine hooks (DESIGN.md §12), called by hoga::storage at every
/// fsync/rename boundary and payload write. All no-op without an injector.
///
/// storage_kill_point: dies (throws SimulatedCrash) when the injector
/// scheduled a kill for this boundary; `name` labels the boundary in the
/// crash and the trace.
void storage_kill_point(const char* name);
/// Throws a runtime_error modeling ENOSPC when this payload write is
/// scheduled to fail; the caller must clean up and surface the error.
void maybe_fail_storage_write(const std::string& path);
/// Tear fraction in [0, 1] for this payload write, or a negative value when
/// the write proceeds whole. A torn write writes the prefix then dies via
/// SimulatedCrash — the caller performs the partial write and then calls
/// storage_torn_write_crash().
double storage_tear_fraction();
/// The second half of a torn write: records the fault and dies.
[[noreturn]] void storage_torn_write_crash(const std::string& path);

}  // namespace hoga::fault
