#pragma once
// hoga::store — persistent content-addressed hop-feature store (DESIGN.md §9).
//
// HOGA's scalability rests on computing hop-wise features ONCE per graph
// (phase 1, Eq. 3) and reusing them forever; until now every trainer run and
// every raw-AIG serve request recomputed them from scratch. The store makes
// the "once" literal across processes:
//
//   - keys are content digests of (graph structure, raw features) plus the
//     hop count K — no naming convention, no cache invalidation: a changed
//     circuit is simply a different key;
//   - two tiers: an in-memory LRU with a configurable byte budget (the serve
//     hot path), and a persistent tier of one shard file per key in the
//     `hoga-feat` v1 binary format (magic, version, sized header, CRC32 over
//     the payload, atomic rename-on-write — the hoga-ckpt v2 conventions);
//   - cache hits are re-validated against the *requesting* model config: a
//     K or feature-dim mismatch is a miss that falls back to recompute,
//     never an error (the re-validation is metadata-only, so hits stay O(1)
//     plus a shared-storage tensor copy);
//   - corruption is contained: a truncated or bit-flipped shard fails CRC,
//     is counted in StoreStats, and falls back to recompute — which then
//     rewrites the shard (self-healing). Persistent-tier write failures are
//     swallowed and counted: a broken disk degrades the store to
//     memory-only, it never takes down a trainer or the serving runtime.
//   - `hoga::fault` I/O hooks cover both failure modes deterministically
//     (corrupt_store_read / fail_store_write).
//
// Thread-safety: all public methods are safe from any number of threads.
// Misses release the lock during compute and file I/O, so two threads
// missing the same key may both compute; the second insert wins (both are
// bit-identical — compute is deterministic). Callers must treat returned
// HopFeatures as immutable: tensors share storage with the cache.

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/hop_features.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "store/digest.hpp"
#include "tensor/tensor.hpp"

namespace hoga::store {

struct StoreConfig {
  /// Shard directory of the persistent tier (created if missing); empty
  /// disables it — the store becomes memory-only.
  std::string directory;
  /// Byte budget of the in-memory LRU tier; 0 disables memory caching.
  std::size_t memory_budget_bytes = std::size_t{256} << 20;
  /// Recently-missed keys remembered so repeated lookups of a key with no
  /// shard skip the filesystem entirely (negative-lookup memoization);
  /// 0 disables. Entries are exact (digest, K) pairs — no hashing, so a
  /// negative hit can never shadow an existing shard — and a put()
  /// invalidates its key immediately.
  std::size_t negative_cache_capacity = 1024;
  /// Upper bound on shard files kept in the persistent tier; 0 = unbounded.
  /// Enforced after each successful shard write by deleting the
  /// oldest-mtime shards (mtime ties broken by filename, so tests with
  /// explicit mtimes are deterministic); the shard just written is never
  /// the victim. Evictions are counted and logged through obs.
  std::size_t max_shard_files = 0;
  /// Optional registry that mirrors every StoreStats counter under
  /// "store.*" names; null skips the mirroring (stats() works regardless).
  obs::MetricsRegistry* metrics = nullptr;
  /// Cross-process compute leases (DESIGN.md §13): when several processes
  /// miss the same key, exactly one computes — it holds an exclusive flock
  /// on "<shard>.lock" while the others poll block-then-read with capped
  /// exponential backoff and pick up the published shard. A leaseholder
  /// that crashes releases the flock automatically (the kernel drops it at
  /// process exit), so a survivor acquires the lease and recomputes — no
  /// fault can wedge a waiter. Requires a persistent directory; ignored
  /// without one. Off by default: single-process users keep the old
  /// compute-twice-insert-once race, which is benign (results are
  /// bit-identical) and lock-free.
  bool cross_process_leases = false;
  /// Backoff for lease waiters polling the shard / the lock.
  double lease_poll_initial_ms = 0.5;
  double lease_poll_max_ms = 50.0;
  /// Give-up bound for a waiter: past this it computes anyway (never hangs
  /// on a wedged-but-alive leaseholder).
  double lease_wait_timeout_ms = 30000.0;
};

/// Where a get_or_compute was satisfied.
enum class StoreOutcome { kMemoryHit, kDiskHit, kComputed };
const char* outcome_name(StoreOutcome o);

/// Every counter is deterministic for a fixed lookup sequence (and fault
/// schedule); timings are the benches' job.
struct StoreStats {
  long long lookups = 0;
  long long memory_hits = 0;
  long long disk_hits = 0;
  long long misses = 0;             // lookups that fell through to compute
  long long config_mismatches = 0;  // cached K/dim != requesting model config
  long long computes = 0;           // recomputes executed on miss
  long long shard_writes = 0;       // persistent shards written
  long long write_errors = 0;       // swallowed persistent-tier write failures
  long long corrupt_shards = 0;     // CRC/decode rejections (treated as miss)
  long long evictions = 0;          // memory-tier LRU evictions
  long long negative_hits = 0;      // disk probes skipped via negative cache
  long long shard_evictions = 0;    // persistent shards deleted by the cap
  long long mmap_reads = 0;         // disk probes served by a file mapping
  long long lease_holds = 0;        // leases acquired first try (we compute)
  long long lease_waits = 0;        // misses that waited on another holder
  long long lease_takeovers = 0;    // lease acquired after a holder vanished
                                    // without publishing (crash recompute)

  long long hits() const { return memory_hits + disk_hits; }
  /// Deterministic counter line, e.g. "lookups=4 memory_hits=2 ...".
  std::string counts_signature() const;
};

/// Content-addressed key: the digest covers everything that determines the
/// feature values except the hop count, which is part of the key so the
/// same circuit at different K maps to different shards.
struct FeatureKey {
  std::uint64_t content = 0;
  int num_hops = 0;

  /// Shard file name, "<16-hex-digest>-k<K>.feat".
  std::string shard_name() const;
};

/// Serializes hop features into one `hoga-feat` v1 shard: a textual header
/// line "hoga-feat v1 <payload bytes> <crc32 hex>\n" followed by a binary
/// payload (key digest, K, n, d, then raw fp32 data — host byte order; the
/// store is a per-machine cache, not an interchange format).
std::string encode_shard(const FeatureKey& key, const core::HopFeatures& hops);

/// Parses and verifies one shard. Returns nullopt — never throws — when the
/// magic/version is wrong, the payload is truncated, the CRC does not match,
/// or the embedded key disagrees with `expect`; `why` (optional) receives
/// the reason. Decoded floats are bit-exact.
///
/// When `alias_owner` is non-null (an mmap'd shard kept alive by the owner)
/// and the float payload is suitably aligned, the returned tensor *aliases*
/// `bytes` instead of copying it — the CRC pass above doubles as the
/// first-touch verification of the mapped pages. Misaligned payloads (e.g.
/// shards written before headers were pad-aligned) fall back to a copy.
std::optional<core::HopFeatures> decode_shard(
    std::string_view bytes, const FeatureKey& expect,
    std::string* why = nullptr, std::shared_ptr<void> alias_owner = nullptr);

class FeatureStore {
 public:
  explicit FeatureStore(StoreConfig config);

  /// The central API: returns the cached features for `key`, or runs
  /// `compute`, caches the result in both tiers, and returns it. A hit is
  /// re-validated against (key.num_hops, expected_dim); mismatches are
  /// misses. `outcome` (optional) reports which tier satisfied the call.
  core::HopFeatures get_or_compute(
      const FeatureKey& key, std::int64_t expected_dim,
      const std::function<core::HopFeatures()>& compute,
      StoreOutcome* outcome = nullptr);

  /// Convenience: digests (adj_norm, x) and computes via
  /// HopFeatures::compute on miss — the drop-in replacement for direct
  /// phase-1 calls in the trainers.
  core::HopFeatures get_or_compute(const graph::Csr& adj_norm, const Tensor& x,
                                   int num_hops,
                                   StoreOutcome* outcome = nullptr);

  /// Lookup without compute: memory tier, then persistent tier (promoting
  /// a disk hit into memory). Returns nullopt on miss.
  std::optional<core::HopFeatures> lookup(const FeatureKey& key,
                                          std::int64_t expected_dim,
                                          StoreOutcome* outcome = nullptr);

  /// Inserts into both tiers (persistent write failures are swallowed and
  /// counted). `hops` must match the key's num_hops.
  void put(const FeatureKey& key, const core::HopFeatures& hops);

  StoreStats stats() const;
  void reset_stats();

  /// Memory-tier occupancy (bytes / entries) — exposed for tests and the
  /// bench.
  std::size_t memory_bytes() const;
  std::size_t memory_entries() const;

  /// Shard path for a key (empty when the persistent tier is disabled).
  std::string shard_path(const FeatureKey& key) const;

  /// Lease lock-file path for a key (empty when the persistent tier is
  /// disabled). Lock files are tiny and persist after release — unlinking a
  /// flock'd file races against a concurrent opener, so they stay.
  std::string lease_path(const FeatureKey& key) const;

  const StoreConfig& config() const { return config_; }

 private:
  struct Entry {
    core::HopFeatures hops;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru_it;
  };

  /// Inserts/replaces under mu_, evicting LRU entries past the budget.
  void insert_memory_locked(std::uint64_t content,
                            const core::HopFeatures& hops);

  /// Remembers `key` as having no shard / forgets it again (both under mu_).
  void remember_negative_locked(const FeatureKey& key);
  void forget_negative_locked(const FeatureKey& key);

  /// Deletes oldest-mtime shards past max_shard_files, sparing `keep_name`.
  void enforce_shard_cap(const std::string& keep_name);

  StoreConfig config_;
  // Registry mirror of StoreStats (null handles when no registry is
  // configured, so the increments cost one branch).
  struct StoreCounters {
    obs::Counter lookups, memory_hits, disk_hits, misses, config_mismatches,
        computes, shard_writes, write_errors, corrupt_shards, evictions,
        negative_hits, shard_evictions, mmap_reads, lease_holds, lease_waits,
        lease_takeovers;
  } c_;
  mutable std::mutex mu_;
  // Memory tier keyed by content digest alone (one entry per graph): this
  // is what makes a same-graph different-K request observable as a config
  // mismatch instead of silently coexisting — the K the entry was built
  // with is re-checked on every hit.
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = oldest
  std::size_t memory_bytes_ = 0;
  // Negative-lookup memoization: exact keys known to have no shard. The
  // FIFO bounds the set; entries invalidated by put() are skipped when they
  // reach the front.
  std::set<std::pair<std::uint64_t, int>> negative_;
  std::deque<std::pair<std::uint64_t, int>> negative_fifo_;
  StoreStats stats_;
};

}  // namespace hoga::store
