#include "store/digest.hpp"

namespace hoga::store {

std::uint64_t graph_digest(const graph::Csr& adj, const Tensor& x) {
  Digest d;
  d.update_value(adj.num_nodes());
  d.update(adj.row_ptr().data(),
           adj.row_ptr().size() * sizeof(std::int64_t));
  d.update(adj.col_idx().data(), adj.col_idx().size() * sizeof(std::int64_t));
  d.update(adj.values().data(), adj.values().size() * sizeof(float));
  for (const std::int64_t s : x.shape()) d.update_value(s);
  if (x.numel() > 0) {
    d.update(x.data(), static_cast<std::size_t>(x.numel()) * sizeof(float));
  }
  return d.value();
}

std::uint64_t aig_digest(const aig::Aig& g) {
  Digest d;
  d.update_value(g.num_nodes());
  const auto n = static_cast<aig::NodeId>(g.num_nodes());
  for (aig::NodeId id = 0; id < n; ++id) {
    const auto& node = g.node(id);
    d.update_value(static_cast<std::uint8_t>(node.type));
    d.update_value(node.fanin0);
    d.update_value(node.fanin1);
  }
  d.update(g.pis().data(), g.pis().size() * sizeof(aig::NodeId));
  d.update(g.pos().data(), g.pos().size() * sizeof(aig::Lit));
  return d.value();
}

}  // namespace hoga::store
