#include "store/digest.hpp"

namespace hoga::store {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Digest& Digest::update(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = h_;
  std::size_t i = 0;
  // Bulk path: four independent FNV lanes, folded together at the end. A
  // single lane serializes on the multiply's latency (~5 cycles per word);
  // four lanes keep the multiplier busy, which is what makes digesting a
  // multi-hundred-KB graph far cheaper than the SpMM compute it guards.
  if (bytes >= 64) {
    std::uint64_t lanes[4] = {h ^ 0x9e3779b97f4a7c15ull,
                              h ^ 0xbf58476d1ce4e5b9ull,
                              h ^ 0x94d049bb133111ebull,
                              h ^ 0xd6e8feb86659fd93ull};
    for (; i + 32 <= bytes; i += 32) {
      std::uint64_t words[4];
      std::memcpy(words, p + i, 32);
      for (int j = 0; j < 4; ++j) {
        lanes[j] = (lanes[j] ^ words[j]) * kFnvPrime;
      }
    }
    for (int j = 0; j < 4; ++j) {
      h = (h ^ splitmix64(lanes[j])) * kFnvPrime;
    }
  }
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kFnvPrime;
  }
  if (i < bytes) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + i, bytes - i);
    // Fold the tail length in too, so "abc" and "abc\0" differ.
    h = (h ^ tail) * kFnvPrime;
    h = (h ^ static_cast<std::uint64_t>(bytes - i)) * kFnvPrime;
  }
  h_ = h;
  return *this;
}

std::uint64_t Digest::value() const { return splitmix64(h_); }

std::uint64_t graph_digest(const graph::Csr& adj, const Tensor& x) {
  Digest d;
  d.update_value(adj.num_nodes());
  d.update(adj.row_ptr().data(),
           adj.row_ptr().size() * sizeof(std::int64_t));
  d.update(adj.col_idx().data(), adj.col_idx().size() * sizeof(std::int64_t));
  d.update(adj.values().data(), adj.values().size() * sizeof(float));
  for (const std::int64_t s : x.shape()) d.update_value(s);
  if (x.numel() > 0) {
    d.update(x.data(), static_cast<std::size_t>(x.numel()) * sizeof(float));
  }
  return d.value();
}

std::uint64_t aig_digest(const aig::Aig& g) {
  Digest d;
  d.update_value(g.num_nodes());
  const auto n = static_cast<aig::NodeId>(g.num_nodes());
  for (aig::NodeId id = 0; id < n; ++id) {
    const auto& node = g.node(id);
    d.update_value(static_cast<std::uint8_t>(node.type));
    d.update_value(node.fanin0);
    d.update_value(node.fanin1);
  }
  d.update(g.pis().data(), g.pis().size() * sizeof(aig::NodeId));
  d.update(g.pos().data(), g.pos().size() * sizeof(aig::Lit));
  return d.value();
}

}  // namespace hoga::store
