#pragma once
// Content digests for the feature store (DESIGN.md §9).
//
// The store is content-addressed: a cached hop-feature tensor is keyed by a
// deterministic 64-bit digest of everything that determines its value — the
// graph structure (CSR arrays, edge weights) and the raw node features. Two
// runs over the same circuit therefore hash to the same shard, across
// processes and across time, with no registry or naming convention needed.
//
// The hash is FNV-1a folded over 8-byte words — four independent lanes on
// large buffers, so the fold is not serialized on the multiply's latency —
// with a splitmix64 finalizer. This keeps digesting far cheaper than the
// SpMM propagation it guards (a byte-wise FNV would cost a noticeable
// fraction of a cold compute); the finalizer and the per-lane mixing break
// up FNV's weak low-bit diffusion. This
// is an integrity-adjacent fingerprint, not a cryptographic hash — shards
// additionally carry a CRC32 so corruption is caught independently.

#include <cstdint>
#include <cstring>

#include "aig/aig.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace hoga::store {

class Digest {
 public:
  /// Folds `bytes` raw bytes into the digest (word-at-a-time FNV-1a).
  Digest& update(const void* data, std::size_t bytes);

  /// Folds one trivially-copyable value (its object representation).
  template <typename T>
  Digest& update_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return update(&v, sizeof(T));
  }

  /// Finalized digest (mixing pass over the accumulated state).
  std::uint64_t value() const;

 private:
  std::uint64_t h_ = 14695981039346656037ull;  // FNV-1a 64 offset basis
};

/// Digest of (adjacency, raw features): the content key of a precomputed
/// hop-feature set. Covers node count, CSR structure, edge weights, feature
/// shape, and feature values.
std::uint64_t graph_digest(const graph::Csr& adj, const Tensor& x);

/// Digest of an AIG's structure (nodes, fanins, PIs, POs). The serving
/// runtime keys raw-AIG requests by this: hop features are a pure function
/// of the AIG (Eq. 3), so equal digests mean equal features.
std::uint64_t aig_digest(const aig::Aig& g);

}  // namespace hoga::store
