#pragma once
// Content digests for the feature store (DESIGN.md §9).
//
// The store is content-addressed: a cached hop-feature tensor is keyed by a
// deterministic 64-bit digest of everything that determines its value — the
// graph structure (CSR arrays, edge weights) and the raw node features. Two
// runs over the same circuit therefore hash to the same shard, across
// processes and across time, with no registry or naming convention needed.
//
// The digest primitive itself lives in util/digest.hpp (it is shared with
// the graph layer's transpose cache, which cannot depend on the store);
// this header re-exports it and adds the store's domain digests.

#include <cstdint>

#include "aig/aig.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"
#include "util/digest.hpp"

namespace hoga::store {

using Digest = ::hoga::util::Digest;

/// Digest of (adjacency, raw features): the content key of a precomputed
/// hop-feature set. Covers node count, CSR structure, edge weights, feature
/// shape, and feature values.
std::uint64_t graph_digest(const graph::Csr& adj, const Tensor& x);

/// Digest of an AIG's structure (nodes, fanins, PIs, POs). The serving
/// runtime keys raw-AIG requests by this: hop features are a pure function
/// of the AIG (Eq. 3), so equal digests mean equal features.
std::uint64_t aig_digest(const aig::Aig& g);

}  // namespace hoga::store
