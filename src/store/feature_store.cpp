#include "store/feature_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "storage/storage.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"
#include "validate/validate.hpp"

namespace hoga::store {
namespace {

// Fixed per-entry overhead charged against the memory budget on top of the
// tensor payload (map node, LRU node, bookkeeping).
constexpr std::size_t kEntryOverheadBytes = 128;

std::size_t entry_bytes(const core::HopFeatures& hops) {
  return static_cast<std::size_t>(hops.stacked().numel()) * sizeof(float) +
         kEntryOverheadBytes;
}

void append_raw(std::string& out, const void* data, std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

template <typename T>
void append_value(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_raw(out, &v, sizeof(T));
}

template <typename T>
bool read_value(std::string_view in, std::size_t& off, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (off + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + off, sizeof(T));
  off += sizeof(T);
  return true;
}

// Byte offset of the fp32 data within a shard payload (digest + K + n + d).
constexpr std::size_t kPayloadPrefixBytes =
    sizeof(std::uint64_t) + sizeof(std::int32_t) + 2 * sizeof(std::int64_t);

std::optional<core::HopFeatures> reject(std::string* why, std::string reason) {
  if (why) *why = std::move(reason);
  return std::nullopt;
}

}  // namespace

const char* outcome_name(StoreOutcome o) {
  switch (o) {
    case StoreOutcome::kMemoryHit: return "memory_hit";
    case StoreOutcome::kDiskHit: return "disk_hit";
    case StoreOutcome::kComputed: return "computed";
  }
  return "unknown";
}

std::string StoreStats::counts_signature() const {
  std::ostringstream os;
  os << "lookups=" << lookups << " memory_hits=" << memory_hits
     << " disk_hits=" << disk_hits << " misses=" << misses
     << " config_mismatches=" << config_mismatches
     << " computes=" << computes << " shard_writes=" << shard_writes
     << " write_errors=" << write_errors
     << " corrupt_shards=" << corrupt_shards << " evictions=" << evictions
     << " negative_hits=" << negative_hits
     << " shard_evictions=" << shard_evictions
     << " mmap_reads=" << mmap_reads << " lease_holds=" << lease_holds
     << " lease_waits=" << lease_waits
     << " lease_takeovers=" << lease_takeovers;
  return os.str();
}

std::string FeatureKey::shard_name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx-k%d.feat",
                static_cast<unsigned long long>(content), num_hops);
  return buf;
}

std::string encode_shard(const FeatureKey& key,
                         const core::HopFeatures& hops) {
  HOGA_CHECK(hops.num_hops() == key.num_hops,
             "encode_shard: features have K = " << hops.num_hops()
                                                << ", key says K = "
                                                << key.num_hops);
  std::string payload;
  payload.reserve(32 + static_cast<std::size_t>(hops.stacked().numel()) *
                           sizeof(float));
  append_value(payload, key.content);
  append_value(payload, static_cast<std::int32_t>(key.num_hops));
  append_value(payload, hops.num_nodes());
  append_value(payload, hops.feature_dim());
  if (hops.stacked().numel() > 0) {
    append_raw(payload, hops.stacked().data(),
               static_cast<std::size_t>(hops.stacked().numel()) *
                   sizeof(float));
  }
  std::ostringstream os;
  os << "hoga-feat v1 " << payload.size() << ' ' << std::hex
     << util::crc32(payload) << std::dec;
  std::string header = os.str();
  // Pad the header with spaces (ignored by the parser) so that in an mmap'd
  // shard — whose first byte is page-aligned — the fp32 data at
  // header + kPayloadPrefixBytes lands on a 64-byte boundary, letting
  // decode_shard alias it instead of copying. +1 for the '\n'.
  while ((header.size() + 1 + kPayloadPrefixBytes) % 64 != 0) {
    header.push_back(' ');
  }
  header.push_back('\n');
  return header + payload;
}

std::optional<core::HopFeatures> decode_shard(
    std::string_view bytes, const FeatureKey& expect, std::string* why,
    std::shared_ptr<void> alias_owner) {
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string_view::npos) {
    return reject(why, "missing header line");
  }
  const std::string header_line(bytes.substr(0, header_end));
  std::istringstream header(header_line);
  std::string magic, version;
  header >> magic >> version;
  if (header.fail() || magic != "hoga-feat") {
    return reject(why, "not a hoga-feat shard");
  }
  if (version != "v1") {
    return reject(why, "unsupported shard version '" + version + "'");
  }
  std::size_t payload_size = 0;
  header >> payload_size;
  if (header.fail()) return reject(why, "bad payload size in header");
  std::uint64_t expect_crc = 0;
  header >> std::hex >> expect_crc;
  if (header.fail() || expect_crc > 0xFFFFFFFFull) {
    return reject(why, "bad crc in header");
  }
  // The only bytes allowed after the CRC token are the alignment padding
  // spaces encode_shard appends; the payload CRC cannot see the header, so
  // anything else there is corruption this check must catch.
  const auto after_crc = header.tellg();
  const std::size_t tail = after_crc < 0 ? header_line.size()
                                         : static_cast<std::size_t>(after_crc);
  if (header_line.find_first_not_of(' ', tail) != std::string::npos) {
    return reject(why, "trailing junk in header");
  }
  const std::string_view payload(bytes.data() + header_end + 1,
                                 bytes.size() - header_end - 1);
  if (payload.size() != payload_size) {
    std::ostringstream os;
    os << "payload is " << payload.size() << " bytes, header declares "
       << payload_size << " (truncated write?)";
    return reject(why, os.str());
  }
  if (util::crc32(payload) != static_cast<std::uint32_t>(expect_crc)) {
    return reject(why, "CRC mismatch (corrupted shard)");
  }

  std::size_t off = 0;
  std::uint64_t content = 0;
  std::int32_t num_hops = 0;
  std::int64_t n = 0, d = 0;
  if (!read_value(payload, off, &content) ||
      !read_value(payload, off, &num_hops) || !read_value(payload, off, &n) ||
      !read_value(payload, off, &d)) {
    return reject(why, "truncated shard fields");
  }
  if (content != expect.content) {
    return reject(why, "content digest mismatch (renamed or aliased shard)");
  }
  if (num_hops != expect.num_hops) {
    std::ostringstream os;
    os << "shard has K = " << num_hops << ", requested K = "
       << expect.num_hops;
    return reject(why, os.str());
  }
  if (num_hops < 1 || n < 0 || d < 0) {
    return reject(why, "implausible shard dimensions");
  }
  const std::int64_t numel = n * (num_hops + 1) * d;
  if (payload.size() - off !=
      static_cast<std::size_t>(numel) * sizeof(float)) {
    return reject(why, "shard data size disagrees with its dimensions");
  }
  const char* raw = payload.data() + off;
  const bool aligned =
      reinterpret_cast<std::uintptr_t>(raw) % alignof(float) == 0;
  Tensor stacked;
  if (alias_owner != nullptr && aligned && numel > 0) {
    // Zero-copy: the tensor reads the mapped pages directly; the mapping is
    // copy-on-write, so in-place mutation (fault hooks) never hits the file.
    stacked = Tensor::from_external(
        {n, num_hops + 1, d},
        reinterpret_cast<float*>(const_cast<char*>(raw)),
        std::move(alias_owner));
  } else {
    stacked = Tensor::empty({n, num_hops + 1, d});
    if (numel > 0) {
      std::memcpy(stacked.data(), raw,
                  static_cast<std::size_t>(numel) * sizeof(float));
    }
  }
  return core::HopFeatures::from_stacked(std::move(stacked), num_hops);
}

FeatureStore::FeatureStore(StoreConfig config) : config_(std::move(config)) {
  if (!config_.directory.empty()) {
    std::filesystem::create_directories(config_.directory);
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    c_.lookups = m.counter("store.lookups");
    c_.memory_hits = m.counter("store.memory_hits");
    c_.disk_hits = m.counter("store.disk_hits");
    c_.misses = m.counter("store.misses");
    c_.config_mismatches = m.counter("store.config_mismatches");
    c_.computes = m.counter("store.computes");
    c_.shard_writes = m.counter("store.shard_writes");
    c_.write_errors = m.counter("store.write_errors");
    c_.corrupt_shards = m.counter("store.corrupt_shards");
    c_.evictions = m.counter("store.evictions");
    c_.negative_hits = m.counter("store.negative_hits");
    c_.shard_evictions = m.counter("store.shard_evictions");
    c_.mmap_reads = m.counter("store.mmap_reads");
    c_.lease_holds = m.counter("store.lease_holds");
    c_.lease_waits = m.counter("store.lease_waits");
    c_.lease_takeovers = m.counter("store.lease_takeovers");
  }
}

std::string FeatureStore::shard_path(const FeatureKey& key) const {
  if (config_.directory.empty()) return {};
  return (std::filesystem::path(config_.directory) / key.shard_name())
      .string();
}

std::string FeatureStore::lease_path(const FeatureKey& key) const {
  const std::string shard = shard_path(key);
  return shard.empty() ? shard : shard + ".lock";
}

void FeatureStore::insert_memory_locked(std::uint64_t content,
                                        const core::HopFeatures& hops) {
  if (config_.memory_budget_bytes == 0) return;
  const std::size_t bytes = entry_bytes(hops);
  if (auto it = entries_.find(content); it != entries_.end()) {
    memory_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  if (bytes > config_.memory_budget_bytes) return;  // would never fit
  while (memory_bytes_ + bytes > config_.memory_budget_bytes &&
         !lru_.empty()) {
    const std::uint64_t victim = lru_.front();
    lru_.pop_front();
    auto it = entries_.find(victim);
    memory_bytes_ -= it->second.bytes;
    entries_.erase(it);
    ++stats_.evictions;
    c_.evictions.inc();
  }
  lru_.push_back(content);
  entries_.emplace(content,
                   Entry{hops, bytes, std::prev(lru_.end())});
  memory_bytes_ += bytes;
}

void FeatureStore::remember_negative_locked(const FeatureKey& key) {
  if (config_.negative_cache_capacity == 0) return;
  const auto entry = std::make_pair(key.content, key.num_hops);
  if (!negative_.insert(entry).second) return;  // already remembered
  negative_fifo_.push_back(entry);
  // Invalidated entries linger in the FIFO until they surface; skip them.
  while (negative_.size() > config_.negative_cache_capacity &&
         !negative_fifo_.empty()) {
    negative_.erase(negative_fifo_.front());
    negative_fifo_.pop_front();
  }
}

void FeatureStore::forget_negative_locked(const FeatureKey& key) {
  negative_.erase(std::make_pair(key.content, key.num_hops));
}

std::optional<core::HopFeatures> FeatureStore::lookup(
    const FeatureKey& key, std::int64_t expected_dim, StoreOutcome* outcome) {
  bool skip_disk = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    c_.lookups.inc();
    if (auto it = entries_.find(key.content); it != entries_.end()) {
      // Re-validate the hit against the *requesting* config. Metadata-only
      // (O(1)): the data was validated when it entered the cache, and the
      // persistent tier is CRC-guarded — a full finite scan here would cost
      // as much as the SpMM propagation the cache exists to avoid.
      if (!validate::check_hop_config(it->second.hops, key.num_hops,
                                      expected_dim)) {
        lru_.splice(lru_.end(), lru_, it->second.lru_it);  // touch
        ++stats_.memory_hits;
        c_.memory_hits.inc();
        if (outcome) *outcome = StoreOutcome::kMemoryHit;
        return it->second.hops;
      }
      // Same graph, different K or dim: a miss, never an error — the
      // recompute below replaces this entry with the requested config.
      ++stats_.config_mismatches;
      c_.config_mismatches.inc();
    }
    // Negative memoization: a key recently confirmed shard-less skips the
    // filesystem probe below. Exactness matters — membership is the literal
    // (digest, K) pair, so this can never shadow a shard that exists.
    if (negative_.count(std::make_pair(key.content, key.num_hops)) > 0) {
      skip_disk = true;
      ++stats_.negative_hits;
      c_.negative_hits.inc();
    }
  }

  if (!config_.directory.empty() && !skip_disk) {
    // Prefer mapping the shard: decode_shard then aliases tensor storage
    // straight onto the page cache (CRC-verified on first touch) instead of
    // copying the payload through the heap. Falls back to read_file when
    // mmap is unavailable.
    std::string bytes_buf;
    std::string_view bytes;
    std::shared_ptr<util::MappedFile> mapped =
        util::MappedFile::map(shard_path(key));
    bool have_shard = true;
    if (mapped != nullptr) {
      fault::maybe_corrupt_store_shard(mapped->data(), mapped->size());
      bytes = std::string_view(mapped->data(), mapped->size());
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.mmap_reads;
      c_.mmap_reads.inc();
    } else {
      try {
        bytes_buf = util::read_file(shard_path(key));
        fault::maybe_corrupt_store_shard(bytes_buf);
        bytes = bytes_buf;
      } catch (const std::exception&) {
        have_shard = false;  // no shard (or unreadable): plain miss
      }
    }
    if (have_shard) {
      std::string why;
      auto hops = decode_shard(bytes, key, &why, mapped);
      const bool config_ok =
          hops.has_value() &&
          !validate::check_hop_config(*hops, key.num_hops, expected_dim);
      std::lock_guard<std::mutex> lock(mu_);
      if (config_ok) {
        insert_memory_locked(key.content, *hops);
        ++stats_.disk_hits;
        c_.disk_hits.inc();
        if (outcome) *outcome = StoreOutcome::kDiskHit;
        return hops;
      }
      if (!hops.has_value()) {
        // CRC/format rejection: count it and fall through to recompute —
        // a rotted shard must never crash a trainer or the serving path.
        ++stats_.corrupt_shards;
        c_.corrupt_shards.inc();
      } else {
        ++stats_.config_mismatches;
        c_.config_mismatches.inc();
      }
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      remember_negative_locked(key);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  c_.misses.inc();
  return std::nullopt;
}

core::HopFeatures FeatureStore::get_or_compute(
    const FeatureKey& key, std::int64_t expected_dim,
    const std::function<core::HopFeatures()>& compute,
    StoreOutcome* outcome) {
  if (auto hit = lookup(key, expected_dim, outcome)) return *std::move(hit);

  // Cross-process compute lease: one process computes under an exclusive
  // flock on "<shard>.lock"; the others block-then-read. Crash of the
  // holder releases the flock (kernel-side), so a waiter takes the lease
  // over and recomputes — N processes missing the same key run the K SpMM
  // passes once in the common case and never hang in any case.
  std::unique_ptr<util::FileLock> lease;
  if (config_.cross_process_leases && !config_.directory.empty()) {
    const std::string lock_path = lease_path(key);
    lease = util::FileLock::try_acquire(lock_path);
    if (lease) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.lease_holds;
      c_.lease_holds.inc();
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.lease_waits;
        c_.lease_waits.inc();
      }
      double waited_ms = 0, delay_ms = config_.lease_poll_initial_ms;
      while (waited_ms < config_.lease_wait_timeout_ms) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            delay_ms));
        waited_ms += delay_ms;
        delay_ms = std::min(delay_ms * 2, config_.lease_poll_max_ms);
        // The holder publishes the shard before releasing the lease, so
        // probe the shard first: the common exit is a disk hit. The first
        // missed probe memoized this key as shard-less — drop that memo or
        // every later probe would skip the filesystem and never see the
        // holder's publish.
        {
          std::lock_guard<std::mutex> lock(mu_);
          forget_negative_locked(key);
        }
        if (auto hit = lookup(key, expected_dim, outcome)) {
          return *std::move(hit);
        }
        lease = util::FileLock::try_acquire(lock_path);
        if (lease) break;
      }
      if (lease) {
        // The holder is gone but no shard appeared: it crashed (or failed
        // its write). One more probe closes the publish-then-release race,
        // then this process recomputes as the new leaseholder.
        {
          std::lock_guard<std::mutex> lock(mu_);
          forget_negative_locked(key);
        }
        if (auto hit = lookup(key, expected_dim, outcome)) {
          return *std::move(hit);
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.lease_takeovers;
        c_.lease_takeovers.inc();
      }
      // Timed out with a live holder still computing: fall through and
      // compute without the lease — duplicated work beats an unbounded
      // block (results are bit-identical either way).
    }
  }

  if (outcome) *outcome = StoreOutcome::kComputed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.computes;
    c_.computes.inc();
  }
  core::HopFeatures hops = compute();
  HOGA_CHECK(hops.num_hops() == key.num_hops,
             "FeatureStore: compute returned K = " << hops.num_hops()
                                                   << " for a key with K = "
                                                   << key.num_hops);
  put(key, hops);
  return hops;
}

core::HopFeatures FeatureStore::get_or_compute(const graph::Csr& adj_norm,
                                               const Tensor& x, int num_hops,
                                               StoreOutcome* outcome) {
  const FeatureKey key{graph_digest(adj_norm, x), num_hops};
  return get_or_compute(
      key, x.size(1),
      [&] { return core::HopFeatures::compute(adj_norm, x, num_hops); },
      outcome);
}

void FeatureStore::put(const FeatureKey& key, const core::HopFeatures& hops) {
  HOGA_CHECK(hops.num_hops() == key.num_hops,
             "FeatureStore::put: features have K = "
                 << hops.num_hops() << ", key says K = " << key.num_hops);
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_memory_locked(key.content, hops);
    // The shard is about to exist (or at least be retried): a stale "no
    // shard here" memo must not outlive this put.
    forget_negative_locked(key);
  }
  if (config_.directory.empty()) return;
  const std::string path = shard_path(key);
  bool wrote = false;
  try {
    fault::maybe_fail_store_write(path);
    storage::atomic_write_durable(path, encode_shard(key, hops));
    wrote = true;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shard_writes;
    c_.shard_writes.inc();
  } catch (const std::exception&) {
    // A failed shard write degrades the store to memory-only for this key;
    // the features themselves are already in hand and in the LRU tier.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_errors;
    c_.write_errors.inc();
  }
  if (wrote && config_.max_shard_files > 0) {
    enforce_shard_cap(key.shard_name());
  }
}

void FeatureStore::enforce_shard_cap(const std::string& keep_name) {
  namespace fs = std::filesystem;
  struct Shard {
    fs::file_time_type mtime;
    std::string name;
  };
  std::vector<Shard> shards;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 5) != ".feat") continue;
    if (name == keep_name) continue;  // never evict the shard just written
    shards.push_back({entry.last_write_time(ec), name});
  }
  // keep_name itself occupies one slot of the cap.
  if (shards.size() + 1 <= config_.max_shard_files) return;
  const std::size_t excess = shards.size() + 1 - config_.max_shard_files;
  std::sort(shards.begin(), shards.end(), [](const Shard& a, const Shard& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.name < b.name;
  });
  for (std::size_t i = 0; i < excess && i < shards.size(); ++i) {
    fs::remove(fs::path(config_.directory) / shards[i].name, ec);
    if (ec) continue;
    obs::ledger_event("store.shard_eviction", {{"shard", shards[i].name}});
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shard_evictions;
    c_.shard_evictions.inc();
  }
}

StoreStats FeatureStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FeatureStore::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = StoreStats{};
}

std::size_t FeatureStore::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_bytes_;
}

std::size_t FeatureStore::memory_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace hoga::store
