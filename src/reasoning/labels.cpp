#include "reasoning/labels.hpp"

#include <algorithm>

#include "aig/cuts.hpp"
#include "aig/truth.hpp"

namespace hoga::reasoning {

const char* node_class_name(NodeClass c) {
  switch (c) {
    case NodeClass::kMaj: return "MAJ";
    case NodeClass::kXor: return "XOR";
    case NodeClass::kShared: return "MAJ&XOR";
    case NodeClass::kPlain: return "plain";
  }
  return "?";
}

std::vector<NodeClass> functional_labels(const aig::Aig& g) {
  // 3-input cuts suffice for XOR3/MAJ3; they include the 2-input cuts needed
  // for XOR2 (half-adder sums).
  const auto cuts = aig::enumerate_cuts(g, {.k = 3, .max_cuts = 16});
  const aig::Tt xor2 = aig::tt_var(0) ^ aig::tt_var(1);
  const aig::Tt xor3 = aig::tt_xor3();
  const aig::Tt maj3 = aig::tt_maj3();

  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  std::vector<bool> in_xor(n, false), in_maj(n, false);

  // Marks the root and every interior AND node of the matched cut cone
  // (DFS from root, stopping at the cut leaves).
  auto mark_cone = [&](aig::NodeId root, const std::vector<aig::NodeId>& leaves,
                       std::vector<bool>& flag) {
    std::vector<aig::NodeId> stack{root};
    while (!stack.empty()) {
      const aig::NodeId id = stack.back();
      stack.pop_back();
      if (flag[id]) continue;
      flag[id] = true;
      const auto& node = g.node(id);
      for (aig::Lit f : {node.fanin0, node.fanin1}) {
        const aig::NodeId fid = aig::lit_node(f);
        if (!g.is_and(fid)) continue;
        if (std::find(leaves.begin(), leaves.end(), fid) != leaves.end()) {
          continue;
        }
        stack.push_back(fid);
      }
    }
  };

  for (aig::NodeId id = 0; id < static_cast<aig::NodeId>(g.num_nodes());
       ++id) {
    if (!g.is_and(id)) continue;
    for (const aig::Cut& cut : cuts[id]) {
      if (cut.size() == 1 && cut.leaves[0] == id) continue;
      if (cut.size() == 2) {
        // XOR2 up to phases: {xor2, xnor2}.
        if (aig::tt_equal(cut.tt, xor2, 2) ||
            aig::tt_equal(cut.tt, aig::tt_not(xor2, 2), 2)) {
          if (!in_xor[id]) mark_cone(id, cut.leaves, in_xor);
        }
      } else if (cut.size() == 3) {
        if (aig::tt_matches_up_to_phase3(cut.tt, xor3) && !in_xor[id]) {
          mark_cone(id, cut.leaves, in_xor);
        }
        if (aig::tt_matches_up_to_phase3(cut.tt, maj3) && !in_maj[id]) {
          mark_cone(id, cut.leaves, in_maj);
        }
      }
    }
  }

  std::vector<NodeClass> labels(n, NodeClass::kPlain);
  for (std::size_t id = 0; id < n; ++id) {
    if (in_xor[id] && in_maj[id]) {
      labels[id] = NodeClass::kShared;
    } else if (in_xor[id]) {
      labels[id] = NodeClass::kXor;
    } else if (in_maj[id]) {
      labels[id] = NodeClass::kMaj;
    }
  }
  return labels;
}

std::array<std::int64_t, kNumClasses> class_histogram(
    const std::vector<NodeClass>& labels) {
  std::array<std::int64_t, kNumClasses> h{};
  for (NodeClass c : labels) h[static_cast<std::size_t>(c)]++;
  return h;
}

}  // namespace hoga::reasoning
