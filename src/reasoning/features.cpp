#include "reasoning/features.hpp"

#include <algorithm>
#include <cmath>

namespace hoga::reasoning {

Tensor node_features(const aig::Aig& g) {
  const std::int64_t n = g.num_nodes();
  Tensor x({n, kNodeFeatureDim});
  std::vector<bool> drives_po(static_cast<std::size_t>(n), false);
  for (aig::Lit po : g.pos()) drives_po[aig::lit_node(po)] = true;
  const auto fanouts = g.fanout_counts();
  for (aig::NodeId id = 0; id < static_cast<aig::NodeId>(n); ++id) {
    float* row = x.data() + static_cast<std::int64_t>(id) * kNodeFeatureDim;
    const auto& node = g.node(id);
    if (g.is_pi(id)) row[0] = 1.f;
    if (g.is_and(id)) {
      row[1] = 1.f;
      const int ncompl = (aig::lit_is_compl(node.fanin0) ? 1 : 0) +
                         (aig::lit_is_compl(node.fanin1) ? 1 : 0);
      row[2 + ncompl] = 1.f;
    }
    if (drives_po[id]) row[5] = 1.f;
    if (g.is_const0(id)) row[6] = 1.f;
    const int fo = fanouts[id];
    if (fo >= 1) row[7 + std::min(fo - 1, 3)] = 1.f;
    row[11] = std::log1p(static_cast<float>(std::min(fo, 16))) / 4.f;
  }
  return x;
}

graph::Csr to_fanin_graph(const aig::Aig& g) {
  std::vector<graph::Edge> edges;
  const auto structural = g.structural_edges();
  edges.reserve(structural.size());
  for (const auto& e : structural) {
    edges.push_back({static_cast<std::int64_t>(e.dst),
                     static_cast<std::int64_t>(e.src)});
  }
  return graph::Csr::from_edges(g.num_nodes(), edges).normalized_row();
}

graph::Csr to_graph(const aig::Aig& g) {
  std::vector<graph::Edge> edges;
  const auto structural = g.structural_edges();
  edges.reserve(structural.size());
  for (const auto& e : structural) {
    edges.push_back({static_cast<std::int64_t>(e.src),
                     static_cast<std::int64_t>(e.dst)});
  }
  return graph::Csr::from_edges_undirected(g.num_nodes(), edges);
}

}  // namespace hoga::reasoning
