#pragma once
// Gamora-style functional labeling (paper §IV-C): classify every node of an
// AIG as the root of a MAJ operation, an XOR operation, both ("shared"), or
// plain logic. Ground truth comes from symbolic cut matching — computing the
// function of each small cut and testing it against XOR/MAJ up to input and
// output phases — which is exactly what Gamora distills from ABC.

#include <array>
#include <vector>

#include "aig/aig.hpp"

namespace hoga::reasoning {

enum class NodeClass : std::uint8_t {
  kMaj = 0,     // root of MAJ3 (adder carry-out)
  kXor = 1,     // root of XOR2/XOR3 (adder sum)
  kShared = 2,  // root of both under different cuts
  kPlain = 3,   // everything else (PIs, plain ANDs, ...)
};

constexpr int kNumClasses = 4;

const char* node_class_name(NodeClass c);

/// Functional labels for all nodes (index = node id).
std::vector<NodeClass> functional_labels(const aig::Aig& aig);

/// Per-class node counts.
std::array<std::int64_t, kNumClasses> class_histogram(
    const std::vector<NodeClass>& labels);

}  // namespace hoga::reasoning
