#pragma once
// Graph-learning export of AIGs: node features and adjacency, shared by the
// QoR task (Figure 3b) and the functional-reasoning task (Figure 3c).
//
// Features mirror the baselines': node type one-hots plus the number of
// complemented fanin edges — deliberately local and cheap, so everything
// structural must be learned from the graph (or, for HOGA, from hop-wise
// features).

#include "aig/aig.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace hoga::reasoning {

/// Feature width of node_features().
constexpr std::int64_t kNodeFeatureDim = 12;

/// [n, kNodeFeatureDim] per-node features:
/// [is_pi, is_and, #compl-fanins==0, ==1, ==2, drives_po, is_const0,
///  fanout==1, ==2, ==3, >=4, log1p(fanout)/4].
Tensor node_features(const aig::Aig& g);

/// Symmetrized structural adjacency (fanin->node edges, both directions),
/// one graph node per AIG node (including const-0 and PIs).
graph::Csr to_graph(const aig::Aig& g);

/// Directed fanin adjacency, row-normalized: row i averages the fanins of
/// node i. Circuit graphs are directed (Eq. 3's A), and propagating along
/// the fanin direction gives hop features of the logic *cone* that defines
/// a node's function — used alongside the symmetric hops for reasoning.
graph::Csr to_fanin_graph(const aig::Aig& g);

}  // namespace hoga::reasoning
