#pragma once
// Raw (non-differentiable) tensor kernels. The autograd layer wraps these and
// adds backward rules; models never call these directly except in
// inference-only fast paths.
//
// Broadcasting policy: binary elementwise ops accept (a) identical shapes, or
// (b) an rhs whose shape is a suffix of lhs's shape (e.g. bias [d] added to
// [n, d] or [b, k, d]). Anything else is an error — explicit beats clever.

#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace hoga::tensor_ops {

// -- Elementwise binary -------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

/// In-place a += b (same broadcast policy).
void add_inplace(Tensor& a, const Tensor& b);
/// In-place a += s * b (same shape only). The axpy workhorse for gradients.
void axpy_inplace(Tensor& a, float s, const Tensor& b);

// -- Scalar ---------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// -- Elementwise unary ------------------------------------------------------
Tensor relu(const Tensor& a);
/// 1 where a > 0 else 0 (relu's derivative mask).
Tensor relu_mask(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor neg(const Tensor& a);
Tensor apply(const Tensor& a, const std::function<float(float)>& f);

// -- Matmul ----------------------------------------------------------------
/// 2-D matrix product with optional operand transposes:
/// op(a) [m, k] x op(b) [k, n] -> [m, n].
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);
/// Batched 3-D matmul: [B, m, k] x [B, k, n] -> [B, m, n], with transposes
/// applied to the trailing two axes.
Tensor bmm(const Tensor& a, const Tensor& b, bool trans_a = false,
           bool trans_b = false);

Tensor transpose2d(const Tensor& a);

// -- Shape surgery -----------------------------------------------------------
/// Concatenate 2-D tensors [n, d_i] along columns -> [n, sum d_i].
Tensor concat_cols(const std::vector<Tensor>& parts);
/// Columns [lo, hi) of a 2-D tensor.
Tensor slice_cols(const Tensor& a, std::int64_t lo, std::int64_t hi);
/// Concatenate along axis 0 (all trailing dims equal).
Tensor concat_rows(const std::vector<Tensor>& parts);
/// Rows [lo, hi) along axis 0.
Tensor slice_rows(const Tensor& a, std::int64_t lo, std::int64_t hi);
/// Rows a[idx[0]], a[idx[1]], ... along axis 0.
Tensor gather_rows(const Tensor& a, const std::vector<std::int64_t>& idx);
/// target[idx[i]] += src[i] along axis 0 (gather_rows' adjoint).
void scatter_add_rows(Tensor& target, const std::vector<std::int64_t>& idx,
                      const Tensor& src);

/// Stack R equal-shape tensors into a new leading axis -> [R, ...].
Tensor stack(const std::vector<Tensor>& parts);

// -- Reductions ----------------------------------------------------------
float sum_all(const Tensor& a);
float mean_all(const Tensor& a);
/// Sum over axis 0 of a 2-D tensor -> [d].
Tensor sum_axis0(const Tensor& a);
/// Sum over the last axis -> shape with last dim dropped.
Tensor sum_lastdim(const Tensor& a);
Tensor mean_lastdim(const Tensor& a);
/// Row-wise mean of a 2-D tensor -> [n].
float frobenius_norm(const Tensor& a);

// -- Softmax / layernorm ---------------------------------------------------
/// Softmax along the last axis (numerically stabilized).
Tensor softmax_lastdim(const Tensor& a);
/// y = (x - mean) * rstd per row over the last axis; outputs mean/rstd with
/// the last dim dropped (needed by the backward pass).
struct LayerNormResult {
  Tensor y;
  Tensor mean;
  Tensor rstd;
};
LayerNormResult layer_norm_lastdim(const Tensor& a, float eps = 1e-5f);

}  // namespace hoga::tensor_ops
