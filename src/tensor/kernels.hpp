#pragma once
// Blocked compute kernels (DESIGN.md §11).
//
// Every dense hot loop in the stack bottoms out here: GEMM (matmul/bmm and
// every transposed-operand backward), CSR SpMM, and the fused softmax /
// layernorm row kernels. Two implementations exist for each:
//
//   - the *blocked* kernel: cache-tiled, operand-packed, register-tiled —
//     the production path;
//   - the *reference* kernel: the plainest possible serial loop, kept
//     permanently as the semantic oracle.
//
// fp-order contract (the invariant that makes A/B testing exact): for every
// output element, both implementations accumulate the same products in the
// same order — strictly increasing k (GEMM) or edge index (SpMM), through a
// single fp32 accumulator chain, with no FMA contraction (this translation
// unit is compiled with -ffp-contract=off) and no k-dimension padding
// (adding a padded +0.0 to a -0.0 accumulator would flip its sign bit).
// Packing may pad only the M/N register-tile directions, whose padded lanes
// are never stored. Under this contract blocked and reference outputs are
// bit-identical, so the parity suite compares with ==, not a tolerance —
// and notably the kernels never skip zero operands (the seed matmul's
// `if (av == 0.f) continue;` made fp behaviour and 0*NaN/-0.0 semantics
// input-dependent).
//
// Dispatch: the public entry points run the blocked kernel unless the
// HOGA_REF_KERNELS environment variable is set (non-empty, not "0") or a
// ScopedReferenceMode overrides it for the current thread.
//
// Scratch for pack panels comes from the per-thread bump arena when an
// ArenaScope is active (tensor/arena.hpp) and the heap otherwise.

#include <atomic>
#include <cstdint>

namespace hoga::kernels {

// -- Dispatch control --------------------------------------------------------

/// True when kernels should run the serial reference implementation:
/// HOGA_REF_KERNELS in the environment, or a ScopedReferenceMode(true).
bool reference_mode();

/// Thread-local override of reference_mode(), for A/B tests.
class ScopedReferenceMode {
 public:
  explicit ScopedReferenceMode(bool on);
  ~ScopedReferenceMode();

  ScopedReferenceMode(const ScopedReferenceMode&) = delete;
  ScopedReferenceMode& operator=(const ScopedReferenceMode&) = delete;

 private:
  int prev_;
};

// -- Kernel stats ------------------------------------------------------------

/// Always-on process-global tallies (relaxed atomics, one bump per call).
/// When an ambient obs registry is installed, the same quantities are also
/// mirrored to the "kernel.gemm_flops" / "kernel.pack_bytes" counters.
struct KernelStats {
  std::atomic<long long> gemm_calls{0};
  std::atomic<long long> gemm_flops{0};   // 2*m*n*k per call
  std::atomic<long long> pack_bytes{0};   // operand bytes staged into panels
  std::atomic<long long> spmm_calls{0};
  std::atomic<long long> spmm_flops{0};   // 2*nnz*d per call
};
KernelStats& stats();
void reset_stats();

// -- GEMM --------------------------------------------------------------------
// c[m, n] = op(a) x op(b), where op transposes when the flag is set.
// a is [m, k] with leading dimension lda (or [k, m] when trans_a), b is
// [k, n] with leading dimension ldb (or [n, k] when trans_b). c is written
// densely (every element stored, k == 0 writes zeros).

/// Dispatching entry point (blocked unless reference_mode()).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t n, std::int64_t k, std::int64_t lda, std::int64_t ldb,
          bool trans_a, bool trans_b);

/// Cache-blocked, operand-packed implementation (MC/KC/NC panels, MR x NR
/// register tile, lazy-zero accumulation on the first KC panel).
void gemm_blocked(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, bool trans_a, bool trans_b);

/// Serial i-k-j reference (no zero-skip); the semantic oracle.
void gemm_reference(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, bool trans_a, bool trans_b);

/// Batched GEMM over `batch` independent problems at regular strides:
/// equivalent to `batch` gemm() calls (same dispatch, same fp contract) but
/// stats/obs-counted once — the bmm and fused-attention workhorse.
void gemm_batched(const float* a, const float* b, float* c, std::int64_t batch,
                  std::int64_t m, std::int64_t n, std::int64_t k,
                  std::int64_t lda, std::int64_t ldb, std::int64_t stride_a,
                  std::int64_t stride_b, std::int64_t stride_c, bool trans_a,
                  bool trans_b);

// -- SpMM --------------------------------------------------------------------
// out[n_rows, d] = A x, A in CSR form (row_ptr/col/val), x is [*, d] indexed
// by the column ids. Per-row accumulation in edge order (see fp contract).

/// Dispatching entry point (row/column-blocked unless reference_mode()).
void spmm(const std::int64_t* row_ptr, const std::int64_t* col,
          const float* val, std::int64_t n_rows, const float* x,
          std::int64_t d, float* out);

/// Row-blocked implementation with column tiling for wide feature matrices.
void spmm_blocked(const std::int64_t* row_ptr, const std::int64_t* col,
                  const float* val, std::int64_t n_rows, const float* x,
                  std::int64_t d, float* out);

/// Plain per-row-per-edge reference loop.
void spmm_reference(const std::int64_t* row_ptr, const std::int64_t* col,
                    const float* val, std::int64_t n_rows, const float* x,
                    std::int64_t d, float* out);

// -- Fused row kernels -------------------------------------------------------
// Both dispatch like gemm/spmm; blocked and reference share one loop shape
// (there is no tiling to vary), so parity is exact by construction.

/// out[i, :] = softmax(in[i, :]) for `rows` rows of width d. in == out is
/// allowed (the fused-attention op runs it in place over GEMM output).
void softmax_rows(const float* in, float* out, std::int64_t rows,
                  std::int64_t d);
void softmax_rows_reference(const float* in, float* out, std::int64_t rows,
                            std::int64_t d);

/// Fused layernorm + affine over `rows` rows of width d:
///   xhat = (x - mean) * rstd;  y = gamma ? xhat * gamma + beta : xhat.
/// gamma/beta are [d] (both null for the non-affine form). mean/rstd are
/// [rows] outputs for backward; xhat (optional, [rows, d]) is stored when
/// the affine backward needs it. y == x is allowed only when xhat is null.
void layer_norm_rows(const float* x, std::int64_t rows, std::int64_t d,
                     float eps, const float* gamma, const float* beta,
                     float* y, float* mean, float* rstd, float* xhat);
void layer_norm_rows_reference(const float* x, std::int64_t rows,
                               std::int64_t d, float eps, const float* gamma,
                               const float* beta, float* y, float* mean,
                               float* rstd, float* xhat);

}  // namespace hoga::kernels
