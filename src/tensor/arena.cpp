#include "tensor/arena.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace hoga {
namespace {

// Allocation granularity in floats (64 bytes): keeps successive scratch
// buffers cache-line-separated so adjacent pack panels don't false-share.
constexpr std::size_t kAlignFloats = 16;
// Smallest block the arena reserves; sized so a typical epoch's deepest
// kernel nesting fits in one or two blocks.
constexpr std::size_t kMinBlockFloats = std::size_t{1} << 18;  // 1 MiB

std::size_t round_up(std::size_t v) {
  return (v + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

// One arena object per thread, living for the thread's lifetime so blocks
// reserved in one ArenaScope are reused by every later scope (this is what
// makes step 2..N of a training loop allocation-free).
thread_local Arena t_arena;
thread_local int t_scope_depth = 0;

}  // namespace

Arena* Arena::current() { return t_scope_depth > 0 ? &t_arena : nullptr; }

std::size_t Arena::in_use_floats() const {
  std::size_t floats = cur_offset_;
  for (std::size_t b = 0; b < cur_block_; ++b) floats += blocks_[b].floats;
  return floats;
}

float* Arena::alloc(std::int64_t floats) {
  HOGA_CHECK(floats >= 0, "Arena::alloc: negative size");
  const std::size_t need = round_up(std::max<std::size_t>(
      static_cast<std::size_t>(floats), 1));
  // Advance to the first block with room; blocks skipped here stay counted
  // as in-use (their tail slack is dead until release), which keeps marks a
  // simple (block, offset) pair.
  while (cur_block_ < blocks_.size() &&
         cur_offset_ + need > blocks_[cur_block_].floats) {
    ++cur_block_;
    cur_offset_ = 0;
  }
  if (cur_block_ == blocks_.size()) {
    const std::size_t last = blocks_.empty() ? 0 : blocks_.back().floats;
    const std::size_t size = std::max({need, 2 * last, kMinBlockFloats});
    blocks_.push_back(Block{std::make_unique<float[]>(size), size});
    reserved_bytes_ += size * sizeof(float);
  }
  float* p = blocks_[cur_block_].data.get() + cur_offset_;
  cur_offset_ += need;
  high_water_bytes_ =
      std::max(high_water_bytes_, in_use_floats() * sizeof(float));
  return p;
}

void Arena::release(Mark m) {
  HOGA_CHECK(m.block < cur_block_ ||
                 (m.block == cur_block_ && m.offset <= cur_offset_),
             "Arena::release: non-LIFO release");
  cur_block_ = m.block;
  cur_offset_ = m.offset;
}

void Arena::reset() {
  cur_block_ = 0;
  cur_offset_ = 0;
}

ArenaScope::ArenaScope() { ++t_scope_depth; }

ArenaScope::~ArenaScope() {
  if (--t_scope_depth > 0) return;
  // Outermost exit: publish the peak and hand the blocks back for reuse.
  if (obs::MetricsRegistry* m = obs::ambient().metrics) {
    obs::Counter c = m->counter("arena.high_water");
    const auto hw = static_cast<long long>(t_arena.high_water_bytes());
    if (hw > c.value()) c.inc(hw - c.value());  // counter as monotonic max
  }
  t_arena.reset();
}

Scratch::Scratch(std::int64_t floats) : arena_(Arena::current()) {
  if (arena_ != nullptr) {
    mark_ = arena_->mark();
    ptr_ = arena_->alloc(floats);
  } else {
    heap_ = std::make_unique<float[]>(
        static_cast<std::size_t>(std::max<std::int64_t>(floats, 1)));
    ptr_ = heap_.get();
  }
}

Scratch::~Scratch() {
  if (arena_ != nullptr) arena_->release(mark_);
}

}  // namespace hoga
