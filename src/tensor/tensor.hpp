#pragma once
// Dense row-major fp32 tensor.
//
// Deliberately simple: tensors are always contiguous and own (share) their
// storage; reshape shares storage, everything else copies. This is the
// numeric substrate for the autograd/nn stack that replaces PyTorch in this
// reproduction (see DESIGN.md §1).
//
// Storage is a type-erased shared owner plus a raw float pointer, so a
// tensor can alias memory it does not manage — e.g. a feature-store shard
// mapped straight from disk (from_external) — with the owner keeping the
// mapping alive for as long as any view of it exists.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hoga {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape.
std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" string for error messages.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (numel 0, rank 0).
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // -- Factories ------------------------------------------------------------
  static Tensor zeros(Shape shape);
  /// Uninitialized storage — for outputs every element of which is about to
  /// be written (kernel results, elementwise op outputs). Reading before
  /// writing is undefined; never use for accumulation targets.
  static Tensor empty(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Elements drawn i.i.d. from N(0, 1).
  static Tensor randn(Shape shape, Rng& rng);
  /// Elements drawn i.i.d. from U[lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.f, float hi = 1.f);
  /// Copies `values` (size must match shape).
  static Tensor from_vector(Shape shape, const std::vector<float>& values);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(std::int64_t n);
  /// Aliases external storage: `ptr` must point at shape_numel(shape) floats
  /// kept alive by `owner` (e.g. an mmap'd file). No copy is made; writes
  /// through the tensor write the external memory.
  static Tensor from_external(Shape shape, float* ptr,
                              std::shared_ptr<void> owner);

  // -- Introspection ---------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t axis) const;
  std::int64_t numel() const { return numel_; }
  bool defined() const { return static_cast<bool>(owner_); }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

  // -- Element access (bounds-checked) ---------------------------------------
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;
  /// Linear (flat) access.
  float& operator[](std::int64_t i) { return ptr_[check_flat(i)]; }
  float operator[](std::int64_t i) const { return ptr_[check_flat(i)]; }

  // -- Basic manipulation -----------------------------------------------------
  /// New tensor sharing storage with a different shape (numel must match).
  Tensor reshape(Shape new_shape) const;
  /// Deep copy.
  Tensor clone() const;
  void fill(float value);
  /// Copies values from `src` (same numel required; shape may differ).
  void copy_from(const Tensor& src);

  /// Max |a - b| over elements; requires same shape.
  static float max_abs_diff(const Tensor& a, const Tensor& b);
  /// True iff same shape and all elements within atol.
  static bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

  /// Human-readable dump (small tensors only; truncates large ones).
  std::string to_string(int max_per_dim = 8) const;

 private:
  std::int64_t check_flat(std::int64_t i) const {
    HOGA_CHECK(i >= 0 && i < numel_, "flat index " << i << " out of range 0.."
                                                   << numel_ - 1);
    return i;
  }
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::int64_t numel_ = 0;
  std::shared_ptr<void> owner_;  // keeps ptr_'s backing storage alive
  float* ptr_ = nullptr;
};

}  // namespace hoga
