// Blocked compute kernels. This translation unit is compiled with
// -ffp-contract=off (see src/CMakeLists.txt): the fp-order contract in
// kernels.hpp promises that blocked and reference kernels round identically
// per accumulation step, which FMA contraction — applied by the optimizer to
// one loop shape but not the other — would silently break.

#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "obs/obs.hpp"
#include "tensor/arena.hpp"
#include "util/check.hpp"

namespace hoga::kernels {
namespace {

// Register tile: kMr x kNr fp32 accumulators (8 YMM-widths worth) — small
// enough to stay resident, big enough to amortize the packed-operand loads.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
// Cache panels: A panel (kMc x kKc, 64 KiB) targets L2, B panel
// (kKc x kNc, up to 1 MiB) streams once per KC step.
constexpr std::int64_t kMc = 64;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 1024;

// Below this problem volume the packing traffic outweighs the register
// tiling; the serial loop (identical bits, see contract) runs instead.
constexpr std::int64_t kBlockedThreshold = 32 * 32 * 32;

std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}

int env_reference_mode() {
  static const int v = [] {
    const char* e = std::getenv("HOGA_REF_KERNELS");
    return (e != nullptr && *e != '\0' && std::string_view(e) != "0") ? 1 : 0;
  }();
  return v;
}

thread_local int t_ref_override = -1;  // -1 = defer to the environment

// A panel pack: ceil(mc/kMr) slivers, each [kc][kMr] — the micro kernel
// reads one sliver with unit stride regardless of trans_a. Rows past mc are
// zero-padded (M-direction padding only; padded lanes are never stored).
void pack_a(const float* a, std::int64_t lda, bool trans, std::int64_t ic,
            std::int64_t mc, std::int64_t pc, std::int64_t kc, float* dst) {
  for (std::int64_t ir = 0; ir < mc; ir += kMr) {
    const std::int64_t mr = std::min(kMr, mc - ir);
    float* sl = dst + (ir / kMr) * (kc * kMr);
    if (!trans) {
      for (std::int64_t ii = 0; ii < kMr; ++ii) {
        if (ii < mr) {
          const float* src = a + (ic + ir + ii) * lda + pc;
          for (std::int64_t kk = 0; kk < kc; ++kk) sl[kk * kMr + ii] = src[kk];
        } else {
          for (std::int64_t kk = 0; kk < kc; ++kk) sl[kk * kMr + ii] = 0.f;
        }
      }
    } else {
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (pc + kk) * lda + ic + ir;
        float* dk = sl + kk * kMr;
        for (std::int64_t ii = 0; ii < mr; ++ii) dk[ii] = src[ii];
        for (std::int64_t ii = mr; ii < kMr; ++ii) dk[ii] = 0.f;
      }
    }
  }
}

// B panel pack: ceil(nc/kNr) slivers, each [kc][kNr]; N-direction padding
// only. Loop nesting follows the source stride so reads stay contiguous for
// both trans_b settings — this is what turns the seed's strided
// transposed-operand inner loops into unit-stride ones.
void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t pc,
            std::int64_t kc, std::int64_t jc, std::int64_t nc, float* dst) {
  for (std::int64_t jr = 0; jr < nc; jr += kNr) {
    const std::int64_t nr = std::min(kNr, nc - jr);
    float* sl = dst + (jr / kNr) * (kc * kNr);
    if (!trans) {
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = b + (pc + kk) * ldb + jc + jr;
        float* dk = sl + kk * kNr;
        for (std::int64_t jj = 0; jj < nr; ++jj) dk[jj] = src[jj];
        for (std::int64_t jj = nr; jj < kNr; ++jj) dk[jj] = 0.f;
      }
    } else {
      for (std::int64_t jj = 0; jj < kNr; ++jj) {
        if (jj < nr) {
          const float* src = b + (jc + jr + jj) * ldb + pc;
          for (std::int64_t kk = 0; kk < kc; ++kk) sl[kk * kNr + jj] = src[kk];
        } else {
          for (std::int64_t kk = 0; kk < kc; ++kk) sl[kk * kNr + jj] = 0.f;
        }
      }
    }
  }
}

// One packed B sliver row as a compiler vector (GCC/Clang vector extension):
// the += below compiles to the widest mul/add the target has and degrades
// to split ops on narrow ISAs — without intrinsics and without changing fp
// semantics (lanes are independent accumulator chains; contraction is off).
typedef float BVec __attribute__((vector_size(sizeof(float) * kNr)));

// kMr x kNr register tile over one KC panel. `first` selects lazy-zero
// accumulation (no C read on the first panel); later panels resume the
// k-ascending chain from the stored fp32 value, which rounds identically to
// having kept it in a register. Padded lanes compute but are never stored.
void micro_kernel(std::int64_t kc, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  bool first) {
  float buf[kMr][kNr] = {};
  if (!first) {
    for (std::int64_t i = 0; i < mr; ++i) {
      for (std::int64_t j = 0; j < nr; ++j) buf[i][j] = c[i * ldc + j];
    }
  }
  BVec acc[kMr];
  for (int i = 0; i < kMr; ++i) std::memcpy(&acc[i], buf[i], sizeof(BVec));
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* ak = ap + kk * kMr;
    BVec bk;
    std::memcpy(&bk, bp + kk * kNr, sizeof(BVec));
    for (int i = 0; i < kMr; ++i) acc[i] += ak[i] * bk;
  }
  for (int i = 0; i < kMr; ++i) std::memcpy(buf[i], &acc[i], sizeof(BVec));
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] = buf[i][j];
  }
}

// Source floats staged into panels by one blocked call (A is repacked once
// per NC column block; B once per KC panel). Used for both the stats tally
// and the obs mirror.
std::int64_t blocked_pack_floats(std::int64_t m, std::int64_t n,
                                 std::int64_t k) {
  const std::int64_t jc_iters = (n + kNc - 1) / kNc;
  return jc_iters * m * k + k * n;
}

void zero_fill(float* c, std::int64_t count) {
  std::fill(c, c + count, 0.f);
}

}  // namespace

bool reference_mode() {
  return t_ref_override >= 0 ? t_ref_override != 0 : env_reference_mode() != 0;
}

ScopedReferenceMode::ScopedReferenceMode(bool on) : prev_(t_ref_override) {
  t_ref_override = on ? 1 : 0;
}

ScopedReferenceMode::~ScopedReferenceMode() { t_ref_override = prev_; }

KernelStats& stats() {
  static KernelStats s;
  return s;
}

void reset_stats() {
  auto& s = stats();
  s.gemm_calls.store(0, std::memory_order_relaxed);
  s.gemm_flops.store(0, std::memory_order_relaxed);
  s.pack_bytes.store(0, std::memory_order_relaxed);
  s.spmm_calls.store(0, std::memory_order_relaxed);
  s.spmm_flops.store(0, std::memory_order_relaxed);
}

void gemm_reference(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, bool trans_a, bool trans_b) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* orow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) orow[j] = 0.f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = trans_a ? a[kk * lda + i] : a[i * lda + kk];
      if (!trans_b) {
        const float* brow = b + kk * ldb;
        for (std::int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      } else {
        for (std::int64_t j = 0; j < n; ++j) orow[j] += av * b[j * ldb + kk];
      }
    }
  }
}

void gemm_blocked(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, bool trans_a, bool trans_b) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    zero_fill(c, m * n);
    return;
  }
  const std::int64_t kc_max = std::min(k, kKc);
  const std::int64_t mc_pad = round_up(std::min(m, kMc), kMr);
  const std::int64_t nc_pad = round_up(std::min(n, kNc), kNr);
  Scratch apack(mc_pad * kc_max);
  Scratch bpack(nc_pad * kc_max);
  std::int64_t packed = 0;
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min(kNc, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t kc = std::min(kKc, k - pc);
      const bool first = pc == 0;
      pack_b(b, ldb, trans_b, pc, kc, jc, nc, bpack.data());
      packed += kc * nc;
      for (std::int64_t ic = 0; ic < m; ic += kMc) {
        const std::int64_t mc = std::min(kMc, m - ic);
        pack_a(a, lda, trans_a, ic, mc, pc, kc, apack.data());
        packed += mc * kc;
        for (std::int64_t jr = 0; jr < nc; jr += kNr) {
          const std::int64_t nr = std::min(kNr, nc - jr);
          const float* bp = bpack.data() + (jr / kNr) * (kc * kNr);
          for (std::int64_t ir = 0; ir < mc; ir += kMr) {
            const std::int64_t mr = std::min(kMr, mc - ir);
            micro_kernel(kc, apack.data() + (ir / kMr) * (kc * kMr), bp,
                         c + (ic + ir) * n + jc + jr, n, mr, nr, first);
          }
        }
      }
    }
  }
  stats().pack_bytes.fetch_add(
      packed * static_cast<std::int64_t>(sizeof(float)),
      std::memory_order_relaxed);
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t n, std::int64_t k, std::int64_t lda, std::int64_t ldb,
          bool trans_a, bool trans_b) {
  gemm_batched(a, b, c, 1, m, n, k, lda, ldb, 0, 0, 0, trans_a, trans_b);
}

void gemm_batched(const float* a, const float* b, float* c, std::int64_t batch,
                  std::int64_t m, std::int64_t n, std::int64_t k,
                  std::int64_t lda, std::int64_t ldb, std::int64_t stride_a,
                  std::int64_t stride_b, std::int64_t stride_c, bool trans_a,
                  bool trans_b) {
  const bool ref = reference_mode();
  const bool blocked = !ref && m * n * k >= kBlockedThreshold;
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    const float* pa = a + bi * stride_a;
    const float* pb = b + bi * stride_b;
    float* pc = c + bi * stride_c;
    if (blocked) {
      gemm_blocked(pa, pb, pc, m, n, k, lda, ldb, trans_a, trans_b);
    } else {
      gemm_reference(pa, pb, pc, m, n, k, lda, ldb, trans_a, trans_b);
    }
  }
  auto& s = stats();
  const long long flops = 2ll * batch * m * n * k;
  s.gemm_calls.fetch_add(batch, std::memory_order_relaxed);
  s.gemm_flops.fetch_add(flops, std::memory_order_relaxed);
  if (obs::ambient().metrics != nullptr) {
    obs::count("kernel.gemm_flops", flops);
    if (blocked) {
      obs::count("kernel.pack_bytes",
                 batch * blocked_pack_floats(m, n, k) *
                     static_cast<long long>(sizeof(float)));
    }
  }
}

void spmm_reference(const std::int64_t* row_ptr, const std::int64_t* col,
                    const float* val, std::int64_t n_rows, const float* x,
                    std::int64_t d, float* out) {
  for (std::int64_t i = 0; i < n_rows; ++i) {
    float* orow = out + i * d;
    for (std::int64_t j = 0; j < d; ++j) orow[j] = 0.f;
    for (std::int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      const float w = val[e];
      const float* xrow = x + col[e] * d;
      for (std::int64_t j = 0; j < d; ++j) orow[j] += w * xrow[j];
    }
  }
}

void spmm_blocked(const std::int64_t* row_ptr, const std::int64_t* col,
                  const float* val, std::int64_t n_rows, const float* x,
                  std::int64_t d, float* out) {
  // Row blocks keep a small working set of output rows hot; column tiles
  // bound the bytes each gathered x row drags through cache when d is wide.
  // Per output element the accumulation is still a single edge-ascending
  // chain — bit-identical to the reference (fp contract).
  constexpr std::int64_t kRowBlock = 64;
  constexpr std::int64_t kColTile = 384;
  for (std::int64_t r0 = 0; r0 < n_rows; r0 += kRowBlock) {
    const std::int64_t r1 = std::min(n_rows, r0 + kRowBlock);
    for (std::int64_t j0 = 0; j0 < d; j0 += kColTile) {
      const std::int64_t w = std::min(kColTile, d - j0);
      for (std::int64_t i = r0; i < r1; ++i) {
        float* orow = out + i * d + j0;
        for (std::int64_t j = 0; j < w; ++j) orow[j] = 0.f;
        for (std::int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
          const float we = val[e];
          const float* xrow = x + col[e] * d + j0;
          for (std::int64_t j = 0; j < w; ++j) orow[j] += we * xrow[j];
        }
      }
    }
  }
}

void spmm(const std::int64_t* row_ptr, const std::int64_t* col,
          const float* val, std::int64_t n_rows, const float* x,
          std::int64_t d, float* out) {
  if (reference_mode()) {
    spmm_reference(row_ptr, col, val, n_rows, x, d, out);
  } else {
    spmm_blocked(row_ptr, col, val, n_rows, x, d, out);
  }
  auto& s = stats();
  const long long nnz = n_rows > 0 ? row_ptr[n_rows] : 0;
  s.spmm_calls.fetch_add(1, std::memory_order_relaxed);
  s.spmm_flops.fetch_add(2ll * nnz * d, std::memory_order_relaxed);
}

namespace {

// Shared softmax/layernorm row loops: there is no tiling to vary between
// blocked and reference, so one implementation serves both dispatch names
// and parity is exact by construction.

void softmax_rows_impl(const float* in, float* out, std::int64_t rows,
                       std::int64_t d) {
  if (d == 0) return;
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = in + i * d;
    float* orow = out + i * d;
    float mx = row[0];
    for (std::int64_t j = 1; j < d; ++j) mx = std::max(mx, row[j]);
    double s = 0;
    for (std::int64_t j = 0; j < d; ++j) {
      orow[j] = std::exp(row[j] - mx);
      s += orow[j];
    }
    const float inv = static_cast<float>(1.0 / s);
    for (std::int64_t j = 0; j < d; ++j) orow[j] *= inv;
  }
}

void layer_norm_rows_impl(const float* x, std::int64_t rows, std::int64_t d,
                          float eps, const float* gamma, const float* beta,
                          float* y, float* mean, float* rstd, float* xhat) {
  HOGA_CHECK(d > 0, "layer_norm_rows: empty last dim");
  HOGA_CHECK((gamma == nullptr) == (beta == nullptr),
             "layer_norm_rows: gamma/beta must be both set or both null");
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = x + i * d;
    double m = 0;
    for (std::int64_t j = 0; j < d; ++j) m += row[j];
    m /= static_cast<double>(d);
    double var = 0;
    for (std::int64_t j = 0; j < d; ++j) {
      const double c = row[j] - m;
      var += c * c;
    }
    var /= static_cast<double>(d);
    const float mf = static_cast<float>(m);
    const float rs = static_cast<float>(1.0 / std::sqrt(var + eps));
    mean[i] = mf;
    rstd[i] = rs;
    float* yrow = y + i * d;
    float* xrow = xhat != nullptr ? xhat + i * d : nullptr;
    for (std::int64_t j = 0; j < d; ++j) {
      const float xh = (row[j] - mf) * rs;
      if (xrow != nullptr) xrow[j] = xh;
      yrow[j] = gamma != nullptr ? xh * gamma[j] + beta[j] : xh;
    }
  }
}

}  // namespace

void softmax_rows(const float* in, float* out, std::int64_t rows,
                  std::int64_t d) {
  softmax_rows_impl(in, out, rows, d);
}

void softmax_rows_reference(const float* in, float* out, std::int64_t rows,
                            std::int64_t d) {
  softmax_rows_impl(in, out, rows, d);
}

void layer_norm_rows(const float* x, std::int64_t rows, std::int64_t d,
                     float eps, const float* gamma, const float* beta,
                     float* y, float* mean, float* rstd, float* xhat) {
  layer_norm_rows_impl(x, rows, d, eps, gamma, beta, y, mean, rstd, xhat);
}

void layer_norm_rows_reference(const float* x, std::int64_t rows,
                               std::int64_t d, float eps, const float* gamma,
                               const float* beta, float* y, float* mean,
                               float* rstd, float* xhat) {
  layer_norm_rows_impl(x, rows, d, eps, gamma, beta, y, mean, rstd, xhat);
}

}  // namespace hoga::kernels
