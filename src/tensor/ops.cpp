#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hpp"

namespace hoga::tensor_ops {
namespace {

// Validates the broadcast contract (identical shapes, or rhs a suffix of lhs)
// and returns the rhs period (rhs numel).
std::int64_t broadcast_period(const Tensor& a, const Tensor& b,
                              const char* op) {
  if (a.shape() == b.shape()) return a.numel();
  const auto& sa = a.shape();
  const auto& sb = b.shape();
  HOGA_CHECK(sb.size() <= sa.size() && !sb.empty(),
             op << ": cannot broadcast " << shape_to_string(sb) << " to "
                << shape_to_string(sa));
  const std::size_t off = sa.size() - sb.size();
  for (std::size_t i = 0; i < sb.size(); ++i) {
    HOGA_CHECK(sa[off + i] == sb[i],
               op << ": cannot broadcast " << shape_to_string(sb) << " to "
                  << shape_to_string(sa));
  }
  return b.numel();
}

template <typename F>
Tensor binary(const Tensor& a, const Tensor& b, const char* name, F f) {
  const std::int64_t period = broadcast_period(a, b, name);
  Tensor out = Tensor::empty(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  if (period == n) {
    for (std::int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  } else {
    for (std::int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i % period]);
  }
  return out;
}

template <typename F>
Tensor unary(const Tensor& a, F f) {
  Tensor out = Tensor::empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary(a, b, "div", [](float x, float y) { return x / y; });
}

void add_inplace(Tensor& a, const Tensor& b) {
  const std::int64_t period = broadcast_period(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  if (period == n) {
    for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i % period];
  }
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  HOGA_CHECK(a.numel() == b.numel(), "axpy_inplace: numel mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += s * pb[i];
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}

Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.f ? x : 0.f; });
}
Tensor relu_mask(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.f ? 1.f : 0.f; });
}
Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary(a, [](float x) { return std::log(x); });
}
Tensor sigmoid(const Tensor& a) {
  return unary(a, [](float x) { return 1.f / (1.f + std::exp(-x)); });
}
Tensor tanh(const Tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}
Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; });
}
Tensor apply(const Tensor& a, const std::function<float(float)>& f) {
  return unary(a, f);
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  HOGA_CHECK(a.dim() == 2 && b.dim() == 2, "matmul: need 2-D operands, got "
                                               << shape_to_string(a.shape())
                                               << " x "
                                               << shape_to_string(b.shape()));
  const std::int64_t m = trans_a ? a.size(1) : a.size(0);
  const std::int64_t k = trans_a ? a.size(0) : a.size(1);
  const std::int64_t kb = trans_b ? b.size(1) : b.size(0);
  const std::int64_t n = trans_b ? b.size(0) : b.size(1);
  HOGA_CHECK(k == kb, "matmul: inner dims " << k << " vs " << kb);
  Tensor out = Tensor::empty({m, n});
  kernels::gemm(a.data(), b.data(), out.data(), m, n, k, a.size(1), b.size(1),
                trans_a, trans_b);
  return out;
}

Tensor bmm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  HOGA_CHECK(a.dim() == 3 && b.dim() == 3, "bmm: need 3-D operands, got "
                                               << shape_to_string(a.shape())
                                               << " x "
                                               << shape_to_string(b.shape()));
  HOGA_CHECK(a.size(0) == b.size(0), "bmm: batch dims differ");
  const std::int64_t B = a.size(0);
  const std::int64_t m = trans_a ? a.size(2) : a.size(1);
  const std::int64_t k = trans_a ? a.size(1) : a.size(2);
  const std::int64_t kb = trans_b ? b.size(2) : b.size(1);
  const std::int64_t n = trans_b ? b.size(1) : b.size(2);
  HOGA_CHECK(k == kb, "bmm: inner dims " << k << " vs " << kb);
  Tensor out = Tensor::empty({B, m, n});
  kernels::gemm_batched(a.data(), b.data(), out.data(), B, m, n, k, a.size(2),
                        b.size(2), a.size(1) * a.size(2), b.size(1) * b.size(2),
                        m * n, trans_a, trans_b);
  return out;
}

Tensor transpose2d(const Tensor& a) {
  HOGA_CHECK(a.dim() == 2, "transpose2d: need 2-D");
  const std::int64_t m = a.size(0), n = a.size(1);
  Tensor out = Tensor::empty({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out.data()[j * m + i] = a.data()[i * n + j];
    }
  }
  return out;
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  HOGA_CHECK(!parts.empty(), "concat_cols: empty input");
  const std::int64_t n = parts[0].size(0);
  std::int64_t total = 0;
  for (const auto& p : parts) {
    HOGA_CHECK(p.dim() == 2 && p.size(0) == n,
               "concat_cols: inconsistent shapes");
    total += p.size(1);
  }
  Tensor out = Tensor::empty({n, total});
  std::int64_t col = 0;
  for (const auto& p : parts) {
    const std::int64_t d = p.size(1);
    for (std::int64_t i = 0; i < n; ++i) {
      std::copy(p.data() + i * d, p.data() + (i + 1) * d,
                out.data() + i * total + col);
    }
    col += d;
  }
  return out;
}

Tensor slice_cols(const Tensor& a, std::int64_t lo, std::int64_t hi) {
  HOGA_CHECK(a.dim() == 2, "slice_cols: need 2-D");
  HOGA_CHECK(0 <= lo && lo <= hi && hi <= a.size(1),
             "slice_cols: bad range [" << lo << ", " << hi << ")");
  const std::int64_t n = a.size(0), d = a.size(1), w = hi - lo;
  Tensor out = Tensor::empty({n, w});
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy(a.data() + i * d + lo, a.data() + i * d + hi,
              out.data() + i * w);
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  HOGA_CHECK(!parts.empty(), "concat_rows: empty input");
  Shape tail(parts[0].shape().begin() + 1, parts[0].shape().end());
  std::int64_t rows = 0;
  for (const auto& p : parts) {
    Shape t(p.shape().begin() + 1, p.shape().end());
    HOGA_CHECK(t == tail, "concat_rows: trailing dims differ");
    rows += p.size(0);
  }
  Shape out_shape;
  out_shape.push_back(rows);
  out_shape.insert(out_shape.end(), tail.begin(), tail.end());
  Tensor out = Tensor::empty(out_shape);
  float* po = out.data();
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), po);
    po += p.numel();
  }
  return out;
}

Tensor slice_rows(const Tensor& a, std::int64_t lo, std::int64_t hi) {
  HOGA_CHECK(a.dim() >= 1, "slice_rows: need rank >= 1");
  HOGA_CHECK(0 <= lo && lo <= hi && hi <= a.size(0),
             "slice_rows: bad range [" << lo << ", " << hi << ")");
  Shape out_shape = a.shape();
  out_shape[0] = hi - lo;
  const std::int64_t stride = a.numel() / std::max<std::int64_t>(1, a.size(0));
  Tensor out = Tensor::empty(out_shape);
  std::copy(a.data() + lo * stride, a.data() + hi * stride, out.data());
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<std::int64_t>& idx) {
  HOGA_CHECK(a.dim() >= 1, "gather_rows: need rank >= 1");
  const std::int64_t stride = a.numel() / std::max<std::int64_t>(1, a.size(0));
  Shape out_shape = a.shape();
  out_shape[0] = static_cast<std::int64_t>(idx.size());
  Tensor out = Tensor::empty(out_shape);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    HOGA_CHECK(idx[i] >= 0 && idx[i] < a.size(0),
               "gather_rows: index " << idx[i] << " out of range");
    std::copy(a.data() + idx[i] * stride, a.data() + (idx[i] + 1) * stride,
              out.data() + static_cast<std::int64_t>(i) * stride);
  }
  return out;
}

void scatter_add_rows(Tensor& target, const std::vector<std::int64_t>& idx,
                      const Tensor& src) {
  HOGA_CHECK(src.size(0) == static_cast<std::int64_t>(idx.size()),
             "scatter_add_rows: src rows != idx size");
  const std::int64_t stride =
      target.numel() / std::max<std::int64_t>(1, target.size(0));
  HOGA_CHECK(src.numel() == stride * src.size(0),
             "scatter_add_rows: row stride mismatch");
  for (std::size_t i = 0; i < idx.size(); ++i) {
    HOGA_CHECK(idx[i] >= 0 && idx[i] < target.size(0),
               "scatter_add_rows: index out of range");
    float* pt = target.data() + idx[i] * stride;
    const float* ps = src.data() + static_cast<std::int64_t>(i) * stride;
    for (std::int64_t j = 0; j < stride; ++j) pt[j] += ps[j];
  }
}

Tensor stack(const std::vector<Tensor>& parts) {
  HOGA_CHECK(!parts.empty(), "stack: empty input");
  for (const auto& p : parts) {
    HOGA_CHECK(p.shape() == parts[0].shape(), "stack: shapes differ");
  }
  Shape out_shape;
  out_shape.push_back(static_cast<std::int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), parts[0].shape().begin(),
                   parts[0].shape().end());
  Tensor out = Tensor::empty(out_shape);
  float* po = out.data();
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), po);
    po += p.numel();
  }
  return out;
}

float sum_all(const Tensor& a) {
  double s = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) s += a.data()[i];
  return static_cast<float>(s);
}

float mean_all(const Tensor& a) {
  HOGA_CHECK(a.numel() > 0, "mean_all: empty tensor");
  return sum_all(a) / static_cast<float>(a.numel());
}

Tensor sum_axis0(const Tensor& a) {
  HOGA_CHECK(a.dim() == 2, "sum_axis0: need 2-D");
  const std::int64_t n = a.size(0), d = a.size(1);
  Tensor out({d});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) out.data()[j] += row[j];
  }
  return out;
}

Tensor sum_lastdim(const Tensor& a) {
  HOGA_CHECK(a.dim() >= 1, "sum_lastdim: need rank >= 1");
  const std::int64_t d = a.size(-1);
  const std::int64_t outer = a.numel() / std::max<std::int64_t>(1, d);
  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  Tensor out = Tensor::empty(out_shape.empty() ? Shape{1} : out_shape);
  for (std::int64_t i = 0; i < outer; ++i) {
    double s = 0;
    const float* row = a.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) s += row[j];
    out.data()[i] = static_cast<float>(s);
  }
  return out;
}

Tensor mean_lastdim(const Tensor& a) {
  const std::int64_t d = a.size(-1);
  HOGA_CHECK(d > 0, "mean_lastdim: empty last dim");
  return mul_scalar(sum_lastdim(a), 1.f / static_cast<float>(d));
}

float frobenius_norm(const Tensor& a) {
  double s = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    s += static_cast<double>(a.data()[i]) * a.data()[i];
  }
  return static_cast<float>(std::sqrt(s));
}

Tensor softmax_lastdim(const Tensor& a) {
  HOGA_CHECK(a.dim() >= 1 && a.size(-1) > 0, "softmax_lastdim: bad shape");
  const std::int64_t d = a.size(-1);
  const std::int64_t outer = a.numel() / d;
  Tensor out = Tensor::empty(a.shape());
  kernels::softmax_rows(a.data(), out.data(), outer, d);
  return out;
}

LayerNormResult layer_norm_lastdim(const Tensor& a, float eps) {
  HOGA_CHECK(a.dim() >= 1 && a.size(-1) > 0, "layer_norm: bad shape");
  const std::int64_t d = a.size(-1);
  const std::int64_t outer = a.numel() / d;
  LayerNormResult r;
  r.y = Tensor::empty(a.shape());
  Shape stat_shape(a.shape().begin(), a.shape().end() - 1);
  if (stat_shape.empty()) stat_shape = {1};
  r.mean = Tensor::empty(stat_shape);
  r.rstd = Tensor::empty(stat_shape);
  kernels::layer_norm_rows(a.data(), outer, d, eps, nullptr, nullptr,
                           r.y.data(), r.mean.data(), r.rstd.data(), nullptr);
  return r;
}

}  // namespace hoga::tensor_ops
