#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

namespace hoga {
namespace {

// Owning allocation: the shared owner is the array itself; ptr_ aliases it.
// `init` selects zero-initialization (new float[n]()) vs raw (new float[n]).
std::shared_ptr<float[]> alloc_floats(std::int64_t n, bool init) {
  const auto count = static_cast<std::size_t>(n);
  return init ? std::shared_ptr<float[]>(new float[count]())
              : std::shared_ptr<float[]>(new float[count]);
}

}  // namespace

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto s : shape) {
    HOGA_CHECK(s >= 0, "negative dimension in shape");
    n *= s;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() = default;

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  auto buf = alloc_floats(numel_, /*init=*/true);
  ptr_ = buf.get();
  owner_ = std::move(buf);
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::empty(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = shape_numel(t.shape_);
  auto buf = alloc_floats(t.numel_, /*init=*/false);
  t.ptr_ = buf.get();
  t.owner_ = std::move(buf);
  return t;
}

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng) {
  Tensor t = empty(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal());
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = empty(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  Tensor t = empty(std::move(shape));
  HOGA_CHECK(static_cast<std::int64_t>(values.size()) == t.numel(),
             "from_vector: " << values.size() << " values for shape "
                             << shape_to_string(t.shape()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t = empty({n});
  for (std::int64_t i = 0; i < n; ++i) t.data()[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_external(Shape shape, float* ptr,
                             std::shared_ptr<void> owner) {
  HOGA_CHECK(owner != nullptr, "from_external: null owner");
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = shape_numel(t.shape_);
  HOGA_CHECK(t.numel_ == 0 || ptr != nullptr, "from_external: null pointer");
  t.ptr_ = ptr;
  t.owner_ = std::move(owner);
  return t;
}

std::int64_t Tensor::size(std::int64_t axis) const {
  if (axis < 0) axis += dim();
  HOGA_CHECK(axis >= 0 && axis < dim(),
             "axis " << axis << " out of range for " << shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(axis)];
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  HOGA_CHECK(static_cast<std::int64_t>(idx.size()) == dim(),
             "index rank " << idx.size() << " != tensor rank " << dim());
  std::int64_t flat = 0;
  std::size_t a = 0;
  for (std::int64_t i : idx) {
    HOGA_CHECK(i >= 0 && i < shape_[a],
               "index " << i << " out of range for axis " << a << " of "
                        << shape_to_string(shape_));
    flat = flat * shape_[a] + i;
    ++a;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return ptr_[flat_index(idx)];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return ptr_[flat_index(idx)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  HOGA_CHECK(shape_numel(new_shape) == numel_,
             "reshape " << shape_to_string(shape_) << " -> "
                        << shape_to_string(new_shape) << ": numel mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.owner_ = owner_;
  t.ptr_ = ptr_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t = empty(shape_);
  if (numel_ > 0) std::copy(ptr_, ptr_ + numel_, t.ptr_);
  return t;
}

void Tensor::fill(float value) {
  if (!owner_) return;
  std::fill(ptr_, ptr_ + numel_, value);
}

void Tensor::copy_from(const Tensor& src) {
  HOGA_CHECK(src.numel() == numel_, "copy_from: numel mismatch");
  std::copy(src.data(), src.data() + numel_, data());
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  HOGA_CHECK(a.shape() == b.shape(), "max_abs_diff: shape mismatch "
                                         << shape_to_string(a.shape()) << " vs "
                                         << shape_to_string(b.shape()));
  float m = 0.f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

bool Tensor::allclose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  return max_abs_diff(a, b) <= atol;
}

std::string Tensor::to_string(int max_per_dim) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " ";
  if (numel_ == 0) {
    os << "[]";
    return os.str();
  }
  // Flat dump, truncated.
  os << '[';
  const std::int64_t limit =
      std::min<std::int64_t>(numel_, static_cast<std::int64_t>(max_per_dim) * 4);
  for (std::int64_t i = 0; i < limit; ++i) {
    if (i) os << ", ";
    os << data()[i];
  }
  if (limit < numel_) os << ", ...";
  os << ']';
  return os.str();
}

}  // namespace hoga
