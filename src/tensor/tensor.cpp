#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

namespace hoga {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto s : shape) {
    HOGA_CHECK(s >= 0, "negative dimension in shape");
    n *= s;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() = default;

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(std::make_shared<std::vector<float>>(numel_, 0.f)) {}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal());
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  Tensor t(std::move(shape));
  HOGA_CHECK(static_cast<std::int64_t>(values.size()) == t.numel(),
             "from_vector: " << values.size() << " values for shape "
                             << shape_to_string(t.shape()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t.data()[i] = static_cast<float>(i);
  return t;
}

std::int64_t Tensor::size(std::int64_t axis) const {
  if (axis < 0) axis += dim();
  HOGA_CHECK(axis >= 0 && axis < dim(),
             "axis " << axis << " out of range for " << shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(axis)];
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  HOGA_CHECK(static_cast<std::int64_t>(idx.size()) == dim(),
             "index rank " << idx.size() << " != tensor rank " << dim());
  std::int64_t flat = 0;
  std::size_t a = 0;
  for (std::int64_t i : idx) {
    HOGA_CHECK(i >= 0 && i < shape_[a],
               "index " << i << " out of range for axis " << a << " of "
                        << shape_to_string(shape_));
    flat = flat * shape_[a] + i;
    ++a;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return (*data_)[flat_index(idx)];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return (*data_)[flat_index(idx)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  HOGA_CHECK(shape_numel(new_shape) == numel_,
             "reshape " << shape_to_string(shape_) << " -> "
                        << shape_to_string(new_shape) << ": numel mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.data_ = data_ ? std::make_shared<std::vector<float>>(*data_)
                  : std::make_shared<std::vector<float>>();
  return t;
}

void Tensor::fill(float value) {
  if (!data_) return;
  std::fill(data_->begin(), data_->end(), value);
}

void Tensor::copy_from(const Tensor& src) {
  HOGA_CHECK(src.numel() == numel_, "copy_from: numel mismatch");
  std::copy(src.data(), src.data() + numel_, data());
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  HOGA_CHECK(a.shape() == b.shape(), "max_abs_diff: shape mismatch "
                                         << shape_to_string(a.shape()) << " vs "
                                         << shape_to_string(b.shape()));
  float m = 0.f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

bool Tensor::allclose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  return max_abs_diff(a, b) <= atol;
}

std::string Tensor::to_string(int max_per_dim) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " ";
  if (numel_ == 0) {
    os << "[]";
    return os.str();
  }
  // Flat dump, truncated.
  os << '[';
  const std::int64_t limit =
      std::min<std::int64_t>(numel_, static_cast<std::int64_t>(max_per_dim) * 4);
  for (std::int64_t i = 0; i < limit; ++i) {
    if (i) os << ", ";
    os << data()[i];
  }
  if (limit < numel_) os << ", ...";
  os << ']';
  return os.str();
}

}  // namespace hoga
