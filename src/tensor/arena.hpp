#pragma once
// Per-thread bump arena for kernel temporaries (DESIGN.md §11).
//
// The training/serving hot paths call the blocked kernels thousands of times
// per epoch; each call needs short-lived scratch (GEMM pack panels, softmax
// logit staging, layernorm row statistics). Heap-allocating that scratch per
// call puts malloc/free on the critical path and churns the allocator.
// Instead, a thread-local arena hands out bump allocations that are released
// in LIFO order when the requesting kernel returns.
//
// Lifetime rules (enforced by construction, documented in DESIGN.md §11):
//
//   - The arena is *inert* until an ArenaScope is alive on the thread:
//     outside a scope, Scratch falls back to a plain heap allocation, so
//     kernels work identically with or without one.
//   - Scratch allocations are strictly LIFO within a scope. C++ block
//     scoping gives this for free; holding a Scratch across another
//     Scratch's destruction out of order is a bug.
//   - Arena memory is only valid while the allocating Scratch is alive.
//     Nothing that outlives the kernel call (tensors, autograd closures)
//     may live in the arena.
//   - Scope exit resets the cursor but *retains* the blocks: the second and
//     every later step of a training loop reuse the first step's memory —
//     the allocation-free property the arena exists for. Block count and
//     reserved bytes are observable so tests can assert no growth.
//
// ArenaScope nests (refcounted); the outermost exit resets the cursor and
// publishes the scope's high-water mark to the ambient obs registry as the
// monotonic "arena.high_water" counter (bytes).

#include <cstdint>
#include <memory>
#include <vector>

namespace hoga {

class Arena {
 public:
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;  // floats into the block
  };

  /// 64-byte-aligned allocation of `floats` fp32 slots, valid until the
  /// matching release(). Grows by adding blocks (existing blocks never move,
  /// so outstanding pointers stay valid).
  float* alloc(std::int64_t floats);

  Mark mark() const { return Mark{cur_block_, cur_offset_}; }
  /// LIFO release back to a previous mark().
  void release(Mark m);

  /// Cursor back to zero; blocks retained for reuse.
  void reset();

  /// Peak bytes simultaneously allocated since construction.
  std::size_t high_water_bytes() const { return high_water_bytes_; }
  /// Total bytes reserved across all blocks (monotone; growth stops once a
  /// workload's peak fits — what the arena-reuse test asserts).
  std::size_t reserved_bytes() const { return reserved_bytes_; }
  std::size_t block_count() const { return blocks_.size(); }

  /// The calling thread's arena when an ArenaScope is active, else null.
  static Arena* current();

 private:
  friend class ArenaScope;

  struct Block {
    std::unique_ptr<float[]> data;
    std::size_t floats = 0;
  };

  std::size_t in_use_floats() const;

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;
  std::size_t cur_offset_ = 0;  // floats into blocks_[cur_block_]
  std::size_t reserved_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
};

/// Activates the thread-local arena for the enclosing dynamic extent. Used
/// by the trainers (around each epoch body) and the serve forward path.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
};

/// Runs `f()` inside an ArenaScope and returns its result.
template <typename F>
auto with_arena(F&& f) {
  ArenaScope scope;
  return f();
}

/// Kernel scratch buffer: arena-backed when a scope is active on this
/// thread, heap-backed otherwise. Strictly LIFO (see lifetime rules above).
class Scratch {
 public:
  explicit Scratch(std::int64_t floats);
  ~Scratch();

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

 private:
  Arena* arena_ = nullptr;
  Arena::Mark mark_;
  float* ptr_ = nullptr;
  std::unique_ptr<float[]> heap_;
};

}  // namespace hoga
