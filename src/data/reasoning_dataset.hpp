#pragma once
// Functional-reasoning dataset (paper §IV-C, Gamora setting): multiplier
// AIGs after technology mapping, with 4-class node labels from symbolic cut
// matching. Models train on the 8-bit multiplier and generalize to larger
// bitwidths.

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "reasoning/labels.hpp"
#include "tensor/tensor.hpp"

namespace hoga::data {

struct ReasoningGraph {
  std::string family;  // "csa" | "booth"
  int bitwidth = 0;
  bool mapped = false;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  Tensor features;                            // [n, d0]
  std::vector<int> labels;                    // per node, 4 classes
  std::shared_ptr<const graph::Csr> adj_raw;  // symmetrized, unnormalized
  std::shared_ptr<const graph::Csr> adj_norm; // D^-1/2 (A+I) D^-1/2
  std::shared_ptr<const graph::Csr> adj_row;  // D^-1 A (GraphSAGE mean)
  /// Eq. 3 normalization for hop features: D^-1/2 A D^-1/2, NO self loops
  /// (keeps hop-k features parity-pure, see Figure 7).
  std::shared_ptr<const graph::Csr> adj_hop;
  /// Row-normalized directed fanin adjacency (cone direction).
  std::shared_ptr<const graph::Csr> adj_fanin;

  std::array<std::int64_t, reasoning::kNumClasses> class_counts() const;
};

/// Builds the multiplier, optionally applies the technology-mapping
/// substitute (the paper's challenging setting), labels functionally, and
/// exports graph-learning inputs.
ReasoningGraph make_reasoning_graph(const std::string& family, int bitwidth,
                                    bool mapped = true);

}  // namespace hoga::data
