#include "data/reasoning_dataset.hpp"

#include "circuits/multipliers.hpp"
#include "reasoning/features.hpp"
#include "synth/techmap.hpp"
#include "util/check.hpp"

namespace hoga::data {

std::array<std::int64_t, reasoning::kNumClasses> ReasoningGraph::class_counts()
    const {
  std::array<std::int64_t, reasoning::kNumClasses> h{};
  for (int label : labels) h[static_cast<std::size_t>(label)]++;
  return h;
}

ReasoningGraph make_reasoning_graph(const std::string& family, int bitwidth,
                                    bool mapped) {
  circuits::LabeledCircuit lc;
  if (family == "csa") {
    lc = circuits::make_csa_multiplier(bitwidth);
  } else if (family == "booth") {
    lc = circuits::make_booth_multiplier(bitwidth);
  } else {
    HOGA_CHECK(false, "make_reasoning_graph: unknown family " << family);
  }
  aig::Aig g = std::move(lc.aig);
  if (mapped) {
    g = synth::tech_map(g);
  }
  ReasoningGraph rg;
  rg.family = family;
  rg.bitwidth = bitwidth;
  rg.mapped = mapped;
  rg.features = reasoning::node_features(g);
  const auto labels = reasoning::functional_labels(g);
  rg.labels.reserve(labels.size());
  for (auto c : labels) rg.labels.push_back(static_cast<int>(c));
  auto adj = reasoning::to_graph(g);
  rg.num_nodes = adj.num_nodes();
  rg.num_edges = adj.num_edges();
  rg.adj_norm =
      std::make_shared<const graph::Csr>(adj.normalized_symmetric(1.f));
  rg.adj_hop =
      std::make_shared<const graph::Csr>(adj.normalized_symmetric(0.f));
  rg.adj_fanin =
      std::make_shared<const graph::Csr>(reasoning::to_fanin_graph(g));
  rg.adj_row = std::make_shared<const graph::Csr>(adj.normalized_row());
  rg.adj_raw = std::make_shared<const graph::Csr>(std::move(adj));
  return rg;
}

}  // namespace hoga::data
