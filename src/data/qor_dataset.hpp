#pragma once
// OpenABC-D-substitute dataset for QoR prediction (paper §IV-B):
// (design AIG, synthesis recipe) -> optimized gate count, with ground truth
// produced by actually running the synthesis engine. Train on the 20 upper
// designs of Table 1, evaluate on the 9 held-out designs.

#include <memory>
#include <string>
#include <vector>

#include "circuits/ip_designs.hpp"
#include "graph/csr.hpp"
#include "synth/recipe.hpp"
#include "tensor/tensor.hpp"

namespace hoga::data {

struct DesignGraph {
  std::string name;
  std::string category;
  bool train_split = false;
  std::int64_t initial_ands = 0;
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;
  /// Symmetric GCN normalization (with self loops).
  std::shared_ptr<const graph::Csr> adj_norm;
  /// Eq. 3 hop-feature normalization (no self loops).
  std::shared_ptr<const graph::Csr> adj_hop;
  /// Raw node features [n, d0].
  Tensor features;
};

struct QorSample {
  int design_index = 0;  // into QorDataset::designs
  synth::Recipe recipe;
  std::int64_t final_ands = 0;
  /// Regression target: final_ands / initial_ands (what the model predicts;
  /// MAPE is computed on gate counts).
  float target_ratio = 0.f;
};

struct QorDatasetParams {
  int recipes_per_design = 16;
  int min_recipe_len = 3;
  int max_recipe_len = 12;
  double size_scale = 40.0;  // paper node count / this = target AND count
  std::uint64_t seed = 2024;
};

struct QorDataset {
  std::vector<DesignGraph> designs;
  std::vector<QorSample> train;
  std::vector<QorSample> test;

  /// Builds the 29 designs and labels recipes_per_design random recipes per
  /// design by running the synthesis engine. Deterministic given params.
  static QorDataset generate(const QorDatasetParams& params = {});
};

}  // namespace hoga::data
