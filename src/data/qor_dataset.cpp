#include "data/qor_dataset.hpp"

#include "reasoning/features.hpp"
#include "synth/rebuild.hpp"
#include "util/logging.hpp"

namespace hoga::data {

QorDataset QorDataset::generate(const QorDatasetParams& params) {
  QorDataset ds;
  Rng rng(params.seed);
  const auto& specs = circuits::openabcd_specs();
  ds.designs.reserve(specs.size());
  for (const auto& spec : specs) {
    // strash first so the "initial" network matches what synthesis sees.
    const aig::Aig g =
        synth::strash(circuits::build_ip_design(spec, params.size_scale));
    DesignGraph dg;
    dg.name = spec.name;
    dg.category = spec.category;
    dg.train_split = spec.train_split;
    dg.initial_ands = g.num_ands();
    dg.features = reasoning::node_features(g);
    auto adj = reasoning::to_graph(g);
    dg.num_nodes = adj.num_nodes();
    dg.num_edges = adj.num_edges();
    dg.adj_norm = std::make_shared<const graph::Csr>(
        adj.normalized_symmetric(1.f));
    dg.adj_hop = std::make_shared<const graph::Csr>(
        adj.normalized_symmetric(0.f));
    const int design_index = static_cast<int>(ds.designs.size());
    ds.designs.push_back(std::move(dg));

    for (int r = 0; r < params.recipes_per_design; ++r) {
      const int len = params.min_recipe_len +
                      static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(
                          params.max_recipe_len - params.min_recipe_len + 1)));
      QorSample sample;
      sample.design_index = design_index;
      sample.recipe = synth::Recipe::random(rng, len);
      const auto result = synth::run_recipe(g, sample.recipe);
      sample.final_ands = result.optimized.num_ands();
      sample.target_ratio =
          static_cast<float>(sample.final_ands) /
          static_cast<float>(std::max<std::int64_t>(1, g.num_ands()));
      if (spec.train_split) {
        ds.train.push_back(std::move(sample));
      } else {
        ds.test.push_back(std::move(sample));
      }
    }
    HOGA_LOG_DEBUG << "qor dataset: " << spec.name << " done ("
                   << ds.designs.back().initial_ands << " ANDs)";
  }
  return ds;
}

}  // namespace hoga::data
