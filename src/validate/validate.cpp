#include "validate/validate.hpp"

#include <cmath>
#include <sstream>

#include "core/hop_features.hpp"
#include "util/check.hpp"

namespace hoga::validate {
namespace {

std::optional<std::string> fail(const std::ostringstream& os) {
  return os.str();
}

}  // namespace

std::optional<std::string> check_finite(const Tensor& t, const char* what) {
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) {
      std::ostringstream os;
      os << what << ": non-finite value " << p[i] << " at flat index " << i;
      return fail(os);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_hop_batch(const Tensor& batch, int max_hops,
                                           std::int64_t expected_dim,
                                           std::int64_t max_nodes) {
  if (batch.dim() != 3) {
    std::ostringstream os;
    os << "hop batch: expected rank 3 [B, k+1, d], got "
       << shape_to_string(batch.shape());
    return fail(os);
  }
  const std::int64_t b = batch.size(0);
  const std::int64_t k = batch.size(1) - 1;
  const std::int64_t d = batch.size(2);
  if (b < 1) return std::string("hop batch: empty batch (B = 0)");
  if (max_nodes > 0 && b > max_nodes) {
    std::ostringstream os;
    os << "hop batch: " << b << " nodes exceeds the request cap of "
       << max_nodes;
    return fail(os);
  }
  if (k < 1 || k > max_hops) {
    std::ostringstream os;
    os << "hop batch: hop count " << k << " outside [1, " << max_hops
       << "] (model K = " << max_hops << "; truncation below K is legal, "
       << "extension above it is not)";
    return fail(os);
  }
  if (d != expected_dim) {
    std::ostringstream os;
    os << "hop batch: feature dim " << d << " != model input dim "
       << expected_dim;
    return fail(os);
  }
  return check_finite(batch, "hop batch");
}

std::optional<std::string> check_hop_config(const core::HopFeatures& hops,
                                            int expected_hops,
                                            std::int64_t expected_dim) {
  if (hops.num_hops() != expected_hops) {
    std::ostringstream os;
    os << "hop features: K = " << hops.num_hops() << ", model expects K = "
       << expected_hops;
    return fail(os);
  }
  if (hops.feature_dim() != expected_dim) {
    std::ostringstream os;
    os << "hop features: dim " << hops.feature_dim()
       << " != model input dim " << expected_dim;
    return fail(os);
  }
  return std::nullopt;
}

std::optional<std::string> check_hop_features(const core::HopFeatures& hops,
                                              int expected_hops,
                                              std::int64_t expected_dim) {
  if (auto bad = check_hop_config(hops, expected_hops, expected_dim)) {
    return bad;
  }
  return check_finite(hops.stacked(), "hop features");
}

std::optional<std::string> check_labels(
    std::int64_t num_nodes, const std::vector<int>& labels,
    const std::vector<float>& class_weights, std::int64_t num_classes) {
  if (labels.size() != static_cast<std::size_t>(num_nodes)) {
    std::ostringstream os;
    os << "labels: " << labels.size() << " labels for " << num_nodes
       << " nodes";
    return fail(os);
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes) {
      std::ostringstream os;
      os << "labels: label " << labels[i] << " at node " << i
         << " outside [0, " << num_classes << ")";
      return fail(os);
    }
  }
  if (!class_weights.empty() &&
      class_weights.size() != static_cast<std::size_t>(num_classes)) {
    std::ostringstream os;
    os << "labels: " << class_weights.size() << " class weights for "
       << num_classes << " classes";
    return fail(os);
  }
  return std::nullopt;
}

std::optional<std::string> check_aig(const aig::Aig& g,
                                     std::int64_t max_nodes) {
  if (g.num_nodes() < 1) return std::string("aig: missing constant-0 node");
  if (max_nodes > 0 && g.num_nodes() > max_nodes) {
    std::ostringstream os;
    os << "aig: " << g.num_nodes() << " nodes exceeds the request cap of "
       << max_nodes;
    return fail(os);
  }
  const auto n = static_cast<aig::NodeId>(g.num_nodes());
  for (aig::NodeId id = 0; id < n; ++id) {
    const auto& node = g.node(id);
    if (id == 0 && node.type != aig::NodeType::kConst0) {
      return std::string("aig: node 0 is not the constant-0 node");
    }
    if (node.type == aig::NodeType::kAnd) {
      for (const aig::Lit l : {node.fanin0, node.fanin1}) {
        if (aig::lit_node(l) >= id) {
          std::ostringstream os;
          os << "aig: AND node " << id << " has fanin literal " << l
             << " that does not precede it (topological order violated)";
          return fail(os);
        }
      }
    }
  }
  for (std::size_t i = 0; i < g.pos().size(); ++i) {
    if (aig::lit_node(g.pos()[i]) >= n) {
      std::ostringstream os;
      os << "aig: PO " << i << " references literal " << g.pos()[i]
         << " beyond the last node";
      return fail(os);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_concat_compatible(const Tensor& open,
                                                   const Tensor& next) {
  if (open.dim() != 3 || next.dim() != 3) {
    std::ostringstream os;
    os << "concat: expected rank-3 hop batches, got "
       << shape_to_string(open.shape()) << " and "
       << shape_to_string(next.shape());
    return fail(os);
  }
  if (open.size(1) != next.size(1)) {
    std::ostringstream os;
    os << "concat: hop count mismatch (k+1 = " << open.size(1) << " vs "
       << next.size(1) << "); truncated requests cannot share a batch "
       << "with full-K requests";
    return fail(os);
  }
  if (open.size(2) != next.size(2)) {
    std::ostringstream os;
    os << "concat: feature dim mismatch (" << open.size(2) << " vs "
       << next.size(2) << ")";
    return fail(os);
  }
  return std::nullopt;
}

void require(std::optional<std::string> failure, const char* context) {
  HOGA_CHECK(!failure.has_value(), context << ": " << *failure);
}

}  // namespace hoga::validate
