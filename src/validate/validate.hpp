#pragma once
// Shared input-validation layer (DESIGN.md §8).
//
// Both the training entry points and the serving runtime accept data from
// outside the library — files, clients, other processes — and both must
// reject malformed input *before* it reaches a kernel, where a bad shape
// or a NaN turns into either a crash or a silently wrong answer. This
// module centralizes those checks so the two stacks cannot drift apart.
//
// Two calling conventions:
//   - `check_*` returns std::optional<std::string>: nullopt when valid,
//     otherwise a precise human-readable reason. The serving runtime uses
//     these to turn bad requests into kRejectedInvalid responses instead
//     of exceptions on the hot path.
//   - `require_*` wraps the same checks and throws std::runtime_error —
//     the right shape for trainer preconditions (programmer errors).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "tensor/tensor.hpp"

namespace hoga::core {
class HopFeatures;
}

namespace hoga::validate {

/// Scans every element; reports the first NaN/Inf with its flat index.
std::optional<std::string> check_finite(const Tensor& t, const char* what);

/// A hop-feature batch as the serving runtime accepts it: rank 3
/// [B, k+1, d0] with 1 <= B <= max_nodes, 1 <= k <= max_hops (hop
/// truncation below the model's K is legal — the degraded serving path
/// depends on it), d0 == expected_dim, and all elements finite.
std::optional<std::string> check_hop_batch(const Tensor& batch,
                                           int max_hops,
                                           std::int64_t expected_dim,
                                           std::int64_t max_nodes);

/// Metadata-only half of check_hop_features: exact hop count and feature
/// dimension against the requesting model config, no data scan. This is the
/// store-aware path — the feature store re-validates every cache hit with
/// it (a K mismatch is a miss that falls back to recompute, never an
/// error), and it is O(1) so hits stay cheap.
std::optional<std::string> check_hop_config(const core::HopFeatures& hops,
                                            int expected_hops,
                                            std::int64_t expected_dim);

/// Precomputed hop features offered to a trainer: check_hop_config plus a
/// full finiteness scan (training never truncates and never forgives NaN).
std::optional<std::string> check_hop_features(const core::HopFeatures& hops,
                                              int expected_hops,
                                              std::int64_t expected_dim);

/// Node-classification labels: one label per node, every label within
/// [0, num_classes), and class_weights (when present) sized num_classes.
std::optional<std::string> check_labels(std::int64_t num_nodes,
                                        const std::vector<int>& labels,
                                        const std::vector<float>& class_weights,
                                        std::int64_t num_classes);

/// AIG structural well-formedness: fanin literals reference earlier nodes
/// (topological order), node types are consistent with their role, PO
/// literals are in range, and the node count respects `max_nodes`
/// (0 = no cap). Catches corrupt or adversarial netlists that parsed
/// syntactically but would break downstream passes.
std::optional<std::string> check_aig(const aig::Aig& g,
                                     std::int64_t max_nodes = 0);

/// Cross-request shape compatibility for the coalescing batch scheduler
/// (DESIGN.md §14): two validated hop batches may share one concatenated
/// forward iff they agree on [*, k+1, d0] — same hop count (truncation
/// below K is legal per request, but mixed-k rows cannot concat) and same
/// feature dim. Row counts are free. nullopt = compatible.
std::optional<std::string> check_concat_compatible(const Tensor& open,
                                                   const Tensor& next);

/// Throwing wrappers for trainer preconditions: `context` prefixes the
/// message (e.g. "train_hoga_node").
void require(std::optional<std::string> failure, const char* context);

}  // namespace hoga::validate
