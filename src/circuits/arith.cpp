#include "circuits/arith.hpp"

namespace hoga::circuits {

void GenRoots::append(const GenRoots& other) {
  xor_roots.insert(xor_roots.end(), other.xor_roots.begin(),
                   other.xor_roots.end());
  maj_roots.insert(maj_roots.end(), other.maj_roots.begin(),
                   other.maj_roots.end());
}

AdderBits half_adder(Aig& aig, Lit a, Lit b, GenRoots* roots) {
  AdderBits out;
  out.sum = aig.add_xor(a, b);
  out.carry = aig.add_and(a, b);
  if (roots && aig::lit_node(a) != 0 && aig::lit_node(b) != 0 &&
      aig.is_and(aig::lit_node(out.sum))) {
    roots->note_xor(out.sum);
  }
  return out;
}

AdderBits full_adder(Aig& aig, Lit a, Lit b, Lit cin, GenRoots* roots) {
  // Standard shared form: x = a^b is reused by both the sum and the carry
  // (carry = x ? cin : a == MAJ3), which is what creates the paper's
  // "shared by MAJ and XOR" node class.
  AdderBits out;
  const Lit x = aig.add_xor(a, b);
  out.sum = aig.add_xor(x, cin);
  out.carry = aig.add_mux(x, cin, a);
  if (roots) {
    // Record only non-degenerate adders (no constant inputs, result is a
    // real AND node) so generator roots are a subset of functional roots.
    const bool degenerate = aig::lit_node(a) == 0 || aig::lit_node(b) == 0 ||
                            aig::lit_node(cin) == 0;
    if (!degenerate && aig.is_and(aig::lit_node(out.sum))) {
      roots->note_xor(out.sum);
    }
    if (!degenerate && aig.is_and(aig::lit_node(out.carry))) {
      roots->note_maj(out.carry);
    }
  }
  return out;
}

std::vector<Lit> ripple_carry_add(Aig& aig, const std::vector<Lit>& a,
                                  const std::vector<Lit>& b, Lit cin,
                                  GenRoots* roots) {
  HOGA_CHECK(a.size() == b.size(), "ripple_carry_add: width mismatch");
  std::vector<Lit> out;
  out.reserve(a.size() + 1);
  Lit carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const AdderBits fa = full_adder(aig, a[i], b[i], carry, roots);
    out.push_back(fa.sum);
    carry = fa.carry;
  }
  out.push_back(carry);
  return out;
}

Aig make_ripple_adder(int bits, GenRoots* roots) {
  HOGA_CHECK(bits >= 1, "make_ripple_adder: bits must be >= 1");
  Aig aig;
  std::vector<Lit> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(aig.add_pi());
  for (int i = 0; i < bits; ++i) b.push_back(aig.add_pi());
  const auto sum = ripple_carry_add(aig, a, b, aig::kLitFalse, roots);
  for (Lit s : sum) aig.add_po(s);
  return aig;
}

Aig make_carry_lookahead_adder(int bits) {
  HOGA_CHECK(bits >= 1, "make_carry_lookahead_adder: bits must be >= 1");
  Aig aig;
  std::vector<Lit> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(aig.add_pi());
  for (int i = 0; i < bits; ++i) b.push_back(aig.add_pi());
  // Generate/propagate per bit, carries unrolled:
  // c[i+1] = g[i] + p[i] c[i], flattened as OR of AND chains.
  std::vector<Lit> g(bits), p(bits);
  for (int i = 0; i < bits; ++i) {
    g[i] = aig.add_and(a[i], b[i]);
    p[i] = aig.add_xor(a[i], b[i]);
  }
  std::vector<Lit> c(bits + 1);
  c[0] = aig::kLitFalse;
  for (int i = 0; i < bits; ++i) {
    // c[i+1] = OR over j<=i of (g[j] & p[j+1..i]); flattened lookahead.
    std::vector<Lit> terms;
    for (int j = i; j >= 0; --j) {
      std::vector<Lit> chain{g[j]};
      for (int t = j + 1; t <= i; ++t) chain.push_back(p[t]);
      terms.push_back(aig.add_and_multi(chain));
    }
    c[i + 1] = aig.add_or_multi(terms);
  }
  for (int i = 0; i < bits; ++i) {
    aig.add_po(aig.add_xor(p[i], c[i]));
  }
  aig.add_po(c[bits]);
  return aig;
}

}  // namespace hoga::circuits
