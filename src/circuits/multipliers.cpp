#include "circuits/multipliers.hpp"

#include <deque>

namespace hoga::circuits {
namespace {

// Carry-save reduction over weight columns: repeatedly compress 3 bits of a
// column with a full adder (2 bits with a half adder once columns are being
// finalized), then resolve the final two rows with ripple carries. Bits are
// consumed FIFO, which makes the structure the sequential "array" flavor of
// carry-save reduction.
std::vector<Lit> reduce_columns(Aig& aig,
                                std::vector<std::deque<Lit>>& cols,
                                GenRoots* roots) {
  const std::size_t width = cols.size();
  for (std::size_t w = 0; w < width; ++w) {
    auto& col = cols[w];
    while (col.size() > 2) {
      const Lit a = col.front();
      col.pop_front();
      const Lit b = col.front();
      col.pop_front();
      const Lit c = col.front();
      col.pop_front();
      const AdderBits fa = full_adder(aig, a, b, c, roots);
      col.push_back(fa.sum);
      if (w + 1 < width) cols[w + 1].push_back(fa.carry);
    }
  }
  // Final carry-propagate pass over the remaining <=2 bits per column.
  std::vector<Lit> out(width, aig::kLitFalse);
  Lit carry = aig::kLitFalse;
  for (std::size_t w = 0; w < width; ++w) {
    auto& col = cols[w];
    Lit a = col.empty() ? aig::kLitFalse : col[0];
    Lit b = col.size() > 1 ? col[1] : aig::kLitFalse;
    const AdderBits fa = full_adder(aig, a, b, carry, roots);
    out[w] = fa.sum;
    carry = fa.carry;
  }
  return out;
}

}  // namespace

LabeledCircuit make_csa_multiplier(int bits) {
  HOGA_CHECK(bits >= 1, "make_csa_multiplier: bits must be >= 1");
  LabeledCircuit lc;
  lc.bitwidth = bits;
  lc.family = "csa";
  Aig& aig = lc.aig;
  std::vector<Lit> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(aig.add_pi());
  for (int i = 0; i < bits; ++i) b.push_back(aig.add_pi());
  const std::size_t width = static_cast<std::size_t>(2 * bits);
  std::vector<std::deque<Lit>> cols(width);
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < bits; ++j) {
      cols[static_cast<std::size_t>(i + j)].push_back(
          aig.add_and(a[static_cast<std::size_t>(j)],
                      b[static_cast<std::size_t>(i)]));
    }
  }
  const auto product = reduce_columns(aig, cols, &lc.roots);
  for (Lit p : product) aig.add_po(p);
  return lc;
}

LabeledCircuit make_booth_multiplier(int bits) {
  HOGA_CHECK(bits >= 1, "make_booth_multiplier: bits must be >= 1");
  LabeledCircuit lc;
  lc.bitwidth = bits;
  lc.family = "booth";
  Aig& aig = lc.aig;
  std::vector<Lit> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(aig.add_pi());
  for (int i = 0; i < bits; ++i) b.push_back(aig.add_pi());

  const int pwidth = 2 * bits;  // product computed mod 2^(2*bits)
  auto abit = [&](int i) -> Lit {
    return (i >= 0 && i < bits) ? a[static_cast<std::size_t>(i)]
                                : aig::kLitFalse;
  };
  auto bbit = [&](int i) -> Lit {
    return (i >= 0 && i < bits) ? b[static_cast<std::size_t>(i)]
                                : aig::kLitFalse;
  };

  std::vector<std::deque<Lit>> cols(static_cast<std::size_t>(pwidth));
  const int digits = bits / 2 + 1;  // covers b padded with two zero bits
  for (int k = 0; k < digits; ++k) {
    const Lit b_hi = bbit(2 * k + 1);
    const Lit b_mid = bbit(2 * k);
    const Lit b_lo = bbit(2 * k - 1);
    // Radix-4 Booth digit d = -2*b_hi + b_mid + b_lo in {-2,-1,0,1,2}.
    const Lit one = aig.add_xor(b_mid, b_lo);  // |d| == 1
    const Lit two =                            // |d| == 2
        aig.add_or(
            aig.add_and_multi({b_hi, aig::lit_not(b_mid), aig::lit_not(b_lo)}),
            aig.add_and_multi({aig::lit_not(b_hi), b_mid, b_lo}));
    const Lit neg =  // d < 0
        aig.add_and(b_hi, aig::lit_not(aig.add_and(b_mid, b_lo)));

    // Partial-product row: |d| * A (selection muxes), conditionally
    // complemented, sign-extended to the full product width; the two's
    // complement "+1" goes into the LSB column of this row.
    const int base = 2 * k;
    if (base >= pwidth) break;
    for (int i = 0; base + i < pwidth; ++i) {
      const Lit sel1 = aig.add_and(one, abit(i));
      const Lit sel2 = aig.add_and(two, abit(i - 1));
      const Lit mag = aig.add_or(sel1, sel2);  // 0 for i >= bits+1 -> row bit
                                               // becomes `neg` (sign ext.)
      const Lit row_bit = aig.add_xor(mag, neg);
      cols[static_cast<std::size_t>(base + i)].push_back(row_bit);
    }
    cols[static_cast<std::size_t>(base)].push_back(neg);
  }

  const auto product = reduce_columns(aig, cols, &lc.roots);
  for (Lit p : product) aig.add_po(p);
  return lc;
}

}  // namespace hoga::circuits
