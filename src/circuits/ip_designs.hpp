#pragma once
// OpenABC-D substitute: 29 parametric "IP designs" mirroring Table 1 of the
// paper (names, categories, 20-train/9-test split, and relative sizes).
// Each category uses a distinct structural family so that generalizing from
// the training designs to the held-out ones is a real distribution shift:
//   Communication -> mux trees, comparators, CRC/parity chains
//   Control       -> decoders, priority encoders, FSM next-state cones
//   Crypto        -> random S-boxes + XOR diffusion layers
//   DSP           -> adder trees and shift-add datapaths (+ small multipliers)
//   Processor     -> ALU slices, operand muxing, opcode decoders
//
// Sizes are the paper's node counts scaled down (see DESIGN.md §1) so the
// full dataset generation + synthesis labeling runs in seconds.

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace hoga::circuits {

struct IpDesignSpec {
  std::string name;
  std::string category;      // Communication | Control | Crypto | DSP | Processor
  std::int64_t paper_nodes;  // from Table 1
  std::int64_t paper_edges;
  bool train_split;          // upper 20 designs -> true
};

/// The 29 designs of Table 1, in paper order (first 20 train, last 9 test).
const std::vector<IpDesignSpec>& openabcd_specs();

/// Deterministically builds the (scaled) AIG for a spec. `size_scale`
/// divides the paper node count to obtain the target AND count
/// (default 40x smaller, clamped to [60, 4000]).
aig::Aig build_ip_design(const IpDesignSpec& spec, double size_scale = 40.0);

}  // namespace hoga::circuits
