#include "circuits/ip_designs.hpp"

#include <algorithm>
#include <cmath>

#include "circuits/arith.hpp"
#include "util/rng.hpp"

namespace hoga::circuits {
namespace {

using aig::Aig;
using aig::Lit;

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Lit random_lit(const std::vector<Lit>& pool, Rng& rng) {
  Lit l = pool[rng.uniform_int(pool.size())];
  return aig::lit_not_if(l, rng.bernoulli(0.5));
}

// -- Primitive blocks ---------------------------------------------------------

// Balanced mux tree selecting among `data` with ceil(log2) select lines.
Lit mux_tree(Aig& g, const std::vector<Lit>& sel, std::vector<Lit> data,
             Rng& rng) {
  std::size_t s = 0;
  while (data.size() > 1) {
    const Lit sl = s < sel.size() ? sel[s] : random_lit(sel, rng);
    ++s;
    std::vector<Lit> next;
    next.reserve((data.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
      next.push_back(g.add_mux(sl, data[i], data[i + 1]));
    }
    if (data.size() % 2) next.push_back(data.back());
    data = std::move(next);
  }
  return data[0];
}

// Equality comparator against a random constant pattern.
Lit comparator_eq(Aig& g, const std::vector<Lit>& x, Rng& rng) {
  std::vector<Lit> terms;
  terms.reserve(x.size());
  for (Lit b : x) terms.push_back(aig::lit_not_if(b, rng.bernoulli(0.5)));
  return g.add_and_multi(terms);
}

// Priority encoder: out[i] = in[i] & !in[i-1] & ... & !in[0].
std::vector<Lit> priority_encode(Aig& g, const std::vector<Lit>& in) {
  std::vector<Lit> out;
  out.reserve(in.size());
  Lit none_before = aig::kLitTrue;
  for (Lit b : in) {
    out.push_back(g.add_and(b, none_before));
    none_before = g.add_and(none_before, aig::lit_not(b));
  }
  return out;
}

// CRC-like stage: next[i] = x[(i+1) % n] ^ (feedback & tap_i).
std::vector<Lit> crc_stage(Aig& g, const std::vector<Lit>& x, Rng& rng) {
  const std::size_t n = x.size();
  const Lit fb = x[n - 1];
  std::vector<Lit> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Lit shifted = i == 0 ? aig::kLitFalse : x[i - 1];
    next[i] = rng.bernoulli(0.45) ? g.add_xor(shifted, fb) : shifted;
  }
  return next;
}

// Random 4-input S-box output via Shannon expansion over random constants.
Lit sbox_bit(Aig& g, const std::vector<Lit>& in, Rng& rng) {
  HOGA_CHECK(in.size() >= 4, "sbox_bit: need >= 4 inputs");
  // 16 random constants muxed by 4 select lines.
  std::vector<Lit> leaves(16);
  for (auto& l : leaves) {
    l = rng.bernoulli(0.5) ? aig::kLitTrue : aig::kLitFalse;
  }
  std::vector<Lit> sel(in.begin(), in.begin() + 4);
  std::vector<Lit> level = std::move(leaves);
  for (int s = 0; s < 4; ++s) {
    std::vector<Lit> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(g.add_mux(sel[static_cast<std::size_t>(s)], level[i + 1],
                               level[i]));
    }
    level = std::move(next);
  }
  return level[0];
}

// Redundancy injection: re-derives an existing signal through a detour and
// ORs it in, creating optimization opportunities for rewrite/refactor so
// different synthesis recipes produce measurably different QoR.
Lit add_redundant(Aig& g, Lit base, const std::vector<Lit>& pool, Rng& rng) {
  const Lit x = random_lit(pool, rng);
  // base | (base & x) == base; (base & x) is removable logic.
  const Lit detour = g.add_and(base, x);
  return g.add_or(base, detour);
}

// ALU slice: op-selected combination of two operand bits.
std::vector<Lit> alu_slice(Aig& g, const std::vector<Lit>& a,
                           const std::vector<Lit>& b,
                           const std::vector<Lit>& op, Rng& rng) {
  std::vector<Lit> outs;
  GenRoots ignore;
  const auto sum = ripple_carry_add(g, a, b, aig::kLitFalse, &ignore);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit and_bit = g.add_and(a[i], b[i]);
    const Lit or_bit = g.add_or(a[i], b[i]);
    const Lit xor_bit = g.add_xor(a[i], b[i]);
    std::vector<Lit> choices{sum[i], and_bit, or_bit, xor_bit};
    outs.push_back(mux_tree(g, op, choices, rng));
  }
  return outs;
}

// -- Category builders ------------------------------------------------------
// Each builder keeps appending its family's blocks until the AND budget is
// reached. `pool` holds recent signals to wire blocks together.

struct BuildCtx {
  Aig g;
  std::vector<Lit> pis;
  std::vector<Lit> pool;
  std::vector<Lit> outs;
  Rng rng;

  explicit BuildCtx(std::uint64_t seed, int num_pis) : rng(seed) {
    for (int i = 0; i < num_pis; ++i) pis.push_back(g.add_pi());
    pool = pis;
  }

  std::vector<Lit> grab(std::size_t n) {
    std::vector<Lit> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(random_lit(pool, rng));
    return v;
  }

  /// Draws each literal from the PIs with probability pi_prob, else from the
  /// pool. Derived pool signals are correlated, so products built purely
  /// from them collapse under rewriting at a rate that grows with design
  /// size; mixing in fresh PIs keeps the optimizable fraction comparable
  /// across sizes (matching how real control logic behaves).
  std::vector<Lit> grab_mixed(std::size_t n, double pi_prob) {
    std::vector<Lit> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(rng.bernoulli(pi_prob) ? random_lit(pis, rng)
                                         : random_lit(pool, rng));
    }
    return v;
  }

  void push(Lit l) {
    // Constants would poison the pool (downstream blocks simplify away and
    // generation stalls), so drop them.
    if (aig::lit_node(l) == 0) return;
    pool.push_back(l);
    if (pool.size() > 96) {
      pool.erase(pool.begin(), pool.begin() + 32);
    }
  }

  /// Guarantees forward progress: if a block simplified to nothing, inject a
  /// fresh gate derived from the PIs so generation cannot stall.
  void ensure_progress(std::int64_t ands_before) {
    if (g.num_ands() > ands_before) return;
    const Lit x = random_lit(pis, rng);
    const Lit y = random_lit(pool, rng);
    push(g.add_xor(x, y));
  }
};

void build_communication(BuildCtx& c, std::int64_t target) {
  auto state = c.grab(12);
  while (c.g.num_ands() < target) {
    const std::int64_t ands_before = c.g.num_ands();
    switch (c.rng.uniform_int(4)) {
      case 0: {  // mux-tree routing path
        auto sel = c.grab(3);
        auto data = c.grab(8);
        Lit y = mux_tree(c.g, sel, data, c.rng);
        y = add_redundant(c.g, y, c.pool, c.rng);
        c.push(y);
        c.outs.push_back(y);
        break;
      }
      case 1: {  // address comparator + enable
        auto addr = c.grab(6 + c.rng.uniform_int(5));
        Lit hit = comparator_eq(c.g, addr, c.rng);
        Lit en = c.g.add_and(hit, random_lit(c.pool, c.rng));
        c.push(en);
        c.outs.push_back(en);
        break;
      }
      case 2: {  // CRC/scrambler stage
        state = crc_stage(c.g, state, c.rng);
        c.push(state[c.rng.uniform_int(state.size())]);
        break;
      }
      default: {  // handshake: req & ~busy | hold
        Lit req = random_lit(c.pool, c.rng);
        Lit busy = random_lit(c.pool, c.rng);
        Lit hold = random_lit(c.pool, c.rng);
        Lit y = c.g.add_or(c.g.add_and(req, aig::lit_not(busy)), hold);
        c.push(y);
        c.outs.push_back(y);
        break;
      }
    }
      c.ensure_progress(ands_before);
  }
  for (Lit s : state) c.outs.push_back(s);
}

void build_control(BuildCtx& c, std::int64_t target) {
  while (c.g.num_ands() < target) {
    const std::int64_t ands_before = c.g.num_ands();
    switch (c.rng.uniform_int(3)) {
      case 0: {  // one-hot decoder slice
        auto sel = c.grab_mixed(3 + c.rng.uniform_int(2), 0.7);
        for (int i = 0; i < 4; ++i) {
          std::vector<Lit> terms;
          for (Lit s : sel) {
            terms.push_back(aig::lit_not_if(s, c.rng.bernoulli(0.5)));
          }
          Lit y = c.g.add_and_multi(terms);
          c.push(y);
          if (i == 0) c.outs.push_back(y);
        }
        break;
      }
      case 1: {  // priority arbitration
        auto reqs = c.grab_mixed(5 + c.rng.uniform_int(4), 0.6);
        auto grants = priority_encode(c.g, reqs);
        for (Lit gnt : grants) c.push(gnt);
        c.outs.push_back(grants.back());
        break;
      }
      default: {  // FSM next-state cone: OR of condition products
        std::vector<Lit> products;
        const int np = 3 + static_cast<int>(c.rng.uniform_int(4));
        for (int p = 0; p < np; ++p) {
          products.push_back(c.g.add_and_multi(c.grab_mixed(3, 0.6)));
        }
        Lit y = c.g.add_or_multi(products);
        y = add_redundant(c.g, y, c.pool, c.rng);
        c.push(y);
        c.outs.push_back(y);
        break;
      }
    }
      c.ensure_progress(ands_before);
  }
}

void build_crypto(BuildCtx& c, std::int64_t target) {
  auto state = c.grab(16);
  while (c.g.num_ands() < target) {
    const std::int64_t ands_before = c.g.num_ands();
    if (c.rng.bernoulli(0.55)) {
      // S-box substitution on a nibble.
      std::vector<Lit> nib(state.begin(), state.begin() + 4);
      std::rotate(state.begin(), state.begin() + 4, state.end());
      for (int bit = 0; bit < 4; ++bit) {
        state[12 + static_cast<std::size_t>(bit)] = sbox_bit(c.g, nib, c.rng);
      }
      c.outs.push_back(state[12]);
    } else {
      // XOR diffusion with key material.
      auto key = c.grab(state.size());
      for (std::size_t i = 0; i < state.size(); ++i) {
        state[i] = c.g.add_xor(state[i], key[i]);
        if (i + 1 < state.size() && c.rng.bernoulli(0.3)) {
          state[i] = c.g.add_xor(state[i], state[i + 1]);
        }
      }
    }
    for (Lit s : state) c.push(s);
      c.ensure_progress(ands_before);
  }
  for (Lit s : state) c.outs.push_back(s);
}

void build_dsp(BuildCtx& c, std::int64_t target) {
  while (c.g.num_ands() < target) {
    const std::int64_t ands_before = c.g.num_ands();
    switch (c.rng.uniform_int(3)) {
      case 0: {  // adder-tree accumulation (FIR tap sum)
        GenRoots ignore;
        auto x = c.grab(6);
        auto y = c.grab(6);
        auto s = ripple_carry_add(c.g, x, y, aig::kLitFalse, &ignore);
        for (Lit b : s) c.push(b);
        c.outs.push_back(s.back());
        break;
      }
      case 1: {  // shift-add constant multiply: x + (x << k) pattern
        GenRoots ignore;
        auto x = c.grab(8);
        std::vector<Lit> shifted(x.size(), aig::kLitFalse);
        const std::size_t k = 1 + c.rng.uniform_int(3);
        for (std::size_t i = k; i < x.size(); ++i) shifted[i] = x[i - k];
        auto s = ripple_carry_add(c.g, x, shifted, aig::kLitFalse, &ignore);
        for (Lit b : s) c.push(b);
        c.outs.push_back(s[s.size() / 2]);
        break;
      }
      default: {  // butterfly: (a + b, a - b) via add with complement
        GenRoots ignore;
        auto a2 = c.grab(5);
        auto b2 = c.grab(5);
        auto add = ripple_carry_add(c.g, a2, b2, aig::kLitFalse, &ignore);
        std::vector<Lit> nb;
        for (Lit l : b2) nb.push_back(aig::lit_not(l));
        auto sub = ripple_carry_add(c.g, a2, nb, aig::kLitTrue, &ignore);
        c.push(add.back());
        c.push(sub.back());
        c.outs.push_back(add[2]);
        c.outs.push_back(sub[2]);
        break;
      }
    }
      c.ensure_progress(ands_before);
  }
}

void build_processor(BuildCtx& c, std::int64_t target) {
  auto op = c.grab(2);
  while (c.g.num_ands() < target) {
    const std::int64_t ands_before = c.g.num_ands();
    if (c.rng.bernoulli(0.5)) {
      auto a = c.grab(4 + c.rng.uniform_int(3));
      auto b = c.grab(a.size());
      auto outs = alu_slice(c.g, a, b, op, c.rng);
      for (Lit o : outs) c.push(o);
      c.outs.push_back(outs.back());
    } else if (c.rng.bernoulli(0.5)) {
      // Opcode decode
      auto bits = c.grab(4);
      Lit y = comparator_eq(c.g, bits, c.rng);
      c.push(y);
      c.outs.push_back(y);
    } else {
      // Operand forwarding mux
      auto sel = c.grab(2);
      auto data = c.grab(4);
      Lit y = mux_tree(c.g, sel, data, c.rng);
      c.push(y);
      c.outs.push_back(y);
    }
      c.ensure_progress(ands_before);
  }
}

}  // namespace

const std::vector<IpDesignSpec>& openabcd_specs() {
  static const std::vector<IpDesignSpec> specs = {
      // -- training designs (upper 20 of Table 1) --
      {"spi", "Communication", 4219, 8676, true},
      {"i2c", "Communication", 1169, 2466, true},
      {"ss_pcm", "Communication", 462, 896, true},
      {"usb_phy", "Communication", 487, 1064, true},
      {"sasc", "Communication", 613, 1351, true},
      {"wb_dma", "Communication", 4587, 9876, true},
      {"simple_spi", "Communication", 930, 1992, true},
      {"pci", "Communication", 19547, 42251, true},
      {"dynamic_node", "Control", 18094, 38763, true},
      {"ac97_ctrl", "Control", 11464, 25065, true},
      {"mem_ctrl", "Control", 16307, 37146, true},
      {"des3_area", "Crypto", 4971, 10006, true},
      {"aes", "Crypto", 28925, 58379, true},
      {"sha256", "Crypto", 15816, 32674, true},
      {"fir", "DSP", 4558, 9467, true},
      {"iir", "DSP", 6978, 14397, true},
      {"idft", "DSP", 241552, 520523, true},
      {"dft", "DSP", 245046, 527509, true},
      {"tv80", "Processor", 11328, 23017, true},
      {"fpu", "Processor", 29623, 59655, true},
      // -- evaluation designs (lower 9) --
      {"wb_conmax", "Communication", 47840, 97755, false},
      {"ethernet", "Communication", 67164, 144750, false},
      {"bp_be", "Control", 82514, 173441, false},
      {"vga_lcd", "Control", 105334, 227731, false},
      {"aes_xcrypt", "Crypto", 45840, 93485, false},
      {"aes_secworks", "Crypto", 40778, 84160, false},
      {"jpeg", "DSP", 114771, 234331, false},
      {"tiny_rocket", "Processor", 52315, 108811, false},
      {"picosoc", "Processor", 82945, 176687, false},
  };
  return specs;
}

aig::Aig build_ip_design(const IpDesignSpec& spec, double size_scale) {
  const std::int64_t target = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(
          std::llround(static_cast<double>(spec.paper_nodes) / size_scale)),
      60, 4000);
  const int num_pis =
      std::clamp<int>(static_cast<int>(16 + target / 40), 16, 96);
  BuildCtx c(name_seed(spec.name), num_pis);
  if (spec.category == "Communication") {
    build_communication(c, target);
  } else if (spec.category == "Control") {
    build_control(c, target);
  } else if (spec.category == "Crypto") {
    build_crypto(c, target);
  } else if (spec.category == "DSP") {
    build_dsp(c, target);
  } else if (spec.category == "Processor") {
    build_processor(c, target);
  } else {
    HOGA_CHECK(false, "unknown category " << spec.category);
  }
  for (Lit l : c.outs) c.g.add_po(l);
  if (c.g.num_pos() == 0) c.g.add_po(c.pool.back());
  return std::move(c.g);
}

}  // namespace hoga::circuits
