#pragma once
// Arithmetic building blocks (half/full adders, ripple-carry adders) with
// generator-recorded functional roots: every full-adder sum is an XOR3 root
// and every full-adder carry a MAJ3 root — the ground truth the functional
// reasoning task (Gamora, paper §IV-C) asks models to recover.

#include <vector>

#include "aig/aig.hpp"

namespace hoga::circuits {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

/// Roots recorded while generating arithmetic structure. Node ids refer to
/// AND nodes that realize XOR/MAJ functions at their outputs.
struct GenRoots {
  std::vector<NodeId> xor_roots;
  std::vector<NodeId> maj_roots;

  void note_xor(Lit l) {
    if (aig::lit_node(l) != 0) xor_roots.push_back(aig::lit_node(l));
  }
  void note_maj(Lit l) {
    if (aig::lit_node(l) != 0) maj_roots.push_back(aig::lit_node(l));
  }
  void append(const GenRoots& other);
};

struct AdderBits {
  Lit sum;
  Lit carry;
};

/// Half adder: sum = a ^ b (XOR2 root), carry = a & b.
AdderBits half_adder(Aig& aig, Lit a, Lit b, GenRoots* roots = nullptr);

/// Full adder: sum = a ^ b ^ cin (XOR3 root), carry = MAJ3(a, b, cin).
AdderBits full_adder(Aig& aig, Lit a, Lit b, Lit cin,
                     GenRoots* roots = nullptr);

/// Ripple-carry addition of two equal-width vectors (LSB first); returns
/// width+1 bits including the final carry.
std::vector<Lit> ripple_carry_add(Aig& aig, const std::vector<Lit>& a,
                                  const std::vector<Lit>& b, Lit cin,
                                  GenRoots* roots = nullptr);

/// Standalone n-bit ripple-carry adder circuit: PIs a[0..n), b[0..n);
/// POs sum[0..n].
Aig make_ripple_adder(int bits, GenRoots* roots = nullptr);

/// Carry-lookahead-style adder (two-level generate/propagate groups); same
/// function as ripple, different structure — used by IP generators and tests.
Aig make_carry_lookahead_adder(int bits);

}  // namespace hoga::circuits
