#pragma once
// Multiplier generators for the functional-reasoning task (paper §IV-C):
// carry-save array (CSA) multipliers and radix-4 Booth multipliers at
// arbitrary bitwidth, matching the two circuit families of Figure 6.
//
// Both generators record every full/half-adder sum and carry root in
// GenRoots; tests cross-check these against the cut-based functional labeler
// and verify the product function against integer multiplication.

#include "circuits/arith.hpp"

namespace hoga::circuits {

struct LabeledCircuit {
  Aig aig;
  GenRoots roots;
  int bitwidth = 0;
  std::string family;
};

/// Unsigned bits x bits array multiplier built from AND partial products and
/// a carry-save adder array; product is 2*bits POs (LSB first).
LabeledCircuit make_csa_multiplier(int bits);

/// Unsigned bits x bits radix-4 (modified) Booth multiplier: Booth digit
/// encoders, partial-product selection muxes, carry-save accumulation.
LabeledCircuit make_booth_multiplier(int bits);

}  // namespace hoga::circuits
