// Table 1 reproduction: statistics of the OpenABC-D-substitute benchmark.
//
// Prints the 29 generated IP designs with node/edge counts and categories in
// the paper's order (upper 20 = training split, lower 9 = evaluation split),
// alongside the paper's original sizes for scale comparison.

#include <cstdio>

#include "circuits/ip_designs.hpp"
#include "reasoning/features.hpp"
#include "synth/rebuild.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace hoga;
  std::puts("=== Table 1: OpenABC-D-substitute benchmark statistics ===");
  std::puts("(paper sizes scaled down ~40x; same categories and split)\n");

  Timer total;
  Table table({"IP Design", "Nodes", "Edges", "Category", "Split",
               "Paper Nodes", "Paper Edges", "Depth"});
  std::int64_t total_nodes = 0, total_edges = 0;
  for (const auto& spec : circuits::openabcd_specs()) {
    const aig::Aig g = synth::strash(circuits::build_ip_design(spec));
    const graph::Csr adj = reasoning::to_graph(g);
    table.row()
        .cell(spec.name)
        .cell(static_cast<long long>(adj.num_nodes()))
        .cell(static_cast<long long>(adj.num_edges() / 2))
        .cell(spec.category)
        .cell(spec.train_split ? "train" : "eval")
        .cell(static_cast<long long>(spec.paper_nodes))
        .cell(static_cast<long long>(spec.paper_edges))
        .cell(static_cast<long long>(g.depth()));
    total_nodes += adj.num_nodes();
    total_edges += adj.num_edges() / 2;
  }
  table.print();
  std::printf("\ntotal: %lld nodes, %lld edges across 29 designs"
              " (generated in %s)\n",
              static_cast<long long>(total_nodes),
              static_cast<long long>(total_edges),
              format_duration(total.seconds()).c_str());
  return 0;
}
