// Blocked-kernel benchmark (DESIGN.md §11): the packed tiled GEMM against
// the seed's naive zero-skip triple loop, transposed-operand overhead, the
// row-blocked SpMM, and the fused row kernels. Emits machine-readable
// results to BENCH_kernels.json so later PRs have a perf trajectory
// (compare runs with scripts/perf_diff.py).
//
// The smoke run doubles as a tier-1 test — it fails loudly if:
//
//   - the blocked GEMM is not >= 2x the seed naive loop on a single-thread
//     512x512x512 problem (the tentpole's reason to exist);
//   - a transposed-operand GEMM is not within 1.2x of the no-transpose
//     case (packing is supposed to make operand layout irrelevant);
//   - any blocked kernel output differs bit-for-bit from its reference
//     (the fp-order contract, re-checked on bench-sized problems).
//
// Per-kernel p50/p95 latencies come from obs histogram quantile estimation
// (MetricsRegistry histograms + Histogram::quantile), exercising the same
// estimator the serve latency report uses.
//
// Usage: bench_kernels [--smoke] [--full] [--seed=N] [--out=path.json]

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

std::vector<float> random_floats(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// The seed repo's matmul inner loop, kept verbatim as the perf baseline:
/// naive i-k-j with the data-dependent `av == 0` skip the kernel layer
/// removed (see the fp-order contract in tensor/kernels.hpp).
void seed_naive_matmul(const float* a, const float* b, float* c,
                       std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) c[i * n + j] = 0.f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      if (av == 0.f) continue;
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// One timed kernel: repeats `fn`, records per-iteration latency into an
/// obs histogram, reports best-iteration GFLOP/s plus estimated p50/p95.
struct KernelResult {
  std::string name;
  double gflops = 0;   // from the best (least-noisy) iteration
  double best_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

template <typename Fn>
KernelResult time_kernel(obs::MetricsRegistry& reg, const std::string& name,
                         double flops_per_iter, int iters, Fn&& fn) {
  obs::Histogram h = reg.histogram("bench." + name, obs::latency_ms_bounds());
  KernelResult r;
  r.name = name;
  r.best_ms = 1e30;
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    const double ms = t.millis();
    h.record(ms);
    if (ms < r.best_ms) r.best_ms = ms;
  }
  r.gflops = flops_per_iter / (r.best_ms * 1e-3) / 1e9;
  r.p50_ms = h.quantile(0.50);
  r.p95_ms = h.quantile(0.95);
  std::printf("%-18s best %8.3f ms  %7.2f GFLOP/s  p50 %7.2f ms  p95 %7.2f ms\n",
              name.c_str(), r.best_ms, r.gflops, r.p50_ms, r.p95_ms);
  return r;
}

void append_json(std::string& out, const KernelResult& r, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"gflops\": %.4f, \"best_ms\": %.4f, "
                "\"p50_ms\": %.4f, \"p95_ms\": %.4f}%s\n",
                r.name.c_str(), r.gflops, r.best_ms, r.p50_ms, r.p95_ms,
                last ? "" : ",");
  out += buf;
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const auto seed =
      static_cast<std::uint64_t>(bench::int_option(argc, argv, "--seed", 13));
  const std::string out_path =
      bench::str_option(argc, argv, "--out", "BENCH_kernels.json");
  const int iters = full ? 20 : 5;
  int failures = 0;

  obs::MetricsRegistry reg;
  Rng rng(seed);
  std::vector<KernelResult> results;

  // -- GEMM: blocked vs the seed naive loop, 512^3 single-thread ------------
  {
    const std::int64_t n = 512;
    const double flops = 2.0 * n * n * n;
    const auto a = random_floats(n * n, rng);
    const auto b = random_floats(n * n, rng);
    std::vector<float> c_naive(a.size()), c_blocked(a.size());

    std::puts("=== GEMM 512x512x512 (single thread) ===");
    const auto naive =
        time_kernel(reg, "gemm_seed_naive", flops, iters, [&] {
          seed_naive_matmul(a.data(), b.data(), c_naive.data(), n, n, n);
        });
    ArenaScope arena;  // pack panels from the arena, as in training
    const auto blocked = time_kernel(reg, "gemm_blocked", flops, iters, [&] {
      kernels::gemm_blocked(a.data(), b.data(), c_blocked.data(), n, n, n, n,
                            n, false, false);
    });
    results.push_back(naive);
    results.push_back(blocked);

    std::vector<float> c_ref(a.size());
    kernels::gemm_reference(a.data(), b.data(), c_ref.data(), n, n, n, n, n,
                            false, false);
    if (!bit_equal(c_ref, c_blocked)) {
      std::puts("FAIL: blocked GEMM output differs from reference");
      ++failures;
    }
    const double speedup = blocked.gflops / naive.gflops;
    std::printf("blocked vs seed naive: %.2fx\n", speedup);
    if (speedup < 2.0) {
      std::puts("FAIL: blocked GEMM is not >= 2x the seed naive loop");
      ++failures;
    }

    // Transposed operands: packing should make layout irrelevant.
    const auto tn = time_kernel(reg, "gemm_trans_a", flops, iters, [&] {
      kernels::gemm_blocked(a.data(), b.data(), c_blocked.data(), n, n, n, n,
                            n, true, false);
    });
    const auto nt = time_kernel(reg, "gemm_trans_b", flops, iters, [&] {
      kernels::gemm_blocked(a.data(), b.data(), c_blocked.data(), n, n, n, n,
                            n, false, true);
    });
    results.push_back(tn);
    results.push_back(nt);
    for (const auto* t : {&tn, &nt}) {
      const double ratio = t->best_ms / blocked.best_ms;
      std::printf("%s vs no-transpose: %.2fx\n", t->name.c_str(), ratio);
      if (ratio > 1.2) {
        std::printf("FAIL: %s is more than 1.2x the no-transpose case\n",
                    t->name.c_str());
        ++failures;
      }
    }
  }

  // -- SpMM: row-blocked vs reference on a circuit-sized graph --------------
  {
    const int n = full ? 50000 : 20000;
    const std::int64_t d = 128;
    std::vector<graph::Edge> edges;
    for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
    for (int e = 0; e < 4 * n; ++e) {
      edges.push_back(
          {static_cast<std::int64_t>(rng.uniform_int(n)),
           static_cast<std::int64_t>(rng.uniform_int(n))});
    }
    const graph::Csr adj =
        graph::Csr::from_edges(n, edges).normalized_symmetric();
    const double flops = 2.0 * static_cast<double>(adj.num_edges()) * d;
    const auto x = random_floats(static_cast<std::int64_t>(n) * d, rng);
    std::vector<float> y_ref(x.size()), y_blk(x.size());

    std::printf("=== SpMM n=%d nnz=%lld d=%lld ===\n", n,
                static_cast<long long>(adj.num_edges()),
                static_cast<long long>(d));
    results.push_back(time_kernel(reg, "spmm_reference", flops, iters, [&] {
      kernels::spmm_reference(adj.row_ptr().data(), adj.col_idx().data(),
                              adj.values().data(), n, x.data(), d,
                              y_ref.data());
    }));
    results.push_back(time_kernel(reg, "spmm_blocked", flops, iters, [&] {
      kernels::spmm_blocked(adj.row_ptr().data(), adj.col_idx().data(),
                            adj.values().data(), n, x.data(), d,
                            y_blk.data());
    }));
    if (!bit_equal(y_ref, y_blk)) {
      std::puts("FAIL: blocked SpMM output differs from reference");
      ++failures;
    }
  }

  // -- Fused row kernels ----------------------------------------------------
  {
    const std::int64_t rows = full ? 100000 : 40000;
    const std::int64_t d = 64;
    const auto x = random_floats(rows * d, rng);
    const auto gamma = random_floats(d, rng);
    const auto beta = random_floats(d, rng);
    std::vector<float> y(x.size());
    std::vector<float> mean(static_cast<std::size_t>(rows)),
        rstd(static_cast<std::size_t>(rows));
    // softmax/layernorm are memory-bound; report effective GFLOP/s with a
    // nominal ~5 flops per element.
    const double flops = 5.0 * static_cast<double>(rows) * d;

    std::printf("=== Fused row kernels rows=%lld d=%lld ===\n",
                static_cast<long long>(rows), static_cast<long long>(d));
    results.push_back(time_kernel(reg, "softmax_rows", flops, iters, [&] {
      kernels::softmax_rows(x.data(), y.data(), rows, d);
    }));
    results.push_back(time_kernel(reg, "layer_norm_rows", flops, iters, [&] {
      kernels::layer_norm_rows(x.data(), rows, d, 1e-5f, gamma.data(),
                               beta.data(), y.data(), mean.data(),
                               rstd.data(), nullptr);
    }));
  }

  // -- JSON emission --------------------------------------------------------
  std::string json = "{\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], i + 1 == results.size());
  }
  json += "}\n";
  std::ofstream out(out_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (failures > 0) {
    std::printf("bench_kernels: %d acceptance gate(s) FAILED\n", failures);
    return 1;
  }
  std::puts("bench_kernels: all acceptance gates passed");
  return 0;
}
