// Figure 5 reproduction: HOGA training time vs number of workers.
//
// The machine has one core, so the multi-GPU wall clock is simulated
// exactly the way DESIGN.md §1 describes: each worker's node-batch shard is
// timed serially (real forward/backward/optimizer work), the simulated
// epoch time is max over shards plus a modeled ring all-reduce. Near-linear
// decrease demonstrates the paper's claim that per-node independence makes
// HOGA embarrassingly data-parallel. Both HOGA-2 and HOGA-5 are shown, as
// in the paper. Also reports the hop-feature generation time (paper: 13 min
// vs hours of training, i.e. negligible).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "train/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const int bits =
      static_cast<int>(bench::int_option(argc, argv, "--bits", full ? 64 : 32));
  // --fault kills one worker mid-epoch at every worker count, showing the
  // elastic re-partition cost next to the fault-free scaling numbers.
  const bool with_faults = bench::has_flag(argc, argv, "--fault");

  std::puts("=== Figure 5: simulated multi-worker HOGA training time ===");
  std::printf("workload: mapped %d-bit CSA multiplier, node classification\n",
              bits);
  if (with_faults) {
    std::puts("fault injection: worker 1 dies mid-epoch at each worker count");
  }

  Timer build_t;
  const auto g = data::make_reasoning_graph("csa", bits, true);
  std::printf("graph: %lld nodes, %lld edges (built in %s)\n",
              static_cast<long long>(g.num_nodes),
              static_cast<long long>(g.num_edges),
              format_duration(build_t.seconds()).c_str());

  for (int k : {2, 5}) {
    Timer hop_t;
    const auto hops = core::HopFeatures::compute_concat(
        {g.adj_hop.get(), g.adj_fanin.get()}, g.features, k);
    const double hop_seconds = hop_t.seconds();

    Rng rng(5);
    core::Hoga model(
        core::HogaConfig{.in_dim = 2 * reasoning::kNodeFeatureDim,
                         .hidden = 32,
                         .num_hops = k,
                         .num_layers = 1,
                         .out_dim = reasoning::kNumClasses},
        rng);
    train::NodeTrainConfig tcfg;
    tcfg.epochs = 1;
    tcfg.batch_size = 512;
    train::ClusterConfig ccfg;
    ccfg.worker_counts = {1, 2, 3, 4, 8};
    std::vector<train::ScalingPoint> points;
    if (!with_faults) {
      points = train::simulate_hoga_scaling(model, hops, g.labels, tcfg, ccfg);
    } else {
      // One simulate call per worker count so each gets its own one-shot
      // worker kill (scheduled faults are consumed when they fire).
      for (int workers : ccfg.worker_counts) {
        fault::Injector inj;
        inj.kill_worker(/*epoch=*/0, /*worker=*/1);
        fault::ScopedInjector scope(inj);
        train::ClusterConfig one = ccfg;
        one.worker_counts = {workers};
        points.push_back(
            train::simulate_hoga_scaling(model, hops, g.labels, tcfg, one)[0]);
      }
      // Speedup/efficiency are relative to the first point of each call;
      // recompute them against the single-worker baseline.
      const double base = points.front().epoch_seconds;
      for (auto& p : points) {
        p.speedup = base / p.epoch_seconds;
        p.efficiency = p.speedup / p.workers;
      }
    }

    std::printf("\n-- HOGA-%d (hop features computed in %s) --\n", k,
                format_duration(hop_seconds).c_str());
    Table table({"Workers", "Compute/epoch", "All-reduce", "Recovery",
                 "Failures", "Epoch time", "Speedup", "Efficiency"});
    for (const auto& p : points) {
      table.row()
          .cell(static_cast<long long>(p.workers))
          .cell(format_duration(p.compute_seconds))
          .cell(format_duration(p.allreduce_seconds))
          .cell(format_duration(p.recovery_seconds))
          .cell(static_cast<long long>(p.worker_failures))
          .cell(format_duration(p.epoch_seconds))
          .cell(p.speedup, 2)
          .pct(p.efficiency * 100, 0);
    }
    table.print();
    const auto& last = points.back();
    std::printf("hop-feature precompute = %.1f%% of one single-worker epoch "
                "(paper: negligible)\n",
                100.0 * hop_seconds / points.front().epoch_seconds);
    std::printf("shape check: %d workers -> %.2fx speedup "
                "(paper: near-linear)\n",
                last.workers, last.speedup);
  }
  return 0;
}
