// Figure 5 reproduction: HOGA training time vs number of workers.
//
// The machine has one core, so the multi-GPU wall clock is simulated
// exactly the way DESIGN.md §1 describes: each worker's node-batch shard is
// timed serially (real forward/backward/optimizer work), the simulated
// epoch time is max over shards plus a modeled ring all-reduce. Near-linear
// decrease demonstrates the paper's claim that per-node independence makes
// HOGA embarrassingly data-parallel. Both HOGA-2 and HOGA-5 are shown, as
// in the paper. Also reports the hop-feature generation time (paper: 13 min
// vs hours of training, i.e. negligible).

#include <cstdio>
#include <vector>

#include <memory>

#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "reasoning/features.hpp"
#include "train/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const int bits =
      static_cast<int>(bench::int_option(argc, argv, "--bits", full ? 64 : 32));
  // --fault kills one worker mid-epoch at every worker count, showing the
  // elastic re-partition cost next to the fault-free scaling numbers.
  const bool with_faults = bench::has_flag(argc, argv, "--fault");
  // --ledger=PATH writes a run ledger with one "scaling.point" event per
  // table row (plus worker-failure events under --fault); every printed
  // number is reconstructible from it (see DESIGN.md §10).
  const std::string ledger_path =
      bench::str_option(argc, argv, "--ledger", "");
  std::unique_ptr<obs::RunLedger> ledger;
  std::unique_ptr<obs::ScopedObservability> obs_scope;
  if (!ledger_path.empty()) {
    ledger = std::make_unique<obs::RunLedger>(ledger_path);
    obs::Observability ctx;
    ctx.ledger = ledger.get();
    obs_scope = std::make_unique<obs::ScopedObservability>(ctx);
  }

  std::puts("=== Figure 5: simulated multi-worker HOGA training time ===");
  std::printf("workload: mapped %d-bit CSA multiplier, node classification\n",
              bits);
  if (with_faults) {
    std::puts("fault injection: worker 1 dies mid-epoch at each worker count");
  }
  if (ledger) {
    std::printf("run ledger: %s\n", ledger_path.c_str());
  }

  Timer build_t;
  const auto g = data::make_reasoning_graph("csa", bits, true);
  std::printf("graph: %lld nodes, %lld edges (built in %s)\n",
              static_cast<long long>(g.num_nodes),
              static_cast<long long>(g.num_edges),
              format_duration(build_t.seconds()).c_str());

  for (int k : {2, 5}) {
    Timer hop_t;
    const auto hops = core::HopFeatures::compute_concat(
        {g.adj_hop.get(), g.adj_fanin.get()}, g.features, k);
    const double hop_seconds = hop_t.seconds();

    Rng rng(5);
    core::Hoga model(
        core::HogaConfig{.in_dim = 2 * reasoning::kNodeFeatureDim,
                         .hidden = 32,
                         .num_hops = k,
                         .num_layers = 1,
                         .out_dim = reasoning::kNumClasses},
        rng);
    train::NodeTrainConfig tcfg;
    tcfg.epochs = 1;
    tcfg.batch_size = 512;
    train::ClusterConfig ccfg;
    ccfg.worker_counts = {1, 2, 3, 4, 8};
    std::vector<train::ScalingPoint> points;
    if (!with_faults) {
      points = train::simulate_hoga_scaling(model, hops, g.labels, tcfg, ccfg);
    } else {
      // One simulate call per worker count so each gets its own one-shot
      // worker kill (scheduled faults are consumed when they fire). The
      // first call's epoch time becomes every later call's speedup
      // baseline, so the points — and their ledger events — come out
      // normalized against the same single-worker run.
      for (int workers : ccfg.worker_counts) {
        fault::Injector inj;
        inj.kill_worker(/*epoch=*/0, /*worker=*/1);
        fault::ScopedInjector scope(inj);
        train::ClusterConfig one = ccfg;
        one.worker_counts = {workers};
        one.baseline_epoch_seconds =
            points.empty() ? 0 : points.front().epoch_seconds;
        points.push_back(
            train::simulate_hoga_scaling(model, hops, g.labels, tcfg, one)[0]);
      }
    }

    std::printf("\n-- HOGA-%d (hop features computed in %s) --\n", k,
                format_duration(hop_seconds).c_str());
    Table table({"Workers", "Compute/epoch", "All-reduce", "Recovery",
                 "Failures", "Epoch time", "Speedup", "Efficiency"});
    for (const auto& p : points) {
      table.row()
          .cell(static_cast<long long>(p.workers))
          .cell(format_duration(p.compute_seconds))
          .cell(format_duration(p.allreduce_seconds))
          .cell(format_duration(p.recovery_seconds))
          .cell(static_cast<long long>(p.worker_failures))
          .cell(format_duration(p.epoch_seconds))
          .cell(p.speedup, 2)
          .pct(p.efficiency * 100, 0);
    }
    table.print();
    const auto& last = points.back();
    std::printf("hop-feature precompute = %.1f%% of one single-worker epoch "
                "(paper: negligible)\n",
                100.0 * hop_seconds / points.front().epoch_seconds);
    std::printf("shape check: %d workers -> %.2fx speedup "
                "(paper: near-linear)\n",
                last.workers, last.speedup);
  }
  if (ledger) {
    obs_scope.reset();
    ledger->close();
    std::printf("ledger closed: %lld events -> %s\n",
                ledger->events_written(), ledger_path.c_str());
  }
  return 0;
}
