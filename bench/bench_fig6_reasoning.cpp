// Figure 6 reproduction: functional reasoning on technology-mapped CSA and
// Booth multipliers.
//
// All models train on the mapped 8-bit multiplier of each family and are
// evaluated on larger bitwidths (paper: 64..768; default here 16..128, add
// --full for 192/256). Models: GraphSAGE (Gamora's backbone), GraphSAINT
// (sampling baseline), SIGN (hop features + MLP), GCN, and HOGA (K=8).
// Shape expectations: HOGA at or near the top everywhere, GraphSAINT worst
// (sampling breaks circuit structure), SIGN between (hop features without
// attention).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;
using train::NodeTrainConfig;

namespace {

constexpr int kHops = 8;  // matches the paper's Gamora setting

struct ModelSet {
  core::Hoga* hoga = nullptr;
  models::Gcn* gcn = nullptr;
  models::GraphSage* sage = nullptr;
  models::Gcn* saint = nullptr;
  models::Sign* sign = nullptr;
};

core::HopFeatures hop_features(const data::ReasoningGraph& g) {
  return core::HopFeatures::compute_concat(
      {g.adj_hop.get(), g.adj_fanin.get()}, g.features, kHops);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  std::vector<int> eval_bits{16, 32, 64, 128};
  if (full) {
    eval_bits.push_back(192);
    eval_bits.push_back(256);
  }
  const int hoga_epochs =
      static_cast<int>(bench::int_option(argc, argv, "--epochs", 200));

  std::puts("=== Figure 6: functional reasoning accuracy vs bitwidth ===");
  std::puts("train: mapped 8-bit multiplier; eval: larger mapped multipliers");
  std::printf("models: HOGA (K=%d), GraphSAGE, GCN, GraphSAINT, SIGN\n\n",
              kHops);

  const std::int64_t d0 = reasoning::kNodeFeatureDim;
  for (const char* family : {"csa", "booth"}) {
    Timer t;
    const auto g8 = data::make_reasoning_graph(family, 8, true);
    const auto hops8 = hop_features(g8);
    auto weights =
        train::inverse_frequency_weights(g8.labels, reasoning::kNumClasses);
    for (auto& w : weights) w = std::sqrt(w);

    NodeTrainConfig mb_cfg;  // minibatch models
    mb_cfg.epochs = hoga_epochs;
    mb_cfg.batch_size = 512;
    mb_cfg.lr = 3e-3f;
    mb_cfg.class_weights = weights;
    NodeTrainConfig fg_cfg = mb_cfg;  // full-graph models: 1 step per epoch
    fg_cfg.epochs = hoga_epochs * 3;

    Rng r1(3), r2(4), r3(5), r4(6), r5(8);
    core::Hoga hoga(core::HogaConfig{.in_dim = 2 * d0,
                                     .hidden = 48,
                                     .num_hops = kHops,
                                     .num_layers = 1,
                                     .out_dim = reasoning::kNumClasses,
                                     .input_norm = false},
                    r1);
    models::Gcn gcn(models::GcnConfig{.in_dim = d0, .hidden = 48,
                                      .out_dim = reasoning::kNumClasses,
                                      .num_layers = kHops},
                    r2);
    models::GraphSage sage(
        models::SageConfig{.in_dim = d0, .hidden = 48,
                           .out_dim = reasoning::kNumClasses,
                           .num_layers = kHops},
        r3);
    models::Sign sign(models::SignConfig{.in_dim = 2 * d0, .hidden = 48,
                                         .out_dim = reasoning::kNumClasses,
                                         .num_hops = kHops, .mlp_layers = 3},
                      r4);
    models::SaintConfig saint_cfg{
        .gcn = {.in_dim = d0, .hidden = 48,
                .out_dim = reasoning::kNumClasses, .num_layers = kHops},
        .walk_roots = 128,
        .walk_length = 4};
    models::Gcn saint_gcn(saint_cfg.gcn, r5);

    auto lh = train::train_hoga_node(hoga, hops8, g8.labels, mb_cfg);
    auto lg = train::train_gcn_node(gcn, g8.adj_norm, g8.features, g8.labels,
                                    fg_cfg);
    auto ls = train::train_sage_node(sage, g8.adj_row, g8.features, g8.labels,
                                     fg_cfg);
    auto li = train::train_sign_node(sign, hops8, g8.labels, mb_cfg);
    auto lt = train::train_saint_node(saint_gcn, saint_cfg, *g8.adj_raw,
                                      g8.features, g8.labels, fg_cfg);
    std::fprintf(stderr,
                 "[%s] trained: hoga %.0fs gcn %.0fs sage %.0fs sign %.0fs "
                 "saint %.0fs\n",
                 family, lh.seconds, lg.seconds, ls.seconds, li.seconds,
                 lt.seconds);

    Table table({"Bitwidth", "Nodes", "HOGA", "GraphSAGE", "GCN", "GraphSAINT",
                 "SIGN"});
    double hoga_first = 0, hoga_last = 0;
    for (std::size_t bi = 0; bi < eval_bits.size() + 1; ++bi) {
      const int bits = bi == 0 ? 8 : eval_bits[bi - 1];
      const auto g =
          bits == 8 ? g8 : data::make_reasoning_graph(family, bits, true);
      const auto hops = bits == 8 ? hops8 : hop_features(g);
      const double acc_hoga =
          train::accuracy(hoga.predict(hops), g.labels);
      const double acc_sage = train::accuracy(
          train::predict_sage(sage, g.adj_row, g.features), g.labels);
      const double acc_gcn = train::accuracy(
          train::predict_gcn(gcn, g.adj_norm, g.features), g.labels);
      const double acc_saint = train::accuracy(
          train::predict_gcn(saint_gcn, g.adj_norm, g.features), g.labels);
      const double acc_sign = train::accuracy(
          train::predict_sign(sign, hops), g.labels);
      table.row()
          .cell(static_cast<long long>(bits))
          .cell(static_cast<long long>(g.num_nodes))
          .pct(acc_hoga * 100, 1)
          .pct(acc_sage * 100, 1)
          .pct(acc_gcn * 100, 1)
          .pct(acc_saint * 100, 1)
          .pct(acc_sign * 100, 1);
      if (bi == 1) hoga_first = acc_hoga;
      if (bi == eval_bits.size()) hoga_last = acc_hoga;
    }
    std::printf("\n-- %s multipliers (7nm-style mapped) --\n", family);
    table.print();
    std::printf("HOGA trend across eval sizes: %.1f%% -> %.1f%% "
                "(paper: rising or stable with bitwidth)\n",
                hoga_first * 100, hoga_last * 100);
    std::printf("[%s family done in %s]\n", family,
                format_duration(t.seconds()).c_str());
  }
  return 0;
}
