// Distributed-training soak harness (DESIGN.md §13): seeded kill / rejoin /
// transport-fault sweeps against hoga::dist. The smoke run doubles as a
// tier-1 test — it fails loudly if any acceptance invariant is violated:
//
//   - zero divergence: every configuration (any worker count, any healed
//     fault schedule) ends with a final replica state that is BYTE-identical
//     to the single-process reference's hoga-ckpt v2 string, with identical
//     per-epoch losses;
//   - kill/rejoin: a worker SIGKILLed mid-epoch is detected, its shards are
//     re-assigned by rendezvous, every replica rolls back to the durable
//     checkpoint, a replacement is re-forked and re-admitted, and the replay
//     converges to the same bytes — with the recovery visible in the
//     accounting (recoveries, respawns, worker_failures, recovery_seconds);
//   - survivors-only: the same death with respawning disabled finishes on
//     the remaining workers, still bit-exact;
//   - transport faults: dropped frames, CRC-corrupted frames, and delayed
//     frames are absorbed by the ack/NAK/retransmit layer without a single
//     recovery event, still bit-exact.
//
// Emits BENCH_dist.json (scenario -> {throughput, ...}) for
// scripts/perf_diff.py; "throughput" is trained rows per wall second,
// including any rollback/replay cost the scenario's faults caused.
//
// Usage: bench_dist [--smoke] [--full] [--seed=N] [--out=path.json]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "dist/dist.hpp"
#include "dist/sharding.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/hoga_bench_dist_" + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

struct Scenario {
  std::string name;
  dist::DistResult result;
  bool bit_exact = false;    // final_state == reference final_state
  bool losses_exact = false; // per-epoch losses identical to reference
  double throughput = 0;     // trained rows / wall second
};

std::int64_t steps_per_epoch(std::int64_t rows, const dist::DistConfig& cfg) {
  const auto shards = dist::make_shards(rows, cfg.num_shards, /*digest=*/0);
  std::int64_t max_rows = 0;
  for (const auto& s : shards) max_rows = std::max(max_rows, s.rows());
  return (max_rows + cfg.batch_size - 1) / cfg.batch_size;
}

Scenario run_scenario(const std::string& name,
                      const core::HogaConfig& model_cfg,
                      const data::ReasoningGraph& g,
                      const dist::DistConfig& cfg,
                      const dist::DistResult& reference) {
  Scenario s;
  s.name = name;
  s.result = dist::run_distributed(model_cfg, *g.adj_hop, g.features,
                                   g.labels, cfg);
  s.bit_exact = s.result.final_state == reference.final_state;
  s.losses_exact = s.result.epoch_losses == reference.epoch_losses;
  const double rows_trained =
      static_cast<double>(cfg.epochs) * static_cast<double>(g.features.size(0));
  s.throughput = s.result.seconds > 0 ? rows_trained / s.result.seconds : 0;
  std::printf("%-28s w=%d  %s  loss[0]=%.4f  recov=%d respawn=%d "
              "retx=%lld nak=%lld  %.0f rows/s (%.2fs)\n",
              name.c_str(), cfg.workers,
              s.bit_exact ? "bit-exact" : "DIVERGED ",
              s.result.epoch_losses.empty() ? 0.f : s.result.epoch_losses[0],
              s.result.recoveries, s.result.respawns, s.result.retransmits,
              s.result.naks, s.throughput, s.result.seconds);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const bool full = bench::has_flag(argc, argv, "--full");
  const auto seed =
      static_cast<std::uint64_t>(bench::int_option(argc, argv, "--seed", 11));
  const std::string out_path =
      bench::str_option(argc, argv, "--out", "BENCH_dist.json");

  const auto g =
      data::make_reasoning_graph("csa", full ? 6 : 4, /*mapped=*/false);
  const core::HogaConfig model_cfg{.in_dim = reasoning::kNodeFeatureDim,
                                   .hidden = 8,
                                   .num_hops = 3,
                                   .num_layers = 1,
                                   .out_dim = 4};

  TempDir dir("soak");
  dist::DistConfig base;
  base.workers = 2;
  base.epochs = full ? 4 : 3;
  base.num_shards = full ? 8 : 4;
  base.batch_size = 16;
  base.lr = 5e-3f;
  base.seed = seed;
  base.checkpoint_path = dir.path + "/ckpt.bin";
  base.checkpoint_every = 1;
  base.heartbeat_timeout_ms = 8000;

  const std::int64_t steps = steps_per_epoch(g.features.size(0), base);
  std::printf("dataset: %lld nodes, %d shards, %lld steps/epoch, %d epochs\n",
              static_cast<long long>(g.features.size(0)), base.num_shards,
              static_cast<long long>(steps), base.epochs);

  std::puts("\n=== reference (single process, identical schedule) ===");
  Timer ref_t;
  const dist::DistResult reference =
      dist::run_reference(model_cfg, *g.adj_hop, g.features, g.labels, base);
  std::printf("reference: loss %.4f -> %.4f (%.2fs)\n",
              reference.epoch_losses.front(), reference.epoch_losses.back(),
              ref_t.seconds());

  std::puts("\n=== scenarios ===");
  std::vector<Scenario> scenarios;

  // Clean runs: worker-count invariance of the final bytes.
  for (int w : smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4}) {
    dist::DistConfig cfg = base;
    cfg.workers = w;
    scenarios.push_back(run_scenario("clean_w" + std::to_string(w), model_cfg,
                                     g, cfg, reference));
  }

  // Mid-epoch SIGKILL of one worker, replacement re-forked and re-admitted.
  const Scenario* killed = nullptr;
  {
    dist::DistConfig cfg = base;
    cfg.workers = smoke ? 2 : 4;
    fault::Injector inj(seed);
    inj.kill_worker_at_step(/*rank=*/1, /*global_step=*/1 * steps + 1);
    fault::ScopedInjector scope(inj);
    scenarios.push_back(run_scenario("kill_rejoin_w" +
                                         std::to_string(cfg.workers),
                                     model_cfg, g, cfg, reference));
    killed = &scenarios.back();
  }

  // Same death, respawning disabled: the survivors finish the run.
  const Scenario* survivors = nullptr;
  if (!smoke) {
    dist::DistConfig cfg = base;
    cfg.workers = 3;
    cfg.respawn_dead_workers = false;
    fault::Injector inj(seed + 1);
    inj.kill_worker_at_step(/*rank=*/2, /*global_step=*/1 * steps);
    fault::ScopedInjector scope(inj);
    scenarios.push_back(
        run_scenario("kill_no_respawn_w3", model_cfg, g, cfg, reference));
    survivors = &scenarios.back();
  }

  // Transport-fault sweep: drops, CRC corruption, delays — absorbed by the
  // wire layer, never escalated to a recovery.
  const Scenario* transport = nullptr;
  {
    dist::DistConfig cfg = base;
    cfg.workers = 2;
    fault::Injector inj(seed + 2);
    inj.drop_message(2);
    inj.corrupt_frame(5);
    inj.delay_message(8, 30);
    if (full) {
      inj.drop_message(12);
      inj.corrupt_frame(17);
    }
    fault::ScopedInjector scope(inj);
    scenarios.push_back(
        run_scenario("transport_faults_w2", model_cfg, g, cfg, reference));
    transport = &scenarios.back();
  }

  // -- Acceptance checks -----------------------------------------------------
  std::puts("\n-- acceptance checks --");
  int violations = 0;
  const auto require = [&violations](bool ok, const char* what) {
    std::printf("%-64s %s\n", what, ok ? "ok" : "VIOLATED");
    if (!ok) ++violations;
  };

  bool all_exact = true;
  for (const auto& s : scenarios) {
    all_exact = all_exact && s.bit_exact && s.losses_exact;
  }
  require(all_exact,
          "every scenario matches the reference byte-for-byte");
  require(killed->result.recoveries == 1 && killed->result.respawns == 1 &&
              killed->result.scaling.worker_failures == 1 &&
              killed->result.scaling.recovery_seconds > 0,
          "mid-epoch kill healed by one rollback + one respawn");
  if (survivors) {
    require(survivors->result.recoveries == 1 &&
                survivors->result.respawns == 0,
            "respawn-disabled death finished on the survivors");
  }
  require(transport->result.recoveries == 0 &&
              (transport->result.retransmits > 0 || transport->result.naks > 0),
          "transport faults absorbed by retransmit, zero recoveries");

  // -- Machine-readable results (scenario -> metrics, perf_diff format) ------
  {
    std::ofstream out(out_path, std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"dist\",\n"
        << "  \"mode\": \"" << (full ? "full" : smoke ? "smoke" : "default")
        << "\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"violations\": " << violations;
    for (const auto& s : scenarios) {
      out << ",\n  \"" << s.name << "\": {"
          << "\"throughput\": " << s.throughput
          << ", \"seconds\": " << s.result.seconds
          << ", \"recoveries\": " << s.result.recoveries
          << ", \"respawns\": " << s.result.respawns
          << ", \"retransmits\": " << s.result.retransmits
          << ", \"naks\": " << s.result.naks
          << ", \"bytes_sent\": " << s.result.bytes_sent
          << ", \"divergence\": " << (s.bit_exact && s.losses_exact ? 0 : 1)
          << "}";
    }
    out << "\n}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (violations > 0) {
    std::printf("\n%d acceptance check(s) VIOLATED\n", violations);
    return 1;
  }
  std::puts("\nall acceptance checks passed");
  return 0;
}
