// Observability overhead benchmark (DESIGN.md §10): what does hoga::obs
// instrumentation cost where it matters — the serve hot path?
//
// Two identical InferenceServices run the same sequential request stream:
//
//   - baseline: a *disabled* MetricsRegistry (every handle is a null no-op),
//     no tracer, no ledger — the cheapest configuration the wiring allows;
//   - instrumented: an enabled registry, a Tracer recording per-request
//     span trees, and a RunLedger appending one JSONL event per request.
//
// Timing is min-of-rounds (the minimum is the low-noise estimator for a
// fixed workload) with an untimed warmup round, and the request batch is
// sized so the model forward dominates — the regime the <5% budget is
// stated for. In --smoke mode the bench *asserts* the budget and fails the
// ctest if full instrumentation costs more than 5% over baseline.
//
// A second section reports primitive costs (counter inc, histogram record,
// span open/close, ledger event, snapshot render) so regressions in any one
// layer are visible before they show up in the end-to-end number.
//
// Usage: bench_obs [--smoke] [--full] [--requests=N] [--rounds=N]

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "autograd/ops.hpp"
#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "obs/obs.hpp"
#include "reasoning/labels.hpp"
#include "serve/serve.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

// One timed pass: `n` sequential requests round-robin over `batches`.
double run_requests(serve::InferenceService& svc,
                    const std::vector<Tensor>& batches, int n) {
  Timer t;
  for (int i = 0; i < n; ++i) {
    const serve::Response r =
        svc.infer({.hop_batch = batches[i % batches.size()]});
    if (r.outcome != serve::Outcome::kServed) {
      std::fprintf(stderr, "bench_obs: unexpected outcome %s\n",
                   serve::outcome_name(r.outcome));
      std::exit(1);
    }
  }
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool smoke = bench::has_flag(argc, argv, "--smoke") || !full;
  const int requests = static_cast<int>(
      bench::int_option(argc, argv, "--requests", full ? 400 : 80));
  const int rounds =
      static_cast<int>(bench::int_option(argc, argv, "--rounds", 5));

  std::puts("=== Observability overhead on the serve hot path ===");

  // Forward-dominated workload: 256-node batches through the standard
  // serving model, single worker, sequential clients.
  const int bits = full ? 32 : 16;
  Timer build_t;
  const auto g = data::make_reasoning_graph("csa", bits, true);
  const int num_hops = 3;
  const auto hops =
      core::HopFeatures::compute(*g.adj_hop, g.features, num_hops);
  Rng rng(7);
  core::Hoga model(core::HogaConfig{.in_dim = hops.feature_dim(),
                                    .hidden = 32,
                                    .num_hops = num_hops,
                                    .num_layers = 1,
                                    .out_dim = reasoning::kNumClasses},
                   rng);
  std::vector<Tensor> batches;
  for (int i = 0; i < 4; ++i) {
    std::vector<std::int64_t> ids;
    for (int j = 0; j < 256; ++j) {
      ids.push_back(static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(hops.num_nodes()))));
    }
    batches.push_back(hops.gather(ids));
  }
  std::printf("workload: mapped %d-bit CSA multiplier, %lld nodes, "
              "%d requests x %d rounds (prepared in %s)\n",
              bits, static_cast<long long>(hops.num_nodes()), requests,
              rounds, format_duration(build_t.seconds()).c_str());

  // Baseline: disabled registry = null handles, no tracer, no ledger.
  obs::MetricsRegistry noop_registry(/*enabled=*/false);
  serve::ServeConfig base_cfg{.workers = 1, .queue_capacity = 64};
  base_cfg.metrics = &noop_registry;
  serve::InferenceService base_svc(model, base_cfg);

  // Instrumented: enabled registry + tracer + run ledger, all live.
  const std::string ledger_path =
      (std::filesystem::temp_directory_path() / "bench_obs_ledger.jsonl")
          .string();
  obs::MetricsRegistry registry(/*enabled=*/true);
  obs::Tracer tracer;
  obs::RunLedger ledger(ledger_path);
  serve::ServeConfig instr_cfg{.workers = 1, .queue_capacity = 64};
  instr_cfg.metrics = &registry;
  instr_cfg.tracer = &tracer;
  instr_cfg.ledger = &ledger;
  serve::InferenceService instr_svc(model, instr_cfg);

  // Warmup (untimed), then alternate rounds so slow drift hits both arms.
  run_requests(base_svc, batches, requests);
  run_requests(instr_svc, batches, requests);
  double base_best = 1e300, instr_best = 1e300;
  const auto measure_rounds = [&] {
    for (int r = 0; r < rounds; ++r) {
      base_best =
          std::min(base_best, run_requests(base_svc, batches, requests));
      instr_best =
          std::min(instr_best, run_requests(instr_svc, batches, requests));
    }
  };
  measure_rounds();
  double overhead = (instr_best - base_best) / base_best;
  if (smoke && overhead >= 0.05) {
    // The 5% bar is a timing ratio, and a noise spike in the instrumented
    // arm can sink an otherwise-healthy run; one more min-of-rounds pass
    // converges both arms toward their true minima without loosening the
    // bar (a real regression stays above it no matter how many rounds run).
    measure_rounds();
    overhead = (instr_best - base_best) / base_best;
  }

  std::puts("\n-- end-to-end serve hot path (min of rounds) --");
  Table table({"Configuration", "Time/request", "Overhead"});
  table.row()
      .cell("no-op registry (baseline)")
      .cell(format_duration(base_best / requests))
      .cell("-");
  table.row()
      .cell("registry + tracer + ledger")
      .cell(format_duration(instr_best / requests))
      .pct(overhead * 100, 2);
  table.print();
  std::printf("spans recorded: %zu (+%lld dropped beyond capacity), "
              "ledger events: %lld\n",
              tracer.size(), tracer.dropped(), ledger.events_written());
  ledger.close();
  std::filesystem::remove(ledger_path);

  // Primitive costs, so a regression is attributable to one layer.
  std::puts("\n-- primitive costs --");
  const long long ops = full ? 10'000'000 : 1'000'000;
  Table prim({"Primitive", "ns/op"});
  {
    obs::Counter c = registry.counter("bench.counter");
    Timer t;
    for (long long i = 0; i < ops; ++i) c.inc();
    prim.row().cell("counter.inc (enabled)").cell(t.seconds() / ops * 1e9, 2);
  }
  {
    obs::Counter c = noop_registry.counter("bench.counter");
    Timer t;
    for (long long i = 0; i < ops; ++i) c.inc();
    prim.row().cell("counter.inc (no-op)").cell(t.seconds() / ops * 1e9, 2);
  }
  {
    obs::Histogram h =
        registry.histogram("bench.hist", obs::latency_ms_bounds());
    Timer t;
    for (long long i = 0; i < ops; ++i) {
      h.record(static_cast<double>(i % 100));
    }
    prim.row().cell("histogram.record (enabled)").cell(
        t.seconds() / ops * 1e9, 2);
  }
  {
    const long long span_ops = ops / 20;
    obs::Tracer tr(nullptr, /*capacity=*/1024);
    Timer t;
    for (long long i = 0; i < span_ops; ++i) {
      obs::Span s = tr.span("bench.span");
    }
    prim.row().cell("span open+close").cell(t.seconds() / span_ops * 1e9, 2);
  }
  {
    const long long ledger_ops = ops / 100;
    obs::RunLedger led(ledger_path);
    Timer t;
    for (long long i = 0; i < ledger_ops; ++i) {
      led.event("bench.event", {{"i", i}, {"v", 0.5}});
    }
    prim.row().cell("ledger.event").cell(t.seconds() / ledger_ops * 1e9, 2);
    led.close();
    std::filesystem::remove(ledger_path);
  }
  {
    Timer t;
    const int snaps = 1000;
    std::size_t bytes = 0;
    for (int i = 0; i < snaps; ++i) bytes += registry.text_snapshot().size();
    prim.row().cell("registry.text_snapshot").cell(
        t.seconds() / snaps * 1e9, 2);
    (void)bytes;
  }
  prim.print();

  if (smoke) {
    std::printf("\nsmoke assertion: overhead %.2f%% < 5%% -> %s\n",
                overhead * 100, overhead < 0.05 ? "ok" : "VIOLATED");
    if (overhead >= 0.05) return 1;
  }
  return 0;
}
