// Figure 7 reproduction: hop-wise attention scores per node class.
//
// Trains HOGA (K=8) on the mapped 8-bit Booth multiplier, then samples 100
// nodes per class from a large Booth multiplier and prints each class's
// readout-attention heatmap (rows = sampled nodes, columns = hops 1..K) as
// ASCII shading plus the per-class mean score per hop. The paper's
// observation: MAJ/XOR/shared classes concentrate attention on even hops
// {2, 4, 6} (second-order structures), the plain class is diffuse. We
// quantify this with the even-hop attention mass per class.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"
#include "util/table.hpp"

using namespace hoga;

namespace {

constexpr int kHops = 8;

char shade(float v) {
  // 5-level ASCII shading for heatmap cells.
  if (v < 0.05f) return '.';
  if (v < 0.15f) return ':';
  if (v < 0.30f) return '+';
  if (v < 0.50f) return '#';
  return '@';
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const int bits =
      static_cast<int>(bench::int_option(argc, argv, "--bits",
                                         full ? 128 : 48));
  const int samples_per_class = 100;  // as in the paper

  std::puts("=== Figure 7: hop-wise attention scores per node class ===");
  std::printf("train: mapped 8-bit Booth; visualize: mapped %d-bit Booth\n\n",
              bits);

  // Paper-exact Eq. 3 hop features (symmetric, no self loops) so the
  // attention-vs-hop analysis matches the paper's setting.
  const std::int64_t d0 = reasoning::kNodeFeatureDim;
  const auto g8 = data::make_reasoning_graph("booth", 8, true);
  const auto hops8 =
      core::HopFeatures::compute(*g8.adj_hop, g8.features, kHops);
  Rng rng(3);
  core::Hoga model(core::HogaConfig{.in_dim = d0,
                                    .hidden = 48,
                                    .num_hops = kHops,
                                    .num_layers = 1,
                                    .out_dim = reasoning::kNumClasses,
                                    .input_norm = false},
                   rng);
  train::NodeTrainConfig cfg;
  cfg.epochs = static_cast<int>(bench::int_option(argc, argv, "--epochs", 200));
  cfg.batch_size = 512;
  cfg.lr = 3e-3f;
  cfg.class_weights =
      train::inverse_frequency_weights(g8.labels, reasoning::kNumClasses);
  train::train_hoga_node(model, hops8, g8.labels, cfg);

  const auto big = data::make_reasoning_graph("booth", bits, true);
  const auto hops_big =
      core::HopFeatures::compute(*big.adj_hop, big.features, kHops);
  core::HogaAttention attention;
  const Tensor logits = model.predict(hops_big, 4096, &attention);
  std::printf("reasoning accuracy on %d-bit Booth: %.1f%%\n\n", bits,
              train::accuracy(logits, big.labels) * 100);

  // Sample nodes per class deterministically.
  Rng sample_rng(9);
  Table summary({"Class", "Samples", "c1", "c2", "c3", "c4", "c5", "c6", "c7",
                 "c8", "even-hop mass", "entropy"});
  for (int cls = 0; cls < reasoning::kNumClasses; ++cls) {
    std::vector<std::int64_t> members;
    for (std::size_t i = 0; i < big.labels.size(); ++i) {
      if (big.labels[i] == cls) {
        members.push_back(static_cast<std::int64_t>(i));
      }
    }
    if (members.empty()) continue;
    sample_rng.shuffle(members);
    const std::size_t take = std::min<std::size_t>(
        members.size(), static_cast<std::size_t>(samples_per_class));
    members.resize(take);

    // Heatmap: one row per sampled node (print a subset of 20 rows to keep
    // the log readable; the mean row summarizes all samples).
    std::printf("-- class %s: attention heatmap (rows=nodes, cols=hop 1..%d) "
                "--\n",
                reasoning::node_class_name(
                    static_cast<reasoning::NodeClass>(cls)),
                kHops);
    std::vector<double> mean(kHops, 0.0);
    for (std::size_t s = 0; s < take; ++s) {
      for (int k = 0; k < kHops; ++k) {
        mean[static_cast<std::size_t>(k)] +=
            attention.readout_scores.at({members[s], k});
      }
      if (s < 20) {
        std::fputs("   ", stdout);
        for (int k = 0; k < kHops; ++k) {
          std::fputc(shade(attention.readout_scores.at({members[s], k})),
                     stdout);
        }
        std::fputc('\n', stdout);
      }
    }
    for (auto& m : mean) m /= static_cast<double>(take);
    double even_mass = 0, entropy = 0;
    for (int k = 1; k <= kHops; ++k) {
      const double m = mean[static_cast<std::size_t>(k - 1)];
      if (k % 2 == 0) even_mass += m;
      if (m > 1e-12) entropy -= m * std::log2(m);
    }
    summary.row()
        .cell(reasoning::node_class_name(
            static_cast<reasoning::NodeClass>(cls)))
        .cell(static_cast<long long>(take));
    for (int k = 0; k < kHops; ++k) summary.cell(mean[k], 3);
    summary.pct(even_mass * 100, 1);
    summary.cell(entropy, 2);
    std::puts("");
  }
  std::puts("-- per-class mean attention per hop --");
  summary.print();
  std::puts("\npaper shape check: attention is class-dependent — "
            "MAJ/XOR/shared concentrate on few informative hops (low "
            "entropy) while the plain class stays diffuse (high entropy). "
            "The paper additionally observes even-hop concentration; see "
            "EXPERIMENTS.md for where our substitute differs.");
  return 0;
}
