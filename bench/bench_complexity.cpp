// Complexity microbenchmarks (paper §III-C): HOGA's total complexity is
// O(Kmd + nKd^2 + nK^2 d) — linear in nodes and edges. These benchmarks
// measure hop-feature generation and the gated-attention forward pass
// across graph sizes; near-linear scaling of time with n/m confirms the
// analysis. Synthesis-pass and labeling throughput are included since they
// bound dataset generation.

#include <benchmark/benchmark.h>

#include <map>

#include "circuits/multipliers.hpp"
#include "aig/cuts.hpp"
#include "core/hoga_model.hpp"
#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "synth/recipe.hpp"
#include "synth/rewrite.hpp"
#include "synth/techmap.hpp"

using namespace hoga;

namespace {

// Build once per bitwidth and reuse across iterations.
const data::ReasoningGraph& graph_for(int bits) {
  static std::map<int, data::ReasoningGraph> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    it = cache.emplace(bits, data::make_reasoning_graph("csa", bits, false))
             .first;
  }
  return it->second;
}

void BM_HopFeatureGeneration(benchmark::State& state) {
  const auto& g = graph_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hops = core::HopFeatures::compute(*g.adj_hop, g.features, 8);
    benchmark::DoNotOptimize(hops.stacked().data());
  }
  state.SetComplexityN(g.num_edges);
}

void BM_GatedAttentionForward(benchmark::State& state) {
  const auto& g = graph_for(static_cast<int>(state.range(0)));
  auto hops = core::HopFeatures::compute(*g.adj_hop, g.features, 8);
  Rng rng(1);
  core::Hoga model(
      core::HogaConfig{.in_dim = reasoning::kNodeFeatureDim,
                       .hidden = 32,
                       .num_hops = 8,
                       .num_layers = 1,
                       .out_dim = 4},
      rng);
  for (auto _ : state) {
    Tensor out = model.predict(hops, 4096);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(g.num_nodes);
}

void BM_CutEnumeration(benchmark::State& state) {
  const auto lc =
      circuits::make_csa_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto cuts = aig::enumerate_cuts(lc.aig, {.k = 4, .max_cuts = 8});
    benchmark::DoNotOptimize(cuts.size());
  }
  state.SetComplexityN(lc.aig.num_nodes());
}

void BM_RewritePass(benchmark::State& state) {
  const auto lc =
      circuits::make_csa_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    aig::Aig out = synth::rewrite(lc.aig);
    benchmark::DoNotOptimize(out.num_ands());
  }
  state.SetComplexityN(lc.aig.num_nodes());
}

void BM_TechMap(benchmark::State& state) {
  const auto lc =
      circuits::make_csa_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    aig::Aig out = synth::tech_map(lc.aig);
    benchmark::DoNotOptimize(out.num_ands());
  }
  state.SetComplexityN(lc.aig.num_nodes());
}

void BM_FunctionalLabeling(benchmark::State& state) {
  const auto lc =
      circuits::make_csa_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto labels = reasoning::functional_labels(lc.aig);
    benchmark::DoNotOptimize(labels.size());
  }
  state.SetComplexityN(lc.aig.num_nodes());
}

}  // namespace

BENCHMARK(BM_HopFeatureGeneration)->Arg(8)->Arg(16)->Arg(32)->Iterations(3)->Complexity();
BENCHMARK(BM_GatedAttentionForward)->Arg(8)->Arg(16)->Arg(32)->Iterations(2)->Complexity();
BENCHMARK(BM_CutEnumeration)->Arg(8)->Arg(16)->Arg(24)->Iterations(3)->Complexity();
BENCHMARK(BM_RewritePass)->Arg(8)->Arg(16)->Iterations(2)->Complexity();
BENCHMARK(BM_TechMap)->Arg(8)->Arg(16)->Iterations(2)->Complexity();
BENCHMARK(BM_FunctionalLabeling)->Arg(8)->Arg(16)->Arg(24)->Iterations(3)->Complexity();

BENCHMARK_MAIN();
