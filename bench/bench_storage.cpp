// Storage-engine soak harness (DESIGN.md §12): seeded fault sweeps against
// hoga::storage while concurrent readers hammer the same files. The smoke
// run doubles as a tier-1 test — it fails loudly if any acceptance
// invariant is violated:
//
//   - checkpoint sweep: a kill at EVERY fsync/rename boundary of
//     atomic_write_durable, plus a torn write and an injected ENOSPC, each
//     leave the destination holding a complete CRC-valid generation (the
//     old one before the rename boundary, the new one after), and a plain
//     rewrite heals the residue;
//   - ledger sweep: a kill at every boundary a rolling/compacting
//     SegmentedLedger workload crosses — and a torn write / ENOSPC at every
//     payload write it performs — ends in recovery that conserves every
//     appended event, repairs torn segments, and re-verifies the footer
//     CRC chain end to end;
//   - zero silent wrong reads: readers racing every sweep above never see a
//     torn, stale-partial, or duplicated record — every observed state is a
//     complete generation or a consistent ledger prefix;
//   - week-long soak: with size+age rotation and compaction on, a simulated
//     week of appends keeps the ledger's file count bounded while
//     conserving the exact total event count;
//   - store + scrubber: a kill mid-shard-write leaves only temp residue and
//     the store heals by recompute (bit-exact); a bit-rotted shard is
//     quarantined and counted by the scrubber, then healed by recompute;
//   - determinism: the same seeded fault schedule reproduces the same
//     sweep signature.
//
// Emits machine-readable sweep stats to BENCH_storage.json.
//
// Usage: bench_storage [--smoke] [--full] [--seed=N] [--out=path.json]

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/hop_features.hpp"
#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "storage/scrubber.hpp"
#include "storage/segmented_ledger.hpp"
#include "storage/storage.hpp"
#include "store/digest.hpp"
#include "store/feature_store.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/hoga_bench_storage_" + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool bit_exact(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Checkpoint-file sweep: one framed generation record, rewritten under
// injected faults while readers poll. The destination must always decode to
// a complete generation the writer actually produced.
// ---------------------------------------------------------------------------

std::string generation_payload(long long gen) {
  std::ostringstream os;
  os << "generation " << gen << '\n';
  for (int i = 0; i < 32; ++i) os << gen * 1000 + i << '\n';
  return os.str();
}

// Parses a complete framed generation; -1 when the bytes are not one.
long long decode_generation(const std::string& bytes) {
  const auto payload = storage::decode_framed(bytes);
  if (!payload) return -1;
  std::istringstream is(*payload);
  std::string word;
  long long gen = -1;
  is >> word >> gen;
  if (word != "generation" || is.fail()) return -1;
  return gen;
}

struct CheckpointSweep {
  int kill_runs = 0;
  int torn_runs = 0;
  int enospc_runs = 0;
  int bad_outcomes = 0;  // on-disk state not the expected generation
  long long reader_reads = 0;
  long long wrong_reads = 0;
};

CheckpointSweep run_checkpoint_sweep(std::uint64_t seed) {
  TempDir dir("ckpt");
  const std::string path = dir.path + "/model.ckpt";
  CheckpointSweep out;

  std::atomic<bool> stop{false};
  std::atomic<long long> reads{0}, wrong{0}, max_gen{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string bytes = slurp(path);
      if (bytes.empty()) continue;  // not written yet
      ++reads;
      const long long gen = decode_generation(bytes);
      // Readers race only rename-complete states: anything unparseable, or
      // a generation the writer never produced, is a silent wrong read.
      if (gen < 1 || gen > max_gen.load(std::memory_order_acquire)) ++wrong;
    }
  };

  auto write_gen = [&](long long gen) {
    max_gen.store(gen, std::memory_order_release);
    storage::atomic_write_durable(path, storage::encode_framed(
                                            generation_payload(gen)));
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) readers.emplace_back(reader);

  long long gen = 0;
  write_gen(++gen);

  // Kill at each of the four boundaries one durable write crosses. Before
  // the rename boundary the old generation must survive; at or after it the
  // new one must be fully visible.
  for (int nth = 0; nth < 4; ++nth) {
    fault::Injector inj(seed);
    inj.kill_at_storage_point(nth);
    fault::ScopedInjector scope(inj);
    const long long prev = gen;
    bool crashed = false;
    try {
      write_gen(gen + 1);
    } catch (const fault::SimulatedCrash&) {
      crashed = true;
    }
    const long long on_disk = decode_generation(slurp(path));
    const long long expect = nth < 2 ? prev : prev + 1;
    if (!crashed || on_disk != expect ||
        inj.counts().storage_kills != 1) {
      ++out.bad_outcomes;
    }
    ++out.kill_runs;
    gen = prev + 1;
    write_gen(++gen);  // heal: the next full write always lands
  }

  // Torn write: a strict prefix reaches the temp file, then the process
  // dies. The destination keeps the previous complete generation.
  for (double fraction : {0.0, 0.4, 0.9}) {
    fault::Injector inj(seed + 1);
    inj.tear_storage_write(0, fraction);
    fault::ScopedInjector scope(inj);
    const long long prev = gen;
    bool crashed = false;
    try {
      write_gen(gen + 1);
    } catch (const fault::SimulatedCrash&) {
      crashed = true;
    }
    if (!crashed || decode_generation(slurp(path)) != prev ||
        inj.counts().storage_torn_writes != 1) {
      ++out.bad_outcomes;
    }
    ++out.torn_runs;
    gen = prev + 1;
    write_gen(++gen);
  }

  // Injected ENOSPC: the write fails as an ordinary error, nothing lands,
  // no temp residue survives, and a retry succeeds.
  {
    fault::Injector inj(seed + 2);
    inj.fail_storage_write(0);
    fault::ScopedInjector scope(inj);
    const long long prev = gen;
    bool failed = false;
    try {
      write_gen(gen + 1);
    } catch (const std::exception&) {
      failed = true;
    }
    if (!failed || decode_generation(slurp(path)) != prev ||
        std::filesystem::exists(path + ".tmp") ||
        inj.counts().storage_write_errors != 1) {
      ++out.bad_outcomes;
    }
    ++out.enospc_runs;
    gen = prev + 1;
    write_gen(gen);  // the retry consumes no schedule slot and lands
    if (decode_generation(slurp(path)) != gen) ++out.bad_outcomes;
  }

  stop.store(true);
  for (auto& t : readers) t.join();
  out.reader_reads = reads.load();
  out.wrong_reads = wrong.load();
  return out;
}

// ---------------------------------------------------------------------------
// Ledger sweep: a fixed rolling/compacting workload, re-run once per fault
// slot. Every run must end in recovery that conserves the events the dying
// writer actually appended.
// ---------------------------------------------------------------------------

constexpr int kLedgerEvents = 48;
constexpr int kRecoveryEvents = 3;

storage::SegmentedLedgerConfig ledger_config(const std::string& dir,
                                             obs::Clock* clock) {
  storage::SegmentedLedgerConfig cfg;
  cfg.directory = dir;
  cfg.max_segment_bytes = 512;  // rolls every handful of events
  cfg.max_closed_segments = 2;  // compacts aggressively
  cfg.clock = clock;
  return cfg;
}

struct LedgerRun {
  long long appended = 0;
  bool crashed = false;
  bool close_failed = false;
  fault::Counts counts;
  storage::SegmentedLedger::Stats stats;

  std::string signature() const {
    std::ostringstream os;
    os << "appended=" << appended << " crashed=" << crashed
       << " close_failed=" << close_failed << " events=" << stats.events
       << " rolls=" << stats.rolls << " compactions=" << stats.compactions
       << " append_errors=" << stats.append_errors
       << " kills=" << counts.storage_kills
       << " torn=" << counts.storage_torn_writes
       << " enospc=" << counts.storage_write_errors;
    return os.str();
  }
};

// Runs the scripted workload under `inj`; a SimulatedCrash ends the run the
// way a process death would (the ledger instance freezes itself).
LedgerRun run_ledger_workload(const std::string& dir, fault::Injector& inj) {
  fault::ScopedInjector scope(inj);
  obs::FakeClock clk(0, 1000);
  LedgerRun out;
  storage::SegmentedLedger led(ledger_config(dir, &clk));
  for (int i = 0; i < kLedgerEvents && !out.crashed; ++i) {
    try {
      led.event(i % 2 == 0 ? "tick" : "tock", {{"i", i}});
    } catch (const fault::SimulatedCrash&) {
      out.crashed = true;
    }
  }
  if (!out.crashed) {
    try {
      led.close();
    } catch (const fault::SimulatedCrash&) {
      out.crashed = true;
    } catch (const std::exception&) {
      out.close_failed = true;  // e.g. ENOSPC on the final footer
    }
  }
  out.stats = led.stats();
  // Events the instance really appended: an injected ENOSPC is swallowed
  // inside event() (dropped + counted), so the caller can't tell from the
  // return path — the ledger's own counter is the ground truth.
  out.appended = out.stats.events;
  out.counts = inj.counts();
  return out;
}

// Post-fault verification: the surviving directory must already account for
// every appended event, and a fresh instance must repair it back to a fully
// chained, torn-free state that keeps accepting events.
bool verify_and_recover(const std::string& dir, const LedgerRun& run,
                        std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why) *why = reason + " [" + run.signature() + "]";
    return false;
  };
  const auto before = storage::SegmentedLedger::read_dir(dir);
  if (before.total_events() != run.appended) {
    return fail("pre-recovery event count mismatch: read " +
                std::to_string(before.total_events()));
  }
  if (!before.chain_valid) return fail("pre-recovery chain invalid");
  if (before.skipped_lines > 1) {
    return fail("more than the one torn line survived");
  }

  {
    obs::FakeClock clk(1'000'000, 1000);
    storage::SegmentedLedger rec(ledger_config(dir, &clk));
    if (rec.next_seq() != run.appended) {
      return fail("recovered seq " + std::to_string(rec.next_seq()));
    }
    for (int i = 0; i < kRecoveryEvents; ++i) rec.event("recovered", {{"i", i}});
    rec.close();
  }

  const auto after = storage::SegmentedLedger::read_dir(dir);
  if (after.total_events() != run.appended + kRecoveryEvents) {
    return fail("post-recovery event count mismatch: read " +
                std::to_string(after.total_events()));
  }
  if (!after.chain_valid) return fail("post-recovery chain invalid");
  if (after.torn_segments != 0) return fail("torn segment survived recovery");
  if (after.skipped_lines != 0) return fail("torn line survived recovery");
  long long prev_seq = -1;
  for (const auto& e : after.events) {
    if (e.seq <= prev_seq) return fail("duplicate/unsorted seq");
    prev_seq = e.seq;
  }
  if (!after.events.empty() &&
      after.events.back().seq != run.appended + kRecoveryEvents - 1) {
    return fail("seq stream not contiguous");
  }
  return true;
}

struct LedgerSweep {
  int kill_slots = 0;
  int torn_slots = 0;
  int enospc_slots = 0;
  int failures = 0;
  std::vector<std::string> failure_reasons;
};

LedgerSweep run_ledger_sweep(std::uint64_t seed, bool verbose) {
  LedgerSweep sweep;

  // Probe: one clean run tells us how many kill boundaries the workload
  // crosses; the write-slot sweeps below self-terminate when a scheduled
  // fault goes unconsumed.
  int kill_points = 0;
  {
    TempDir dir("ledger_probe");
    fault::Injector probe(seed);
    run_ledger_workload(dir.path, probe);
    kill_points = probe.storage_points_probed();
  }
  if (verbose) {
    std::printf("ledger workload: %d events, %d kill boundaries\n",
                kLedgerEvents, kill_points);
  }

  std::string why;
  for (int nth = 0; nth < kill_points; ++nth) {
    TempDir dir("ledger_kill");
    fault::Injector inj(seed);
    inj.kill_at_storage_point(nth);
    const LedgerRun run = run_ledger_workload(dir.path, inj);
    ++sweep.kill_slots;
    if (!run.crashed || run.counts.storage_kills != 1 ||
        !verify_and_recover(dir.path, run, &why)) {
      ++sweep.failures;
      sweep.failure_reasons.push_back("kill@" + std::to_string(nth) + ": " +
                                      why);
    }
  }

  // Torn write at every payload write the workload performs (appended event
  // lines, roll footers, compaction snapshots — short writes included via
  // the 0.3 fraction).
  for (int nth = 0;; ++nth) {
    TempDir dir("ledger_torn");
    fault::Injector inj(seed + 1);
    inj.tear_storage_write(nth, nth % 2 == 0 ? 0.3 : 0.8);
    const LedgerRun run = run_ledger_workload(dir.path, inj);
    if (run.counts.storage_torn_writes == 0) break;  // past the last write
    ++sweep.torn_slots;
    if (!run.crashed || !verify_and_recover(dir.path, run, &why)) {
      ++sweep.failures;
      sweep.failure_reasons.push_back("torn@" + std::to_string(nth) + ": " +
                                      why);
    }
  }

  // ENOSPC at every payload write: never a crash — the event (or the close
  // footer) is dropped and counted, the stream stays contiguous, and
  // recovery still verifies end to end.
  for (int nth = 0;; ++nth) {
    TempDir dir("ledger_enospc");
    fault::Injector inj(seed + 2);
    inj.fail_storage_write(nth);
    const LedgerRun run = run_ledger_workload(dir.path, inj);
    if (run.counts.storage_write_errors == 0) break;
    ++sweep.enospc_slots;
    const bool drop_counted =
        run.stats.append_errors + (run.close_failed ? 1 : 0) >= 1;
    if (run.crashed || !drop_counted ||
        !verify_and_recover(dir.path, run, &why)) {
      ++sweep.failures;
      sweep.failure_reasons.push_back("enospc@" + std::to_string(nth) + ": " +
                                      why);
    }
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// Week-long soak: size+age rotation with compaction, readers recovering the
// directory concurrently. File count stays bounded; events are conserved.
// ---------------------------------------------------------------------------

struct WeekSoak {
  long long events = 0;
  long long rolls = 0;
  long long compactions = 0;
  std::size_t max_files = 0;
  std::size_t max_files_allowed = 0;
  std::uint64_t simulated_ns = 0;
  long long reader_reads = 0;
  long long wrong_reads = 0;
  bool conserved = false;
  bool chain_valid = false;
};

WeekSoak run_week_soak(bool full) {
  TempDir dir("week");
  WeekSoak out;
  const int events = full ? 20000 : 3000;
  // ~2 clock readings per event; sized so the run spans > one simulated
  // week of ledger time.
  obs::FakeClock clk(0, full ? 20'000'000'000ull : 120'000'000'000ull);

  storage::SegmentedLedgerConfig cfg;
  cfg.directory = dir.path;
  cfg.max_segment_bytes = 16 << 10;
  cfg.max_segment_age_ns = 3'600'000'000'000ull;  // one simulated hour
  cfg.max_closed_segments = 4;
  cfg.clock = &clk;
  // Peak between a roll and the compaction that follows it: the closed cap
  // plus one just-closed segment, the active segment, and the snapshot.
  out.max_files_allowed = cfg.max_closed_segments + 3;

  std::atomic<bool> stop{false};
  std::atomic<long long> reads{0}, wrong{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        const auto r = storage::SegmentedLedger::read_dir(dir.path);
        ++reads;
        long long prev = -1;
        for (const auto& e : r.events) {
          if (e.seq <= prev) {  // duplicated or reordered records
            ++wrong;
            break;
          }
          prev = e.seq;
        }
      } catch (const std::exception&) {
        // A segment deleted by compaction between listing and reading is a
        // loud retryable race, not a wrong read.
      }
    }
  };

  {
    storage::SegmentedLedger led(cfg);
    std::vector<std::thread> readers;
    for (int i = 0; i < 2; ++i) readers.emplace_back(reader);
    for (int i = 0; i < events; ++i) {
      led.event("serve.request", {{"i", i}});
      if (i % 64 == 0) out.max_files = std::max(out.max_files,
                                                led.file_count());
    }
    out.max_files = std::max(out.max_files, led.file_count());
    stop.store(true);
    for (auto& t : readers) t.join();
    const auto stats = led.stats();
    out.events = stats.events;
    out.rolls = stats.rolls;
    out.compactions = stats.compactions;
    led.close();
  }
  out.simulated_ns = clk.now_ns();
  out.reader_reads = reads.load();
  out.wrong_reads = wrong.load();

  const auto final_read = storage::SegmentedLedger::read_dir(dir.path);
  out.conserved = final_read.total_events() == events;
  out.chain_valid =
      final_read.chain_valid && final_read.torn_segments == 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const auto seed =
      static_cast<std::uint64_t>(bench::int_option(argc, argv, "--seed", 7));
  const std::string out_path =
      bench::str_option(argc, argv, "--out", "BENCH_storage.json");

  obs::MetricsRegistry registry;
  obs::ScopedObservability obs_scope({.metrics = &registry});

  int violations = 0;
  const auto require = [&violations](bool ok, const char* what) {
    std::printf("%-64s %s\n", what, ok ? "ok" : "VIOLATED");
    if (!ok) ++violations;
  };

  std::puts("=== Storage soak: checkpoint kill/torn/ENOSPC sweep ===");
  Timer ckpt_t;
  const CheckpointSweep ckpt = run_checkpoint_sweep(seed);
  std::printf("%d kill + %d torn + %d enospc runs, %lld concurrent reads "
              "(%s)\n",
              ckpt.kill_runs, ckpt.torn_runs, ckpt.enospc_runs,
              ckpt.reader_reads, format_duration(ckpt_t.seconds()).c_str());

  std::puts("\n=== Storage soak: ledger fault sweep ===");
  Timer ledger_t;
  const LedgerSweep ledger = run_ledger_sweep(seed, /*verbose=*/true);
  std::printf("%d kill + %d torn + %d enospc slots swept, %d failures (%s)\n",
              ledger.kill_slots, ledger.torn_slots, ledger.enospc_slots,
              ledger.failures, format_duration(ledger_t.seconds()).c_str());
  for (const auto& reason : ledger.failure_reasons) {
    std::printf("  FAILED %s\n", reason.c_str());
  }

  // Determinism: the same seeded kill schedule reproduces the same run.
  std::string sig_a, sig_b;
  {
    TempDir a("det_a"), b("det_b");
    fault::Injector ia(seed + 3), ib(seed + 3);
    ia.kill_at_storage_point(1);
    ib.kill_at_storage_point(1);
    sig_a = run_ledger_workload(a.path, ia).signature();
    sig_b = run_ledger_workload(b.path, ib).signature();
  }

  std::puts("\n=== Storage soak: simulated week with rotation+compaction ===");
  Timer week_t;
  const WeekSoak week = run_week_soak(full);
  std::printf("%lld events over %.1f simulated days: %lld rolls, %lld "
              "compactions, max %zu files (cap %zu), %lld concurrent "
              "recoveries (%s)\n",
              week.events, static_cast<double>(week.simulated_ns) / 86.4e12,
              week.rolls, week.compactions, week.max_files,
              week.max_files_allowed, week.reader_reads,
              format_duration(week_t.seconds()).c_str());

  std::puts("\n=== Storage soak: store heal-by-recompute + scrubber ===");
  TempDir store_dir("store");
  const auto g = data::make_reasoning_graph("csa", 8, /*mapped=*/false);
  const int num_hops = 3;
  const core::HopFeatures reference =
      core::HopFeatures::compute(*g.adj_hop, g.features, num_hops);
  const store::FeatureKey key{store::graph_digest(*g.adj_hop, g.features),
                              num_hops};

  // A kill while the shard's temp file is being written: the crash
  // propagates (the process "died"), the shard never becomes visible, and a
  // fresh store heals by recompute.
  bool put_crashed = false;
  {
    fault::Injector inj(seed + 4);
    inj.kill_at_storage_point(0);
    fault::ScopedInjector scope(inj);
    store::FeatureStore victim({.directory = store_dir.path});
    try {
      victim.put(key, reference);
    } catch (const fault::SimulatedCrash&) {
      put_crashed = true;
    }
  }
  store::FeatureStore healer({.directory = store_dir.path});
  const std::string shard = healer.shard_path(key);
  const bool shard_hidden = !std::filesystem::exists(shard);
  store::StoreOutcome outcome = store::StoreOutcome::kMemoryHit;
  const auto healed =
      healer.get_or_compute(*g.adj_hop, g.features, num_hops, &outcome);
  const bool heal_exact = outcome == store::StoreOutcome::kComputed &&
                          bit_exact(healed.stacked(), reference.stacked());

  // Bit-rot the (now rewritten) shard; the scrubber must quarantine it, and
  // the store must recompute — bit-exactly — instead of serving rot.
  {
    std::string bytes = slurp(shard);
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream(shard, std::ios::binary | std::ios::trunc) << bytes;
  }
  storage::Scrubber scrubber({.directories = {store_dir.path}});
  scrubber.scrub_pass();
  const auto scrub = scrubber.stats();
  store::FeatureStore reader_store(
      {.directory = store_dir.path, .memory_budget_bytes = 0});
  store::StoreOutcome rot_outcome = store::StoreOutcome::kMemoryHit;
  const auto re_healed = reader_store.get_or_compute(*g.adj_hop, g.features,
                                                     num_hops, &rot_outcome);
  const bool rot_healed = rot_outcome == store::StoreOutcome::kComputed &&
                          bit_exact(re_healed.stacked(), reference.stacked());
  std::printf("scrub: %s\n", scrub.counts_signature().c_str());

  // -- Acceptance checks -----------------------------------------------------
  std::puts("\n-- acceptance checks --");
  require(ckpt.bad_outcomes == 0,
          "every checkpoint fault left a complete expected generation");
  require(ckpt.wrong_reads == 0 && ckpt.reader_reads > 0,
          "zero wrong reads while racing checkpoint rewrites");
  require(ledger.kill_slots >= 8 && ledger.torn_slots >= kLedgerEvents &&
              ledger.enospc_slots >= kLedgerEvents,
          "sweep covered every ledger boundary and payload write");
  require(ledger.failures == 0,
          "every ledger fault healed: events conserved, chain re-verified");
  require(sig_a == sig_b,
          "same seeded fault schedule reproduces the same run");
  require(week.simulated_ns >= 604'800'000'000'000ull,
          "soak spans at least one simulated week");
  require(week.max_files <= week.max_files_allowed && week.rolls > 50,
          "rotation+compaction kept the ledger file count bounded");
  require(week.conserved && week.chain_valid,
          "week-long event stream conserved with a valid chain");
  require(week.wrong_reads == 0 && week.reader_reads > 0,
          "zero wrong reads while racing rotation and compaction");
  require(put_crashed && shard_hidden && heal_exact,
          "killed shard write stayed invisible; healed by recompute");
  require(scrub.corrupt == 1 && scrub.quarantined == 1,
          "scrubber quarantined and counted the bit-rotted shard");
  require(rot_healed, "quarantined shard healed by bit-exact recompute");

  // -- Machine-readable sweep stats ------------------------------------------
  {
    std::ofstream out(out_path, std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"storage\",\n"
        << "  \"mode\": \"" << (full ? "full" : "smoke") << "\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"checkpoint_kill_runs\": " << ckpt.kill_runs << ",\n"
        << "  \"checkpoint_torn_runs\": " << ckpt.torn_runs << ",\n"
        << "  \"checkpoint_enospc_runs\": " << ckpt.enospc_runs << ",\n"
        << "  \"ledger_kill_slots\": " << ledger.kill_slots << ",\n"
        << "  \"ledger_torn_slots\": " << ledger.torn_slots << ",\n"
        << "  \"ledger_enospc_slots\": " << ledger.enospc_slots << ",\n"
        << "  \"sweep_failures\": " << ledger.failures << ",\n"
        << "  \"reader_reads\": "
        << ckpt.reader_reads + week.reader_reads << ",\n"
        << "  \"wrong_reads\": " << ckpt.wrong_reads + week.wrong_reads
        << ",\n"
        << "  \"week_events\": " << week.events << ",\n"
        << "  \"week_rolls\": " << week.rolls << ",\n"
        << "  \"week_compactions\": " << week.compactions << ",\n"
        << "  \"week_max_files\": " << week.max_files << ",\n"
        << "  \"week_simulated_days\": "
        << static_cast<double>(week.simulated_ns) / 86.4e12 << ",\n"
        << "  \"scrub_quarantined\": " << scrub.quarantined << ",\n"
        << "  \"violations\": " << violations << "\n"
        << "}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (violations > 0) {
    std::printf("\n%d acceptance check(s) VIOLATED\n", violations);
    return 1;
  }
  std::puts("\nall acceptance checks passed");
  return 0;
}
