// Figure 4 reproduction: predicted vs ground-truth QoR for GCN and HOGA-5
// on the nine held-out designs.
//
// The paper's figure shows HOGA-5 predictions hugging the diagonal while
// GCN's are scattered. We print the (truth, prediction) series per design
// and summarize with the Pearson correlation and the regression slope — a
// faithful model has correlation near 1 and slope near 1.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "data/qor_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/qor_trainer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

struct Fit {
  double correlation = 0;
  double slope = 0;
};

Fit fit_series(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  Fit f;
  f.slope = sxx > 0 ? sxy / sxx : 0;
  f.correlation = (sxx > 0 && syy > 0) ? sxy / std::sqrt(sxx * syy) : 0;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const int recipes = static_cast<int>(
      bench::int_option(argc, argv, "--recipes", 12));
  const int epochs =
      static_cast<int>(bench::int_option(argc, argv, "--epochs", 20));

  std::puts("=== Figure 4: QoR predictions vs ground truth (test designs) ===");
  data::QorDatasetParams dparams;
  dparams.recipes_per_design = recipes;
  const auto ds = data::QorDataset::generate(dparams);

  struct ModelRun {
    std::string name;
    train::QorBackbone backbone;
    int hops;
    train::QorEval eval;
  };
  std::vector<ModelRun> runs{{"GCN", train::QorBackbone::kGcn, 0, {}},
                             {"HOGA-5", train::QorBackbone::kHoga, 5, {}}};
  for (auto& run : runs) {
    train::QorModelConfig cfg;
    cfg.backbone = run.backbone;
    cfg.in_dim = reasoning::kNodeFeatureDim;
    cfg.hidden = 32;
    cfg.num_hops = run.hops;
    cfg.gcn_layers = 5;
    std::vector<train::QorDesignInput> inputs;
    train::prepare_qor_inputs(ds, cfg, &inputs);
    Rng rng(7);
    train::QorModel model(cfg, rng);
    train::QorTrainConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.lr = 2e-3f;
    train::train_qor(model, inputs, ds.train, tcfg);
    run.eval = train::evaluate_qor(model, ds, inputs, ds.test);
  }

  // Scatter series (CSV on stdout so the figure can be replotted).
  std::puts("\n-- scatter points (design, truth_gates, gcn_pred, hoga5_pred) --");
  for (std::size_t i = 0; i < runs[0].eval.scatter.size(); ++i) {
    const int di = runs[0].eval.scatter_design[i];
    std::printf("%s, %.0f, %.1f, %.1f\n", ds.designs[di].name.c_str(),
                runs[0].eval.scatter[i].first,
                runs[0].eval.scatter[i].second,
                runs[1].eval.scatter[i].second);
  }

  // Per-design diagonal fits.
  Table table({"Design", "GCN corr", "GCN slope", "HOGA-5 corr",
               "HOGA-5 slope"});
  // Group points by design.
  for (std::size_t di = 0; di < ds.designs.size(); ++di) {
    if (ds.designs[di].train_split) continue;
    std::vector<double> truth, gcn, hoga;
    for (std::size_t i = 0; i < runs[0].eval.scatter.size(); ++i) {
      if (runs[0].eval.scatter_design[i] != static_cast<int>(di)) continue;
      truth.push_back(runs[0].eval.scatter[i].first);
      gcn.push_back(runs[0].eval.scatter[i].second);
      hoga.push_back(runs[1].eval.scatter[i].second);
    }
    if (truth.size() < 2) continue;
    const Fit fg = fit_series(truth, gcn);
    const Fit fh = fit_series(truth, hoga);
    table.row()
        .cell(ds.designs[di].name)
        .cell(fg.correlation, 3)
        .cell(fg.slope, 3)
        .cell(fh.correlation, 3)
        .cell(fh.slope, 3);
  }
  std::puts("");
  table.print();

  // Global diagonal agreement (all test points pooled).
  std::vector<double> truth, gcn, hoga;
  for (std::size_t i = 0; i < runs[0].eval.scatter.size(); ++i) {
    truth.push_back(runs[0].eval.scatter[i].first);
    gcn.push_back(runs[0].eval.scatter[i].second);
    hoga.push_back(runs[1].eval.scatter[i].second);
  }
  const Fit fg = fit_series(truth, gcn);
  const Fit fh = fit_series(truth, hoga);
  std::printf("\npooled: GCN corr %.3f slope %.3f | HOGA-5 corr %.3f slope "
              "%.3f (paper: HOGA-5 tracks the diagonal, GCN does not)\n",
              fg.correlation, fg.slope, fh.correlation, fh.slope);
  return 0;
}
