// Ablation benches for HOGA's design choices (motivated in paper §III-B):
//
//   (a) full HOGA: gated self-attention + attentive readout
//   (b) -attention: gated layer without softmax mixing (Eq. 6 only, no
//       cross-hop interactions)
//   (c) -gating: plain hop summation y = sum_k H_k (the "straightforward
//       way" the paper argues against)
//   (d) -attentive-readout: gated self-attention but mean readout
//   (e) K sweep: K in {2, 4, 8}
//
// All variants train on the mapped 8-bit CSA multiplier and are evaluated
// on 16/32/64-bit ones. Expectation from the paper's argument: (a) beats
// (b)/(c) because cross-hop second-order interactions are what capture
// functional blocks.

#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "core/gated_attention.hpp"
#include "data/reasoning_dataset.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "reasoning/features.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"
#include "util/table.hpp"

using namespace hoga;

namespace {

constexpr std::int64_t kHidden = 48;

// Variant (b): H' = ReLU(LN(U ⊙ V)) per hop — second-order within a hop,
// nothing across hops — followed by HOGA's attentive readout.
class GateOnlyModel : public nn::Module {
 public:
  GateOnlyModel(std::int64_t in_dim, int num_hops, Rng& rng)
      : num_hops_(num_hops) {
    proj_ = std::make_shared<nn::Linear>(in_dim, kHidden, rng);
    wu_ = std::make_shared<nn::Linear>(kHidden, kHidden, rng, false);
    wv_ = std::make_shared<nn::Linear>(kHidden, kHidden, rng, false);
    norm_ = std::make_shared<nn::LayerNorm>(kHidden);
    alpha_ = register_parameter("alpha",
                                nn::normal_init({2 * kHidden, 1}, rng, 0.05f));
    head_ = std::make_shared<nn::Linear>(kHidden, 4, rng);
    register_module("proj", proj_);
    register_module("wu", wu_);
    register_module("wv", wv_);
    register_module("norm", norm_);
    register_module("head", head_);
  }

  ag::Variable forward(const ag::Variable& hop_feats) const {
    const std::int64_t b = hop_feats.size(0);
    const std::int64_t k1 = hop_feats.size(1);
    ag::Variable h = proj_->forward(hop_feats);
    ag::Variable gated =
        ag::relu(norm_->forward(ag::mul(wu_->forward(h), wv_->forward(h))));
    // Attentive readout identical to HOGA's.
    ag::Variable flat = ag::reshape(gated, {b * k1, kHidden});
    std::vector<std::int64_t> idx0, idx_rest;
    for (std::int64_t i = 0; i < b; ++i) {
      idx0.push_back(i * k1);
      for (std::int64_t k = 1; k < k1; ++k) idx_rest.push_back(i * k1 + k);
    }
    ag::Variable h0 = ag::gather_rows(flat, idx0);
    ag::Variable hr = ag::gather_rows(flat, idx_rest);
    ag::Variable a1 = ag::slice_rows(alpha_, 0, kHidden);
    ag::Variable a2 = ag::slice_rows(alpha_, kHidden, 2 * kHidden);
    ag::Variable s = ag::add(
        ag::reshape(ag::matmul(hr, a2), {b, k1 - 1}),
        ag::matmul(ag::matmul(h0, a1),
                   ag::constant(Tensor::ones({1, k1 - 1}))));
    ag::Variable c = ag::softmax_lastdim(s);
    ag::Variable mix = ag::bmm(ag::reshape(c, {b, 1, k1 - 1}),
                               ag::reshape(hr, {b, k1 - 1, kHidden}));
    return head_->forward(ag::add(h0, ag::reshape(mix, {b, kHidden})));
  }

 private:
  int num_hops_;
  std::shared_ptr<nn::Linear> proj_, wu_, wv_, head_;
  std::shared_ptr<nn::LayerNorm> norm_;
  ag::Variable alpha_;
};

// Variant (c): y = sum_k proj(x_k) -> head. No gating, no attention.
class HopSumModel : public nn::Module {
 public:
  HopSumModel(std::int64_t in_dim, Rng& rng) {
    proj_ = std::make_shared<nn::Linear>(in_dim, kHidden, rng);
    head_ = std::make_shared<nn::Linear>(kHidden, 4, rng);
    register_module("proj", proj_);
    register_module("head", head_);
  }

  ag::Variable forward(const ag::Variable& hop_feats) const {
    const std::int64_t b = hop_feats.size(0);
    const std::int64_t k1 = hop_feats.size(1);
    ag::Variable h = ag::relu(proj_->forward(hop_feats));  // [b, k1, hid]
    // Sum over hops: ones [b,1,k1] x h [b,k1,hid].
    ag::Variable ones = ag::constant(Tensor::ones({b, 1, k1}));
    ag::Variable summed = ag::reshape(ag::bmm(ones, h), {b, kHidden});
    return head_->forward(summed);
  }

 private:
  std::shared_ptr<nn::Linear> proj_, head_;
};

// Variant (d): full gated self-attention, but uniform (mean) readout.
class MeanReadoutModel : public nn::Module {
 public:
  MeanReadoutModel(std::int64_t in_dim, Rng& rng) {
    proj_ = std::make_shared<nn::Linear>(in_dim, kHidden, rng);
    attn_ = std::make_shared<core::GatedAttentionLayer>(kHidden, rng);
    head_ = std::make_shared<nn::Linear>(kHidden, 4, rng);
    register_module("proj", proj_);
    register_module("attn", attn_);
    register_module("head", head_);
  }

  ag::Variable forward(const ag::Variable& hop_feats) const {
    const std::int64_t b = hop_feats.size(0);
    const std::int64_t k1 = hop_feats.size(1);
    ag::Variable h = attn_->forward(proj_->forward(hop_feats));
    ag::Variable ones =
        ag::constant(Tensor::full({b, 1, k1}, 1.f / static_cast<float>(k1)));
    ag::Variable pooled = ag::reshape(ag::bmm(ones, h), {b, kHidden});
    return head_->forward(pooled);
  }

 private:
  std::shared_ptr<nn::Linear> proj_, head_;
  std::shared_ptr<core::GatedAttentionLayer> attn_;
};

// Generic minibatch trainer over hop features for the ablation variants.
template <typename Forward>
void train_variant(nn::Module& module, Forward&& forward,
                   const core::HopFeatures& hops,
                   const std::vector<int>& labels,
                   const std::vector<float>& weights, int epochs) {
  optim::Adam opt(module.parameters(), 3e-3f);
  Rng rng(17);
  const std::int64_t n = hops.num_nodes();
  const std::int64_t batch_size = 512;
  std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(ids);
    for (std::int64_t lo = 0; lo < n; lo += batch_size) {
      const std::int64_t hi = std::min(n, lo + batch_size);
      std::vector<std::int64_t> batch(ids.begin() + lo, ids.begin() + hi);
      std::vector<int> bl;
      bl.reserve(batch.size());
      for (auto i : batch) bl.push_back(labels[static_cast<std::size_t>(i)]);
      opt.zero_grad();
      ag::Variable logits = forward(ag::constant(hops.gather(batch)));
      ag::Variable loss = ag::softmax_cross_entropy(logits, bl, weights);
      loss.backward();
      opt.step();
    }
  }
}

template <typename Forward>
double eval_variant(Forward&& forward, const core::HopFeatures& hops,
                    const std::vector<int>& labels) {
  const std::int64_t n = hops.num_nodes();
  Tensor logits({n, 4});
  for (std::int64_t lo = 0; lo < n; lo += 4096) {
    const std::int64_t hi = std::min(n, lo + 4096);
    std::vector<std::int64_t> ids;
    for (std::int64_t i = lo; i < hi; ++i) ids.push_back(i);
    Tensor part = forward(ag::constant(hops.gather(ids))).value();
    std::copy(part.data(), part.data() + part.numel(),
              logits.data() + lo * 4);
  }
  return train::accuracy(logits, labels);
}

}  // namespace

int main(int argc, char** argv) {
  const int epochs =
      static_cast<int>(bench::int_option(argc, argv, "--epochs", 100));
  std::puts("=== Ablations: HOGA design choices (reasoning task) ===\n");

  const std::int64_t d0 = 2 * reasoning::kNodeFeatureDim;
  const int kRefHops = 8;
  const auto g8 = data::make_reasoning_graph("csa", 8, true);
  auto weights =
      train::inverse_frequency_weights(g8.labels, reasoning::kNumClasses);
  for (auto& w : weights) w = std::sqrt(w);

  auto hops_for = [&](const data::ReasoningGraph& g, int k) {
    return core::HopFeatures::compute_concat(
        {g.adj_hop.get(), g.adj_fanin.get()}, g.features, k);
  };
  const auto hops8 = hops_for(g8, kRefHops);
  std::vector<int> eval_bits{16, 32, 64};
  std::vector<data::ReasoningGraph> eval_graphs;
  std::vector<core::HopFeatures> eval_hops;
  for (int bits : eval_bits) {
    eval_graphs.push_back(data::make_reasoning_graph("csa", bits, true));
    eval_hops.push_back(hops_for(eval_graphs.back(), kRefHops));
  }

  Table table({"Variant", "train(8)", "csa16", "csa32", "csa64"});
  Rng rng(3);

  auto report = [&](const std::string& name, auto&& forward) {
    table.row().cell(name);
    table.pct(eval_variant(forward, hops8, g8.labels) * 100, 1);
    for (std::size_t i = 0; i < eval_graphs.size(); ++i) {
      table.pct(
          eval_variant(forward, eval_hops[i], eval_graphs[i].labels) * 100,
          1);
    }
  };

  {
    core::Hoga full(core::HogaConfig{.in_dim = d0, .hidden = kHidden,
                                     .num_hops = kRefHops, .num_layers = 1,
                                     .out_dim = 4, .input_norm = false},
                    rng);
    Rng fwd(0);
    auto forward = [&](const ag::Variable& x) { return full.forward(x, fwd); };
    train_variant(full, forward, hops8, g8.labels, weights, epochs);
    full.set_training(false);
    report("HOGA (full)", forward);
    full.set_training(true);
  }
  {
    GateOnlyModel gate_only(d0, kRefHops, rng);
    auto forward = [&](const ag::Variable& x) {
      return gate_only.forward(x);
    };
    train_variant(gate_only, forward, hops8, g8.labels, weights, epochs);
    report("- self-attention (Eq.6 gate only)", forward);
  }
  {
    HopSumModel hop_sum(d0, rng);
    auto forward = [&](const ag::Variable& x) { return hop_sum.forward(x); };
    train_variant(hop_sum, forward, hops8, g8.labels, weights, epochs);
    report("- gating (plain hop sum)", forward);
  }
  {
    MeanReadoutModel mean_readout(d0, rng);
    auto forward = [&](const ag::Variable& x) {
      return mean_readout.forward(x);
    };
    train_variant(mean_readout, forward, hops8, g8.labels, weights, epochs);
    report("- attentive readout (mean pool)", forward);
  }
  // K sweep.
  for (int k : {2, 4}) {
    const auto hops_k = hops_for(g8, k);
    std::vector<core::HopFeatures> ev;
    for (std::size_t i = 0; i < eval_graphs.size(); ++i) {
      ev.push_back(hops_for(eval_graphs[i], k));
    }
    core::Hoga model(core::HogaConfig{.in_dim = d0, .hidden = kHidden,
                                      .num_hops = k, .num_layers = 1,
                                      .out_dim = 4, .input_norm = false},
                     rng);
    Rng fwd(0);
    auto forward = [&](const ag::Variable& x) {
      return model.forward(x, fwd);
    };
    train_variant(model, forward, hops_k, g8.labels, weights, epochs);
    model.set_training(false);
    table.row().cell("HOGA K=" + std::to_string(k));
    table.pct(eval_variant(forward, hops_k, g8.labels) * 100, 1);
    for (std::size_t i = 0; i < eval_graphs.size(); ++i) {
      table.pct(eval_variant(forward, ev[i], eval_graphs[i].labels) * 100, 1);
    }
  }

  table.print();
  std::puts("\npaper argument check: removing the self-attention (cross-hop "
            "mixing) or the gating should hurt generalization; K too small "
            "limits the receptive field.");
  return 0;
}
