#pragma once
// Shared helpers for the benchmark binaries: flag parsing and the standard
// experiment configurations (kept in one place so Table 2 / Figure 4 /
// Figure 5 agree on model setups).

#include <cstring>
#include <string>

namespace hoga::bench {

/// True if `flag` (e.g. "--full") appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Integer option "--name=value"; returns fallback when absent.
inline long long int_option(int argc, char** argv, const char* name,
                            long long fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// String option "--name=value"; returns fallback when absent.
inline std::string str_option(int argc, char** argv, const char* name,
                              const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace hoga::bench
