// Serving-runtime load generator (DESIGN.md §8): drives hoga::serve through
// a scripted fault schedule — poisoned payloads, slow workers, a wedged
// queue head with an admission burst, and a breaker-tripping failure run —
// and checks the acceptance invariants:
//
//   - zero crashes, zero wrong answers on every request that was served
//     (full, truncated, or cached: each is verified against the model);
//   - completed-request latency bounded by the request's deadline;
//   - non-zero degraded and rejected counts (the faults actually landed);
//   - the same seed reproduces the exact same ServeStats counts.
//
// The scripted run is single-client where ordering matters (so outcome
// counts are exact) and multi-threaded where it must be (the stall phase
// needs an in-flight request to wedge the worker). A separate concurrent
// throughput phase reports latency percentiles under parallel load.
//
// A third phase sweeps the coalescing batch scheduler (DESIGN.md §14): a
// mixed-size request storm (10k requests in --full) replayed at several
// batch-row caps, verifying every batched answer bit-exactly against the
// solo forward and reporting throughput/latency per cap. Emits
// BENCH_serving.json (cap -> {throughput, p99_ms, ...}) for
// scripts/perf_diff.py.
//
// Usage: bench_serving [--smoke] [--full] [--seed=N] [--out=path.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.hpp"
#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "reasoning/labels.hpp"
#include "serve/serve.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

// Shapes of the scripted schedule. Executed-request indices drive the
// slow-worker/stall slots, submitted-request indices drive the poison
// slots; both advance only as described in serve.cpp, so every outcome
// below is forced, not probabilistic.
struct Script {
  int healthy = 24;            // phase A: full serves, cache-warming
  int poisoned = 3;            // phase B: NaN payloads -> rejected_invalid
  int fillers = 4;             // phase C: fill the queue behind the wedged head
  int overload = 4;            // phase C: burst past queue_capacity
  int breaker_failures = 6;    // phase D: slow workers -> timeouts -> trip
  int degraded_cached = 3;     // phase D: known cache keys
  int degraded_truncated = 5;  // phase D: unknown keys -> K' prefix
  int recovered = 8;           // phase E: probe + healthy tail
  double stall_ms = 1500;
  double slow_ms = 4000;
  // Must be far below slow_ms (so delayed requests always time out) and far
  // above the ~2ms cooperative-cancel latency (so each phase D request is
  // picked up — consuming its delay slot — before its deadline expires).
  double short_deadline_ms = 50;
  double long_deadline_ms = 20000;  // stalled head + fillers must complete
};

struct ScriptOutcome {
  serve::ServeStats stats;
  long long wrong_answers = 0;        // served output != model reference
  long long unexpected_outcomes = 0;  // outcome differs from the script
  double worst_deadline_overrun_ms = 0;  // completed latency minus deadline
};

Tensor hop_prefix(const Tensor& batch, int keep_hops) {
  const std::int64_t b = batch.size(0), full = batch.size(1), d = batch.size(2);
  const std::int64_t kept = std::min<std::int64_t>(keep_hops + 1, full);
  Tensor out({b, kept, d});
  for (std::int64_t i = 0; i < b; ++i) {
    std::memcpy(out.data() + i * kept * d, batch.data() + i * full * d,
                static_cast<std::size_t>(kept * d) * sizeof(float));
  }
  return out;
}

ScriptOutcome run_script(const core::Hoga& model, const core::HopFeatures& hops,
                         const Script& sc, std::uint64_t seed) {
  const serve::ServeConfig cfg{.workers = 1,
                               .queue_capacity =
                                   static_cast<std::size_t>(sc.fillers),
                               .default_deadline_ms = 2000,
                               .breaker_trip_failures = sc.breaker_failures,
                               .breaker_reset_ms = 300,
                               .degraded_num_hops = 1};
  serve::InferenceService svc(model, cfg);
  ScriptOutcome out;

  // Distinct request payloads, round-robin, with precomputed references.
  Rng rng(seed);
  constexpr int kBatches = 6;
  std::vector<Tensor> batches;
  std::vector<Tensor> expect_full, expect_trunc;
  for (int i = 0; i < kBatches; ++i) {
    std::vector<std::int64_t> ids;
    for (int j = 0; j < 32; ++j) {
      ids.push_back(static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(hops.num_nodes()))));
    }
    batches.push_back(hops.gather(ids));
    expect_full.push_back(
        model.forward_eval(ag::constant(batches.back())).value());
    expect_trunc.push_back(
        model
            .forward_eval(ag::constant(
                hop_prefix(batches.back(), cfg.degraded_num_hops)))
            .value());
  }

  auto track = [&out](const serve::Response& r, double deadline_ms) {
    const bool completed = r.outcome == serve::Outcome::kServed ||
                           r.outcome == serve::Outcome::kDegradedTruncated ||
                           r.outcome == serve::Outcome::kDegradedCached ||
                           r.outcome == serve::Outcome::kTimedOut;
    if (completed) {
      out.worst_deadline_overrun_ms =
          std::max(out.worst_deadline_overrun_ms, r.latency_ms - deadline_ms);
    }
  };
  std::atomic<long long> off_script{0};
  auto expect_outcome = [&off_script](const serve::Response& r,
                                      serve::Outcome want) {
    if (r.outcome != want) ++off_script;
  };
  std::atomic<long long> bad_answers{0};
  auto check_answer = [&bad_answers](const serve::Response& r,
                                     const Tensor& expect) {
    if (!r.output.defined() || !Tensor::allclose(r.output, expect, 1e-4f)) {
      ++bad_answers;
    }
  };

  // Slow-worker/stall slots are indexed by *executed* request, poison slots
  // by *submitted* request. Phase A executes h requests, the phase C head
  // is executed index h, the fillers h+1..h+fillers (rejections and
  // degraded requests never reach the executor), so phase D's slow slots
  // start at h + fillers + 1. Nothing here is probabilistic.
  fault::Injector inj(seed);
  const int h = sc.healthy;
  for (int i = 0; i < sc.poisoned; ++i) inj.poison_request(h + i);
  inj.stall_queue(h, sc.stall_ms);
  for (int i = 0; i < sc.breaker_failures; ++i) {
    inj.delay_request(h + sc.fillers + 1 + i, sc.slow_ms);
  }
  fault::ScopedInjector scope(inj);

  // Phase A: healthy serves warm the last-good cache (keys 1..kBatches).
  for (int i = 0; i < h; ++i) {
    const int b = i % kBatches;
    serve::Request req{.hop_batch = batches[b],
                       .cache_key = static_cast<std::uint64_t>(b + 1)};
    const serve::Response r = svc.infer(req);
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kServed);
    if (r.outcome == serve::Outcome::kServed) check_answer(r, expect_full[b]);
  }

  // Phase B: poisoned payloads must bounce off validation.
  for (int i = 0; i < sc.poisoned; ++i) {
    const serve::Response r = svc.infer({.hop_batch = batches[0]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kRejectedInvalid);
  }

  // Phase C: the head request wedges the only worker; fillers occupy every
  // admission slot behind it; the burst after them must bounce. The spin
  // waits are on observable state (queue depth), not wall-clock guesses,
  // so the counts stay exact on a loaded machine.
  auto client = [&](int batch_index, bool head_request) {
    return std::thread([&, batch_index, head_request] {
      const serve::Response r = svc.infer(
          {.hop_batch = batches[batch_index], .deadline_ms = sc.long_deadline_ms});
      expect_outcome(r, serve::Outcome::kServed);
      if (r.outcome == serve::Outcome::kServed) {
        check_answer(r, expect_full[batch_index]);
      }
      (void)head_request;
    });
  };
  // Quiesce: the executor's active count lingers for a moment after a
  // caller's future is ready (the worker retires the task afterwards), so
  // wait for it to hit zero — the next active request can then only be the
  // phase C head.
  while (svc.active_requests() != 0 || svc.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread head = client(0, true);
  // Wait until the worker has claimed (and been wedged by) the head.
  while (svc.active_requests() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::thread> fillers;
  for (int i = 0; i < sc.fillers; ++i) fillers.push_back(client(1, false));
  while (svc.queue_depth() < static_cast<std::size_t>(sc.fillers)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < sc.overload; ++i) {
    const serve::Response r = svc.infer({.hop_batch = batches[2]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kRejectedOverload);
  }
  head.join();
  for (auto& t : fillers) t.join();

  // Phase D: slow workers blow the deadline until the breaker trips, then
  // the degradation ladder takes over — cached where the key is known,
  // K'-truncated recompute where it is not.
  for (int i = 0; i < sc.breaker_failures; ++i) {
    const serve::Response r = svc.infer(
        {.hop_batch = batches[3], .deadline_ms = sc.short_deadline_ms});
    track(r, sc.short_deadline_ms);
    expect_outcome(r, serve::Outcome::kTimedOut);
  }
  for (int i = 0; i < sc.degraded_cached; ++i) {
    const int b = i % kBatches;
    const serve::Response r = svc.infer(
        {.hop_batch = batches[b], .cache_key = static_cast<std::uint64_t>(b + 1)});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kDegradedCached);
    if (r.outcome == serve::Outcome::kDegradedCached) {
      check_answer(r, expect_full[b]);
    }
  }
  for (int i = 0; i < sc.degraded_truncated; ++i) {
    const int b = i % kBatches;
    const serve::Response r = svc.infer({.hop_batch = batches[b]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kDegradedTruncated);
    if (r.outcome == serve::Outcome::kDegradedTruncated) {
      check_answer(r, expect_trunc[b]);
    }
  }

  // Phase E: past the reset window, the half-open probe heals the breaker.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(cfg.breaker_reset_ms) + 150));
  for (int i = 0; i < sc.recovered; ++i) {
    const int b = i % kBatches;
    const serve::Response r = svc.infer({.hop_batch = batches[b]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kServed);
    if (r.outcome == serve::Outcome::kServed) check_answer(r, expect_full[b]);
  }

  out.stats = svc.stats();
  out.wrong_answers = bad_answers.load();
  out.unexpected_outcomes = off_script.load();
  return out;
}

// Concurrent fault-free load for throughput/latency numbers.
serve::ServeStats run_throughput(const core::Hoga& model,
                                 const core::HopFeatures& hops, int clients,
                                 int per_client, long long* wrong) {
  serve::InferenceService svc(
      model, {.workers = 2, .queue_capacity = 256, .default_deadline_ms = 5000});
  std::vector<Tensor> batches;
  std::vector<Tensor> expected;
  for (int i = 0; i < clients; ++i) {
    std::vector<std::int64_t> ids;
    Rng rng(1000 + static_cast<std::uint64_t>(i));
    for (int j = 0; j < 64; ++j) {
      ids.push_back(static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(hops.num_nodes()))));
    }
    batches.push_back(hops.gather(ids));
    expected.push_back(model.forward_eval(ag::constant(batches.back())).value());
  }
  std::atomic<long long> bad{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < per_client; ++j) {
        const serve::Response r = svc.infer({.hop_batch = batches[i]});
        if (r.outcome != serve::Outcome::kServed ||
            !Tensor::allclose(r.output, expected[i], 1e-4f)) {
          ++bad;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  *wrong += bad.load();
  return svc.stats();
}

// One point of the coalescing sweep: `clients` threads replay a mixed-size
// request storm through a batching InferenceService capped at
// `max_batch_rows`, every answer checked byte-for-byte against the solo
// forward (coalescing must not change a single bit, DESIGN.md §14).
struct SweepCase {
  std::size_t cap = 0;
  double seconds = 0;
  long long served = 0;
  long long wrong = 0;      // memcmp mismatches vs the solo forward
  long long unserved = 0;   // any outcome other than kServed
  long long rows = 0;       // rows through coalesced forwards
  long long batches = 0;    // coalesced forwards executed
  double throughput = 0;    // served requests / wall second
  double rows_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

SweepCase run_batched_sweep(const core::Hoga& model,
                            const core::HopFeatures& hops, std::size_t cap,
                            int clients, int per_client, std::uint64_t seed) {
  serve::ServeConfig cfg{.workers = 2,
                         .queue_capacity = 1024,
                         .default_deadline_ms = 30000};
  cfg.batching = true;
  cfg.batch.max_batch_rows = cap;
  cfg.batch.max_linger_ms = 0.2;
  cfg.batch.max_lane_rows = 1 << 16;
  serve::InferenceService svc(model, cfg);

  // Mixed-size payload pool with precomputed solo references. Skewed small
  // (1-8 rows, avg ~3.4): node-level serving queries are dominated by tiny
  // requests, which is exactly where per-forward overhead dominates and
  // coalescing pays.
  constexpr int kPool = 24;
  constexpr std::int64_t kSizes[] = {1, 1, 1, 2, 2, 3, 4, 8};
  Rng rng(seed);
  std::vector<Tensor> payloads, expect;
  for (int i = 0; i < kPool; ++i) {
    std::vector<std::int64_t> ids;
    for (std::int64_t j = 0; j < kSizes[i % 8]; ++j) {
      ids.push_back(static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(hops.num_nodes()))));
    }
    payloads.push_back(hops.gather(ids));
    expect.push_back(model.forward_eval(ag::constant(payloads.back())).value());
  }

  std::atomic<long long> wrong{0}, unserved{0};
  std::vector<std::thread> threads;
  Timer t;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < per_client; ++j) {
        const int p = (i + j) % kPool;
        serve::Request req{.hop_batch = payloads[p]};
        req.lane = (j % 4 == 0) ? batch::Lane::kBulk : batch::Lane::kInteractive;
        const serve::Response r = svc.infer(req);
        if (r.outcome != serve::Outcome::kServed) {
          ++unserved;
          continue;
        }
        const Tensor& e = expect[p];
        if (!r.output.defined() || r.output.numel() != e.numel() ||
            std::memcmp(r.output.data(), e.data(),
                        static_cast<std::size_t>(e.numel()) * sizeof(float)) !=
                0) {
          ++wrong;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  SweepCase out;
  out.cap = cap;
  out.seconds = t.seconds();
  const serve::ServeStats s = svc.stats();
  const batch::BatchStats b = svc.batch_stats();
  out.served = s.served;
  out.wrong = wrong.load();
  out.unserved = unserved.load();
  out.rows = b.rows;
  out.batches = b.batches;
  out.throughput = static_cast<double>(s.served) / out.seconds;
  out.rows_per_s = static_cast<double>(b.rows) / out.seconds;
  out.p50_ms = s.latency_percentile(50);
  out.p99_ms = s.latency_percentile(99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool smoke = bench::has_flag(argc, argv, "--smoke") || !full;
  const auto seed =
      static_cast<std::uint64_t>(bench::int_option(argc, argv, "--seed", 7));
  const std::string out_path =
      bench::str_option(argc, argv, "--out", "BENCH_serving.json");

  std::puts("=== Serving runtime under injected faults ===");

  // Workload: node-classification serving on a mapped multiplier circuit.
  const int bits = smoke ? 16 : 48;
  Timer build_t;
  const auto g = data::make_reasoning_graph("csa", bits, true);
  const int num_hops = 3;
  const auto hops =
      core::HopFeatures::compute(*g.adj_hop, g.features, num_hops);
  Rng rng(seed);
  core::Hoga model(core::HogaConfig{.in_dim = hops.feature_dim(),
                                    .hidden = 32,
                                    .num_hops = num_hops,
                                    .num_layers = 1,
                                    .out_dim = reasoning::kNumClasses},
                   rng);
  std::printf("workload: mapped %d-bit CSA multiplier, %lld nodes "
              "(prepared in %s)\n",
              bits, static_cast<long long>(hops.num_nodes()),
              format_duration(build_t.seconds()).c_str());

  Script sc;
  if (full) {
    sc.healthy = 200;
    sc.recovered = 40;
  }

  // Scripted fault schedule, twice with the same seed: the outcome counts
  // must match exactly.
  const ScriptOutcome a = run_script(model, hops, sc, seed);
  const ScriptOutcome b = run_script(model, hops, sc, seed);

  std::printf("\n-- scripted fault schedule (seed %llu) --\n",
              static_cast<unsigned long long>(seed));
  Table table({"Outcome", "Run 1", "Run 2"});
  const auto row = [&table](const char* name, long long x, long long y) {
    table.row().cell(name).cell(x).cell(y);
  };
  row("served", a.stats.served, b.stats.served);
  row("degraded_truncated", a.stats.degraded_truncated,
      b.stats.degraded_truncated);
  row("degraded_cached", a.stats.degraded_cached, b.stats.degraded_cached);
  row("rejected_invalid", a.stats.rejected_invalid, b.stats.rejected_invalid);
  row("rejected_overload", a.stats.rejected_overload,
      b.stats.rejected_overload);
  row("timed_out", a.stats.timed_out, b.stats.timed_out);
  row("failed", a.stats.failed, b.stats.failed);
  row("breaker_trips", a.stats.breaker_trips, b.stats.breaker_trips);
  table.print();
  std::printf("latency p50/p99 = %s / %s, worst deadline overrun = %s\n",
              format_duration(a.stats.latency_percentile(50) / 1000).c_str(),
              format_duration(a.stats.latency_percentile(99) / 1000).c_str(),
              format_duration(std::max(0.0, a.worst_deadline_overrun_ms) /
                              1000)
                  .c_str());

  // Throughput under concurrent fault-free load.
  long long throughput_wrong = 0;
  const int clients = full ? 4 : 2;
  const int per_client = full ? 400 : 40;
  Timer load_t;
  const serve::ServeStats tp =
      run_throughput(model, hops, clients, per_client, &throughput_wrong);
  const double seconds = load_t.seconds();
  std::printf("\n-- concurrent load: %d clients x %d requests --\n", clients,
              per_client);
  std::printf("throughput = %.0f req/s, p50 = %s, p99 = %s\n",
              static_cast<double>(tp.served) / seconds,
              format_duration(tp.latency_percentile(50) / 1000).c_str(),
              format_duration(tp.latency_percentile(99) / 1000).c_str());

  // Coalescing sweep: the same mixed-size storm at increasing batch caps.
  // Cap 1 is the no-coalescing baseline (one request per forward); larger
  // caps amortize per-forward overhead across co-batched requests.
  const std::vector<std::size_t> caps =
      full ? std::vector<std::size_t>{1, 8, 32, 64, 128}
           : std::vector<std::size_t>{1, 8, 32};
  // In-flight rows (clients x ~6.5 avg rows) bound batch occupancy, so the
  // client count must comfortably cover the largest cap.
  const int sweep_clients = full ? 32 : 8;
  const int sweep_per_client = full ? 320 : 75;  // 10240 / 600 requests
  std::printf("\n-- coalescing batch sweep: %d clients x %d mixed-size "
              "requests per cap --\n",
              sweep_clients, sweep_per_client);
  // The speedup gate is a timing ratio, so scheduler noise on a loaded box
  // can sink an otherwise-healthy run; one retry with a reseeded sweep
  // filters that without loosening the bar. Correctness failures (wrong or
  // unserved answers) are never retried away.
  const double speedup_gate = full ? 2.0 : 1.3;
  std::vector<SweepCase> sweep;
  long long sweep_wrong = 0, sweep_unserved = 0;
  double speedup = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    sweep.clear();
    Table sweep_table(
        {"Cap", "Req/s", "Rows/s", "p50 ms", "p99 ms", "Batches", "Rows"});
    for (const std::size_t cap : caps) {
      sweep.push_back(run_batched_sweep(model, hops, cap, sweep_clients,
                                        sweep_per_client,
                                        seed + 1000ULL * attempt));
      const SweepCase& c = sweep.back();
      sweep_table.row()
          .cell(static_cast<long long>(c.cap))
          .cell(c.throughput, 0)
          .cell(c.rows_per_s, 0)
          .cell(c.p50_ms, 3)
          .cell(c.p99_ms, 3)
          .cell(c.batches)
          .cell(c.rows);
    }
    sweep_table.print();
    sweep_wrong = sweep_unserved = 0;
    double best_coalesced_tp = 0;
    for (const SweepCase& c : sweep) {
      sweep_wrong += c.wrong;
      sweep_unserved += c.unserved;
      if (c.cap >= 8) {
        best_coalesced_tp = std::max(best_coalesced_tp, c.throughput);
      }
    }
    speedup =
        sweep[0].throughput > 0 ? best_coalesced_tp / sweep[0].throughput : 0;
    std::printf("coalescing speedup (best cap >= 8 vs cap 1) = %.2fx\n",
                speedup);
    if (speedup >= speedup_gate || sweep_wrong != 0 || sweep_unserved != 0) {
      break;
    }
    std::puts("speedup below gate — rerunning the sweep once (timing noise)");
  }

  // Acceptance invariants.
  int violations = 0;
  const auto require = [&violations](bool ok, const char* what) {
    std::printf("%-52s %s\n", what, ok ? "ok" : "VIOLATED");
    if (!ok) ++violations;
  };
  std::puts("\n-- acceptance checks --");
  require(a.wrong_answers == 0 && b.wrong_answers == 0 &&
              throughput_wrong == 0,
          "zero wrong answers on validated requests");
  require(a.unexpected_outcomes == 0 && b.unexpected_outcomes == 0,
          "every scripted outcome landed as scheduled");
  require(a.stats.counts_signature() == b.stats.counts_signature(),
          "same seed reproduces the same outcome counts");
  require(a.worst_deadline_overrun_ms < 150,
          "completed-request latency bounded by the deadline");
  require(a.stats.degraded() > 0, "graceful degradation engaged");
  require(a.stats.degraded_cached > 0 && a.stats.degraded_truncated > 0,
          "both degradation rungs exercised");
  require(a.stats.rejected_invalid > 0, "poisoned requests rejected");
  require(a.stats.rejected_overload > 0, "backpressure rejected the burst");
  require(a.stats.timed_out > 0, "deadlines enforced");
  require(a.stats.breaker_trips > 0, "circuit breaker tripped");
  require(a.stats.failed == 0, "no internal execution failures");
  require(sweep_wrong == 0, "batched answers bit-exact vs solo forwards");
  require(sweep_unserved == 0, "every sweep request served");
  // Coalescing must pay for itself. The full 10k sweep demands the 2x the
  // design targets; smoke keeps a looser gate so a loaded CI box doesn't
  // flake tier-1.
  require(speedup >= speedup_gate,
          full ? "coalescing speedup >= 2x at cap >= 8"
               : "coalescing speedup >= 1.3x at cap >= 8");

  // -- Machine-readable results (cap -> metrics, perf_diff format) ----------
  {
    std::ofstream out(out_path, std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"serving\",\n"
        << "  \"mode\": \"" << (full ? "full" : "smoke") << "\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"violations\": " << violations << ",\n"
        << "  \"coalescing_speedup\": " << speedup;
    for (const SweepCase& c : sweep) {
      out << ",\n  \"batch_cap_" << c.cap << "\": {"
          << "\"throughput\": " << c.throughput
          << ", \"rows_per_s\": " << c.rows_per_s
          << ", \"p50_ms\": " << c.p50_ms << ", \"p99_ms\": " << c.p99_ms
          << ", \"batches\": " << c.batches << ", \"rows\": " << c.rows
          << ", \"seconds\": " << c.seconds << "}";
    }
    out << "\n}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (violations > 0) {
    std::printf("\n%d acceptance check(s) VIOLATED\n", violations);
    return 1;
  }
  std::puts("\nall acceptance checks passed");
  return 0;
}
