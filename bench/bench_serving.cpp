// Serving-runtime load generator (DESIGN.md §8): drives hoga::serve through
// a scripted fault schedule — poisoned payloads, slow workers, a wedged
// queue head with an admission burst, and a breaker-tripping failure run —
// and checks the acceptance invariants:
//
//   - zero crashes, zero wrong answers on every request that was served
//     (full, truncated, or cached: each is verified against the model);
//   - completed-request latency bounded by the request's deadline;
//   - non-zero degraded and rejected counts (the faults actually landed);
//   - the same seed reproduces the exact same ServeStats counts.
//
// The scripted run is single-client where ordering matters (so outcome
// counts are exact) and multi-threaded where it must be (the stall phase
// needs an in-flight request to wedge the worker). A separate concurrent
// throughput phase reports latency percentiles under parallel load.
//
// Usage: bench_serving [--smoke] [--full] [--seed=N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.hpp"
#include "bench_common.hpp"
#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "reasoning/labels.hpp"
#include "serve/serve.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

// Shapes of the scripted schedule. Executed-request indices drive the
// slow-worker/stall slots, submitted-request indices drive the poison
// slots; both advance only as described in serve.cpp, so every outcome
// below is forced, not probabilistic.
struct Script {
  int healthy = 24;            // phase A: full serves, cache-warming
  int poisoned = 3;            // phase B: NaN payloads -> rejected_invalid
  int fillers = 4;             // phase C: fill the queue behind the wedged head
  int overload = 4;            // phase C: burst past queue_capacity
  int breaker_failures = 6;    // phase D: slow workers -> timeouts -> trip
  int degraded_cached = 3;     // phase D: known cache keys
  int degraded_truncated = 5;  // phase D: unknown keys -> K' prefix
  int recovered = 8;           // phase E: probe + healthy tail
  double stall_ms = 1500;
  double slow_ms = 4000;
  // Must be far below slow_ms (so delayed requests always time out) and far
  // above the ~2ms cooperative-cancel latency (so each phase D request is
  // picked up — consuming its delay slot — before its deadline expires).
  double short_deadline_ms = 50;
  double long_deadline_ms = 20000;  // stalled head + fillers must complete
};

struct ScriptOutcome {
  serve::ServeStats stats;
  long long wrong_answers = 0;        // served output != model reference
  long long unexpected_outcomes = 0;  // outcome differs from the script
  double worst_deadline_overrun_ms = 0;  // completed latency minus deadline
};

Tensor hop_prefix(const Tensor& batch, int keep_hops) {
  const std::int64_t b = batch.size(0), full = batch.size(1), d = batch.size(2);
  const std::int64_t kept = std::min<std::int64_t>(keep_hops + 1, full);
  Tensor out({b, kept, d});
  for (std::int64_t i = 0; i < b; ++i) {
    std::memcpy(out.data() + i * kept * d, batch.data() + i * full * d,
                static_cast<std::size_t>(kept * d) * sizeof(float));
  }
  return out;
}

ScriptOutcome run_script(const core::Hoga& model, const core::HopFeatures& hops,
                         const Script& sc, std::uint64_t seed) {
  const serve::ServeConfig cfg{.workers = 1,
                               .queue_capacity =
                                   static_cast<std::size_t>(sc.fillers),
                               .default_deadline_ms = 2000,
                               .breaker_trip_failures = sc.breaker_failures,
                               .breaker_reset_ms = 300,
                               .degraded_num_hops = 1};
  serve::InferenceService svc(model, cfg);
  ScriptOutcome out;

  // Distinct request payloads, round-robin, with precomputed references.
  Rng rng(seed);
  constexpr int kBatches = 6;
  std::vector<Tensor> batches;
  std::vector<Tensor> expect_full, expect_trunc;
  for (int i = 0; i < kBatches; ++i) {
    std::vector<std::int64_t> ids;
    for (int j = 0; j < 32; ++j) {
      ids.push_back(static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(hops.num_nodes()))));
    }
    batches.push_back(hops.gather(ids));
    expect_full.push_back(
        model.forward_eval(ag::constant(batches.back())).value());
    expect_trunc.push_back(
        model
            .forward_eval(ag::constant(
                hop_prefix(batches.back(), cfg.degraded_num_hops)))
            .value());
  }

  auto track = [&out](const serve::Response& r, double deadline_ms) {
    const bool completed = r.outcome == serve::Outcome::kServed ||
                           r.outcome == serve::Outcome::kDegradedTruncated ||
                           r.outcome == serve::Outcome::kDegradedCached ||
                           r.outcome == serve::Outcome::kTimedOut;
    if (completed) {
      out.worst_deadline_overrun_ms =
          std::max(out.worst_deadline_overrun_ms, r.latency_ms - deadline_ms);
    }
  };
  std::atomic<long long> off_script{0};
  auto expect_outcome = [&off_script](const serve::Response& r,
                                      serve::Outcome want) {
    if (r.outcome != want) ++off_script;
  };
  std::atomic<long long> bad_answers{0};
  auto check_answer = [&bad_answers](const serve::Response& r,
                                     const Tensor& expect) {
    if (!r.output.defined() || !Tensor::allclose(r.output, expect, 1e-4f)) {
      ++bad_answers;
    }
  };

  // Slow-worker/stall slots are indexed by *executed* request, poison slots
  // by *submitted* request. Phase A executes h requests, the phase C head
  // is executed index h, the fillers h+1..h+fillers (rejections and
  // degraded requests never reach the executor), so phase D's slow slots
  // start at h + fillers + 1. Nothing here is probabilistic.
  fault::Injector inj(seed);
  const int h = sc.healthy;
  for (int i = 0; i < sc.poisoned; ++i) inj.poison_request(h + i);
  inj.stall_queue(h, sc.stall_ms);
  for (int i = 0; i < sc.breaker_failures; ++i) {
    inj.delay_request(h + sc.fillers + 1 + i, sc.slow_ms);
  }
  fault::ScopedInjector scope(inj);

  // Phase A: healthy serves warm the last-good cache (keys 1..kBatches).
  for (int i = 0; i < h; ++i) {
    const int b = i % kBatches;
    serve::Request req{.hop_batch = batches[b],
                       .cache_key = static_cast<std::uint64_t>(b + 1)};
    const serve::Response r = svc.infer(req);
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kServed);
    if (r.outcome == serve::Outcome::kServed) check_answer(r, expect_full[b]);
  }

  // Phase B: poisoned payloads must bounce off validation.
  for (int i = 0; i < sc.poisoned; ++i) {
    const serve::Response r = svc.infer({.hop_batch = batches[0]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kRejectedInvalid);
  }

  // Phase C: the head request wedges the only worker; fillers occupy every
  // admission slot behind it; the burst after them must bounce. The spin
  // waits are on observable state (queue depth), not wall-clock guesses,
  // so the counts stay exact on a loaded machine.
  auto client = [&](int batch_index, bool head_request) {
    return std::thread([&, batch_index, head_request] {
      const serve::Response r = svc.infer(
          {.hop_batch = batches[batch_index], .deadline_ms = sc.long_deadline_ms});
      expect_outcome(r, serve::Outcome::kServed);
      if (r.outcome == serve::Outcome::kServed) {
        check_answer(r, expect_full[batch_index]);
      }
      (void)head_request;
    });
  };
  // Quiesce: the executor's active count lingers for a moment after a
  // caller's future is ready (the worker retires the task afterwards), so
  // wait for it to hit zero — the next active request can then only be the
  // phase C head.
  while (svc.active_requests() != 0 || svc.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread head = client(0, true);
  // Wait until the worker has claimed (and been wedged by) the head.
  while (svc.active_requests() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::thread> fillers;
  for (int i = 0; i < sc.fillers; ++i) fillers.push_back(client(1, false));
  while (svc.queue_depth() < static_cast<std::size_t>(sc.fillers)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < sc.overload; ++i) {
    const serve::Response r = svc.infer({.hop_batch = batches[2]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kRejectedOverload);
  }
  head.join();
  for (auto& t : fillers) t.join();

  // Phase D: slow workers blow the deadline until the breaker trips, then
  // the degradation ladder takes over — cached where the key is known,
  // K'-truncated recompute where it is not.
  for (int i = 0; i < sc.breaker_failures; ++i) {
    const serve::Response r = svc.infer(
        {.hop_batch = batches[3], .deadline_ms = sc.short_deadline_ms});
    track(r, sc.short_deadline_ms);
    expect_outcome(r, serve::Outcome::kTimedOut);
  }
  for (int i = 0; i < sc.degraded_cached; ++i) {
    const int b = i % kBatches;
    const serve::Response r = svc.infer(
        {.hop_batch = batches[b], .cache_key = static_cast<std::uint64_t>(b + 1)});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kDegradedCached);
    if (r.outcome == serve::Outcome::kDegradedCached) {
      check_answer(r, expect_full[b]);
    }
  }
  for (int i = 0; i < sc.degraded_truncated; ++i) {
    const int b = i % kBatches;
    const serve::Response r = svc.infer({.hop_batch = batches[b]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kDegradedTruncated);
    if (r.outcome == serve::Outcome::kDegradedTruncated) {
      check_answer(r, expect_trunc[b]);
    }
  }

  // Phase E: past the reset window, the half-open probe heals the breaker.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(cfg.breaker_reset_ms) + 150));
  for (int i = 0; i < sc.recovered; ++i) {
    const int b = i % kBatches;
    const serve::Response r = svc.infer({.hop_batch = batches[b]});
    track(r, cfg.default_deadline_ms);
    expect_outcome(r, serve::Outcome::kServed);
    if (r.outcome == serve::Outcome::kServed) check_answer(r, expect_full[b]);
  }

  out.stats = svc.stats();
  out.wrong_answers = bad_answers.load();
  out.unexpected_outcomes = off_script.load();
  return out;
}

// Concurrent fault-free load for throughput/latency numbers.
serve::ServeStats run_throughput(const core::Hoga& model,
                                 const core::HopFeatures& hops, int clients,
                                 int per_client, long long* wrong) {
  serve::InferenceService svc(
      model, {.workers = 2, .queue_capacity = 256, .default_deadline_ms = 5000});
  std::vector<Tensor> batches;
  std::vector<Tensor> expected;
  for (int i = 0; i < clients; ++i) {
    std::vector<std::int64_t> ids;
    Rng rng(1000 + static_cast<std::uint64_t>(i));
    for (int j = 0; j < 64; ++j) {
      ids.push_back(static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(hops.num_nodes()))));
    }
    batches.push_back(hops.gather(ids));
    expected.push_back(model.forward_eval(ag::constant(batches.back())).value());
  }
  std::atomic<long long> bad{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < per_client; ++j) {
        const serve::Response r = svc.infer({.hop_batch = batches[i]});
        if (r.outcome != serve::Outcome::kServed ||
            !Tensor::allclose(r.output, expected[i], 1e-4f)) {
          ++bad;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  *wrong += bad.load();
  return svc.stats();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool smoke = bench::has_flag(argc, argv, "--smoke") || !full;
  const auto seed =
      static_cast<std::uint64_t>(bench::int_option(argc, argv, "--seed", 7));

  std::puts("=== Serving runtime under injected faults ===");

  // Workload: node-classification serving on a mapped multiplier circuit.
  const int bits = smoke ? 16 : 48;
  Timer build_t;
  const auto g = data::make_reasoning_graph("csa", bits, true);
  const int num_hops = 3;
  const auto hops =
      core::HopFeatures::compute(*g.adj_hop, g.features, num_hops);
  Rng rng(seed);
  core::Hoga model(core::HogaConfig{.in_dim = hops.feature_dim(),
                                    .hidden = 32,
                                    .num_hops = num_hops,
                                    .num_layers = 1,
                                    .out_dim = reasoning::kNumClasses},
                   rng);
  std::printf("workload: mapped %d-bit CSA multiplier, %lld nodes "
              "(prepared in %s)\n",
              bits, static_cast<long long>(hops.num_nodes()),
              format_duration(build_t.seconds()).c_str());

  Script sc;
  if (full) {
    sc.healthy = 200;
    sc.recovered = 40;
  }

  // Scripted fault schedule, twice with the same seed: the outcome counts
  // must match exactly.
  const ScriptOutcome a = run_script(model, hops, sc, seed);
  const ScriptOutcome b = run_script(model, hops, sc, seed);

  std::printf("\n-- scripted fault schedule (seed %llu) --\n",
              static_cast<unsigned long long>(seed));
  Table table({"Outcome", "Run 1", "Run 2"});
  const auto row = [&table](const char* name, long long x, long long y) {
    table.row().cell(name).cell(x).cell(y);
  };
  row("served", a.stats.served, b.stats.served);
  row("degraded_truncated", a.stats.degraded_truncated,
      b.stats.degraded_truncated);
  row("degraded_cached", a.stats.degraded_cached, b.stats.degraded_cached);
  row("rejected_invalid", a.stats.rejected_invalid, b.stats.rejected_invalid);
  row("rejected_overload", a.stats.rejected_overload,
      b.stats.rejected_overload);
  row("timed_out", a.stats.timed_out, b.stats.timed_out);
  row("failed", a.stats.failed, b.stats.failed);
  row("breaker_trips", a.stats.breaker_trips, b.stats.breaker_trips);
  table.print();
  std::printf("latency p50/p99 = %s / %s, worst deadline overrun = %s\n",
              format_duration(a.stats.latency_percentile(50) / 1000).c_str(),
              format_duration(a.stats.latency_percentile(99) / 1000).c_str(),
              format_duration(std::max(0.0, a.worst_deadline_overrun_ms) /
                              1000)
                  .c_str());

  // Throughput under concurrent fault-free load.
  long long throughput_wrong = 0;
  const int clients = full ? 4 : 2;
  const int per_client = full ? 400 : 40;
  Timer load_t;
  const serve::ServeStats tp =
      run_throughput(model, hops, clients, per_client, &throughput_wrong);
  const double seconds = load_t.seconds();
  std::printf("\n-- concurrent load: %d clients x %d requests --\n", clients,
              per_client);
  std::printf("throughput = %.0f req/s, p50 = %s, p99 = %s\n",
              static_cast<double>(tp.served) / seconds,
              format_duration(tp.latency_percentile(50) / 1000).c_str(),
              format_duration(tp.latency_percentile(99) / 1000).c_str());

  // Acceptance invariants.
  int violations = 0;
  const auto require = [&violations](bool ok, const char* what) {
    std::printf("%-52s %s\n", what, ok ? "ok" : "VIOLATED");
    if (!ok) ++violations;
  };
  std::puts("\n-- acceptance checks --");
  require(a.wrong_answers == 0 && b.wrong_answers == 0 &&
              throughput_wrong == 0,
          "zero wrong answers on validated requests");
  require(a.unexpected_outcomes == 0 && b.unexpected_outcomes == 0,
          "every scripted outcome landed as scheduled");
  require(a.stats.counts_signature() == b.stats.counts_signature(),
          "same seed reproduces the same outcome counts");
  require(a.worst_deadline_overrun_ms < 150,
          "completed-request latency bounded by the deadline");
  require(a.stats.degraded() > 0, "graceful degradation engaged");
  require(a.stats.degraded_cached > 0 && a.stats.degraded_truncated > 0,
          "both degradation rungs exercised");
  require(a.stats.rejected_invalid > 0, "poisoned requests rejected");
  require(a.stats.rejected_overload > 0, "backpressure rejected the burst");
  require(a.stats.timed_out > 0, "deadlines enforced");
  require(a.stats.breaker_trips > 0, "circuit breaker tripped");
  require(a.stats.failed == 0, "no internal execution failures");

  if (violations > 0) {
    std::printf("\n%d acceptance check(s) VIOLATED\n", violations);
    return 1;
  }
  std::puts("\nall acceptance checks passed");
  return 0;
}
