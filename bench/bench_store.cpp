// Feature-store benchmark (DESIGN.md §9): cold phase-1 precompute vs warm
// store hits on a CSA-multiplier workload, the serve-path cache, and the
// self-healing corruption paths. The smoke run doubles as a tier-1 test —
// it fails loudly if any acceptance invariant is violated:
//
//   - a warm memory-tier hit is >= 10x faster than a cold compute (the
//     store's reason to exist);
//   - every cached result — memory hit, disk hit, post-corruption heal —
//     is bit-exact against a direct HopFeatures::compute;
//   - an injected corrupted shard is rejected by CRC, counted, and healed
//     by recompute (the run completes; nothing crashes);
//   - an injected shard-write failure degrades the store to memory-only
//     and is counted;
//   - two identical raw-AIG serve requests trigger exactly one precompute;
//   - the same fault schedule reproduces the exact same store counters.
//
// Usage: bench_store [--smoke] [--full] [--seed=N]

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "circuits/multipliers.hpp"
#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "reasoning/labels.hpp"
#include "serve/serve.hpp"
#include "store/feature_store.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

bool bit_exact(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

/// Best-of-`repeats` wall time of `fn` in seconds.
template <typename Fn>
double best_seconds(int repeats, Fn&& fn) {
  double best = 1e30;
  for (int i = 0; i < repeats; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

struct ShardDir {
  std::string path;
  explicit ShardDir(const std::string& name)
      : path("/tmp/hoga_bench_store_" + name) {
    std::filesystem::remove_all(path);
  }
  ~ShardDir() { std::filesystem::remove_all(path); }
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const auto seed =
      static_cast<std::uint64_t>(bench::int_option(argc, argv, "--seed", 7));
  const bool smoke = !full;

  std::puts("=== Feature store: cold vs warm hop-feature precompute ===");

  // Workload: the mapped CSA-multiplier reasoning graph (the store's
  // training-side consumer), K = 5 as in the paper's default config.
  const int bits = smoke ? 16 : 48;
  const int num_hops = 5;
  Timer build_t;
  const auto g = data::make_reasoning_graph("csa", bits, true);
  std::printf("workload: mapped %d-bit CSA multiplier, %lld nodes, d = %lld, "
              "K = %d (built in %s)\n",
              bits, static_cast<long long>(g.features.size(0)),
              static_cast<long long>(g.features.size(1)), num_hops,
              format_duration(build_t.seconds()).c_str());

  const core::HopFeatures reference =
      core::HopFeatures::compute(*g.adj_hop, g.features, num_hops);

  int violations = 0;
  const auto require = [&violations](bool ok, const char* what) {
    std::printf("%-56s %s\n", what, ok ? "ok" : "VIOLATED");
    if (!ok) ++violations;
  };

  // -- Cold vs warm ----------------------------------------------------------
  ShardDir dir("main");
  store::FeatureStore fs({.directory = dir.path});

  const int cold_repeats = smoke ? 3 : 5;
  const int warm_repeats = smoke ? 50 : 200;
  const double cold_s = best_seconds(cold_repeats, [&] {
    core::HopFeatures::compute(*g.adj_hop, g.features, num_hops);
  });

  Tensor first;  // populates both tiers
  fs.get_or_compute(*g.adj_hop, g.features, num_hops, nullptr);
  first = fs.get_or_compute(*g.adj_hop, g.features, num_hops).stacked();

  bool warm_exact = true;
  const double memory_s = best_seconds(warm_repeats, [&] {
    store::StoreOutcome from = store::StoreOutcome::kComputed;
    const auto hit = fs.get_or_compute(*g.adj_hop, g.features, num_hops, &from);
    if (from != store::StoreOutcome::kMemoryHit) warm_exact = false;
    (void)hit;
  });
  warm_exact = warm_exact && bit_exact(first, reference.stacked());

  // Disk tier in isolation: memory budget 0 forces every hit through the
  // shard file (read + CRC + decode).
  store::FeatureStore disk_fs(
      {.directory = dir.path, .memory_budget_bytes = 0});
  bool disk_exact = true;
  const double disk_s = best_seconds(smoke ? 10 : 50, [&] {
    store::StoreOutcome from = store::StoreOutcome::kComputed;
    const auto hit =
        disk_fs.get_or_compute(*g.adj_hop, g.features, num_hops, &from);
    if (from != store::StoreOutcome::kDiskHit ||
        !bit_exact(hit.stacked(), reference.stacked())) {
      disk_exact = false;
    }
  });

  Table table({"Path", "Best time", "Speedup vs cold"});
  const auto timing_row = [&table, cold_s](const char* name, double s) {
    table.row().cell(name).cell(format_duration(s)).cell(
        s > 0 ? cold_s / s : 0.0);
  };
  timing_row("cold compute (K SpMM passes)", cold_s);
  timing_row("warm memory-tier hit", memory_s);
  timing_row("warm disk-tier hit (read+CRC+decode)", disk_s);
  table.print();

  // -- Serve path: raw-AIG requests against the LRU tier ---------------------
  std::puts("\n-- serve path: repeated raw-AIG requests --");
  const int serve_requests = smoke ? 8 : 64;
  const auto circuit = circuits::make_csa_multiplier(smoke ? 8 : 16);
  Rng model_rng(seed);
  core::Hoga model(core::HogaConfig{.in_dim = reasoning::kNodeFeatureDim,
                                    .hidden = 32,
                                    .num_hops = 3,
                                    .num_layers = 1,
                                    .out_dim = reasoning::kNumClasses},
                   model_rng);
  store::FeatureStore serve_store({.directory = ""});  // LRU tier only
  serve::InferenceService svc(
      model, {.workers = 2, .feature_store = &serve_store});

  Timer miss_t;
  const serve::Response cold_r = svc.infer({.aig = &circuit.aig});
  const double serve_miss_s = miss_t.seconds();
  double serve_hit_s = 1e30;
  long long serve_ok = cold_r.outcome == serve::Outcome::kServed ? 1 : 0;
  for (int i = 1; i < serve_requests; ++i) {
    Timer t;
    const serve::Response r = svc.infer({.aig = &circuit.aig});
    serve_hit_s = std::min(serve_hit_s, t.seconds());
    if (r.outcome == serve::Outcome::kServed &&
        bit_exact(r.output, cold_r.output)) {
      ++serve_ok;
    }
  }
  const auto serve_stats = svc.stats();
  std::printf("first request (cache miss): %s, best hit request: %s\n",
              format_duration(serve_miss_s).c_str(),
              format_duration(serve_hit_s).c_str());
  std::printf("serve counters: %s\n", serve_stats.counts_signature().c_str());
  std::printf("store counters: %s\n",
              serve_store.stats().counts_signature().c_str());

  // -- Fault injection: corruption and write failure -------------------------
  std::puts("\n-- fault injection --");
  // Corrupted shard: CRC rejects, recompute heals, result stays bit-exact.
  bool corrupt_healed = false;
  long long corrupt_counted = 0;
  {
    fault::Injector inj(seed);
    inj.corrupt_store_read(0);
    fault::ScopedInjector scope(inj);
    store::FeatureStore victim(
        {.directory = dir.path, .memory_budget_bytes = 0});
    store::StoreOutcome from = store::StoreOutcome::kMemoryHit;
    const auto healed =
        victim.get_or_compute(*g.adj_hop, g.features, num_hops, &from);
    corrupt_healed = from == store::StoreOutcome::kComputed &&
                     bit_exact(healed.stacked(), reference.stacked());
    corrupt_counted = victim.stats().corrupt_shards;
    std::printf("corrupted shard: %s\n",
                victim.stats().counts_signature().c_str());
  }
  // Shard-write failure: swallowed, counted, memory tier still serves.
  bool write_fail_served = false;
  long long write_fail_counted = 0;
  {
    ShardDir broken("broken_disk");
    fault::Injector inj(seed + 1);
    inj.fail_store_write(0);
    fault::ScopedInjector scope(inj);
    store::FeatureStore victim({.directory = broken.path});
    victim.get_or_compute(*g.adj_hop, g.features, num_hops);
    store::StoreOutcome from = store::StoreOutcome::kComputed;
    const auto hit =
        victim.get_or_compute(*g.adj_hop, g.features, num_hops, &from);
    write_fail_served = from == store::StoreOutcome::kMemoryHit &&
                        bit_exact(hit.stacked(), reference.stacked());
    write_fail_counted = victim.stats().write_errors;
    std::printf("failed shard write: %s\n",
                victim.stats().counts_signature().c_str());
  }
  // Determinism: the same schedule reproduces the same store counters.
  auto injected_run = [&](std::uint64_t s) {
    ShardDir scratch("determinism");
    fault::Injector inj(s);
    inj.fail_store_write(0);
    inj.corrupt_store_read(0);
    fault::ScopedInjector scope(inj);
    store::FeatureStore victim({.directory = scratch.path});
    victim.get_or_compute(*g.adj_hop, g.features, num_hops);  // write fails
    victim.put({store::graph_digest(*g.adj_hop, g.features), num_hops},
               reference);                                    // write lands
    store::FeatureStore reader(
        {.directory = scratch.path, .memory_budget_bytes = 0});
    reader.get_or_compute(*g.adj_hop, g.features, num_hops);  // corrupt read
    reader.get_or_compute(*g.adj_hop, g.features, num_hops);  // healed hit
    return victim.stats().counts_signature() + " | " +
           reader.stats().counts_signature();
  };
  const std::string sig_a = injected_run(seed);
  const std::string sig_b = injected_run(seed);

  // -- Acceptance checks -----------------------------------------------------
  std::puts("\n-- acceptance checks --");
  require(cold_s >= 10.0 * memory_s,
          "warm memory-tier hit >= 10x faster than cold compute");
  require(warm_exact, "memory-tier hits are bit-exact vs direct compute");
  require(disk_exact, "disk-tier hits are bit-exact vs direct compute");
  require(serve_ok == serve_requests && serve_stats.failed == 0,
          "all raw-AIG serve requests answered identically");
  require(serve_stats.feature_cache_misses == 1 &&
              serve_stats.feature_cache_hits == serve_requests - 1 &&
              serve_store.stats().computes == 1,
          "repeated AIG requests cost exactly one precompute");
  require(corrupt_healed && corrupt_counted == 1,
          "corrupted shard rejected by CRC, healed by recompute");
  require(write_fail_served && write_fail_counted == 1,
          "shard-write failure swallowed; memory tier still serves");
  require(sig_a == sig_b,
          "same fault schedule reproduces the same store counters");

  if (violations > 0) {
    std::printf("\n%d acceptance check(s) VIOLATED\n", violations);
    return 1;
  }
  std::puts("\nall acceptance checks passed");
  return 0;
}
