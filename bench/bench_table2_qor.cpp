// Table 2 reproduction: QoR prediction on the OpenABC-D substitute.
//
// Trains the OpenABC-D GCN baseline (5 layers) and HOGA with K=2 / K=5 on
// the 20 training designs, evaluates MAPE per held-out design, and reports
// training time — the same rows as the paper's Table 2. Shape expectations:
// HOGA variants beat GCN on average MAPE across unseen designs; HOGA-2
// trains faster than HOGA-5.

#include <cstdio>

#include "bench_common.hpp"
#include "data/qor_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/qor_trainer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hoga;

namespace {

struct RowResult {
  std::string name;
  train::QorEval eval;
  double train_seconds = 0;
  double precompute_seconds = 0;
};

RowResult run_model(const std::string& name, train::QorBackbone backbone,
                    int num_hops, const data::QorDataset& ds, int epochs) {
  train::QorModelConfig cfg;
  cfg.backbone = backbone;
  cfg.in_dim = reasoning::kNodeFeatureDim;
  cfg.hidden = 32;
  cfg.num_hops = num_hops;
  cfg.gcn_layers = 5;  // the paper's baseline depth
  std::vector<train::QorDesignInput> inputs;
  const double precompute = train::prepare_qor_inputs(ds, cfg, &inputs);
  Rng rng(7);
  train::QorModel model(cfg, rng);
  train::QorTrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = 2e-3f;
  tcfg.batch_size = 8;
  Timer t;
  auto log = train::train_qor(model, inputs, ds.train, tcfg);
  RowResult r;
  r.name = name;
  r.train_seconds = t.seconds();
  r.precompute_seconds = precompute;
  r.eval = train::evaluate_qor(model, ds, inputs, ds.test);
  std::fprintf(stderr, "[%s] loss %.4f -> %.4f, train %.1fs\n", name.c_str(),
               log.epoch_losses.front(), log.epoch_losses.back(),
               r.train_seconds);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const int recipes = static_cast<int>(
      bench::int_option(argc, argv, "--recipes", full ? 24 : 12));
  const int epochs =
      static_cast<int>(bench::int_option(argc, argv, "--epochs",
                                         full ? 40 : 20));

  std::puts("=== Table 2: QoR prediction, GCN vs HOGA-2 vs HOGA-5 ===");
  std::printf("dataset: 29 designs x %d recipes (labels from the synthesis "
              "engine); %d training epochs\n\n",
              recipes, epochs);

  Timer gen;
  data::QorDatasetParams dparams;
  dparams.recipes_per_design = recipes;
  const auto ds = data::QorDataset::generate(dparams);
  std::printf("dataset generated in %s (%zu train / %zu test samples)\n\n",
              format_duration(gen.seconds()).c_str(), ds.train.size(),
              ds.test.size());

  std::vector<RowResult> rows;
  rows.push_back(run_model("GCN", train::QorBackbone::kGcn, 0, ds, epochs));
  rows.push_back(run_model("HOGA-2", train::QorBackbone::kHoga, 2, ds, epochs));
  rows.push_back(run_model("HOGA-5", train::QorBackbone::kHoga, 5, ds, epochs));

  // Assemble the paper-shaped table: one column per evaluation design.
  std::vector<std::string> header{"Model"};
  for (const auto& n : rows[0].eval.design_names) header.push_back(n);
  header.push_back("Average");
  header.push_back("Training Time");
  Table table(header);
  const double gcn_time = rows[0].train_seconds;
  for (const auto& r : rows) {
    table.row().cell(r.name);
    for (double m : r.eval.design_mape) table.pct(m, 2);
    table.pct(r.eval.average_mape, 1);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s (%.1fx)",
                  format_duration(r.train_seconds).c_str(),
                  gcn_time / std::max(1e-9, r.train_seconds));
    table.cell(buf);
  }
  table.print();

  std::printf("\npaper shape check: GCN avg %.1f%% vs best HOGA avg %.1f%% "
              "(paper: 26.0%% vs 5.0%%)\n",
              rows[0].eval.average_mape,
              std::min(rows[1].eval.average_mape, rows[2].eval.average_mape));
  std::printf("hop-feature precompute: HOGA-2 %s, HOGA-5 %s "
              "(paper: 13 min, negligible vs training)\n",
              format_duration(rows[1].precompute_seconds).c_str(),
              format_duration(rows[2].precompute_seconds).c_str());
  return 0;
}
