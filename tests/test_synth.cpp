// Synthesis pass tests: every pass preserves function (the cardinal
// invariant), plus per-pass behavioral checks and recipe machinery.

#include <gtest/gtest.h>

#include <set>

#include "aig/simulate.hpp"
#include "circuits/arith.hpp"
#include "circuits/ip_designs.hpp"
#include "circuits/multipliers.hpp"
#include "synth/balance.hpp"
#include "synth/rebuild.hpp"
#include "synth/recipe.hpp"
#include "synth/rewrite.hpp"
#include "synth/techmap.hpp"

namespace hoga::synth {
namespace {

using aig::Aig;
using aig::Lit;

Aig redundant_circuit() {
  // Deliberately wasteful logic with re-derivable subterms.
  Aig g;
  std::vector<Lit> p;
  for (int i = 0; i < 6; ++i) p.push_back(g.add_pi());
  const Lit t1 = g.add_and(p[0], p[1]);
  const Lit t2 = g.add_or(t1, g.add_and(t1, p[2]));     // absorbs to t1
  const Lit t3 = g.add_xor(p[3], p[4]);
  const Lit t4 = g.add_xor(p[3], p[4]);                 // strash duplicate
  const Lit t5 = g.add_mux(p[5], t2, g.add_and(t3, t4));
  g.add_po(t5);
  g.add_po(g.add_or(t2, t5));
  // Dead logic.
  g.add_and(p[0], p[5]);
  return g;
}

class PassEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PassEquivalence, PreservesFunctionExhaustively) {
  const Pass pass = static_cast<Pass>(GetParam());
  // Multiple circuit shapes.
  std::vector<Aig> circuits;
  circuits.push_back(redundant_circuit());
  circuits.push_back(circuits::make_ripple_adder(4));
  circuits.push_back(circuits::make_csa_multiplier(4).aig);
  circuits.push_back(circuits::make_booth_multiplier(3).aig);
  for (const Aig& src : circuits) {
    Aig out = apply_pass(src, pass);
    EXPECT_TRUE(aig::exhaustive_equivalent(src, out))
        << pass_name(pass) << " broke function";
    EXPECT_EQ(out.num_pis(), src.num_pis());
    EXPECT_EQ(out.num_pos(), src.num_pos());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPasses, PassEquivalence,
                         ::testing::Range(0, kNumPassKinds),
                         [](const auto& info) {
                           std::string n = pass_name(
                               static_cast<Pass>(info.param));
                           for (auto& c : n) {
                             if (c == ' ' || c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Strash, RemovesDeadLogicAndDuplicates) {
  Aig src = redundant_circuit();
  Aig out = strash(src);
  EXPECT_LE(out.num_ands(), src.num_ands());
  EXPECT_EQ(out.num_ands(), out.num_live_ands());
}

TEST(Strash, MapReturnsValidLiterals) {
  Aig src = redundant_circuit();
  std::vector<Lit> map;
  Aig out = strash_with_map(src, &map);
  ASSERT_EQ(map.size(), static_cast<std::size_t>(src.num_nodes()));
  const auto live = src.reachable_from_pos();
  for (aig::NodeId id = 0; id < static_cast<aig::NodeId>(src.num_nodes());
       ++id) {
    if (live[id]) {
      EXPECT_NE(map[id], Aig::kNoLit);
      EXPECT_LT(aig::lit_node(map[id]),
                static_cast<aig::NodeId>(out.num_nodes()));
    }
  }
}

TEST(Balance, ReducesDepthOfChains) {
  // A long AND chain should become a log-depth tree.
  Aig g;
  std::vector<Lit> p;
  for (int i = 0; i < 16; ++i) p.push_back(g.add_pi());
  Lit acc = p[0];
  for (int i = 1; i < 16; ++i) acc = g.add_and(acc, p[i]);
  g.add_po(acc);
  EXPECT_EQ(g.depth(), 15);
  Aig b = balance(g);
  EXPECT_LE(b.depth(), 5);
  EXPECT_TRUE(aig::exhaustive_equivalent(g, b));
}

TEST(Balance, DoesNotIncreaseDepthOnArithmetic) {
  Aig g = circuits::make_csa_multiplier(6).aig;
  Aig b = balance(g);
  EXPECT_LE(b.depth(), g.depth());
}

TEST(Rewrite, ShrinksRedundantLogic) {
  Aig src = redundant_circuit();
  Aig out = rewrite(strash(src));
  EXPECT_LT(out.num_ands(), strash(src).num_ands());
}

TEST(Rewrite, IdempotentOnOptimizedNetworks) {
  Aig once = rewrite(strash(redundant_circuit()));
  Aig twice = rewrite(once);
  // Second application cannot increase size.
  EXPECT_LE(twice.num_ands(), once.num_ands());
}

TEST(Refactor, HandlesLargerCones) {
  Aig src = circuits::make_carry_lookahead_adder(5);
  Aig out = refactor(src);
  EXPECT_TRUE(aig::exhaustive_equivalent(src, out));
  EXPECT_LE(out.num_ands(), src.num_ands());
}

TEST(Recipe, RandomRecipesDeterministicPerSeed) {
  Rng a(5), b(5);
  Recipe ra = Recipe::random(a, 10);
  Recipe rb = Recipe::random(b, 10);
  EXPECT_EQ(ra.token_ids(), rb.token_ids());
  EXPECT_EQ(ra.length(), 10);
  for (Pass p : ra.passes) {
    EXPECT_LT(static_cast<int>(p), kNumPassKinds);
  }
}

TEST(Recipe, Resyn2MatchesAbcSequence) {
  Recipe r = Recipe::resyn2();
  EXPECT_EQ(r.length(), 10);
  EXPECT_EQ(r.passes[0], Pass::kBalance);
  EXPECT_EQ(r.passes[1], Pass::kRewrite);
  EXPECT_NE(r.to_string().find("rewrite -z"), std::string::npos);
}

TEST(Recipe, RunRecordsPerPassCounts) {
  Aig src = redundant_circuit();
  Recipe r{{Pass::kStrash, Pass::kRewrite, Pass::kBalance}};
  RecipeResult result = run_recipe(src, r);
  ASSERT_EQ(result.and_counts.size(), 3u);
  EXPECT_EQ(result.and_counts.back(), result.optimized.num_ands());
  EXPECT_TRUE(aig::exhaustive_equivalent(src, result.optimized));
}

TEST(Recipe, DifferentRecipesCanGiveDifferentQoR) {
  // Across the full dataset generation, recipes must not all collapse to
  // identical gate counts (the QoR task would be recipe-independent).
  const auto& specs = circuits::openabcd_specs();
  Aig g = strash(circuits::build_ip_design(specs[23]));  // vga_lcd
  Rng rng(11);
  std::set<std::int64_t> counts;
  counts.insert(run_recipe(g, Recipe{{Pass::kStrash}}).optimized.num_ands());
  counts.insert(run_recipe(g, Recipe::resyn2()).optimized.num_ands());
  for (int i = 0; i < 3; ++i) {
    counts.insert(
        run_recipe(g, Recipe::random(rng, 3 + i)).optimized.num_ands());
  }
  EXPECT_GE(counts.size(), 3u);
}

TEST(TechMap, PreservesFunction) {
  for (int bits : {3, 4, 5}) {
    Aig src = circuits::make_csa_multiplier(bits).aig;
    Aig mapped = tech_map(src);
    EXPECT_TRUE(aig::exhaustive_equivalent(src, mapped)) << bits;
  }
}

TEST(TechMap, ObfuscatesStructure) {
  // Mapping must change the network (it is what makes the reasoning task
  // hard), typically increasing node count via re-decomposition.
  Aig src = circuits::make_csa_multiplier(6).aig;
  Aig mapped = tech_map(src);
  EXPECT_NE(mapped.num_ands(), src.num_live_ands());
}

TEST(TechMap, DeterministicForSameSeed) {
  Aig src = circuits::make_booth_multiplier(4).aig;
  Aig m1 = tech_map(src, {.lut_size = 4, .max_cuts = 8, .seed = 9});
  Aig m2 = tech_map(src, {.lut_size = 4, .max_cuts = 8, .seed = 9});
  EXPECT_EQ(m1.num_ands(), m2.num_ands());
}

TEST(TechMap, LutSizeControlsCoarseness) {
  Aig src = circuits::make_csa_multiplier(6).aig;
  Aig k2 = tech_map(src, {.lut_size = 2, .max_cuts = 8, .seed = 1});
  Aig k6 = tech_map(src, {.lut_size = 6, .max_cuts = 8, .seed = 1});
  Rng rng(1);
  EXPECT_TRUE(aig::random_equivalent(src, k2, rng, 8));
  EXPECT_TRUE(aig::random_equivalent(src, k6, rng, 8));
}

}  // namespace
}  // namespace hoga::synth
