// Feature-store tests: content digests, hoga-feat shard round trips
// (bit-exact, property-style over random shapes), CRC corruption detection
// at every byte offset, config-mismatch-as-miss semantics, LRU eviction,
// cross-instance persistence, and deterministic fault injection
// (DESIGN.md §9).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/hop_features.hpp"
#include "fault/fault.hpp"
#include "graph/csr.hpp"
#include "store/digest.hpp"
#include "store/feature_store.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace hoga::store {
namespace {

graph::Csr path_graph(int n) {
  std::vector<graph::Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return graph::Csr::from_edges_undirected(n, edges);
}

core::HopFeatures random_hops(std::int64_t n, int k, std::int64_t d,
                              std::uint64_t seed) {
  Rng rng(seed);
  return core::HopFeatures::from_stacked(Tensor::randn({n, k + 1, d}, rng),
                                         k);
}

bool bit_exact(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

/// Fresh shard directory under /tmp, removed on destruction.
struct ShardDir {
  std::string path;
  explicit ShardDir(const std::string& name)
      : path("/tmp/hoga_test_store_" + name) {
    std::filesystem::remove_all(path);
  }
  ~ShardDir() { std::filesystem::remove_all(path); }
};

TEST(StoreDigest, DeterministicAndSensitive) {
  Rng rng(1);
  const graph::Csr adj = path_graph(8).normalized_symmetric();
  const Tensor x = Tensor::randn({8, 5}, rng);
  const std::uint64_t base = graph_digest(adj, x);
  EXPECT_EQ(base, graph_digest(adj, x));  // pure function

  // Any change to structure or features must move the digest.
  EXPECT_NE(base, graph_digest(path_graph(9).normalized_symmetric(), x));
  EXPECT_NE(base, graph_digest(adj.normalized_row(), x));
  Tensor x2 = x.clone();
  x2.data()[17] += 1e-3f;
  EXPECT_NE(base, graph_digest(adj, x2));
  Rng rng2(1);
  EXPECT_NE(base, graph_digest(adj, Tensor::randn({8, 6}, rng2)));
}

TEST(StoreDigest, AigDigestSeparatesCircuits) {
  aig::Aig a;
  const aig::Lit p0 = a.add_pi();
  const aig::Lit p1 = a.add_pi();
  a.add_po(a.add_and(p0, p1));

  aig::Aig b;
  const aig::Lit q0 = b.add_pi();
  const aig::Lit q1 = b.add_pi();
  b.add_po(b.add_and(q0, aig::lit_not(q1)));  // one inverted fanin

  EXPECT_EQ(aig_digest(a), aig_digest(a));
  EXPECT_NE(aig_digest(a), aig_digest(b));
}

TEST(StoreShard, RoundTripIsBitExactOverRandomShapes) {
  // Property: encode -> decode is the identity, bit for bit, across random
  // shapes and values — including the empty graph and a single node.
  struct Case { std::int64_t n; int k; std::int64_t d; };
  const std::vector<Case> cases = {
      {0, 3, 4}, {1, 1, 1}, {1, 5, 7}, {3, 2, 1}, {17, 4, 12}, {64, 6, 3}};
  std::uint64_t seed = 100;
  for (const auto& c : cases) {
    const core::HopFeatures hops = random_hops(c.n, c.k, c.d, seed++);
    const FeatureKey key{0xDEADBEEFu + seed, c.k};
    const std::string bytes = encode_shard(key, hops);
    std::string why;
    auto back = decode_shard(bytes, key, &why);
    ASSERT_TRUE(back.has_value())
        << "n=" << c.n << " k=" << c.k << " d=" << c.d << ": " << why;
    EXPECT_EQ(back->num_nodes(), c.n);
    EXPECT_EQ(back->num_hops(), c.k);
    EXPECT_EQ(back->feature_dim(), c.d);
    EXPECT_TRUE(bit_exact(back->stacked(), hops.stacked()));
  }
}

TEST(StoreShard, EveryFlippedByteIsDetected) {
  // A single flipped bit anywhere in the shard — header or payload — must
  // make decode_shard return nullopt (CRC or a parse check catches it).
  const core::HopFeatures hops = random_hops(2, 2, 3, 42);
  const FeatureKey key{0x1234u, 2};
  const std::string good = encode_shard(key, hops);
  ASSERT_TRUE(decode_shard(good, key).has_value());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    EXPECT_FALSE(decode_shard(bad, key).has_value())
        << "flip at byte " << i << " went undetected";
  }
  // Truncation at any point is also rejected.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(decode_shard(good.substr(0, len), key).has_value())
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(StoreShard, RejectsWrongKeyAndVersion) {
  const core::HopFeatures hops = random_hops(3, 2, 2, 7);
  const FeatureKey key{99, 2};
  const std::string bytes = encode_shard(key, hops);
  std::string why;
  EXPECT_FALSE(decode_shard(bytes, {98, 2}, &why).has_value());
  EXPECT_NE(why.find("digest"), std::string::npos) << why;
  EXPECT_FALSE(decode_shard(bytes, {99, 3}, &why).has_value());
  EXPECT_NE(why.find("K"), std::string::npos) << why;
  EXPECT_FALSE(decode_shard("hoga-feat v2 0 0\n", {99, 2}, &why).has_value());
  EXPECT_NE(why.find("version"), std::string::npos) << why;
  EXPECT_FALSE(decode_shard("not a shard at all", {99, 2}, &why).has_value());
}

TEST(FeatureStore, ComputesOnceThenHitsMemory) {
  Rng rng(3);
  const graph::Csr adj = path_graph(10).normalized_symmetric();
  const Tensor x = Tensor::randn({10, 4}, rng);
  FeatureStore fs({.directory = ""});  // memory-only

  StoreOutcome from = StoreOutcome::kComputed;
  const core::HopFeatures first = fs.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kComputed);
  const core::HopFeatures again = fs.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kMemoryHit);
  EXPECT_TRUE(bit_exact(first.stacked(), again.stacked()));
  EXPECT_TRUE(bit_exact(first.stacked(),
                        core::HopFeatures::compute(adj, x, 3).stacked()));
  EXPECT_EQ(fs.stats().computes, 1);
  EXPECT_EQ(fs.stats().memory_hits, 1);
  EXPECT_EQ(fs.stats().shard_writes, 0);  // persistent tier disabled
  EXPECT_EQ(fs.memory_entries(), 1u);
}

TEST(FeatureStore, KMismatchIsAMissNotAnError) {
  // The same graph requested at a different K (or dim) must re-validate as
  // a config mismatch and fall back to recompute — never throw, never
  // return features built for the wrong config.
  Rng rng(4);
  const graph::Csr adj = path_graph(6).normalized_symmetric();
  const Tensor x = Tensor::randn({6, 3}, rng);
  FeatureStore fs({.directory = ""});

  const core::HopFeatures k3 = fs.get_or_compute(adj, x, 3);
  StoreOutcome from = StoreOutcome::kMemoryHit;
  const core::HopFeatures k5 = fs.get_or_compute(adj, x, 5, &from);
  EXPECT_EQ(from, StoreOutcome::kComputed);
  EXPECT_EQ(k5.num_hops(), 5);
  EXPECT_TRUE(bit_exact(k5.stacked(),
                        core::HopFeatures::compute(adj, x, 5).stacked()));
  EXPECT_EQ(fs.stats().config_mismatches, 1);
  EXPECT_EQ(fs.stats().computes, 2);
  EXPECT_EQ(k3.num_hops(), 3);  // the first result is untouched

  // The K=5 entry replaced K=3 in the memory tier; asking for K=3 again is
  // another mismatch-then-recompute round trip.
  from = StoreOutcome::kMemoryHit;
  const core::HopFeatures k3_again = fs.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kComputed);
  EXPECT_TRUE(bit_exact(k3_again.stacked(), k3.stacked()));
  EXPECT_EQ(fs.stats().config_mismatches, 2);
}

TEST(FeatureStore, PersistsAcrossInstancesViaShards) {
  ShardDir dir("persist");
  Rng rng(5);
  const graph::Csr adj = path_graph(12).normalized_symmetric();
  const Tensor x = Tensor::randn({12, 4}, rng);

  Tensor produced;
  {
    FeatureStore writer({.directory = dir.path});
    produced = writer.get_or_compute(adj, x, 3).stacked();
    EXPECT_EQ(writer.stats().shard_writes, 1);
    const FeatureKey key{graph_digest(adj, x), 3};
    EXPECT_TRUE(std::filesystem::exists(writer.shard_path(key)));
  }
  // A fresh store (cold memory tier) resolves from disk, bit-exact, and
  // promotes the shard into memory for the next hit.
  FeatureStore reader({.directory = dir.path});
  StoreOutcome from = StoreOutcome::kComputed;
  const core::HopFeatures warm = reader.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kDiskHit);
  EXPECT_TRUE(bit_exact(warm.stacked(), produced));
  reader.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kMemoryHit);
  EXPECT_EQ(reader.stats().computes, 0);

  // Different K coexists on disk: its own shard file, no clobbering.
  reader.get_or_compute(adj, x, 4);
  FeatureStore reader2({.directory = dir.path});
  reader2.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kDiskHit);
  reader2.get_or_compute(adj, x, 4, &from);
  EXPECT_EQ(from, StoreOutcome::kDiskHit);
  EXPECT_EQ(reader2.stats().computes, 0);
}

TEST(FeatureStore, DiskHitsAreServedByMmapAndAliasTheMapping) {
  ShardDir dir("mmap");
  Rng rng(11);
  const graph::Csr adj = path_graph(10).normalized_symmetric();
  const Tensor x = Tensor::randn({10, 4}, rng);
  Tensor produced;
  {
    FeatureStore writer({.directory = dir.path});
    produced = writer.get_or_compute(adj, x, 3).stacked();
  }
  FeatureStore reader({.directory = dir.path});
  StoreOutcome from = StoreOutcome::kComputed;
  const core::HopFeatures warm = reader.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kDiskHit);
  EXPECT_TRUE(bit_exact(warm.stacked(), produced));
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_EQ(reader.stats().mmap_reads, 1);
  // Freshly-written shards pad the header so the fp32 payload of a mapped
  // (page-aligned) shard lands on a 64-byte boundary: the decoded tensor
  // aliases the mapping instead of copying it.
  EXPECT_EQ(
      reinterpret_cast<std::uintptr_t>(warm.stacked().data()) % 64, 0u);
#endif
}

TEST(FeatureStore, UnpaddedShardStillDecodesBitExact) {
  // A shard whose header is NOT pad-aligned (e.g. written before alignment
  // padding existed) must still decode bit-exact — via the copy fallback
  // when the payload happens to be misaligned for aliasing.
  const core::HopFeatures hops = random_hops(6, 2, 3, 21);
  const FeatureKey key{1234, 2};
  std::string bytes = encode_shard(key, hops);
  // Strip the padding spaces before the newline to de-align the payload.
  const std::size_t nl = bytes.find('\n');
  ASSERT_NE(nl, std::string::npos);
  std::size_t last = nl;
  while (last > 0 && bytes[last - 1] == ' ') --last;
  bytes.erase(last, nl - last);
  std::string why;
  // An aliasing owner is offered but the payload is now misaligned relative
  // to the owner's base: decode must copy, not reject.
  auto owner = std::make_shared<std::string>(bytes);
  const auto decoded =
      decode_shard(std::string_view(*owner), key, &why, owner);
  ASSERT_TRUE(decoded.has_value()) << why;
  EXPECT_TRUE(bit_exact(decoded->stacked(), hops.stacked()));
}

TEST(FeatureStore, CorruptShardFallsBackToRecomputeAndHeals) {
  ShardDir dir("corrupt");
  Rng rng(6);
  const graph::Csr adj = path_graph(9).normalized_symmetric();
  const Tensor x = Tensor::randn({9, 4}, rng);
  const FeatureKey key{graph_digest(adj, x), 3};

  Tensor produced;
  {
    FeatureStore writer({.directory = dir.path});
    produced = writer.get_or_compute(adj, x, 3).stacked();
  }
  // Rot the shard on disk for real (not via the fault hook): flip one
  // payload byte.
  FeatureStore fs({.directory = dir.path});
  {
    std::string bytes = util::read_file(fs.shard_path(key));
    bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 1);
    util::atomic_write_file(fs.shard_path(key), bytes);
  }
  StoreOutcome from = StoreOutcome::kMemoryHit;
  const core::HopFeatures healed = fs.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kComputed);  // corruption => miss => compute
  EXPECT_TRUE(bit_exact(healed.stacked(), produced));
  EXPECT_EQ(fs.stats().corrupt_shards, 1);
  EXPECT_EQ(fs.stats().shard_writes, 1);  // the shard was rewritten

  // Self-healing: the rewritten shard now decodes for a fresh instance.
  FeatureStore fresh({.directory = dir.path});
  fresh.get_or_compute(adj, x, 3, &from);
  EXPECT_EQ(from, StoreOutcome::kDiskHit);
}

TEST(FeatureStore, InjectedReadCorruptionIsDeterministic) {
  // The fault hook corrupts exactly the scheduled read; the store recovers
  // via recompute and counts the event on its own stats and the injector's.
  ShardDir dir("inject_read");
  Rng rng(7);
  const graph::Csr adj = path_graph(7).normalized_symmetric();
  const Tensor x = Tensor::randn({7, 3}, rng);

  Tensor produced;
  {
    FeatureStore writer({.directory = dir.path});
    produced = writer.get_or_compute(adj, x, 2).stacked();
  }
  fault::Injector inj(1);
  inj.corrupt_store_read(0);
  fault::ScopedInjector scope(inj);
  FeatureStore fs({.directory = dir.path, .memory_budget_bytes = 0});
  StoreOutcome from = StoreOutcome::kMemoryHit;
  const core::HopFeatures healed = fs.get_or_compute(adj, x, 2, &from);
  EXPECT_EQ(from, StoreOutcome::kComputed);
  EXPECT_TRUE(bit_exact(healed.stacked(), produced));
  EXPECT_EQ(fs.stats().corrupt_shards, 1);
  EXPECT_EQ(inj.counts().store_shard_corruptions, 1);
  // The schedule slot is consumed: the healed shard reads clean.
  fs.get_or_compute(adj, x, 2, &from);
  EXPECT_EQ(from, StoreOutcome::kDiskHit);
}

TEST(FeatureStore, InjectedWriteFailureDegradesToMemoryOnly) {
  ShardDir dir("inject_write");
  Rng rng(8);
  const graph::Csr adj = path_graph(5).normalized_symmetric();
  const Tensor x = Tensor::randn({5, 3}, rng);
  const FeatureKey key{graph_digest(adj, x), 2};

  fault::Injector inj(2);
  inj.fail_store_write(0);
  fault::ScopedInjector scope(inj);
  FeatureStore fs({.directory = dir.path});
  StoreOutcome from = StoreOutcome::kMemoryHit;
  fs.get_or_compute(adj, x, 2, &from);
  EXPECT_EQ(from, StoreOutcome::kComputed);
  EXPECT_EQ(fs.stats().write_errors, 1);
  EXPECT_EQ(fs.stats().shard_writes, 0);
  EXPECT_FALSE(std::filesystem::exists(fs.shard_path(key)));
  EXPECT_EQ(inj.counts().store_write_errors, 1);
  // The features still serve from the memory tier — no crash, no recompute.
  fs.get_or_compute(adj, x, 2, &from);
  EXPECT_EQ(from, StoreOutcome::kMemoryHit);
}

TEST(FeatureStore, LruEvictsOldestWithinByteBudget) {
  // Budget sized for roughly two entries: the third insert evicts the
  // least-recently-used graph, and touching an entry refreshes its slot.
  const int k = 2;
  const std::int64_t d = 4;
  const std::int64_t n = 10;
  const std::size_t entry = static_cast<std::size_t>(n * (k + 1) * d) *
                                sizeof(float) +
                            128;  // payload + charged overhead
  FeatureStore fs({.directory = "", .memory_budget_bytes = 2 * entry});

  std::vector<graph::Csr> graphs;
  std::vector<Tensor> xs;
  for (int i = 0; i < 3; ++i) {
    graphs.push_back(path_graph(static_cast<int>(n)).normalized_symmetric(
        1.f + static_cast<float>(i)));  // distinct weights => distinct keys
    Rng rng(100 + i);
    xs.push_back(Tensor::randn({n, d}, rng));
  }
  fs.get_or_compute(graphs[0], xs[0], k);
  fs.get_or_compute(graphs[1], xs[1], k);
  EXPECT_EQ(fs.memory_entries(), 2u);
  // Touch graph 0 so graph 1 is the LRU victim.
  StoreOutcome from = StoreOutcome::kComputed;
  fs.get_or_compute(graphs[0], xs[0], k, &from);
  EXPECT_EQ(from, StoreOutcome::kMemoryHit);
  fs.get_or_compute(graphs[2], xs[2], k);
  EXPECT_EQ(fs.memory_entries(), 2u);
  EXPECT_EQ(fs.stats().evictions, 1);
  fs.get_or_compute(graphs[0], xs[0], k, &from);
  EXPECT_EQ(from, StoreOutcome::kMemoryHit);  // survived
  fs.get_or_compute(graphs[1], xs[1], k, &from);
  EXPECT_EQ(from, StoreOutcome::kComputed);  // evicted
  EXPECT_LE(fs.memory_bytes(), 2 * entry);
}

TEST(FeatureStore, ZeroBudgetDisablesMemoryTier) {
  ShardDir dir("zero_budget");
  Rng rng(9);
  const graph::Csr adj = path_graph(6).normalized_symmetric();
  const Tensor x = Tensor::randn({6, 3}, rng);
  FeatureStore fs({.directory = dir.path, .memory_budget_bytes = 0});
  fs.get_or_compute(adj, x, 2);
  EXPECT_EQ(fs.memory_entries(), 0u);
  StoreOutcome from = StoreOutcome::kComputed;
  fs.get_or_compute(adj, x, 2, &from);
  EXPECT_EQ(from, StoreOutcome::kDiskHit);  // every hit comes from disk
}

TEST(FeatureStore, StatsSignatureIsDeterministic) {
  auto run_once = [] {
    Rng rng(10);
    const graph::Csr adj = path_graph(8).normalized_symmetric();
    const Tensor x = Tensor::randn({8, 3}, rng);
    FeatureStore fs({.directory = ""});
    fs.get_or_compute(adj, x, 3);
    fs.get_or_compute(adj, x, 3);
    fs.get_or_compute(adj, x, 4);  // config mismatch
    return fs.stats().counts_signature();
  };
  const std::string sig = run_once();
  EXPECT_EQ(sig, run_once());
  EXPECT_EQ(sig,
            "lookups=3 memory_hits=1 disk_hits=0 misses=2 "
            "config_mismatches=1 computes=2 shard_writes=0 write_errors=0 "
            "corrupt_shards=0 evictions=0 negative_hits=0 "
            "shard_evictions=0 mmap_reads=0 lease_holds=0 lease_waits=0 "
            "lease_takeovers=0");
}

#if defined(__unix__) || defined(__APPLE__)
TEST(FeatureStore, ForkedProcessesShareOneLeasedCompute) {
  // Two real processes race get_or_compute on the same key over the same
  // shard directory with cross-process compute leases on. The flock lease
  // serializes the compute: exactly ONE process runs phase-1, the other
  // either waits on the lease and reads the shard or arrives late to a
  // plain disk hit — and both end up with bit-exact features.
  ShardDir dir("forked_lease");
  Rng rng(17);
  const graph::Csr adj = path_graph(24).normalized_symmetric();
  const Tensor x = Tensor::randn({24, 4}, rng);
  const int k = 3;
  const Tensor reference = core::HopFeatures::compute(adj, x, k).stacked();

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: exit code encodes its outcome (compute vs read), or 1 on a
    // wrong answer — the parent folds it into the one-compute assertion.
    FeatureStore child({.directory = dir.path, .cross_process_leases = true});
    StoreOutcome from = StoreOutcome::kMemoryHit;
    const core::HopFeatures got = child.get_or_compute(adj, x, k, &from);
    if (!bit_exact(got.stacked(), reference)) _exit(1);
    _exit(from == StoreOutcome::kComputed ? 10 : 11);
  }
  FeatureStore parent({.directory = dir.path, .cross_process_leases = true});
  StoreOutcome from = StoreOutcome::kMemoryHit;
  const core::HopFeatures got = parent.get_or_compute(adj, x, k, &from);
  EXPECT_TRUE(bit_exact(got.stacked(), reference));

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  const int child_code = WEXITSTATUS(status);
  ASSERT_NE(child_code, 1) << "child read wrong feature bytes";
  const int computes = (from == StoreOutcome::kComputed ? 1 : 0) +
                       (child_code == 10 ? 1 : 0);
  EXPECT_EQ(computes, 1) << "the lease must serialize phase-1 to one runner";

  // One shard on disk, no lease or staging residue.
  std::size_t shards = 0, residue = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.substr(name.size() - 5) == ".feat") {
      ++shards;
    } else if (name.find(".tmp") != std::string::npos) {
      ++residue;
    }
  }
  EXPECT_EQ(shards, 1u);
  EXPECT_EQ(residue, 0u);
}
#endif

}  // namespace
}  // namespace hoga::store
