// Property-based sweeps across random circuits: invariants that must hold
// for ANY input, exercised with randomized structures. These complement the
// per-module unit tests by hitting interactions the hand-written cases
// miss (random AIGs through every synthesis pass, the mapper, the labeler,
// AIGER round-trips, hop-feature algebra).

#include <gtest/gtest.h>

#include <set>

#include "aig/aiger.hpp"
#include "aig/simulate.hpp"
#include "circuits/multipliers.hpp"
#include "core/hop_features.hpp"
#include "fault/fault.hpp"
#include "tensor/ops.hpp"
#include "reasoning/features.hpp"
#include "reasoning/labels.hpp"
#include "synth/rebuild.hpp"
#include "synth/recipe.hpp"
#include "synth/techmap.hpp"
#include "util/rng.hpp"
#include "validate/validate.hpp"

namespace hoga {
namespace {

// Random AIG with `gates` AND nodes over `inputs` PIs (plus random POs).
aig::Aig random_aig(std::uint64_t seed, int inputs, int gates) {
  Rng rng(seed);
  aig::Aig g;
  std::vector<aig::Lit> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < gates; ++i) {
    const aig::Lit a = aig::lit_not_if(pool[rng.uniform_int(pool.size())],
                                       rng.bernoulli(0.5));
    const aig::Lit b = aig::lit_not_if(pool[rng.uniform_int(pool.size())],
                                       rng.bernoulli(0.5));
    pool.push_back(g.add_and(a, b));
  }
  const int pos = 1 + static_cast<int>(rng.uniform_int(4));
  for (int i = 0; i < pos; ++i) {
    g.add_po(aig::lit_not_if(pool[pool.size() - 1 - rng.uniform_int(8)],
                             rng.bernoulli(0.5)));
  }
  return g;
}

class RandomCircuitSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitSweep, EveryPassPreservesFunction) {
  const aig::Aig g = random_aig(GetParam(), 8, 60);
  for (int p = 0; p < synth::kNumPassKinds; ++p) {
    const aig::Aig out = synth::apply_pass(g, static_cast<synth::Pass>(p));
    EXPECT_TRUE(aig::exhaustive_equivalent(g, out))
        << "seed " << GetParam() << " pass "
        << synth::pass_name(static_cast<synth::Pass>(p));
  }
}

TEST_P(RandomCircuitSweep, TechMapPreservesFunction) {
  const aig::Aig g = random_aig(GetParam() ^ 0x1234, 7, 50);
  for (int k : {3, 4, 5}) {
    const aig::Aig mapped =
        synth::tech_map(g, {.lut_size = k, .max_cuts = 6,
                            .seed = GetParam()});
    EXPECT_TRUE(aig::exhaustive_equivalent(g, mapped))
        << "seed " << GetParam() << " k=" << k;
  }
}

TEST_P(RandomCircuitSweep, RandomRecipePreservesFunction) {
  const aig::Aig g = random_aig(GetParam() ^ 0x9999, 8, 70);
  Rng rng(GetParam());
  const auto recipe = synth::Recipe::random(rng, 6);
  const auto result = synth::run_recipe(g, recipe);
  EXPECT_TRUE(aig::exhaustive_equivalent(g, result.optimized))
      << "seed " << GetParam() << " recipe " << recipe.to_string();
  // Optimized network has no dead logic.
  EXPECT_EQ(result.optimized.num_ands(), result.optimized.num_live_ands());
}

TEST_P(RandomCircuitSweep, AigerRoundTrip) {
  const aig::Aig g = random_aig(GetParam() ^ 0x4242, 6, 40);
  const std::string text = aig::write_aiger(g);
  const aig::Aig parsed = aig::read_aiger(text);
  EXPECT_TRUE(aig::exhaustive_equivalent(g, parsed)) << GetParam();
  // Interface shape survives the round trip exactly.
  EXPECT_EQ(parsed.num_pis(), g.num_pis()) << GetParam();
  EXPECT_EQ(parsed.num_pos(), g.num_pos()) << GetParam();
  // One round trip canonicalizes the numbering; after that the text is a
  // fixed point of write(read(.)).
  EXPECT_EQ(aig::write_aiger(aig::read_aiger(text)), text) << GetParam();
}

TEST_P(RandomCircuitSweep, RandomAigsPassStructuralValidation) {
  // Builder-produced AIGs are well-formed by construction, so check_aig
  // must accept every one of them — and reject the same graph once the
  // node-count cap is below its size.
  const aig::Aig g = random_aig(GetParam() ^ 0x5151, 7, 50);
  EXPECT_FALSE(validate::check_aig(g).has_value()) << GetParam();
  const auto capped = validate::check_aig(g, g.num_nodes() - 1);
  ASSERT_TRUE(capped.has_value()) << GetParam();
  EXPECT_NE(capped->find("cap"), std::string::npos) << *capped;
}

TEST_P(RandomCircuitSweep, LabelsAreInvariantUnderStrash) {
  // Strash with DCE may drop nodes, but classes of surviving live nodes
  // must be consistent: counts of each root class on the strashed network
  // are computed from the same functions.
  const aig::Aig g = random_aig(GetParam() ^ 0x7777, 8, 60);
  const aig::Aig s = synth::strash(g);
  const auto labels = reasoning::functional_labels(s);
  const auto hist = reasoning::class_histogram(labels);
  EXPECT_EQ(hist[0] + hist[1] + hist[2] + hist[3], s.num_nodes());
  // Labeling twice gives identical results (determinism).
  const auto labels2 = reasoning::functional_labels(s);
  EXPECT_EQ(labels, labels2);
}

TEST_P(RandomCircuitSweep, HopFeatureLinearity) {
  // HopFeatures is linear in X: hops(A, x1 + x2) == hops(A, x1) +
  // hops(A, x2) elementwise.
  const aig::Aig g = random_aig(GetParam() ^ 0xabc, 6, 40);
  const graph::Csr adj =
      reasoning::to_graph(g).normalized_symmetric(0.f);
  Rng rng(GetParam());
  const Tensor x1 = Tensor::randn({g.num_nodes(), 3}, rng);
  const Tensor x2 = Tensor::randn({g.num_nodes(), 3}, rng);
  const auto h1 = core::HopFeatures::compute(adj, x1, 3);
  const auto h2 = core::HopFeatures::compute(adj, x2, 3);
  const auto hsum =
      core::HopFeatures::compute(adj, tensor_ops::add(x1, x2), 3);
  EXPECT_TRUE(Tensor::allclose(
      hsum.stacked(), tensor_ops::add(h1.stacked(), h2.stacked()), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class FaultScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultScheduleSweep, NthAttemptFiresExactlyOnceAtTheRightIndex) {
  // Property: for ANY random schedule, an nth-attempt fault fires on
  // exactly the scheduled attempt indices, exactly once each — querying
  // past the schedule (a healed retry) never re-fires.
  Rng rng(GetParam());
  const int attempts = 30;
  std::set<int> scheduled;
  const int n_faults = 1 + static_cast<int>(rng.uniform_int(6));
  while (static_cast<int>(scheduled.size()) < n_faults) {
    scheduled.insert(static_cast<int>(rng.uniform_int(attempts)));
  }

  fault::Injector inj(GetParam());
  for (int nth : scheduled) {
    inj.fail_checkpoint_write(nth);
    inj.fail_checkpoint_read(nth);
    inj.corrupt_gradient_step(nth);
    inj.poison_request(nth);
    inj.delay_request(nth, 1.5);
    inj.stall_queue(nth, 2.5);
  }
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const bool expect = scheduled.count(attempt) > 0;
    EXPECT_EQ(inj.checkpoint_write_should_fail(), expect) << attempt;
    EXPECT_EQ(inj.checkpoint_read_should_fail(), expect) << attempt;
    EXPECT_EQ(inj.gradient_should_corrupt(), expect) << attempt;
    EXPECT_EQ(inj.request_should_poison(), expect) << attempt;
    EXPECT_EQ(inj.request_delay_ms(), expect ? 1.5 : 0.0) << attempt;
    EXPECT_EQ(inj.queue_stall_ms(), expect ? 2.5 : 0.0) << attempt;
  }
  const auto& counts = inj.counts();
  EXPECT_EQ(counts.checkpoint_write_errors, n_faults);
  EXPECT_EQ(counts.checkpoint_read_errors, n_faults);
  EXPECT_EQ(counts.gradient_corruptions, n_faults);
  EXPECT_EQ(counts.poisoned_requests, n_faults);
  EXPECT_EQ(counts.slow_requests, n_faults);
  EXPECT_EQ(counts.queue_stalls, n_faults);
}

TEST_P(FaultScheduleSweep, ConsumedFaultsDoNotSurviveRescheduling) {
  // Re-arming the same index after it fired makes it fire again — the
  // consume-once semantics apply per schedule entry, not per index forever.
  fault::Injector inj(GetParam());
  inj.poison_request(0);
  EXPECT_TRUE(inj.request_should_poison());   // submitted request 0
  EXPECT_FALSE(inj.request_should_poison());  // request 1: nothing armed
  inj.poison_request(2);
  EXPECT_TRUE(inj.request_should_poison());   // request 2: re-armed
  EXPECT_EQ(inj.counts().poisoned_requests, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScheduleSweep,
                         ::testing::Values(101, 202, 303, 404));

// Passes never *increase* live gate count (except the explicitly
// perturbation-oriented zero-cost variants and balance, which trades area
// for depth).
TEST(SynthesisProperties, SizeMonotonicityOfGreedyPasses) {
  for (std::uint64_t seed : {3u, 5u, 7u}) {
    const aig::Aig g = synth::strash(random_aig(seed, 8, 80));
    for (synth::Pass p : {synth::Pass::kRewrite, synth::Pass::kRefactor,
                          synth::Pass::kResub, synth::Pass::kStrash}) {
      const aig::Aig out = synth::apply_pass(g, p);
      EXPECT_LE(out.num_ands(), g.num_ands())
          << synth::pass_name(p) << " seed " << seed;
    }
  }
}

TEST(SynthesisProperties, RecipeCountsAreMonotonicallyTracked) {
  const aig::Aig g = random_aig(13, 8, 70);
  const auto result = synth::run_recipe(g, synth::Recipe::resyn2());
  ASSERT_EQ(result.and_counts.size(), 10u);
  for (std::int64_t c : result.and_counts) EXPECT_GE(c, 0);
}

TEST(MultiplierProperties, CommutativityOfOperands) {
  // a*b == b*a realized by the circuit: swap operand halves of the input.
  const auto lc = circuits::make_booth_multiplier(5);
  Rng rng(5);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t a = rng.uniform_int(32);
    const std::uint64_t b = rng.uniform_int(32);
    EXPECT_EQ(aig::evaluate(lc.aig, a | (b << 5)),
              aig::evaluate(lc.aig, b | (a << 5)));
  }
}

TEST(MultiplierProperties, IdentityAndZero) {
  for (const char* family : {"csa", "booth"}) {
    const auto lc = std::string(family) == "csa"
                        ? circuits::make_csa_multiplier(6)
                        : circuits::make_booth_multiplier(6);
    for (std::uint64_t x = 0; x < 64; x += 7) {
      EXPECT_EQ(aig::evaluate(lc.aig, x | (0ull << 6)), 0u) << family;
      EXPECT_EQ(aig::evaluate(lc.aig, x | (1ull << 6)), x) << family;
    }
  }
}

}  // namespace
}  // namespace hoga
