// Storage-engine tests (DESIGN.md §12): the crash-safe durable write
// primitive under a kill-point sweep, CRC-framed records, the segmented
// ledger's rotation/compaction/recovery story (including the torn tail at a
// rotation boundary), and the CRC scrubber's quarantine flow.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "fault/fault.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "storage/scrubber.hpp"
#include "storage/segmented_ledger.hpp"
#include "storage/storage.hpp"
#include "util/io.hpp"

namespace hoga::storage {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) : path("/tmp/hoga_test_" + name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const { return path + "/" + name; }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// -- atomic_write_durable ----------------------------------------------------

TEST(AtomicWriteDurable, ReplacesContentAndLeavesNoTemp) {
  TempDir dir("awd_basic");
  const std::string target = dir.file("blob");
  atomic_write_durable(target, "first");
  EXPECT_EQ(slurp(target), "first");
  atomic_write_durable(target, "second");
  EXPECT_EQ(slurp(target), "second");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST(AtomicWriteDurable, KillSweepAlwaysLeavesACompleteFile) {
  TempDir dir("awd_sweep");
  const std::string target = dir.file("blob");
  // The four boundaries of one durable write, in crossing order. A crash at
  // or after the rename must expose the new content; before it, the old.
  const char* points[] = {"storage.temp_written", "storage.temp_synced",
                          "storage.renamed", "storage.dir_synced"};
  for (int nth = 0; nth < 4; ++nth) {
    atomic_write_durable(target, "old-complete");
    fault::Injector inj(1);
    inj.kill_at_storage_point(nth);
    bool crashed = false;
    {
      fault::ScopedInjector scope(inj);
      try {
        atomic_write_durable(target, "new-complete");
      } catch (const fault::SimulatedCrash& crash) {
        crashed = true;
        EXPECT_EQ(crash.point(), points[nth]) << "boundary " << nth;
      }
    }
    ASSERT_TRUE(crashed) << "boundary " << nth;
    EXPECT_EQ(inj.counts().storage_kills, 1);
    const std::string after = slurp(target);
    if (nth < 2) {
      EXPECT_EQ(after, "old-complete") << "boundary " << nth;
    } else {
      EXPECT_EQ(after, "new-complete") << "boundary " << nth;
    }
    // Recovery is just the next write: it must land cleanly over whatever
    // the crash left (including a stale .tmp).
    atomic_write_durable(target, "recovered");
    EXPECT_EQ(slurp(target), "recovered");
    EXPECT_FALSE(fs::exists(target + ".tmp"));
  }
}

TEST(AtomicWriteDurable, InjectedEnospcRollsBackCleanly) {
  TempDir dir("awd_enospc");
  const std::string target = dir.file("blob");
  atomic_write_durable(target, "old-complete");
  fault::Injector inj(1);
  inj.fail_storage_write(0);
  {
    fault::ScopedInjector scope(inj);
    EXPECT_THROW(atomic_write_durable(target, "new"), std::runtime_error);
  }
  EXPECT_EQ(inj.counts().storage_write_errors, 1);
  EXPECT_EQ(slurp(target), "old-complete");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST(AtomicWriteDurable, TornWriteDiesWithOldContentIntact) {
  TempDir dir("awd_torn");
  const std::string target = dir.file("blob");
  atomic_write_durable(target, "old-complete");
  fault::Injector inj(1);
  inj.tear_storage_write(0, 0.5);
  {
    fault::ScopedInjector scope(inj);
    EXPECT_THROW(atomic_write_durable(target, "new-complete-payload"),
                 fault::SimulatedCrash);
  }
  EXPECT_EQ(inj.counts().storage_torn_writes, 1);
  // The destination never saw the torn bytes — they stopped in the temp.
  EXPECT_EQ(slurp(target), "old-complete");
  const std::string torn = slurp(target + ".tmp");
  EXPECT_EQ(torn, std::string("new-complete-payload").substr(0, torn.size()));
  EXPECT_LT(torn.size(), std::string("new-complete-payload").size());
  // Recovery overwrites the torn temp.
  atomic_write_durable(target, "recovered");
  EXPECT_EQ(slurp(target), "recovered");
}

// -- CRC frames --------------------------------------------------------------

TEST(FramedRecords, RoundTripAndTamperRejection) {
  const std::string payload = "snapshot body\nwith newlines\n";
  std::string framed = encode_framed(payload);
  std::string why;
  auto decoded = decode_framed(framed, &why);
  ASSERT_TRUE(decoded.has_value()) << why;
  EXPECT_EQ(*decoded, payload);

  // One flipped payload byte fails the CRC.
  std::string tampered = framed;
  tampered[framed.size() - 3] ^= 0x01;
  EXPECT_FALSE(decode_framed(tampered, &why).has_value());
  EXPECT_NE(why.find("CRC"), std::string::npos);

  // Truncation fails the size check.
  EXPECT_FALSE(
      decode_framed(std::string_view(framed).substr(0, framed.size() - 1), &why)
          .has_value());

  // Wrong magic is recognized as "not a frame", not a crash.
  EXPECT_FALSE(decode_framed("hoga-other v1 3 0\nabc", &why).has_value());
}

// -- verify_file_integrity ---------------------------------------------------

TEST(VerifyFileIntegrity, ClassifiesAllArtifactFamilies) {
  TempDir dir("verify");
  std::string why;

  // A framed snapshot round-trips as kOk and fails after a byte flip.
  const std::string snap = dir.file("ledger.snap");
  atomic_write_durable(snap, encode_framed("{\"type\":\"ledger.snapshot\"}\n"));
  EXPECT_EQ(verify_file_integrity(snap, &why), FileIntegrity::kOk) << why;
  {
    std::string bytes = slurp(snap);
    bytes[bytes.size() - 2] ^= 0x01;
    atomic_write_durable(snap, bytes);
  }
  EXPECT_EQ(verify_file_integrity(snap, &why), FileIntegrity::kCorrupt);

  // A header-CRC file (same convention as hoga-feat/hoga-ckpt) by magic
  // sniff, without a routing extension.
  const std::string ckpt = dir.file("model_ckpt");
  atomic_write_durable(ckpt, encode_framed("payload"));
  EXPECT_EQ(verify_file_integrity(ckpt, &why), FileIntegrity::kOk) << why;

  // Ledger segments: complete lines are kOk; a torn final line is still kOk
  // (recoverable crash residue); garbage mid-file is kCorrupt.
  const std::string seg = dir.file("ledger.000001.seg");
  atomic_write_durable(seg,
                       "{\"seq\":0,\"ts_ns\":1,\"type\":\"a\"}\n"
                       "{\"seq\":1,\"ts_ns\":2,\"type\":\"b\"}\n");
  EXPECT_EQ(verify_file_integrity(seg, &why), FileIntegrity::kOk) << why;
  atomic_write_durable(seg,
                       "{\"seq\":0,\"ts_ns\":1,\"type\":\"a\"}\n"
                       "{\"seq\":1,\"ts_n");  // torn tail, no newline
  EXPECT_EQ(verify_file_integrity(seg, &why), FileIntegrity::kOk);
  EXPECT_NE(why.find("torn"), std::string::npos);
  atomic_write_durable(seg,
                       "not json at all\n"
                       "{\"seq\":1,\"ts_ns\":2,\"type\":\"b\"}\n");
  EXPECT_EQ(verify_file_integrity(seg, &why), FileIntegrity::kCorrupt);

  // Unknown formats are unrecognized, not corrupt.
  const std::string other = dir.file("notes.txt");
  atomic_write_durable(other, "plain text\n");
  EXPECT_EQ(verify_file_integrity(other, &why), FileIntegrity::kUnrecognized);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(AtomicWrite, TwoProcessRaceIsLastWriterWinsNeverTorn) {
  // Two real processes hammer the SAME destination path with different
  // recognizable payloads. The pid-suffixed temp files keep the racers off
  // each other's staging files, and the atomic rename keeps every observable
  // state a complete CRC-valid generation: a reader may see either writer's
  // payload at any moment, but never a mix, never a torn tail.
  TempDir dir("atomic_race");
  const std::string target = dir.file("contended.bin");
  const int kRounds = 40;
  const std::string parent_payload(4096, 'P');
  const std::string child_payload(4096, 'C');

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: write its generation repeatedly, then exit 0.
    for (int i = 0; i < kRounds; ++i) {
      atomic_write_durable(target, encode_framed(child_payload));
    }
    _exit(0);
  }
  int torn_reads = 0;
  for (int i = 0; i < kRounds; ++i) {
    atomic_write_durable(target, encode_framed(parent_payload));
    // Race a read against the child's writes: whole generations only.
    const std::string seen = slurp(target);
    if (!seen.empty()) {
      const auto decoded = decode_framed(seen);
      if (!decoded || (*decoded != parent_payload &&
                       *decoded != child_payload)) {
        ++torn_reads;
      }
    }
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(torn_reads, 0);

  // Last writer wins with the file whole: the final bytes are exactly one
  // racer's complete framed payload, and no staging residue survives.
  const auto last = decode_framed(slurp(target));
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(*last == parent_payload || *last == child_payload);
  std::size_t residue = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().filename().string().find(".tmp") != std::string::npos) {
      ++residue;
    }
  }
  EXPECT_EQ(residue, 0u);
}
#endif

// -- SegmentedLedger ---------------------------------------------------------

SegmentedLedgerConfig small_ledger(const TempDir& dir, obs::Clock* clock,
                                   std::size_t seg_bytes = 256,
                                   std::size_t max_closed = 0) {
  SegmentedLedgerConfig cfg;
  cfg.directory = dir.path;
  cfg.max_segment_bytes = seg_bytes;
  cfg.max_closed_segments = max_closed;
  cfg.clock = clock;
  return cfg;
}

TEST(SegmentedLedger, RollsSegmentsAndChainsFooters) {
  TempDir dir("segled_roll");
  obs::FakeClock clk(1000, 10);
  SegmentedLedger ledger(small_ledger(dir, &clk));
  const int kEvents = 40;
  for (int i = 0; i < kEvents; ++i) {
    ledger.event("soak.tick", {{"i", i}});
  }
  ledger.close();
  EXPECT_GT(ledger.stats().rolls, 1);
  EXPECT_EQ(ledger.stats().events, kEvents);

  const auto read = SegmentedLedger::read_dir(dir.path);
  EXPECT_TRUE(read.chain_valid);
  EXPECT_GT(read.segments, 1u);
  EXPECT_EQ(read.torn_segments, 0u);
  ASSERT_EQ(read.total_events(), kEvents);
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(read.events[i].seq, i);
    EXPECT_EQ(read.events[i].int_field("i"), i);
  }

  // Every segment file individually passes integrity verification.
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::string why;
    EXPECT_EQ(verify_file_integrity(entry.path().string(), &why),
              FileIntegrity::kOk)
        << entry.path() << ": " << why;
  }
}

TEST(SegmentedLedger, CompactionBoundsFileCountAndConservesEvents) {
  TempDir dir("segled_compact");
  obs::FakeClock clk(1000, 10);
  SegmentedLedger ledger(small_ledger(dir, &clk, 256, /*max_closed=*/2));
  const int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    ledger.event(i % 3 == 0 ? "soak.write" : "soak.tick", {{"i", i}});
  }
  EXPECT_GT(ledger.stats().compactions, 0);
  EXPECT_GT(ledger.stats().folded_events, 0);
  // Bounded residency: snapshot + closed cap + active.
  EXPECT_LE(ledger.file_count(), 4u);
  std::size_t on_disk = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++on_disk;
  }
  EXPECT_LE(on_disk, 4u);
  ledger.close();

  // Nothing was lost to rotation or compaction: folded + live == appended,
  // and the per-type fold counts add up.
  const auto read = SegmentedLedger::read_dir(dir.path);
  EXPECT_TRUE(read.snapshot_present);
  EXPECT_TRUE(read.chain_valid);
  EXPECT_EQ(read.total_events(), kEvents);
  long long folded_by_type = 0;
  for (const auto& [type, n] : read.folded_by_type) {
    EXPECT_TRUE(type == "soak.write" || type == "soak.tick");
    folded_by_type += n;
  }
  EXPECT_EQ(folded_by_type, read.folded_events);
  // Live events resume exactly after the folded prefix.
  if (!read.events.empty()) {
    EXPECT_EQ(read.events.front().seq, read.folded_events);
    EXPECT_EQ(read.events.back().seq, kEvents - 1);
  }
}

// The rotation-boundary satellite test: kill between segment roll and
// footer write, then prove the prior segment's events survive recovery.
TEST(SegmentedLedger, TornTailAcrossRotationBoundaryRecovers) {
  TempDir dir("segled_torn_roll");
  obs::FakeClock clk(1000, 10);
  fault::Injector inj(1);
  inj.kill_at_storage_point(0);  // first boundary crossed = first roll's
                                 // "ledger.rolled" (no compaction configured)
  int appended = 0;
  bool crashed = false;
  {
    fault::ScopedInjector scope(inj);
    SegmentedLedger ledger(small_ledger(dir, &clk));
    try {
      for (int i = 0; i < 40; ++i) {
        ledger.event("soak.tick", {{"i", i}});
        ++appended;
      }
    } catch (const fault::SimulatedCrash& crash) {
      crashed = true;  // the event that triggered the roll died unappended
      EXPECT_EQ(crash.point(), "ledger.rolled");
    }
    ASSERT_TRUE(crashed);
    // The poisoned ledger is frozen: further events and even destruction
    // must not touch the disk (the process is "dead").
    ledger.event("soak.after_death", {});
    EXPECT_EQ(ledger.stats().events, appended);
  }

  // The crash landed between opening segment 2 and footering segment 1:
  // segment 1 holds every appended event but no footer.
  auto read = SegmentedLedger::read_dir(dir.path);
  EXPECT_EQ(read.total_events(), appended);
  EXPECT_GE(read.torn_segments, 1u);
  for (int i = 0; i < appended; ++i) EXPECT_EQ(read.events[i].seq, i);

  // Recovery: a fresh instance re-footers the torn segment, resumes the
  // seq, and the final directory reads back with a valid chain.
  {
    SegmentedLedger recovered(small_ledger(dir, &clk));
    EXPECT_GE(recovered.stats().repaired_segments, 1);
    EXPECT_EQ(recovered.next_seq(), appended);
    for (int i = 0; i < 5; ++i) {
      recovered.event("soak.recovered", {{"i", i}});
    }
    recovered.close();
  }
  read = SegmentedLedger::read_dir(dir.path);
  EXPECT_TRUE(read.chain_valid);
  EXPECT_EQ(read.torn_segments, 0u);
  ASSERT_EQ(read.total_events(), appended + 5);
  for (std::size_t i = 0; i < read.events.size(); ++i) {
    EXPECT_EQ(read.events[i].seq, static_cast<long long>(i));
  }
  EXPECT_EQ(read.events.back().type, "soak.recovered");
}

TEST(SegmentedLedger, InjectedEnospcDropsEventAndKeepsGoing) {
  TempDir dir("segled_enospc");
  obs::FakeClock clk(1000, 10);
  fault::Injector inj(1);
  inj.fail_storage_write(2);  // third append dies
  fault::ScopedInjector scope(inj);
  SegmentedLedger ledger(small_ledger(dir, &clk, /*seg_bytes=*/1 << 20));
  for (int i = 0; i < 10; ++i) {
    ledger.event("soak.tick", {{"i", i}});
  }
  ledger.close();
  EXPECT_EQ(ledger.stats().append_errors, 1);
  EXPECT_EQ(inj.counts().storage_write_errors, 1);
  const auto read = SegmentedLedger::read_dir(dir.path);
  EXPECT_TRUE(read.chain_valid);
  // Nine events landed. The dropped event's seq was reused by its successor
  // (its line never reached the file), so the surviving stream is still
  // contiguous and duplicate-free — never torn or reordered.
  EXPECT_EQ(read.total_events(), 9);
  std::set<long long> seqs;
  for (const auto& e : read.events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), read.events.size());
  EXPECT_EQ(read.events.front().seq, 0);
  EXPECT_EQ(read.events.back().seq, 8);
}

TEST(SegmentedLedger, ServesAsAmbientLedgerSink) {
  TempDir dir("segled_ambient");
  obs::FakeClock clk(1000, 10);
  SegmentedLedger ledger(small_ledger(dir, &clk, /*seg_bytes=*/1 << 20));
  {
    obs::Observability ctx;
    ctx.ledger = &ledger;
    obs::ScopedObservability scope(ctx);
    obs::ledger_event("ambient.test", {{"ok", true}});
  }
  ledger.close();
  const auto read = SegmentedLedger::read_dir(dir.path);
  ASSERT_EQ(read.total_events(), 1);
  EXPECT_EQ(read.events[0].type, "ambient.test");
}

TEST(SegmentedLedger, CountsByTypeMatchNeverCompactedLedger) {
  // Same scripted event stream into two ledgers: one rolling and compacting
  // aggressively, one never compacting. The snapshot-aware analytics must
  // report identical per-type counts for both — folding segments into the
  // snapshot conserves the answer exactly.
  TempDir tight_dir("segled_counts_tight");
  TempDir plain_dir("segled_counts_plain");
  obs::FakeClock clk(1000, 10);
  const char* kTypes[] = {"serve.request", "train.step", "storage.scrub"};
  const int kEvents = 120;
  auto feed = [&](SegmentedLedger& ledger, int from, int to) {
    for (int i = from; i < to; ++i) {
      ledger.event(kTypes[i % 3], {{"i", i}});
    }
  };
  {
    SegmentedLedger tight(
        small_ledger(tight_dir, &clk, /*seg_bytes=*/256, /*max_closed=*/1));
    SegmentedLedger plain(
        small_ledger(plain_dir, &clk, /*seg_bytes=*/1 << 20));
    feed(tight, 0, kEvents);
    feed(plain, 0, kEvents);
    ASSERT_GT(tight.stats().compactions, 0);
    // The live-instance query answers from memory and already agrees.
    EXPECT_EQ(tight.counts_by_type(), plain.counts_by_type());
    tight.close();
    plain.close();
  }
  const auto compacted = SegmentedLedger::read_dir(tight_dir.path);
  const auto flat = SegmentedLedger::read_dir(plain_dir.path);
  ASSERT_TRUE(compacted.snapshot_present);
  ASSERT_GT(compacted.folded_events, 0);
  ASSERT_FALSE(flat.snapshot_present);
  EXPECT_TRUE(compacted.chain_valid);
  using Counts = std::vector<std::pair<std::string, long long>>;
  const Counts expect = {{"serve.request", 40},
                         {"storage.scrub", 40},
                         {"train.step", 40}};
  EXPECT_EQ(compacted.counts_by_type(), expect);
  EXPECT_EQ(flat.counts_by_type(), expect);
  EXPECT_EQ(compacted.total_events(), kEvents);

  // Reopen the compacted directory: recovery seeds the in-memory tally
  // from the snapshot plus surviving segments, and appending extends it.
  {
    SegmentedLedger again(
        small_ledger(tight_dir, &clk, /*seg_bytes=*/256, /*max_closed=*/1));
    EXPECT_EQ(again.counts_by_type(), expect);
    feed(again, kEvents, kEvents + 3);  // one more of each type
    Counts grown = expect;
    for (auto& [type, n] : grown) ++n;
    EXPECT_EQ(again.counts_by_type(), grown);
    again.close();
    EXPECT_EQ(SegmentedLedger::read_dir(tight_dir.path).counts_by_type(),
              grown);
  }
}

// -- Scrubber ----------------------------------------------------------------

TEST(Scrubber, QuarantinesCorruptFilesAndCountsTheRest) {
  TempDir dir("scrub");
  // Clean framed blob, clean segment, corrupt shard-style file, unknown.
  atomic_write_durable(dir.file("ok.snap"), encode_framed("payload"));
  atomic_write_durable(dir.file("ledger.000001.seg"),
                       "{\"seq\":0,\"ts_ns\":1,\"type\":\"a\"}\n");
  atomic_write_durable(dir.file("rotted.feat"),
                       "hoga-feat v1 5 deadbeef\nhello");
  atomic_write_durable(dir.file("notes.txt"), "plain\n");

  obs::MetricsRegistry reg;
  TempDir ledger_dir("scrub_ledger");
  obs::FakeClock clk(1000, 10);
  SegmentedLedger audit(
      {.directory = ledger_dir.path, .clock = &clk});
  obs::Observability ctx;
  ctx.metrics = &reg;
  ctx.ledger = &audit;
  obs::ScopedObservability scope(ctx);

  ScrubConfig cfg;
  cfg.directories = {dir.path, "/tmp/hoga_test_scrub_missing_dir"};
  Scrubber scrubber(cfg);
  scrubber.scrub_pass();

  const ScrubStats stats = scrubber.stats();
  EXPECT_EQ(stats.passes, 1);
  EXPECT_EQ(stats.files_scanned, 4);
  EXPECT_EQ(stats.clean, 2);
  EXPECT_EQ(stats.corrupt, 1);
  EXPECT_EQ(stats.quarantined, 1);
  EXPECT_EQ(stats.unrecognized, 1);
  EXPECT_EQ(reg.counter("storage.scrub_corrupt").value(), 1);

  // The corrupt file moved aside — consumers now get a loud absence (and
  // the feature store heals one by recomputing the shard).
  EXPECT_FALSE(fs::exists(dir.file("rotted.feat")));
  EXPECT_TRUE(fs::exists(dir.file("rotted.feat.quarantine")));

  // The quarantine action is on the audit ledger.
  audit.close();
  const auto read = SegmentedLedger::read_dir(ledger_dir.path);
  ASSERT_EQ(read.total_events(), 1);
  EXPECT_EQ(read.events[0].type, "storage.quarantine");
  EXPECT_NE(read.events[0].string_field("path").find("rotted.feat"),
            std::string::npos);

  // A second pass skips the quarantined file entirely.
  scrubber.scrub_pass();
  const ScrubStats again = scrubber.stats();
  EXPECT_EQ(again.passes, 2);
  EXPECT_EQ(again.files_scanned, 7);  // 3 remaining files re-scanned
  EXPECT_EQ(again.corrupt, 1);        // unchanged
}

TEST(Scrubber, ByteBudgetSpreadsAPassAcrossTicks) {
  TempDir dir("scrub_budget");
  for (int i = 0; i < 4; ++i) {
    atomic_write_durable(dir.file("blob" + std::to_string(i) + ".snap"),
                         encode_framed("payload-" + std::to_string(i)));
  }
  ScrubConfig cfg;
  cfg.directories = {dir.path};
  cfg.budget_bytes_per_tick = 1;  // every file overshoots: one file per tick
  Scrubber scrubber(cfg);
  for (int tick = 0; tick < 4; ++tick) {
    EXPECT_EQ(scrubber.tick(), 1u);
  }
  const ScrubStats stats = scrubber.stats();
  EXPECT_EQ(stats.files_scanned, 4);
  EXPECT_EQ(stats.clean, 4);
  EXPECT_EQ(stats.passes, 1);  // the queue drained exactly at the 4th tick
}

}  // namespace
}  // namespace hoga::storage
