// Truth-table manipulation, ISOP synthesis, and cut enumeration tests,
// including property sweeps over random functions.

#include <gtest/gtest.h>

#include "aig/cuts.hpp"
#include "aig/simulate.hpp"
#include "aig/truth.hpp"
#include "synth/isop.hpp"
#include "util/rng.hpp"

namespace hoga::aig {
namespace {

TEST(Truth, VarProjections) {
  // Over 2 vars: x0 = 0b1010, x1 = 0b1100.
  EXPECT_EQ(tt_var(0) & tt_mask(2), 0xAull);
  EXPECT_EQ(tt_var(1) & tt_mask(2), 0xCull);
}

TEST(Truth, MaskAndNot) {
  EXPECT_EQ(tt_mask(3), 0xFFull);
  EXPECT_EQ(tt_not(0xF0ull, 3), 0x0Full);
  EXPECT_TRUE(tt_equal(0xFFull | (1ull << 60), 0xFFull, 3));
}

TEST(Truth, FlipInputSwapsCofactors) {
  const Tt f = tt_var(0) & tt_var(1);  // AND over 2 vars = 0b1000
  const Tt flipped = tt_flip_input(f, 0);  // !x0 & x1 = 0b0100
  EXPECT_TRUE(tt_equal(flipped, 0x4ull, 2));
}

TEST(Truth, CofactorsAndSupport) {
  const Tt f = tt_var(0) ^ tt_var(2);  // depends on vars 0, 2
  EXPECT_TRUE(tt_has_var(f, 0, 3));
  EXPECT_FALSE(tt_has_var(f, 1, 3));
  EXPECT_TRUE(tt_has_var(f, 2, 3));
  EXPECT_EQ(tt_support_size(f, 3), 2);
  // Cofactor on var 0: f|x0=1 = !x2.
  EXPECT_TRUE(tt_equal(tt_cofactor1(f, 0), tt_not(tt_var(2), 3), 3));
}

TEST(Truth, ExpandPreservesFunction) {
  // f(x0, x1) = x0 & x1 over support {3, 7}; expand to {1, 3, 7}.
  const Tt f = tt_var(0) & tt_var(1);
  const Tt big = tt_expand(f, {3, 7}, {1, 3, 7});
  // In new support, old var0 (id 3) is position 1, old var1 (id 7) is 2.
  EXPECT_TRUE(tt_equal(big, tt_var(1) & tt_var(2), 3));
}

TEST(Truth, Xor3Maj3References) {
  EXPECT_EQ(tt_xor3() & tt_mask(3), 0x96ull);
  EXPECT_EQ(tt_maj3() & tt_mask(3), 0xE8ull);
}

TEST(Truth, PhaseMatchingXor3) {
  // XOR3 with any inputs complemented is XOR3 or XNOR3 -> matches.
  Tt f = tt_xor3();
  EXPECT_TRUE(tt_matches_up_to_phase3(f, tt_xor3()));
  EXPECT_TRUE(tt_matches_up_to_phase3(tt_not(f, 3), tt_xor3()));
  EXPECT_TRUE(tt_matches_up_to_phase3(tt_flip_input(f, 1), tt_xor3()));
  // AND3 does not match XOR3.
  EXPECT_FALSE(tt_matches_up_to_phase3(tt_var(0) & tt_var(1) & tt_var(2),
                                       tt_xor3()));
}

TEST(Truth, PhaseMatchingMaj3) {
  Tt m = tt_maj3();
  EXPECT_TRUE(tt_matches_up_to_phase3(m, tt_maj3()));
  EXPECT_TRUE(tt_matches_up_to_phase3(tt_flip_input(m, 0), tt_maj3()));
  EXPECT_TRUE(tt_matches_up_to_phase3(tt_not(m, 3), tt_maj3()));
  EXPECT_FALSE(tt_matches_up_to_phase3(tt_xor3(), tt_maj3()));
}

// -- ISOP property sweep -------------------------------------------------------

class IsopRandomFunctions : public ::testing::TestWithParam<int> {};

TEST_P(IsopRandomFunctions, CoversExactlyTheFunction) {
  const int nvars = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(nvars));
  for (int trial = 0; trial < 50; ++trial) {
    const Tt f = rng.next_u64() & tt_mask(nvars);
    const auto cubes = synth::isop(f, f, nvars);
    EXPECT_TRUE(tt_equal(synth::sop_tt(cubes, nvars), f, nvars))
        << "nvars=" << nvars << " f=" << f;
    // Cubes are well-formed: pos & neg disjoint.
    for (const auto& c : cubes) EXPECT_EQ(c.pos & c.neg, 0);
  }
}

TEST_P(IsopRandomFunctions, IntervalRespectsBounds) {
  const int nvars = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(nvars));
  for (int trial = 0; trial < 30; ++trial) {
    const Tt lower_raw = rng.next_u64() & tt_mask(nvars);
    const Tt upper = (lower_raw | rng.next_u64()) & tt_mask(nvars);
    const Tt lower = lower_raw & upper;
    const auto cubes = synth::isop(lower, upper, nvars);
    const Tt f = synth::sop_tt(cubes, nvars);
    EXPECT_EQ(lower & ~f, 0ull) << "lower not covered";
    EXPECT_EQ(f & ~upper, 0ull) << "exceeded upper bound";
  }
}

INSTANTIATE_TEST_SUITE_P(VarCounts, IsopRandomFunctions,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Isop, ConstantsAndEdgeCases) {
  EXPECT_TRUE(synth::isop(0, 0, 3).empty());
  const auto taut = synth::isop(tt_mask(3), tt_mask(3), 3);
  ASSERT_EQ(taut.size(), 1u);
  EXPECT_EQ(taut[0].pos, 0);
  EXPECT_EQ(taut[0].neg, 0);
  EXPECT_THROW(synth::isop(1, 0, 2), std::runtime_error);
}

TEST(Isop, BuildSopRealizesFunction) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int nvars = 4;
    const Tt f = rng.next_u64() & tt_mask(nvars);
    Aig g;
    std::vector<Lit> leaves;
    for (int i = 0; i < nvars; ++i) leaves.push_back(g.add_pi());
    const auto cubes = synth::isop(f, f, nvars);
    g.add_po(synth::build_sop(g, cubes, leaves));
    for (std::uint64_t in = 0; in < 16; ++in) {
      EXPECT_EQ(evaluate(g, in) & 1, (f >> in) & 1) << "f=" << f;
    }
  }
}

TEST(Isop, BuildFunctionPicksCheaperPhase) {
  // f with a huge ON set: complement has 1 minterm, so the negative phase
  // build should be chosen and still realize f.
  Aig g;
  std::vector<Lit> leaves;
  for (int i = 0; i < 4; ++i) leaves.push_back(g.add_pi());
  const Tt f = tt_mask(4) & ~Tt{1};  // everything except minterm 0 (NOR)
  const Lit root = synth::build_function(g, f, 4, leaves);
  g.add_po(root);
  for (std::uint64_t in = 0; in < 16; ++in) {
    EXPECT_EQ(evaluate(g, in) & 1, (f >> in) & 1);
  }
}

TEST(Isop, DryRunCountMatchesRealBuild) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const int nvars = 4;
    const Tt f = rng.next_u64() & tt_mask(nvars);
    Aig g;
    std::vector<Lit> leaves;
    for (int i = 0; i < nvars; ++i) leaves.push_back(g.add_pi());
    const auto cubes = synth::isop(f, f, nvars);
    const int predicted = synth::count_new_nodes_sop(g, cubes, leaves);
    const std::int64_t before = g.num_ands();
    synth::build_sop(g, cubes, leaves);
    EXPECT_EQ(predicted, g.num_ands() - before) << "f=" << f;
  }
}

TEST(Isop, DryRunSeesExistingSharedNodes) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_and(a, b);  // pre-existing a&b
  // SOP for a&b costs zero new nodes.
  const auto cubes = synth::isop(tt_var(0) & tt_var(1), tt_var(0) & tt_var(1), 2);
  EXPECT_EQ(synth::count_new_nodes_sop(g, cubes, {a, b}), 0);
}

// -- Cut enumeration -----------------------------------------------------------

TEST(Cuts, TrivialCutsForLeaves) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.add_and(a, b));
  const auto cuts = enumerate_cuts(g, {.k = 4, .max_cuts = 8});
  const NodeId pi = lit_node(a);
  ASSERT_EQ(cuts[pi].size(), 1u);
  EXPECT_EQ(cuts[pi][0].leaves, std::vector<NodeId>{pi});
  EXPECT_TRUE(tt_equal(cuts[pi][0].tt, tt_var(0), 1));
}

TEST(Cuts, TruthTablesMatchSimulation) {
  // Build a small random circuit, then validate every cut's truth table by
  // simulating the cut function directly.
  Rng rng(7);
  Aig g;
  std::vector<Lit> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < 80; ++i) {
    const Lit x = lit_not_if(pool[rng.uniform_int(pool.size())],
                             rng.bernoulli(0.5));
    const Lit y = lit_not_if(pool[rng.uniform_int(pool.size())],
                             rng.bernoulli(0.5));
    pool.push_back(g.add_and(x, y));
  }
  g.add_po(pool.back());
  const auto sim = simulate_words(
      g, {tt_var(0), tt_var(1), tt_var(2), tt_var(3), tt_var(4)});
  const auto cuts = enumerate_cuts(g, {.k = 4, .max_cuts = 6});
  int checked = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
    if (!g.is_and(id)) continue;
    for (const Cut& cut : cuts[id]) {
      if (cut.leaves.empty()) continue;
      // Evaluate the cut tt on the global simulation words of its leaves.
      // For each of the 32 global patterns, compute the cut-local minterm.
      std::uint64_t expected = 0;
      for (int p = 0; p < 32; ++p) {
        int minterm = 0;
        for (std::size_t v = 0; v < cut.leaves.size(); ++v) {
          if ((sim[cut.leaves[v]] >> p) & 1) minterm |= 1 << v;
        }
        if ((cut.tt >> minterm) & 1) expected |= 1ull << p;
      }
      EXPECT_EQ(expected & 0xFFFFFFFFull, sim[id] & 0xFFFFFFFFull)
          << "node " << id;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(Cuts, RespectsSizeLimit) {
  Aig g;
  std::vector<Lit> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(g.add_pi());
  g.add_po(g.add_and_multi(pis));
  for (int k : {2, 3, 4, 6}) {
    const auto cuts = enumerate_cuts(g, {.k = k, .max_cuts = 10});
    for (const auto& node_cuts : cuts) {
      for (const Cut& cut : node_cuts) {
        EXPECT_LE(cut.size(), k);
      }
    }
  }
  EXPECT_THROW(enumerate_cuts(g, {.k = 7, .max_cuts = 4}),
               std::runtime_error);
}

TEST(Cuts, FanInPairCutAlwaysPresentForAnds) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(x, a);
  g.add_po(y);
  const auto cuts = enumerate_cuts(g, {.k = 4, .max_cuts = 8});
  // Node y must have a cut {a, b} (through x).
  bool found = false;
  for (const Cut& cut : cuts[lit_node(y)]) {
    if (cut.leaves == std::vector<NodeId>{lit_node(a), lit_node(b)}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hoga::aig
