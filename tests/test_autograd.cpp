// Autograd tests: every differentiable op is checked against central
// differences, plus structural tests (accumulation, diamonds, constants).

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "tensor/ops.hpp"

namespace hoga::ag {
namespace {

Variable leaf(Shape shape, Rng& rng) {
  return Variable(Tensor::randn(std::move(shape), rng), true);
}

// Named single-op gradient checks, parameterized so each op is its own case.
struct OpCase {
  const char* name;
  int num_inputs;
  std::vector<Shape> shapes;
  std::function<Variable(const std::vector<Variable>&)> fn;
};

class OpGradCheck : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradCheck, MatchesFiniteDifferences) {
  const OpCase& c = GetParam();
  Rng rng(1234);
  std::vector<Variable> inputs;
  for (const auto& s : c.shapes) inputs.push_back(leaf(s, rng));
  auto result = grad_check(c.fn, inputs);
  EXPECT_TRUE(result.ok) << c.name << ": " << result.detail
                         << " (max abs err " << result.max_abs_error << ")";
}

const OpCase kOpCases[] = {
    {"add", 2, {{3, 4}, {3, 4}},
     [](const std::vector<Variable>& v) { return add(v[0], v[1]); }},
    {"add_broadcast", 2, {{3, 4}, {4}},
     [](const std::vector<Variable>& v) { return add(v[0], v[1]); }},
    {"sub", 2, {{2, 5}, {2, 5}},
     [](const std::vector<Variable>& v) { return sub(v[0], v[1]); }},
    {"sub_broadcast", 2, {{2, 5}, {5}},
     [](const std::vector<Variable>& v) { return sub(v[0], v[1]); }},
    {"mul", 2, {{3, 3}, {3, 3}},
     [](const std::vector<Variable>& v) { return mul(v[0], v[1]); }},
    {"mul_broadcast3d", 2, {{2, 3, 4}, {4}},
     [](const std::vector<Variable>& v) { return mul(v[0], v[1]); }},
    {"add_scalar", 1, {{4}},
     [](const std::vector<Variable>& v) { return add_scalar(v[0], 2.5f); }},
    {"mul_scalar", 1, {{4}},
     [](const std::vector<Variable>& v) { return mul_scalar(v[0], -1.5f); }},
    {"matmul", 2, {{3, 4}, {4, 2}},
     [](const std::vector<Variable>& v) { return matmul(v[0], v[1]); }},
    {"matmul_ta", 2, {{4, 3}, {4, 2}},
     [](const std::vector<Variable>& v) {
       return matmul(v[0], v[1], true, false);
     }},
    {"matmul_tb", 2, {{3, 4}, {2, 4}},
     [](const std::vector<Variable>& v) {
       return matmul(v[0], v[1], false, true);
     }},
    {"matmul_tatb", 2, {{4, 3}, {2, 4}},
     [](const std::vector<Variable>& v) {
       return matmul(v[0], v[1], true, true);
     }},
    {"bmm", 2, {{2, 3, 4}, {2, 4, 2}},
     [](const std::vector<Variable>& v) { return bmm(v[0], v[1]); }},
    {"bmm_tb", 2, {{2, 3, 4}, {2, 3, 4}},
     [](const std::vector<Variable>& v) {
       return bmm(v[0], v[1], false, true);
     }},
    {"relu", 1, {{3, 5}},
     [](const std::vector<Variable>& v) { return relu(v[0]); }},
    {"sigmoid", 1, {{3, 5}},
     [](const std::vector<Variable>& v) { return sigmoid(v[0]); }},
    {"tanh", 1, {{3, 5}},
     [](const std::vector<Variable>& v) { return tanh(v[0]); }},
    {"exp", 1, {{3, 3}},
     [](const std::vector<Variable>& v) { return exp(v[0]); }},
    {"softmax", 1, {{4, 6}},
     [](const std::vector<Variable>& v) { return softmax_lastdim(v[0]); }},
    {"softmax3d", 1, {{2, 3, 4}},
     [](const std::vector<Variable>& v) { return softmax_lastdim(v[0]); }},
    {"layernorm", 1, {{4, 8}},
     [](const std::vector<Variable>& v) { return layer_norm_lastdim(v[0]); }},
    {"reshape", 1, {{2, 6}},
     [](const std::vector<Variable>& v) { return reshape(v[0], {3, 4}); }},
    {"concat_cols", 2, {{3, 2}, {3, 3}},
     [](const std::vector<Variable>& v) { return concat_cols({v[0], v[1]}); }},
    {"slice_cols", 1, {{3, 6}},
     [](const std::vector<Variable>& v) { return slice_cols(v[0], 1, 4); }},
    {"concat_rows", 2, {{2, 3}, {4, 3}},
     [](const std::vector<Variable>& v) { return concat_rows({v[0], v[1]}); }},
    {"slice_rows", 1, {{6, 3}},
     [](const std::vector<Variable>& v) { return slice_rows(v[0], 2, 5); }},
    {"gather_rows", 1, {{5, 3}},
     [](const std::vector<Variable>& v) {
       return gather_rows(v[0], {4, 0, 0, 2});
     }},
    {"mean_axis0", 1, {{5, 3}},
     [](const std::vector<Variable>& v) { return mean_axis0(v[0]); }},
    {"sum_all", 1, {{4, 3}},
     [](const std::vector<Variable>& v) { return sum_all(v[0]); }},
    {"mean_all", 1, {{4, 3}},
     [](const std::vector<Variable>& v) { return mean_all(v[0]); }},
    {"composite_attention", 2, {{2, 3, 4}, {2, 3, 4}},
     [](const std::vector<Variable>& v) {
       Variable s = softmax_lastdim(bmm(v[0], v[1], false, true));
       return mul(v[0], bmm(s, v[1]));
     }},
};

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradCheck, ::testing::ValuesIn(kOpCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(Autograd, BackwardRequiresScalarWithoutSeed) {
  Rng rng(1);
  Variable x = leaf({2, 2}, rng);
  Variable y = relu(x);
  EXPECT_THROW(y.backward(), std::runtime_error);
}

TEST(Autograd, ConstantsGetNoGradient) {
  Rng rng(1);
  Variable x = leaf({3}, rng);
  Variable c = constant(Tensor::ones({3}));
  Variable y = sum_all(mul(x, c));
  y.backward();
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(x.requires_grad());
  EXPECT_TRUE(Tensor::allclose(x.grad(), Tensor::ones({3})));
}

TEST(Autograd, DiamondAccumulatesBothPaths) {
  // y = sum(x + x): dy/dx = 2.
  Rng rng(2);
  Variable x = leaf({4}, rng);
  Variable y = sum_all(add(x, x));
  y.backward();
  EXPECT_TRUE(Tensor::allclose(x.grad(), Tensor::full({4}, 2.f)));
}

TEST(Autograd, ReusedParameterAccumulates) {
  // y = sum(x W + (x W) W'), W reused: gradient flows through both uses.
  Rng rng(3);
  Variable x = leaf({2, 3}, rng);
  Variable w = leaf({3, 3}, rng);
  auto fn = [](const std::vector<Variable>& v) {
    Variable h = matmul(v[0], v[1]);
    return matmul(h, v[1]);
  };
  auto result = grad_check(fn, {x, w});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Autograd, ZeroGradClearsAccumulation) {
  Rng rng(4);
  Variable x = leaf({3}, rng);
  Variable y = sum_all(x);
  y.backward();
  EXPECT_TRUE(Tensor::allclose(x.grad(), Tensor::ones({3})));
  x.zero_grad();
  Variable y2 = sum_all(x);
  y2.backward();
  EXPECT_TRUE(Tensor::allclose(x.grad(), Tensor::ones({3})));
}

TEST(Autograd, MseLossValueAndGrad) {
  Variable pred(Tensor::from_vector({2, 1}, {1.f, 3.f}), true);
  Tensor target = Tensor::from_vector({2, 1}, {0.f, 1.f});
  Variable loss = mse_loss(pred, target);
  EXPECT_NEAR(loss.value()[0], (1.f + 4.f) / 2.f, 1e-5f);
  loss.backward();
  EXPECT_NEAR(pred.grad()[0], 2.f * 1.f / 2.f, 1e-5f);
  EXPECT_NEAR(pred.grad()[1], 2.f * 2.f / 2.f, 1e-5f);
}

TEST(Autograd, MaeLossValueAndGrad) {
  Variable pred(Tensor::from_vector({2, 1}, {1.f, -3.f}), true);
  Tensor target = Tensor::from_vector({2, 1}, {0.f, 0.f});
  Variable loss = mae_loss(pred, target);
  EXPECT_NEAR(loss.value()[0], 2.f, 1e-5f);
  loss.backward();
  EXPECT_NEAR(pred.grad()[0], 0.5f, 1e-5f);
  EXPECT_NEAR(pred.grad()[1], -0.5f, 1e-5f);
}

TEST(Autograd, CrossEntropyMatchesManual) {
  Variable logits(Tensor::from_vector({2, 3}, {1, 2, 3, 0, 0, 0}), true);
  Variable loss = softmax_cross_entropy(logits, {2, 0});
  Tensor probs = tensor_ops::softmax_lastdim(logits.value());
  const float expected =
      -0.5f * (std::log(probs.at({0, 2})) + std::log(probs.at({1, 0})));
  EXPECT_NEAR(loss.value()[0], expected, 1e-5f);
  loss.backward();
  // grad = (p - onehot)/n
  EXPECT_NEAR(logits.grad().at({0, 2}), (probs.at({0, 2}) - 1.f) / 2.f, 1e-5f);
  EXPECT_NEAR(logits.grad().at({1, 1}), probs.at({1, 1}) / 2.f, 1e-5f);
}

TEST(Autograd, CrossEntropyClassWeights) {
  Variable logits(Tensor::from_vector({2, 2}, {0, 0, 0, 0}), true);
  // Class 1 has weight 3; both samples give loss log(2).
  Variable loss = softmax_cross_entropy(logits, {0, 1}, {1.f, 3.f});
  EXPECT_NEAR(loss.value()[0], std::log(2.f), 1e-5f);
  loss.backward();
  // Sample 1 (weight 3) contributes 3x the gradient of sample 0 (both
  // true-class entries are negative, so the ratio is +3).
  EXPECT_NEAR(logits.grad().at({1, 1}) / logits.grad().at({0, 0}), 3.f,
              1e-4f);
}

TEST(Autograd, CrossEntropyGradCheck) {
  Rng rng(5);
  Variable logits = leaf({4, 3}, rng);
  auto fn = [](const std::vector<Variable>& v) {
    return softmax_cross_entropy(v[0], {0, 2, 1, 2}, {1.f, 2.f, 0.5f});
  };
  auto result = grad_check(fn, {logits});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Autograd, DropoutTrainAndEval) {
  Rng rng(6);
  Variable x(Tensor::ones({1000}), true);
  Variable y_eval = dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(Tensor::allclose(y_eval.value(), x.value()));
  Variable y_train = dropout(x, 0.5f, rng, /*training=*/true);
  // Roughly half zeros, survivors scaled by 2.
  int zeros = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const float v = y_train.value()[i];
    EXPECT_TRUE(v == 0.f || std::fabs(v - 2.f) < 1e-6f);
    if (v == 0.f) ++zeros;
  }
  EXPECT_NEAR(zeros, 500, 120);
  // Mean approximately preserved (inverted dropout).
  EXPECT_NEAR(tensor_ops::mean_all(y_train.value()), 1.f, 0.25f);
}

TEST(Autograd, MaxAxis0SubgradientRouting) {
  Variable x(Tensor::from_vector({3, 2}, {1, 9, 5, 2, 3, 4}), true);
  Variable y = sum_all(max_axis0(x));
  y.backward();
  // Column 0 max at row 1 (5); column 1 max at row 0 (9).
  Tensor expected = Tensor::zeros({3, 2});
  expected.at({1, 0}) = 1.f;
  expected.at({0, 1}) = 1.f;
  EXPECT_TRUE(Tensor::allclose(x.grad(), expected));
}

}  // namespace
}  // namespace hoga::ag
