// Serving-runtime tests: request validation, correct answers (also under
// concurrency), deadline timeouts, backpressure, circuit-breaker trips, the
// degradation ladder, recovery, and deterministic outcome counts under a
// scripted fault schedule (DESIGN.md §8).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <filesystem>

#include "autograd/ops.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "serve/serve.hpp"
#include "storage/storage.hpp"
#include "store/feature_store.hpp"
#include "tensor/ops.hpp"
#include "util/io.hpp"

namespace hoga::serve {
namespace {

core::HogaConfig small_config(std::int64_t in_dim = 4) {
  return {.in_dim = in_dim,
          .hidden = 8,
          .num_hops = 3,
          .num_layers = 1,
          .out_dim = 3,
          .dropout = 0.25f};  // non-zero on purpose: eval must ignore it
}

Tensor random_batch(std::int64_t nodes, const core::HogaConfig& cfg,
                    std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({nodes, cfg.num_hops + 1, cfg.in_dim}, rng);
}

aig::Aig random_aig(std::uint64_t seed, int inputs, int gates) {
  Rng rng(seed);
  aig::Aig g;
  std::vector<aig::Lit> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < gates; ++i) {
    const aig::Lit a = aig::lit_not_if(pool[rng.uniform_int(pool.size())],
                                       rng.bernoulli(0.5));
    const aig::Lit b = aig::lit_not_if(pool[rng.uniform_int(pool.size())],
                                       rng.bernoulli(0.5));
    pool.push_back(g.add_and(a, b));
  }
  g.add_po(pool.back());
  return g;
}

TEST(Serve, ServesValidBatchWithExactModelOutput) {
  Rng rng(3);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 2});
  const Tensor batch = random_batch(17, cfg, 5);

  Response r = svc.infer({.hop_batch = batch});
  ASSERT_EQ(r.outcome, Outcome::kServed) << r.error;
  // Zero wrong answers: the served output IS the model's forward_eval.
  const Tensor expect = model.forward_eval(ag::constant(batch)).value();
  EXPECT_TRUE(Tensor::allclose(r.output, expect, 1e-5f));
  EXPECT_GT(r.latency_ms, 0);
  EXPECT_EQ(svc.stats().served, 1);
  EXPECT_EQ(svc.stats().counts_signature(),
            "submitted=1 served=1 degraded_truncated=0 degraded_cached=0 "
            "rejected_invalid=0 rejected_overload=0 timed_out=0 failed=0 "
            "breaker_trips=0 feature_cache_hits=0 feature_cache_misses=0 "
            "batched=0 batches=0 batch_quota_rejected=0");
}

TEST(Serve, ConcurrentClientsAllGetCorrectAnswers) {
  Rng rng(4);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 3, .queue_capacity = 64});
  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  std::vector<Tensor> batches;
  std::vector<Tensor> expected;
  for (int i = 0; i < kClients; ++i) {
    batches.push_back(random_batch(9 + i, cfg, 100 + i));
    expected.push_back(model.forward_eval(ag::constant(batches.back())).value());
  }
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      for (int j = 0; j < kPerClient; ++j) {
        Response r = svc.infer({.hop_batch = batches[i]});
        if (r.outcome != Outcome::kServed ||
            !Tensor::allclose(r.output, expected[i], 1e-5f)) {
          ++wrong;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(svc.stats().served, kClients * kPerClient);
}

TEST(Serve, RejectsMalformedRequests) {
  Rng rng(5);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1, .max_request_nodes = 32});

  // Neither input set.
  EXPECT_EQ(svc.infer({}).outcome, Outcome::kRejectedInvalid);
  // Both inputs set.
  const aig::Aig g = random_aig(1, 4, 10);
  EXPECT_EQ(svc.infer({.hop_batch = random_batch(4, cfg, 1), .aig = &g}).outcome,
            Outcome::kRejectedInvalid);
  // Wrong rank.
  EXPECT_EQ(svc.infer({.hop_batch = Tensor::zeros({4, cfg.in_dim})}).outcome,
            Outcome::kRejectedInvalid);
  // Wrong feature dim.
  EXPECT_EQ(svc.infer({.hop_batch = Tensor::zeros({4, 4, cfg.in_dim + 1})})
                .outcome,
            Outcome::kRejectedInvalid);
  // More hops than the model K.
  EXPECT_EQ(
      svc.infer({.hop_batch = Tensor::zeros({4, cfg.num_hops + 2, cfg.in_dim})})
          .outcome,
      Outcome::kRejectedInvalid);
  // NaN payload.
  Tensor bad = random_batch(4, cfg, 2);
  bad.data()[3] = std::numeric_limits<float>::quiet_NaN();
  Response r = svc.infer({.hop_batch = bad});
  EXPECT_EQ(r.outcome, Outcome::kRejectedInvalid);
  EXPECT_NE(r.error.find("non-finite"), std::string::npos) << r.error;
  // Request size cap.
  EXPECT_EQ(svc.infer({.hop_batch = random_batch(33, cfg, 3)}).outcome,
            Outcome::kRejectedInvalid);
  EXPECT_EQ(svc.stats().rejected_invalid, 7);
  EXPECT_EQ(svc.stats().served, 0);
}

TEST(Serve, HopTruncatedBatchIsLegalInput) {
  // A [B, k+1, d] batch with k < K is valid by hop-wise decoupling.
  Rng rng(6);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1});
  Rng data_rng(7);
  const Tensor batch = Tensor::randn({5, 2, cfg.in_dim}, data_rng);
  Response r = svc.infer({.hop_batch = batch});
  ASSERT_EQ(r.outcome, Outcome::kServed) << r.error;
  EXPECT_TRUE(Tensor::allclose(
      r.output, model.forward_eval(ag::constant(batch)).value(), 1e-5f));
}

TEST(Serve, ServesRawAigRequest) {
  Rng rng(8);
  const auto cfg = small_config(reasoning::kNodeFeatureDim);
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1});
  const aig::Aig g = random_aig(9, 5, 30);
  Response r = svc.infer({.aig = &g});
  ASSERT_EQ(r.outcome, Outcome::kServed) << r.error;
  // Matches featurizing by hand and evaluating directly.
  const graph::Csr adj = reasoning::to_graph(g).normalized_symmetric();
  const Tensor batch = core::HopFeatures::compute(
                           adj, reasoning::node_features(g), cfg.num_hops)
                           .gather_all();
  EXPECT_TRUE(Tensor::allclose(
      r.output, model.forward_eval(ag::constant(batch)).value(), 1e-5f));

  // A model whose input width is not the AIG feature width cannot take
  // raw AIG requests.
  Rng rng2(8);
  core::Hoga narrow(small_config(4), rng2);
  InferenceService svc2(narrow, {.workers = 1});
  EXPECT_EQ(svc2.infer({.aig = &g}).outcome, Outcome::kRejectedInvalid);
}

TEST(Serve, FeatureStoreCachesRepeatedAigRequests) {
  Rng rng(24);
  const auto cfg = small_config(reasoning::kNodeFeatureDim);
  core::Hoga model(cfg, rng);
  store::FeatureStore fs({.directory = ""});  // memory-only tier
  InferenceService svc(model, {.workers = 1, .feature_store = &fs});
  const aig::Aig g = random_aig(25, 5, 40);

  Response first = svc.infer({.aig = &g});
  ASSERT_EQ(first.outcome, Outcome::kServed) << first.error;
  Response second = svc.infer({.aig = &g});
  ASSERT_EQ(second.outcome, Outcome::kServed) << second.error;
  // Identical circuit, identical answer — and exactly one phase-1 run.
  EXPECT_TRUE(Tensor::allclose(first.output, second.output, 0.f));
  EXPECT_EQ(svc.stats().feature_cache_misses, 1);
  EXPECT_EQ(svc.stats().feature_cache_hits, 1);
  EXPECT_EQ(fs.stats().computes, 1);
  EXPECT_EQ(fs.stats().memory_hits, 1);

  // A structurally different circuit is a different content digest.
  const aig::Aig other = random_aig(26, 5, 40);
  EXPECT_EQ(svc.infer({.aig = &other}).outcome, Outcome::kServed);
  EXPECT_EQ(svc.stats().feature_cache_misses, 2);
  EXPECT_EQ(fs.stats().computes, 2);
}

TEST(Serve, FeatureStoreCountsDeterministicUnderFaultSchedule) {
  // Same request sequence + same fault schedule => identical serve and
  // store counters, including cache accounting for requests that are later
  // rejected (featurization happens before the poison hook fires).
  auto run_once = [] {
    Rng rng(27);
    const auto cfg = small_config(reasoning::kNodeFeatureDim);
    core::Hoga model(cfg, rng);
    store::FeatureStore fs({.directory = ""});
    InferenceService svc(model, {.workers = 1, .feature_store = &fs});
    fault::Injector inj(7);
    inj.poison_request(1);
    fault::ScopedInjector scope(inj);
    const aig::Aig g = random_aig(28, 4, 24);
    for (int i = 0; i < 4; ++i) svc.infer({.aig = &g});
    return svc.stats().counts_signature() + " | " +
           fs.stats().counts_signature();
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_NE(first.find("served=3"), std::string::npos) << first;
  EXPECT_NE(first.find("rejected_invalid=1"), std::string::npos) << first;
  EXPECT_NE(first.find("feature_cache_hits=3"), std::string::npos) << first;
  EXPECT_NE(first.find("feature_cache_misses=1"), std::string::npos) << first;
  EXPECT_NE(first.find("computes=1"), std::string::npos) << first;
}

TEST(Serve, PoisonedRequestIsRejectedNotCrashed) {
  Rng rng(10);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1});
  fault::Injector inj(1);
  inj.poison_request(0);
  fault::ScopedInjector scope(inj);
  const Tensor batch = random_batch(6, cfg, 11);
  Response r = svc.infer({.hop_batch = batch});
  EXPECT_EQ(r.outcome, Outcome::kRejectedInvalid);
  EXPECT_EQ(inj.counts().poisoned_requests, 1);
  // The caller's buffer was not scribbled on — poisoning hits a copy.
  EXPECT_TRUE(std::isfinite(batch.data()[0]));
  // The next (unpoisoned) request with the same storage succeeds.
  EXPECT_EQ(svc.infer({.hop_batch = batch}).outcome, Outcome::kServed);
}

TEST(Serve, DeadlineExpiryReturnsTimedOutPromptly) {
  Rng rng(12);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1});
  fault::Injector inj(2);
  inj.delay_request(0, 2000);  // slow worker far beyond the deadline
  fault::ScopedInjector scope(inj);
  const auto start = std::chrono::steady_clock::now();
  Response r = svc.infer({.hop_batch = random_batch(4, cfg, 13),
                          .deadline_ms = 30});
  const double waited = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  EXPECT_EQ(r.outcome, Outcome::kTimedOut);
  // The caller gets the answer at ~the deadline, not after the 2s delay.
  EXPECT_LT(waited, 1000);
  EXPECT_GE(waited, 30);
  EXPECT_EQ(svc.stats().timed_out, 1);
}

TEST(Serve, ZeroCapacityQueueRejectsWithRetryAfter) {
  Rng rng(14);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1, .queue_capacity = 0});
  Response r = svc.infer({.hop_batch = random_batch(4, cfg, 15)});
  EXPECT_EQ(r.outcome, Outcome::kRejectedOverload);
  EXPECT_GT(r.retry_after_ms, 0);
  EXPECT_EQ(svc.stats().rejected_overload, 1);
}

TEST(Serve, StalledQueueTriggersBackpressure) {
  Rng rng(16);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1,
                               .queue_capacity = 1,
                               .default_deadline_ms = 5000});
  fault::Injector inj(3);
  inj.stall_queue(0, 400);  // request 0 wedges the only worker
  fault::ScopedInjector scope(inj);
  const Tensor batch = random_batch(4, cfg, 17);

  std::thread head([&] {
    EXPECT_EQ(svc.infer({.hop_batch = batch}).outcome, Outcome::kServed);
  });
  // Wait for the head request to occupy the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread queued([&] {
    EXPECT_EQ(svc.infer({.hop_batch = batch}).outcome, Outcome::kServed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Queue is now full (1 queued behind the wedged head): backpressure.
  Response r = svc.infer({.hop_batch = batch});
  EXPECT_EQ(r.outcome, Outcome::kRejectedOverload);
  EXPECT_GT(r.retry_after_ms, 0);
  head.join();
  queued.join();
  EXPECT_EQ(inj.counts().queue_stalls, 1);
}

TEST(Serve, BreakerTripsThenDegradesThenRecovers) {
  Rng rng(18);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1,
                               .breaker_trip_failures = 2,
                               .breaker_reset_ms = 80,
                               .degraded_num_hops = 1});
  fault::Injector inj(4);
  inj.delay_request(0, 2000);
  inj.delay_request(1, 2000);
  fault::ScopedInjector scope(inj);
  const Tensor batch = random_batch(7, cfg, 19);

  // Two consecutive timeouts trip the breaker.
  EXPECT_EQ(svc.infer({.hop_batch = batch, .deadline_ms = 25}).outcome,
            Outcome::kTimedOut);
  EXPECT_FALSE(svc.breaker_open());
  EXPECT_EQ(svc.infer({.hop_batch = batch, .deadline_ms = 25}).outcome,
            Outcome::kTimedOut);
  EXPECT_TRUE(svc.breaker_open());
  EXPECT_EQ(svc.stats().breaker_trips, 1);

  // Open breaker: graceful degradation on the truncated hop prefix,
  // computed inline — still a *correct* model output for hops 0..1.
  Response d = svc.infer({.hop_batch = batch});
  ASSERT_EQ(d.outcome, Outcome::kDegradedTruncated) << d.error;
  Tensor prefix({batch.size(0), 2, batch.size(2)});
  for (std::int64_t i = 0; i < batch.size(0); ++i) {
    for (std::int64_t j = 0; j < 2 * batch.size(2); ++j) {
      prefix.data()[i * 2 * batch.size(2) + j] =
          batch.data()[i * batch.size(1) * batch.size(2) + j];
    }
  }
  EXPECT_TRUE(Tensor::allclose(
      d.output, model.forward_eval(ag::constant(prefix)).value(), 1e-5f));

  // After the reset window a half-open probe goes through the healthy
  // executor and closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(svc.infer({.hop_batch = batch}).outcome, Outcome::kServed);
  EXPECT_FALSE(svc.breaker_open());
  EXPECT_EQ(svc.infer({.hop_batch = batch}).outcome, Outcome::kServed);
}

TEST(Serve, CachedLastGoodResultServedWhenBreakerOpen) {
  Rng rng(20);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  InferenceService svc(model, {.workers = 1,
                               .breaker_trip_failures = 1,
                               .breaker_reset_ms = 60000});
  const Tensor batch = random_batch(5, cfg, 21);

  // Populate the last-good cache with a healthy serve.
  Response good = svc.infer({.hop_batch = batch, .cache_key = 42});
  ASSERT_EQ(good.outcome, Outcome::kServed) << good.error;

  // One timeout trips the breaker (threshold 1).
  {
    fault::Injector inj(5);
    inj.delay_request(0, 2000);
    fault::ScopedInjector scope(inj);
    EXPECT_EQ(svc.infer({.hop_batch = batch, .deadline_ms = 25}).outcome,
              Outcome::kTimedOut);
  }
  ASSERT_TRUE(svc.breaker_open());

  // Same logical query: the cached full-model answer beats recompute.
  Response cached = svc.infer({.hop_batch = batch, .cache_key = 42});
  ASSERT_EQ(cached.outcome, Outcome::kDegradedCached) << cached.error;
  EXPECT_TRUE(Tensor::allclose(cached.output, good.output, 0.f));

  // Unknown key falls through to the truncated rung.
  EXPECT_EQ(svc.infer({.hop_batch = batch, .cache_key = 99}).outcome,
            Outcome::kDegradedTruncated);
}

TEST(Serve, ScriptedFaultScheduleGivesDeterministicCounts) {
  // The acceptance bar for the bench: same seed, same schedule, same
  // request sequence => identical outcome counts.
  auto run_once = [] {
    Rng rng(22);
    const auto cfg = small_config();
    core::Hoga model(cfg, rng);
    InferenceService svc(model, {.workers = 1,
                                 .breaker_trip_failures = 2,
                                 .breaker_reset_ms = 60000});
    fault::Injector inj(6);
    inj.poison_request(1);
    inj.delay_request(1, 2000);  // executed request index shifts: poisoned
    inj.delay_request(2, 2000);  // request never executes
    fault::ScopedInjector scope(inj);
    const Tensor batch = random_batch(6, cfg, 23);
    for (int i = 0; i < 8; ++i) {
      svc.infer({.hop_batch = batch, .deadline_ms = 25, .cache_key = 0});
    }
    return svc.stats().counts_signature();
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_NE(first.find("rejected_invalid=1"), std::string::npos) << first;
  EXPECT_NE(first.find("timed_out=2"), std::string::npos) << first;
  EXPECT_NE(first.find("degraded_truncated=4"), std::string::npos) << first;
  EXPECT_NE(first.find("breaker_trips=1"), std::string::npos) << first;
}

TEST(Serve, HealthCombinesBreakerAndScrubberVerdicts) {
  namespace fs = std::filesystem;
  Rng rng(31);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);

  // Without scrub directories the health signal is just the breaker.
  {
    InferenceService svc(model, {.workers = 1});
    const ServeHealth h = svc.health();
    EXPECT_FALSE(h.breaker_open);
    EXPECT_EQ(h.scrub_passes, 0);
    EXPECT_FALSE(h.degraded());
    EXPECT_EQ(svc.scrub_now().scrub_passes, 0);  // no-op without dirs
  }

  // A store directory with one clean blob and one bit-rotted shard: the
  // service-owned scrubber quarantines the rot and health() reports it.
  const std::string dir =
      "/tmp/hoga_test_serve_scrub_" + std::to_string(util::process_id());
  fs::remove_all(dir);
  fs::create_directories(dir);
  storage::atomic_write_durable(dir + "/ok.snap",
                                storage::encode_framed("payload"));
  storage::atomic_write_durable(dir + "/rotted.feat",
                                "hoga-feat v1 5 deadbeef\nhello");
  {
    InferenceService svc(model, {.workers = 1,
                                 .scrub_directories = {dir},
                                 .scrub_interval_ms = 60000});
    const ServeHealth h = svc.scrub_now();
    EXPECT_GE(h.scrub_passes, 1);
    EXPECT_EQ(h.scrub_corrupt, 1);
    EXPECT_EQ(h.scrub_quarantined, 1);
    EXPECT_FALSE(h.breaker_open);
    EXPECT_TRUE(h.degraded());  // storage rot degrades health, not serving
    EXPECT_FALSE(fs::exists(dir + "/rotted.feat"));
    EXPECT_TRUE(fs::exists(dir + "/rotted.feat.quarantine"));
    // Scrubbing leaves the request-outcome signature untouched.
    EXPECT_EQ(svc.stats().counts_signature(),
              "submitted=0 served=0 degraded_truncated=0 degraded_cached=0 "
              "rejected_invalid=0 rejected_overload=0 timed_out=0 failed=0 "
              "breaker_trips=0 feature_cache_hits=0 feature_cache_misses=0 "
              "batched=0 batches=0 batch_quota_rejected=0");
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hoga::serve
